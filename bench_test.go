// Benchmarks regenerating every experiment in DESIGN.md §4 (E1–E11) as
// testing.B targets. Each BenchmarkEn measures the code path behind the
// corresponding table; `go run ./cmd/dmemo-bench` prints the tables
// themselves. The paper has no numeric tables — these benches quantify its
// qualitative claims (see EXPERIMENTS.md for the mapping).
package repro_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/linda"
	"repro/internal/lucid"
	"repro/internal/mdc"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/threadcache"
	"repro/internal/transferable"
)

// bootB boots a cluster for a benchmark and registers cleanup.
func bootB(b *testing.B, adfText string, opts cluster.Options) *cluster.Cluster {
	b.Helper()
	c, err := cluster.BootADF(adfText, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Shutdown)
	return c
}

func memoB(b *testing.B, c *cluster.Cluster, host string) *core.Memo {
	b.Helper()
	m, err := c.NewMemo(host)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

const oneHostADF = `APP bench1
HOSTS
a 1 sun4 1
FOLDERS
0 a
PROCESSES
0 boss a
PPC
`

const twoHostADF = `APP bench2
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
PPC
a <-> b 1
`

// BenchmarkE1ThreadCache measures request service with the folder-server
// thread cache on vs off (Fig. 1, §4.1).
func BenchmarkE1ThreadCache(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cache-on", false}, {"cache-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := bootB(b, oneHostADF, cluster.Options{
				FolderCache: threadcache.Config{Disable: mode.disable, IdleTimeout: 50 * time.Millisecond},
			})
			m := memoB(b, c, "a")
			k := m.NamedKey("hot")
			payload := transferable.Int64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Put(k, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2InterMachine measures put+get round trips at increasing memo-
// server hop counts (Fig. 2).
func BenchmarkE2InterMachine(b *testing.B) {
	for _, hosts := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("hops-%d", hosts-1), func(b *testing.B) {
			adfText := "APP bench2e\nHOSTS\n"
			for i := 0; i < hosts; i++ {
				adfText += fmt.Sprintf("h%d 1 sun4 1\n", i)
			}
			adfText += fmt.Sprintf("FOLDERS\n0 h%d\nPROCESSES\n0 boss h0\nPPC\n", hosts-1)
			for i := 1; i < hosts; i++ {
				adfText += fmt.Sprintf("h%d <-> h%d 1\n", i-1, i)
			}
			c := bootB(b, adfText, cluster.Options{BaseLatency: 100 * time.Microsecond})
			m := memoB(b, c, "h0")
			k := m.NamedKey("probe")
			payload := transferable.Int64(1)
			m.Put(k, payload)
			m.Get(k) // warm the path
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Put(k, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Topology measures a leaf-to-leaf operation in a star: two
// logical hops through the hub (Fig. 3, §4.3).
func BenchmarkE3Topology(b *testing.B) {
	const starADF = `APP bench3
HOSTS
hub 1 sun4 1
leafA 1 sun4 1
leafB 1 sun4 1
FOLDERS
0 leafB
PROCESSES
0 boss leafA
PPC
hub <-> leafA 1
hub <-> leafB 1
`
	c := bootB(b, starADF, cluster.Options{})
	m := memoB(b, c, "leafA")
	k := m.NamedKey("x")
	payload := transferable.Int64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Put(k, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Distribution measures cost-weighted placement plus the put
// path on the paper's invert host set (§5 ¶1).
func BenchmarkE4Distribution(b *testing.B) {
	const invertADF = `APP bench4
HOSTS
glen 1 sun4 1
aurora 1 sun4 1
joliet 1 sun4 1
bonnie 128 sp1 sun4*0.5
FOLDERS
0 glen
1 aurora
2 joliet
3-8 bonnie
PROCESSES
0 boss glen
PPC
glen <-> aurora 1
glen <-> joliet 1
glen <-> bonnie 2
`
	c := bootB(b, invertADF, cluster.Options{})
	m := memoB(b, c, "glen")
	payload := transferable.Int64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := m.Key(symbol.Symbol(100), uint32(i))
		if err := m.Put(k, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Locality measures placement map construction across lambda
// settings (§5 ¶2): the topology term is a boot-time cost.
func BenchmarkE5Locality(b *testing.B) {
	const adfText = `APP bench5
HOSTS
hub 1 sun4 1
near 1 sun4 1
far 1 sun4 1
FOLDERS
0 near
1 far
PROCESSES
0 boss hub
PPC
hub <-> near 1
near <-> far 10
`
	for _, lambda := range []float64{0, 1} {
		b.Run(fmt.Sprintf("lambda-%g", lambda), func(b *testing.B) {
			c := bootB(b, adfText, cluster.Options{Lambda: lambda})
			m := memoB(b, c, "hub")
			payload := transferable.Int64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := m.Key(symbol.Symbol(100), uint32(i))
				if err := m.Put(k, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Grain measures one job-jar task round trip at two grain sizes
// (§4.2): the fixed communication cost that small grains fail to amortize.
func BenchmarkE6Grain(b *testing.B) {
	for _, grain := range []int{8, 512} {
		b.Run(fmt.Sprintf("grain-%d", grain), func(b *testing.B) {
			c := bootB(b, twoHostADF, cluster.Options{BaseLatency: 100 * time.Microsecond})
			boss := memoB(b, c, "a")
			workerM := memoB(b, c, "b")
			jobs := boss.NamedKey("jobs")
			done := boss.NamedKey("done")
			go func() {
				for {
					v, err := workerM.Get(jobs)
					if err != nil {
						return
					}
					n, _ := transferable.AsInt(v)
					if n < 0 {
						return
					}
					acc := int64(0)
					for u := int64(0); u < n; u++ {
						for j := 0; j < 1000; j++ {
							acc += int64(j)
						}
					}
					if workerM.Put(done, transferable.Int64(acc)) != nil {
						return
					}
				}
			}()
			b.SetBytes(int64(grain)) // report throughput in work units
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := boss.Put(jobs, transferable.Int64(int64(grain))); err != nil {
					b.Fatal(err)
				}
				if _, err := boss.Get(done); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			boss.Put(jobs, transferable.Int64(-1))
		})
	}
}

// BenchmarkE7VsLinda compares folder lookup with Linda matching at a
// resident population of 10k items (§7).
func BenchmarkE7VsLinda(b *testing.B) {
	const resident = 10000
	b.Run("dmemo-folder-lookup", func(b *testing.B) {
		store := folder.NewStore()
		for i := 0; i < resident; i++ {
			store.Put(symbol.K(symbol.Symbol(1000+i)), []byte("noise"))
		}
		hot := symbol.K(7)
		payload := []byte("p")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.Put(hot, payload)
			if _, ok, _ := store.GetSkip(hot); !ok {
				b.Fatal("lost memo")
			}
		}
	})
	b.Run("linda-indexed", func(b *testing.B) {
		sp := linda.NewSpace()
		for i := 0; i < resident; i++ {
			sp.Out(linda.Tuple{transferable.String(fmt.Sprintf("n%d", i)), transferable.Int64(int64(i))})
		}
		hotT := linda.Tuple{transferable.String("hot"), transferable.Int64(1)}
		hotP := linda.Template{linda.A(transferable.String("hot")), linda.Any()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp.Out(hotT)
			if _, ok := sp.Inp(hotP); !ok {
				b.Fatal("lost tuple")
			}
		}
	})
	b.Run("linda-associative", func(b *testing.B) {
		sp := linda.NewSpace()
		for i := 0; i < resident; i++ {
			sp.Out(linda.Tuple{transferable.NewList(transferable.Int64(int64(i))), transferable.Int64(int64(i))})
		}
		p := linda.Template{linda.F(transferable.TagList), linda.A(transferable.Int64(resident - 1))}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := sp.Rdp(p); !ok {
				b.Fatal("match failed")
			}
		}
	})
}

// BenchmarkE8Structures measures the §6.2/§6.3 coordination structures.
func BenchmarkE8Structures(b *testing.B) {
	c := bootB(b, twoHostADF, cluster.Options{})
	m := memoB(b, c, "a")

	b.Run("queue", func(b *testing.B) {
		q := collect.NewQueue(m)
		v := transferable.Int64(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(v)
			if _, err := q.Dequeue(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lock", func(b *testing.B) {
		l, err := collect.NewLock(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := l.Lock(); err != nil {
				b.Fatal(err)
			}
			if err := l.Unlock(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semaphore", func(b *testing.B) {
		s, err := collect.NewSemaphore(m, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.P()
			s.V()
		}
	})
	b.Run("future", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := collect.NewFuture(m)
			if err != nil {
				b.Fatal(err)
			}
			f.Resolve(transferable.Int64(1))
			if _, err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jobjar-alt", func(b *testing.B) {
		j := collect.NewJobJar(m, "bjar").WithLocal(1)
		v := transferable.Int64(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.Add(v)
			if _, err := j.GetWork(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("named-object-update", func(b *testing.B) {
		o, err := collect.NewNamedObject(m, transferable.Int64(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Update(func(v transferable.Value) (transferable.Value, error) {
				n, _ := transferable.AsInt(v)
				return transferable.Int64(n + 1), nil
			})
		}
	})
}

// BenchmarkE9Transferable measures spanning-tree encode/decode of a 1000-
// node structure with sharing and cycles (§3.1.3).
func BenchmarkE9Transferable(b *testing.B) {
	nodes := make([]*transferable.List, 1000)
	for i := range nodes {
		nodes[i] = transferable.NewList(transferable.Int64(int64(i)))
	}
	for i := 1; i < len(nodes); i++ {
		nodes[(i*7)%i].Append(nodes[i])
		if i%16 == 0 {
			nodes[i].Append(nodes[i/2]) // back edges
		}
	}
	root := nodes[0]
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transferable.Marshal(root); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, err := transferable.Marshal(root)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transferable.Unmarshal(data, transferable.Domain64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Languages measures the language layers (§2).
func BenchmarkE10Languages(b *testing.B) {
	b.Run("mdc-roundtrip", func(b *testing.B) {
		c := bootB(b, twoHostADF, cluster.Options{})
		sysA := mdc.NewSystem(memoB(b, c, "a"))
		sysB := mdc.NewSystem(memoB(b, c, "b"))
		b.Cleanup(sysA.Shutdown)
		b.Cleanup(sysB.Shutdown)
		reply := make(chan struct{}, 1)
		collector := sysA.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
			reply <- struct{}{}
			return nil
		})
		echo := sysB.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
			return ctx.Send(collector, msg)
		})
		v := transferable.Int64(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sysA.Send(echo, v); err != nil {
				b.Fatal(err)
			}
			<-reply
		}
	})
	b.Run("lucid-element", func(b *testing.B) {
		prog, err := lucid.Parse("n = 0 fby n + 1; sq = n * n;")
		if err != nil {
			b.Fatal(err)
		}
		ev := lucid.NewEvaluator(prog, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.At("sq", i%10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Batching measures remote put+get round trips with concurrent
// callers sharing one client connection, rpc batching on vs off (§3.1.1
// amortization; the rpc-layer microbenchmark is
// BenchmarkRPCBatchedRoundTrip in internal/rpc).
func BenchmarkE11Batching(b *testing.B) {
	const adfText = `APP bench11
HOSTS
cli 1 sun4 1
srv 1 sun4 1
FOLDERS
0 srv
PROCESSES
0 boss cli
PPC
cli <-> srv 1
`
	for _, callers := range []int{1, 64} {
		for _, mode := range []struct {
			name string
			pol  rpc.Policy
		}{{"unbatched", rpc.Policy{MaxCount: 1}}, {"batched", rpc.Policy{}}} {
			b.Run(fmt.Sprintf("callers-%d/%s", callers, mode.name), func(b *testing.B) {
				c := bootB(b, adfText, cluster.Options{
					BaseLatency: 100 * time.Microsecond,
					Batch:       mode.pol,
				})
				m := memoB(b, c, "cli")
				payload := transferable.Int64(1)
				k := m.NamedKey("warm")
				m.Put(k, payload)
				m.Get(k) // warm the forwarding path
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < callers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						kw := m.NamedKey("probe", uint32(w))
						for next.Add(1) <= int64(b.N) {
							if err := m.Put(kw, payload); err != nil {
								b.Error(err)
								return
							}
							if _, err := m.Get(kw); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}
