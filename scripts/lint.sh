#!/usr/bin/env bash
# The one-command lint gate: gofmt, go vet, memolint, and — when installed —
# goimports, staticcheck, and govulncheck. CI installs the pinned versions
# of the optional tools (see .github/workflows/ci.yml); on a bare Go
# toolchain they are skipped with a notice so the gate still runs locally.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
fail=0

step() {
	echo "==> $1"
}

step "gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	fail=1
fi

if command -v goimports >/dev/null 2>&1; then
	step "goimports"
	out="$(goimports -l .)"
	if [ -n "$out" ]; then
		echo "goimports needed on:" >&2
		echo "$out" >&2
		fail=1
	fi
else
	step "goimports (not installed; skipped)"
fi

step "go vet"
go vet ./... || fail=1

step "memolint"
go run ./cmd/memolint -root "$root" || fail=1

if command -v staticcheck >/dev/null 2>&1; then
	step "staticcheck ($(staticcheck -version 2>/dev/null || true))"
	staticcheck ./... || fail=1
else
	step "staticcheck (not installed; skipped)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	step "govulncheck"
	govulncheck ./... || fail=1
else
	step "govulncheck (not installed; skipped)"
fi

if [ "$fail" -ne 0 ]; then
	echo "lint: FAILED" >&2
	exit 1
fi
echo "lint: ok"
