#!/usr/bin/env bash
# E2E chaos smoke: run the black-box harness in test/e2e against the real
# daemon binaries. The harness boots a 3-node TCP cluster (durability on,
# peer links through severable proxies), drives a seeded mixed-action
# trace through the client library AND the memo CLI — including one
# SIGKILL-and-restart and one link sever/heal per trace — then drains the
# cluster and audits the exactly-once/convergence oracle. The regression
# seed corpus (test/e2e/regression_seeds.json) replays first, so every
# previously-found bug stays found.
#
# Knobs (env): E2E_SEED picks the fresh smoke seed, E2E_FULL=1 adds the
# long multi-seed sweep, E2E_NO_MINIMIZE=1 skips failing-seed shrinking.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

run='TestSmoke|TestRegressionSeeds|TestFolderServerdCrashRecovery'
if [ "${E2E_FULL:-}" = "1" ]; then
	run="$run|TestChaosSweep"
fi

echo "==> e2e chaos smoke (-race, daemons race-built too)"
E2E=1 go test -race -run "$run" ./test/e2e/ -count=1 -timeout 600s -v

echo "e2e smoke: ok"
