#!/usr/bin/env bash
# Compare a fresh quick-mode bench run against the committed baseline tables
# and flag regressions (>15% time-per-op, or ANY allocs/op increase).
#
#   ./scripts/benchdiff.sh                # fresh run vs bench-tables/
#   ./scripts/benchdiff.sh old/ new/      # diff two existing table dirs
#
# Exit code is benchdiff's: 1 when a regression is flagged. CI runs this
# advisorily (quick-mode numbers on shared runners are noisy); locally it is
# the fast answer to "did my change slow anything down?".
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

if [ $# -eq 2 ]; then
	exec go run ./cmd/benchdiff "$1" "$2"
fi

baseline="bench-tables"
[ -d "$baseline" ] || {
	echo "benchdiff.sh: no committed baseline at $baseline/" >&2
	echo "seed one with: go run ./cmd/dmemo-bench -quick -json $baseline" >&2
	exit 2
}

fresh="$(mktemp -d)"
trap 'rm -rf "$fresh"' EXIT
echo "==> fresh quick-mode bench run"
go run ./cmd/dmemo-bench -quick -json "$fresh" >/dev/null
echo "==> diff vs committed baseline ($baseline/)"
go run ./cmd/benchdiff "$baseline" "$fresh"
