#!/usr/bin/env bash
# Metrics smoke test: build the daemons, start one of each with the debug
# server armed on a loopback port, scrape /metrics, and assert every
# instrumented layer shows up in the exposition. Then shut both down with
# SIGTERM and require a clean exit — the graceful-shutdown path (debug
# server drained, WAL flushed) is part of what this smokes.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

tmp="$(mktemp -d)"
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> memolint (covers internal/obs)"
go run ./cmd/memolint -root "$root"

echo "==> build daemons"
go build -o "$tmp/memoserverd" ./cmd/memoserverd
go build -o "$tmp/folderserverd" ./cmd/folderserverd

echo "==> build memo CLI"
go build -o "$tmp/memo" ./cmd/memo

echo "==> start daemons"
"$tmp/memoserverd" -host smoke -listen 127.0.0.1:7640 \
	-debug-addr 127.0.0.1:7641 -slow-request-threshold 1ms \
	-trace-sample 1 -ready-file "$tmp/smoke.ready" \
	-data-dir "$tmp/memo-data" >"$tmp/memoserverd.log" 2>&1 &
memo_pid=$!
pids+=("$memo_pid")
"$tmp/folderserverd" -id 0 -host smoke -listen 127.0.0.1:7642 \
	-debug-addr 127.0.0.1:7643 -slow-request-threshold 1ms \
	-data-dir "$tmp/folder-data" >"$tmp/folderserverd.log" 2>&1 &
folder_pid=$!
pids+=("$folder_pid")

scrape() { # scrape <addr> <outfile>
	for _ in $(seq 1 50); do
		if curl -sf "http://$1/metrics" -o "$2" 2>/dev/null; then
			return 0
		fi
		sleep 0.1
	done
	return 1
}

echo "==> scrape memoserverd /metrics"
scrape 127.0.0.1:7641 "$tmp/memo-metrics" || {
	echo "memoserverd /metrics never came up" >&2
	cat "$tmp/memoserverd.log" >&2
	exit 1
}
# The memo daemon registers the process-wide registry plus its node
# collector: the static series of every instrumented layer must be present.
for series in rpc_calls_total rpc_call_ns node_local_ops_total \
	pool_gets_total transport_dials_total durable_appends_total; do
	grep -q "^# TYPE $series " "$tmp/memo-metrics" || {
		echo "memoserverd /metrics missing $series" >&2
		cat "$tmp/memo-metrics" >&2
		exit 1
	}
done

echo "==> scrape folderserverd /metrics"
scrape 127.0.0.1:7643 "$tmp/folder-metrics" || {
	echo "folderserverd /metrics never came up" >&2
	cat "$tmp/folderserverd.log" >&2
	exit 1
}
# folder_* series come from the standalone folder server's collector; only
# this daemon guarantees them without traffic.
for series in folder_puts_total folder_memos rpc_frames_total; do
	grep -q "^# TYPE $series " "$tmp/folder-metrics" || {
		echo "folderserverd /metrics missing $series" >&2
		cat "$tmp/folder-metrics" >&2
		exit 1
	}
done

echo "==> statusz sanity"
curl -sf "http://127.0.0.1:7641/statusz" | grep -q '"metrics"' || {
	echo "memoserverd /statusz not serving JSON" >&2
	exit 1
}

echo "==> traced request lands in /tracez"
cat >"$tmp/smoke.adf" <<'EOF'
APP smoke
HOSTS
smoke 1 sun4 1
FOLDERS
0 smoke
PROCESSES
0 boss smoke
EOF
"$tmp/memo" register -adf "$tmp/smoke.adf" -addr 127.0.0.1:7640 -host smoke -json >/dev/null || {
	echo "memo register failed" >&2
	cat "$tmp/memoserverd.log" >&2
	exit 1
}
put_out="$("$tmp/memo" put -adf "$tmp/smoke.adf" -addr 127.0.0.1:7640 -host smoke \
	-key 7 -value smoked -trace -json)" || {
	echo "memo put -trace failed" >&2
	exit 1
}
trace_id="$(printf '%s' "$put_out" | sed -n 's/.*"trace":"\([^"]*\)".*/\1/p')"
[ -n "$trace_id" ] || {
	echo "memo put -trace reported no trace id: $put_out" >&2
	exit 1
}
curl -sf "http://127.0.0.1:7641/tracez?trace=$trace_id" | grep -q '"layer": *"memo"' || {
	echo "/tracez does not serve the sampled trace $trace_id" >&2
	curl -s "http://127.0.0.1:7641/tracez" >&2 || true
	exit 1
}

echo "==> memo top -once renders the cluster table"
top_out="$("$tmp/memo" top -once -ready-files "$tmp/smoke.ready")" || {
	echo "memo top -once failed" >&2
	exit 1
}
printf '%s\n' "$top_out" | grep -q '^NODE' || {
	echo "memo top output missing table header: $top_out" >&2
	exit 1
}
printf '%s\n' "$top_out" | grep -q '^smoke[[:space:]]*yes' || {
	echo "memo top did not render node 'smoke' as up: $top_out" >&2
	exit 1
}

echo "==> memo trace merges the span timeline"
trace_out="$("$tmp/memo" trace -ready-files "$tmp/smoke.ready" "$trace_id")" || {
	echo "memo trace $trace_id failed" >&2
	exit 1
}
for layer in memo folder durable; do
	printf '%s\n' "$trace_out" | grep -q "$layer" || {
		echo "memo trace timeline missing layer $layer:" >&2
		printf '%s\n' "$trace_out" >&2
		exit 1
	}
done

echo "==> graceful shutdown (SIGTERM)"
kill -TERM "$memo_pid" "$folder_pid"
for pid in "$memo_pid" "$folder_pid"; do
	if ! wait "$pid"; then
		echo "daemon $pid exited non-zero" >&2
		cat "$tmp"/*.log >&2
		exit 1
	fi
done
pids=()
grep -q "bye" "$tmp/memoserverd.log" || {
	echo "memoserverd did not log a clean shutdown" >&2
	cat "$tmp/memoserverd.log" >&2
	exit 1
}

echo "metrics smoke: ok"
