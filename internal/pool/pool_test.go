package pool

import (
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 4096, 4097, maxSize, maxSize + 1} {
		b := Get(n)
		if len(b) != 0 {
			t.Fatalf("Get(%d): len %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d): cap %d < %d", n, cap(b), n)
		}
		Put(b)
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Get(100)
	b = append(b, make([]byte, 100)...)
	Put(b)
	b2 := Get(100)
	if cap(b2) < 100 || len(b2) != 0 {
		t.Fatalf("recycled buffer: len %d cap %d", len(b2), cap(b2))
	}
}

func TestPutSubsliceRefilesByCap(t *testing.T) {
	// Drain the class a 128-cap subslice would land in so the next Get is
	// deterministic.
	for {
		select {
		case <-classes[1]:
			continue
		default:
		}
		break
	}
	b := Get(256)
	b = b[:256]
	Put(b[100:]) // cap 156 → files under the 128 class
	got := <-classes[1]
	if cap(got) < 128 {
		t.Fatalf("subslice filed under wrong class: cap %d", cap(got))
	}
}

func TestPutDropsOversizeBuffers(t *testing.T) {
	// A buffer beyond the largest class was a plain allocation from Get;
	// parking it would pin multi-MiB arrays in the top class forever.
	Put(make([]byte, 0, maxSize+1))
	top := classes[len(classes)-1]
	for {
		select {
		case b := <-top:
			if cap(b) > maxSize {
				t.Fatalf("oversize buffer (cap %d) parked in top class", cap(b))
			}
			continue
		default:
		}
		break
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{maxSize, maxShift - minShift}, {maxSize + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Fatalf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPutDoesNotAllocateWhenWarm(t *testing.T) {
	// Warm the class.
	Put(make([]byte, 0, 4096))
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs > 0 {
		t.Fatalf("warm Get/Put allocates %.1f times per op", allocs)
	}
}
