// Package pool provides size-classed byte buffers for the request hot path.
//
// The steady-state request path used to allocate at least five times per hop
// (encode, mux framing, sim envelope, transport copy, decode). Every one of
// those buffers has the same life cycle — filled, handed to exactly one
// consumer, dead — so they recycle through a small set of size-classed free
// lists instead of the garbage collector.
//
// Ownership rules (the whole contract):
//
//   - Get(n) returns a zero-length buffer with capacity ≥ n that the caller
//     owns exclusively. Append to it freely; it never moves to another class.
//   - Put(b) relinquishes ownership. The caller must not touch b (or any
//     alias of it) afterwards. Put is optional — a buffer that escapes to a
//     component unaware of the pool is simply collected by the GC.
//   - Never Put the same backing array twice. When a buffer is handed off
//     (e.g. a transport delivering a received frame), exactly one side —
//     the final consumer — Puts it.
//   - Subslices are fine: Put files a buffer under the largest class that
//     still fits its capacity, so a buffer trimmed by a few header bytes
//     recycles at the class below at worst.
//
// Free lists are buffered channels rather than sync.Pools: channel sends and
// receives of a []byte do not allocate (a sync.Pool round trip boxes the
// slice header on every Put), each class stays memory-bounded without GC
// cooperation, and the single-lock cost of a channel is invisible next to
// the lock already serializing every transport send.
package pool

import (
	"strconv"

	"repro/internal/obs"
)

// Size classes: powers of two from minSize (64 B) through maxSize (1 MiB).
// Requests beyond maxSize fall through to plain allocation and are dropped
// on Put — frames that large are fragmented by the mux anyway.
const (
	minShift = 6
	maxShift = 20
	minSize  = 1 << minShift
	maxSize  = 1 << maxShift

	// classMem bounds each class's idle memory, so an idle process parks at
	// most classMem per class (a few MiB total) no matter what burst it saw.
	classMem = 1 << 22
)

var classes [maxShift - minShift + 1]chan []byte

// Per-class traffic counters (one atomic add each on Get/Put): a miss is a
// Get the free list could not serve, so miss/get is the pool's working-set
// fit and a persistently high ratio means the class quota is too small for
// the offered load. Oversize counts Gets beyond the largest class, which
// bypass pooling entirely.
var (
	gets     [maxShift - minShift + 1]obs.Counter
	puts     [maxShift - minShift + 1]obs.Counter
	misses   [maxShift - minShift + 1]obs.Counter
	oversize obs.Counter
)

func init() {
	for i := range classes {
		size := 1 << (minShift + i)
		slots := classMem / size
		if slots > 256 {
			slots = 256
		}
		if slots < 4 {
			slots = 4
		}
		classes[i] = make(chan []byte, slots)

		labels := map[string]string{"class": strconv.Itoa(size)}
		obs.Default.RegisterCounter("pool_gets_total",
			"buffer gets per size class", labels, &gets[i])
		obs.Default.RegisterCounter("pool_puts_total",
			"buffer puts per size class", labels, &puts[i])
		obs.Default.RegisterCounter("pool_misses_total",
			"gets served by fresh allocation per size class", labels, &misses[i])
	}
	obs.Default.RegisterCounter("pool_oversize_total",
		"gets beyond the largest class (unpooled)", nil, &oversize)
}

// classFor returns the index of the smallest class with size ≥ n, or -1 when
// n exceeds the largest class.
func classFor(n int) int {
	if n > maxSize {
		return -1
	}
	c := 0
	for size := minSize; size < n; size <<= 1 {
		c++
	}
	return c
}

// Get returns a zero-length buffer with capacity at least n, owned
// exclusively by the caller until Put.
//
//memolint:pool-get
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		oversize.Inc()
		return make([]byte, 0, n)
	}
	gets[c].Inc()
	select {
	case b := <-classes[c]:
		return b
	default:
		misses[c].Inc()
		return make([]byte, 0, 1<<(minShift+uint(c)))
	}
}

// Put relinquishes b to the pool. The buffer is filed under the largest
// class its capacity still covers; buffers smaller than the smallest class,
// larger than the largest (they were plain allocations from Get, and
// parking multi-MiB arrays in the top class would break its memory bound),
// or arriving when the class is full are dropped for the GC.
//
//memolint:pool-put
func Put(b []byte) {
	c := cap(b)
	if c < minSize || c > maxSize {
		return
	}
	idx := 0
	for size := minSize; size<<1 <= c && idx < len(classes)-1; size <<= 1 {
		idx++
	}
	puts[idx].Inc()
	select {
	case classes[idx] <- b[:0]:
	default:
	}
}
