package lucid_test

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/lucid"
)

const adfText = `APP lucidtest
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

func TestFolderCacheSharedAcrossHosts(t *testing.T) {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	prog, err := lucid.Parse("n = 0 fby n + 1; sq = n * n;")
	if err != nil {
		t.Fatal(err)
	}

	ma, err := c.NewMemo("a")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := c.NewMemo("b")
	if err != nil {
		t.Fatal(err)
	}

	// Evaluator on host a fills the distributed memo table.
	evA := lucid.NewEvaluator(prog, lucid.NewFolderCache(ma))
	if v, err := evA.At("sq", 12); err != nil || v != 144 {
		t.Fatalf("host a: sq(12) = %d, %v", v, err)
	}
	// Evaluator on host b reads elements host a computed (and computes the
	// rest), through the shared folder space.
	evB := lucid.NewEvaluator(prog, lucid.NewFolderCache(mb))
	if v, err := evB.At("sq", 12); err != nil || v != 144 {
		t.Fatalf("host b: sq(12) = %d, %v", v, err)
	}
	if v, err := evB.At("sq", 20); err != nil || v != 400 {
		t.Fatalf("host b: sq(20) = %d, %v", v, err)
	}
}

func TestFolderCacheConcurrentEvaluators(t *testing.T) {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	prog, err := lucid.Parse("fib = 0 fby g; g = 1 fby fib + g;")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	results := make([]int64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		host := "a"
		if w%2 == 1 {
			host = "b"
		}
		m, err := c.NewMemo(host)
		if err != nil {
			t.Fatal(err)
		}
		ev := lucid.NewEvaluator(prog, lucid.NewFolderCache(m))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = ev.At("fib", 25)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] != 75025 {
			t.Fatalf("worker %d: fib(25) = %d", w, results[w])
		}
	}
}
