package lucid

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Cache memoizes stream elements. Evaluation is deterministic, so a cache
// may be shared by any number of evaluators — including evaluators in
// different processes when the cache is folder-backed.
type Cache interface {
	// Load returns the memoized element (name, i) if present.
	Load(name string, i int) (int64, bool)
	// Store memoizes an element. Storing the same element twice (races
	// between evaluators) is harmless: values are deterministic.
	Store(name string, i int, v int64)
}

// LocalCache is an in-process cache.
type LocalCache struct {
	mu sync.Mutex
	m  map[localKey]int64
}

type localKey struct {
	name string
	i    int
}

// NewLocalCache returns an empty cache.
func NewLocalCache() *LocalCache {
	return &LocalCache{m: make(map[localKey]int64)}
}

// Load implements Cache.
func (c *LocalCache) Load(name string, i int) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[localKey{name, i}]
	return v, ok
}

// Store implements Cache.
func (c *LocalCache) Store(name string, i int, v int64) {
	c.mu.Lock()
	c.m[localKey{name, i}] = v
	c.mu.Unlock()
}

// Len reports the number of memoized elements.
func (c *LocalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// FolderCache memoizes stream elements in D-Memo folders, so evaluators in
// different processes (on different hosts) share one demand-driven memo
// table — the paper's "simulation of demand driven dataflow" over the memo
// space. Element (name, i) lives in the folder {S: sym("lucid:"+name),
// X: [i]}; elements are write-once in value (deterministic), so the benign
// race of two evaluators storing the same element is tolerated and the
// folder keeps a single representative memo.
type FolderCache struct {
	m *core.Memo

	mu   sync.Mutex
	syms map[string]symbol.Symbol
}

// NewFolderCache builds a folder-backed cache over a Memo handle.
func NewFolderCache(m *core.Memo) *FolderCache {
	return &FolderCache{m: m, syms: make(map[string]symbol.Symbol)}
}

func (c *FolderCache) key(name string, i int) symbol.Key {
	c.mu.Lock()
	s, ok := c.syms[name]
	if !ok {
		s = c.m.Symbol("lucid:" + name)
		c.syms[name] = s
	}
	c.mu.Unlock()
	return symbol.K(s, uint32(i))
}

// Load implements Cache with a non-destructive read: take the memo, put it
// back. A concurrent Load may miss while we hold the memo; it merely
// recomputes the same value.
func (c *FolderCache) Load(name string, i int) (int64, bool) {
	k := c.key(name, i)
	v, ok, err := c.m.GetSkip(k)
	if err != nil || !ok {
		return 0, false
	}
	n, isInt := transferable.AsInt(v)
	// Restore the memo for other readers.
	if perr := c.m.Put(k, v); perr != nil || !isInt {
		return 0, false
	}
	return n, true
}

// Store implements Cache, keeping at most one memo per element: if another
// evaluator stored the element first, ours is discarded.
func (c *FolderCache) Store(name string, i int, v int64) {
	k := c.key(name, i)
	//memolint:ignore errgate the cache is best-effort: a failed probe degrades to recomputing a deterministic value, never to a wrong one
	if _, present, _ := c.m.GetSkip(k); present {
		// Someone stored it already (we hold their memo); put theirs back.
		//memolint:ignore errgate best-effort cache refill of a deterministic value; a lost memo only costs recomputation
		_ = c.m.Put(k, transferable.Int64(v)) // same deterministic value
		return
	}
	//memolint:ignore errgate best-effort cache store of a deterministic value; a lost memo only costs recomputation
	_ = c.m.Put(k, transferable.Int64(v))
}

// EvalError reports an evaluation failure.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "lucid: " + e.Msg }

// Evaluator computes stream elements on demand.
type Evaluator struct {
	prog  *Program
	cache Cache
	// MaxScan bounds whenever/asa searches (and so non-terminating
	// filters). Default 1 << 20 examined elements per operator application.
	MaxScan int

	mu         sync.Mutex
	inProgress map[localKey]bool
}

// NewEvaluator builds an evaluator over a program and cache. A nil cache
// gets a fresh LocalCache.
func NewEvaluator(prog *Program, cache Cache) *Evaluator {
	if cache == nil {
		cache = NewLocalCache()
	}
	return &Evaluator{
		prog:       prog,
		cache:      cache,
		MaxScan:    1 << 20,
		inProgress: make(map[localKey]bool),
	}
}

// At returns element i of the named stream.
func (ev *Evaluator) At(name string, i int) (int64, error) {
	if i < 0 {
		return 0, &EvalError{fmt.Sprintf("negative index %d", i)}
	}
	e, ok := ev.prog.Equations[name]
	if !ok {
		return 0, &EvalError{fmt.Sprintf("undefined stream %q", name)}
	}
	if v, ok := ev.cache.Load(name, i); ok {
		return v, nil
	}
	k := localKey{name, i}
	ev.mu.Lock()
	if ev.inProgress[k] {
		ev.mu.Unlock()
		return 0, &EvalError{fmt.Sprintf("circular definition: %s at index %d depends on itself", name, i)}
	}
	ev.inProgress[k] = true
	ev.mu.Unlock()
	defer func() {
		ev.mu.Lock()
		delete(ev.inProgress, k)
		ev.mu.Unlock()
	}()

	v, err := ev.eval(e, i)
	if err != nil {
		return 0, err
	}
	ev.cache.Store(name, i, v)
	return v, nil
}

// Take returns the first n elements of the named stream.
func (ev *Evaluator) Take(name string, n int) ([]int64, error) {
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		v, err := ev.At(name, i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func truth(v int64) bool { return v != 0 }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ev *Evaluator) eval(e Expr, i int) (int64, error) {
	switch x := e.(type) {
	case Num:
		return x.V, nil
	case Var:
		return ev.At(x.Name, i)
	case Unary:
		v, err := ev.eval(x.E, i)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "not":
			return b2i(!truth(v)), nil
		}
		return 0, &EvalError{"unknown unary op " + x.Op}
	case Binary:
		l, err := ev.eval(x.L, i)
		if err != nil {
			return 0, err
		}
		// Short-circuit logic.
		switch x.Op {
		case "and":
			if !truth(l) {
				return 0, nil
			}
			r, err := ev.eval(x.R, i)
			if err != nil {
				return 0, err
			}
			return b2i(truth(r)), nil
		case "or":
			if truth(l) {
				return 1, nil
			}
			r, err := ev.eval(x.R, i)
			if err != nil {
				return 0, err
			}
			return b2i(truth(r)), nil
		}
		r, err := ev.eval(x.R, i)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, &EvalError{"division by zero"}
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, &EvalError{"modulo by zero"}
			}
			return l % r, nil
		case "==":
			return b2i(l == r), nil
		case "!=":
			return b2i(l != r), nil
		case "<":
			return b2i(l < r), nil
		case "<=":
			return b2i(l <= r), nil
		case ">":
			return b2i(l > r), nil
		case ">=":
			return b2i(l >= r), nil
		}
		return 0, &EvalError{"unknown operator " + x.Op}
	case If:
		c, err := ev.eval(x.Cond, i)
		if err != nil {
			return 0, err
		}
		if truth(c) {
			return ev.eval(x.Then, i)
		}
		return ev.eval(x.Else, i)
	case First:
		return ev.eval(x.E, 0)
	case Next:
		return ev.eval(x.E, i+1)
	case Fby:
		if i == 0 {
			return ev.eval(x.L, 0)
		}
		return ev.eval(x.R, i-1)
	case Whenever:
		// Find the index t of the i-th true element of P.
		seen := 0
		for t := 0; t < ev.MaxScan; t++ {
			p, err := ev.eval(x.P, t)
			if err != nil {
				return 0, err
			}
			if truth(p) {
				if seen == i {
					return ev.eval(x.X, t)
				}
				seen++
			}
		}
		return 0, &EvalError{fmt.Sprintf("whenever: no %d-th true element within %d steps", i, ev.MaxScan)}
	case Asa:
		for t := 0; t < ev.MaxScan; t++ {
			p, err := ev.eval(x.P, t)
			if err != nil {
				return 0, err
			}
			if truth(p) {
				return ev.eval(x.X, t)
			}
		}
		return 0, &EvalError{fmt.Sprintf("asa: no true element within %d steps", ev.MaxScan)}
	}
	return 0, &EvalError{fmt.Sprintf("unknown expression %T", e)}
}
