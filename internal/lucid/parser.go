package lucid

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a Lucid expression node.
type Expr interface {
	String() string
}

// Num is an integer constant stream (the constant at every index).
type Num struct{ V int64 }

// Var references another equation's stream.
type Var struct{ Name string }

// Binary applies an arithmetic/comparison/logic operator pointwise.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is pointwise negation ("-", "not").
type Unary struct {
	Op string
	E  Expr
}

// If is pointwise conditional (if c then a else b fi).
type If struct {
	Cond, Then, Else Expr
}

// First freezes a stream at its first element: (first X)_i = X_0.
type First struct{ E Expr }

// Next drops the first element: (next X)_i = X_{i+1}.
type Next struct{ E Expr }

// Fby is "followed by": (X fby Y)_0 = X_0, (X fby Y)_{i+1} = Y_i.
type Fby struct{ L, R Expr }

// Whenever filters: (X whenever P)_i = X_{t_i} where t_i is the index of
// the i-th true element of P.
type Whenever struct{ X, P Expr }

// Asa is "as soon as": every element is X_t for the first t with P_t true.
type Asa struct{ X, P Expr }

func (e Num) String() string { return fmt.Sprintf("%d", e.V) }
func (e Var) String() string { return e.Name }
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e Unary) String() string { return "(" + e.Op + " " + e.E.String() + ")" }
func (e If) String() string {
	return "if " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String() + " fi"
}
func (e First) String() string    { return "(first " + e.E.String() + ")" }
func (e Next) String() string     { return "(next " + e.E.String() + ")" }
func (e Fby) String() string      { return "(" + e.L.String() + " fby " + e.R.String() + ")" }
func (e Whenever) String() string { return "(" + e.X.String() + " whenever " + e.P.String() + ")" }
func (e Asa) String() string      { return "(" + e.X.String() + " asa " + e.P.String() + ")" }

// Program is a system of equations.
type Program struct {
	// Equations maps stream names to their defining expressions.
	Equations map[string]Expr
	// Order lists names in source order (for display).
	Order []string
}

// ParseError reports a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("lucid: line %d: %s", e.Line, e.Msg) }

// Parse reads a program: a sequence of "name = expr ;" equations.
// A trailing semicolon on the last equation is optional.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Equations: make(map[string]Expr)}
	for p.peek().kind != tokEOF {
		name := p.peek()
		if name.kind != tokIdent {
			return nil, p.errf("expected equation name, got %q", name.text)
		}
		p.next()
		if !p.eatOp("=") {
			return nil, p.errf("expected '=' after %q", name.text)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Equations[name.text]; dup {
			return nil, p.errf("duplicate equation for %q", name.text)
		}
		prog.Equations[name.text] = e
		prog.Order = append(prog.Order, name.text)
		if !p.eatOp(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' after equation for %q", name.text)
		}
	}
	if len(prog.Equations) == 0 {
		return nil, &ParseError{Line: 1, Msg: "empty program"}
	}
	// Every referenced variable must be defined.
	for name, e := range prog.Equations {
		for _, ref := range freeVars(e) {
			if _, ok := prog.Equations[ref]; !ok {
				return nil, &ParseError{Line: 1, Msg: fmt.Sprintf("equation %q references undefined stream %q", name, ref)}
			}
		}
	}
	return prog, nil
}

// freeVars lists variable references in an expression, sorted.
func freeVars(e Expr) []string {
	set := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Var:
			set[x.Name] = true
		case Binary:
			walk(x.L)
			walk(x.R)
		case Unary:
			walk(x.E)
		case If:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case First:
			walk(x.E)
		case Next:
			walk(x.E)
		case Fby:
			walk(x.L)
			walk(x.R)
		case Whenever:
			walk(x.X)
			walk(x.P)
		case Asa:
			walk(x.X)
			walk(x.P)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) eatOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) eatKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.peek().line, Msg: fmt.Sprintf(format, args...)}
}

// Precedence (loosest to tightest):
//
//	fby (right-assoc)
//	whenever, asa (left)
//	or
//	and
//	== != < <= > >=
//	+ -
//	* / %
//	unary - , not, first, next
//	primary: number, true/false, var, ( expr ), if-then-else-fi
func (p *parser) parseExpr() (Expr, error) { return p.parseFby() }

func (p *parser) parseFby() (Expr, error) {
	l, err := p.parseTemporal()
	if err != nil {
		return nil, err
	}
	if p.eatKeyword("fby") {
		r, err := p.parseFby() // right associative
		if err != nil {
			return nil, err
		}
		return Fby{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseTemporal() (Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatKeyword("whenever"):
			r, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			l = Whenever{X: l, P: r}
		case p.eatKeyword("asa"):
			r, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			l = Asa{X: l, P: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("and") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return l, nil
		}
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.eatOp("-"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", E: e}, nil
	case p.eatKeyword("not"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "not", E: e}, nil
	case p.eatKeyword("first"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return First{E: e}, nil
	case p.eatKeyword("next"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Next{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return Num{V: t.num}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.next()
		return Num{V: 1}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.next()
		return Num{V: 0}, nil
	case t.kind == tokKeyword && t.text == "if":
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eatKeyword("then") {
			return nil, p.errf("expected 'then'")
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eatKeyword("else") {
			return nil, p.errf("expected 'else'")
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eatKeyword("fi") {
			return nil, p.errf("expected 'fi'")
		}
		return If{Cond: cond, Then: then, Else: els}, nil
	case t.kind == tokIdent:
		p.next()
		return Var{Name: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eatOp(")") {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// String renders the program.
func (prog *Program) String() string {
	var b strings.Builder
	for _, name := range prog.Order {
		fmt.Fprintf(&b, "%s = %s;\n", name, prog.Equations[name])
	}
	return b.String()
}
