// Package lucid implements a small Lucid, the dataflow programming language
// the paper reports implementing on top of D-Memo (§2, reference [5]:
// "A Simulation of Demand Driven Dataflow: Translation of Lucid...").
//
// Programs are systems of stream equations:
//
//	n = 1 fby n + 1;
//	fib = 0 fby (fib + next fib ... );
//	out = n * n;
//
// Streams are infinite sequences of 64-bit integers (booleans are 0/1).
// Operators: arithmetic (+ - * / %), comparison (== != < <= > >=), logic
// (and, or, not), the Lucid temporal operators first / next / X fby Y /
// X whenever P / X asa P, and if-then-else-fi. Evaluation is demand driven:
// asking for element i of a stream demands exactly the elements it depends
// on, memoized in a pluggable cache — a Go map for local runs, or D-Memo
// folders so a cluster of workers shares one memo table (see eval.go).
package lucid

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokKeyword
	tokOp
)

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	num  int64
	pos  int // byte offset, for errors
	line int
}

var keywords = map[string]bool{
	"fby": true, "first": true, "next": true,
	"whenever": true, "asa": true,
	"if": true, "then": true, "else": true, "fi": true,
	"and": true, "or": true, "not": true,
	"true": true, "false": true,
}

// lexError reports a scan failure with position.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("lucid: line %d: %s", e.line, e.msg) }

// lex scans source into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			n, err := strconv.ParseInt(src[start:i], 10, 64)
			if err != nil {
				return nil, &lexError{line, "bad number " + src[start:i]}
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], num: n, pos: start, line: line})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			kind := tokIdent
			if keywords[strings.ToLower(word)] {
				kind = tokKeyword
				word = strings.ToLower(word)
			}
			toks = append(toks, token{kind: kind, text: word, pos: start, line: line})
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, token{kind: tokOp, text: two, pos: i, line: line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', ';', ',':
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i, line: line})
				i++
			default:
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
