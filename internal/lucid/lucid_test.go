package lucid

import (
	"strings"
	"testing"
)

func mustParse(t testing.TB, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func take(t testing.TB, src, name string, n int) []int64 {
	t.Helper()
	ev := NewEvaluator(mustParse(t, src), nil)
	out, err := ev.Take(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConstantStream(t *testing.T) {
	got := take(t, "x = 7;", "x", 4)
	if !eq(got, []int64{7, 7, 7, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestNaturalsViaFby(t *testing.T) {
	got := take(t, "n = 0 fby n + 1;", "n", 6)
	if !eq(got, []int64{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestFibonacci(t *testing.T) {
	src := `
fib = 0 fby g;
g = 1 fby fib + g;
`
	got := take(t, src, "fib", 10)
	if !eq(got, []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}) {
		t.Fatalf("got %v", got)
	}
}

func TestFirstAndNext(t *testing.T) {
	src := `
n = 0 fby n + 1;
f = first n;
s = next n;
`
	if got := take(t, src, "f", 3); !eq(got, []int64{0, 0, 0}) {
		t.Fatalf("first: %v", got)
	}
	if got := take(t, src, "s", 3); !eq(got, []int64{1, 2, 3}) {
		t.Fatalf("next: %v", got)
	}
}

func TestRunningSum(t *testing.T) {
	src := `
n = 1 fby n + 1;
sum = first n fby sum + next n;
`
	got := take(t, src, "sum", 5)
	if !eq(got, []int64{1, 3, 6, 10, 15}) {
		t.Fatalf("got %v", got)
	}
}

func TestWheneverFiltersEvens(t *testing.T) {
	src := `
n = 0 fby n + 1;
evens = n whenever n % 2 == 0;
`
	got := take(t, src, "evens", 5)
	if !eq(got, []int64{0, 2, 4, 6, 8}) {
		t.Fatalf("got %v", got)
	}
}

func TestAsaFindsFirst(t *testing.T) {
	// The classic Lucid idiom: result = expr asa condition.
	src := `
n = 0 fby n + 1;
sq = n * n;
firstBig = sq asa sq > 50;
`
	got := take(t, src, "firstBig", 3)
	if !eq(got, []int64{64, 64, 64}) {
		t.Fatalf("got %v", got)
	}
}

func TestIfThenElse(t *testing.T) {
	src := `
n = 0 fby n + 1;
x = if n % 2 == 0 then n else 0 - n fi;
`
	got := take(t, src, "x", 5)
	if !eq(got, []int64{0, -1, 2, -3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestLogicAndPrecedence(t *testing.T) {
	src := `
n = 0 fby n + 1;
b = n > 1 and n < 4 or n == 0;
arith = 2 + 3 * 4;
neg = -n;
`
	if got := take(t, src, "b", 6); !eq(got, []int64{1, 0, 1, 1, 0, 0}) {
		t.Fatalf("logic: %v", got)
	}
	if got := take(t, src, "arith", 1); got[0] != 14 {
		t.Fatalf("precedence: %v", got)
	}
	if got := take(t, src, "neg", 3); !eq(got, []int64{0, -1, -2}) {
		t.Fatalf("neg: %v", got)
	}
}

func TestNotAndBooleans(t *testing.T) {
	src := "x = not true fby not false;"
	got := take(t, src, "x", 3)
	if !eq(got, []int64{0, 1, 1}) {
		t.Fatalf("got %v", got)
	}
}

func TestHammingLikeMerge(t *testing.T) {
	// Powers of two via doubling.
	src := "p = 1 fby 2 * p;"
	got := take(t, src, "p", 8)
	if !eq(got, []int64{1, 2, 4, 8, 16, 32, 64, 128}) {
		t.Fatalf("got %v", got)
	}
}

func TestFactorialViaStreams(t *testing.T) {
	src := `
n = 1 fby n + 1;
fact = 1 fby fact * n;
`
	got := take(t, src, "fact", 6)
	if !eq(got, []int64{1, 1, 2, 6, 24, 120}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"x",
		"x =",
		"x = ;",
		"x = 1 y = 2",               // missing semicolon
		"x = (1;",                   // unbalanced
		"x = if 1 then 2;",          // missing else/fi
		"x = y;",                    // undefined stream
		"x = 1; x = 2;",             // duplicate
		"x = 1 +;",                  // dangling op
		"x = @;",                    // bad char
		"x = 99999999999999999999;", // overflow
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCircularDefinitionDetected(t *testing.T) {
	ev := NewEvaluator(mustParse(t, "x = x + 1;"), nil)
	if _, err := ev.At("x", 0); err == nil {
		t.Fatal("circular definition evaluated")
	}
	if !strings.Contains(errString(ev, "x"), "circular") {
		t.Fatal("error does not mention circularity")
	}
}

func errString(ev *Evaluator, name string) string {
	_, err := ev.At(name, 0)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestDivisionByZero(t *testing.T) {
	ev := NewEvaluator(mustParse(t, "x = 1 / 0;"), nil)
	if _, err := ev.At("x", 0); err == nil {
		t.Fatal("division by zero evaluated")
	}
	ev2 := NewEvaluator(mustParse(t, "x = 1 % 0;"), nil)
	if _, err := ev2.At("x", 0); err == nil {
		t.Fatal("modulo by zero evaluated")
	}
}

func TestWheneverNeverTrueBounded(t *testing.T) {
	ev := NewEvaluator(mustParse(t, "x = 1 whenever false;"), nil)
	ev.MaxScan = 1000
	if _, err := ev.At("x", 0); err == nil {
		t.Fatal("unsatisfiable whenever returned")
	}
}

func TestUndefinedStreamAndNegativeIndex(t *testing.T) {
	ev := NewEvaluator(mustParse(t, "x = 1;"), nil)
	if _, err := ev.At("ghost", 0); err == nil {
		t.Fatal("undefined stream evaluated")
	}
	if _, err := ev.At("x", -1); err == nil {
		t.Fatal("negative index evaluated")
	}
}

func TestMemoizationMakesFibLinear(t *testing.T) {
	// Without memoization fib is exponential; with the cache, element 40
	// evaluates instantly.
	src := `
fib = 0 fby g;
g = 1 fby fib + g;
`
	cache := NewLocalCache()
	ev := NewEvaluator(mustParse(t, src), cache)
	v, err := ev.At("fib", 40)
	if err != nil {
		t.Fatal(err)
	}
	if v != 102334155 {
		t.Fatalf("fib(40) = %d", v)
	}
	if cache.Len() == 0 {
		t.Fatal("cache unused")
	}
}

func TestSharedCacheAcrossEvaluators(t *testing.T) {
	src := "n = 0 fby n + 1;"
	prog := mustParse(t, src)
	cache := NewLocalCache()
	ev1 := NewEvaluator(prog, cache)
	if _, err := ev1.At("n", 100); err != nil {
		t.Fatal(err)
	}
	filled := cache.Len()
	ev2 := NewEvaluator(prog, cache)
	if v, err := ev2.At("n", 100); err != nil || v != 100 {
		t.Fatalf("second evaluator: %d %v", v, err)
	}
	if cache.Len() != filled {
		t.Fatalf("second evaluator recomputed: %d -> %d", filled, cache.Len())
	}
}

func TestProgramString(t *testing.T) {
	prog := mustParse(t, "n = 0 fby n + 1; out = first n;")
	s := prog.String()
	if !strings.Contains(s, "n = (0 fby (n + 1));") || !strings.Contains(s, "out = (first n);") {
		t.Fatalf("String() = %q", s)
	}
	// Rendered form re-parses to the same streams.
	p2 := mustParse(t, s)
	ev1 := NewEvaluator(prog, nil)
	ev2 := NewEvaluator(p2, nil)
	a, _ := ev1.Take("n", 5)
	b, _ := ev2.Take("n", 5)
	if !eq(a, b) {
		t.Fatal("re-parsed program differs")
	}
}

func TestComments(t *testing.T) {
	got := take(t, "# leading comment\nx = 1; # trailing\n", "x", 1)
	if got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkFib30Memoized(b *testing.B) {
	prog, err := Parse("fib = 0 fby g; g = 1 fby fib + g;")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(prog, nil)
		if _, err := ev.At("fib", 30); err != nil {
			b.Fatal(err)
		}
	}
}
