package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is the one debug HTTP endpoint a daemon exposes (-debug-addr):
// /metrics (Prometheus text format over every attached registry), /statusz
// (JSON snapshot plus recent slow requests and link health), /slowz (the
// slow-request ring alone), /tracez (the sampled-trace ring), and
// /debug/pprof/* (the net/http/pprof handlers, mounted on this server's own
// mux rather than a bare http.ListenAndServe goroutine — so profiling shares
// the lifecycle, the listener closes on Shutdown, and a serve error surfaces
// on Done instead of being logged and lost).
type DebugServer struct {
	regs  []*Registry
	slow  *SlowLog
	ring  *TraceRing
	links func() any

	ln   net.Listener
	srv  *http.Server
	done chan error
}

// DebugOption customizes a DebugServer at construction.
type DebugOption func(*DebugServer)

// WithTraceRing attaches the node's sampled-trace ring: /tracez serves it,
// and /statusz reports its totals.
func WithTraceRing(r *TraceRing) DebugOption {
	return func(d *DebugServer) { d.ring = r }
}

// WithLinkStatus attaches a per-scrape link-health snapshot (a daemon's
// Node.LinkStats or a client's Stats) rendered under "links" in /statusz.
func WithLinkStatus(fn func() any) DebugOption {
	return func(d *DebugServer) { d.links = fn }
}

// NewDebugServer builds a debug server for addr serving the given
// registries (scraped in order) and, when non-nil, the slow-request log.
// Call Start to bind and serve.
func NewDebugServer(addr string, regs []*Registry, slow *SlowLog, opts ...DebugOption) *DebugServer {
	d := &DebugServer{regs: regs, slow: slow, done: make(chan error, 1)}
	for _, o := range opts {
		o(d)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/statusz", d.handleStatusz)
	mux.HandleFunc("/slowz", d.handleSlowz)
	mux.HandleFunc("/tracez", d.handleTracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return d
}

// Start binds the address and serves in the background. A failed bind is
// returned here; a later serve failure is delivered on Done.
func (d *DebugServer) Start() error {
	ln, err := net.Listen("tcp", d.srv.Addr)
	if err != nil {
		return fmt.Errorf("obs: debug server listen %s: %w", d.srv.Addr, err)
	}
	d.ln = ln
	go func() {
		err := d.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		d.done <- err
	}()
	return nil
}

// Addr reports the bound address (useful with ":0" in tests). Empty before
// Start.
func (d *DebugServer) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Done delivers the serve loop's terminal error: nil after a clean
// Shutdown, or the failure that killed the listener.
func (d *DebugServer) Done() <-chan error { return d.done }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	return d.srv.Shutdown(ctx)
}

func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, r := range d.regs {
		if err := r.WriteProm(w); err != nil {
			return
		}
	}
}

// statuszBody is the /statusz JSON shape.
type statuszBody struct {
	Metrics  []seriesJSON `json:"metrics"`
	Links    any          `json:"links,omitempty"`
	Slow     []SlowEntry  `json:"slow_requests,omitempty"`
	SlowTot  int64        `json:"slow_requests_total"`
	TraceTot int64        `json:"traces_total"`
}

func (d *DebugServer) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	var body statuszBody
	for _, r := range d.regs {
		body.Metrics = append(body.Metrics, r.Snapshot()...)
	}
	if d.links != nil {
		body.Links = d.links()
	}
	body.Slow = d.slow.Recent()
	body.SlowTot = d.slow.Recorded()
	body.TraceTot = d.ring.Recorded()
	writeJSON(w, body)
}

func (d *DebugServer) handleSlowz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Threshold time.Duration `json:"threshold_ns"`
		Total     int64         `json:"total"`
		Recent    []SlowEntry   `json:"recent"`
	}{d.slow.Threshold(), d.slow.Recorded(), d.slow.Recent()})
}

// handleTracez serves the sampled-trace ring: every recent sample, or —
// with ?trace=<id> (decimal) — only that trace's samples. `memo trace`
// scrapes this from every node and merges the timelines.
func (d *DebugServer) handleTracez(w http.ResponseWriter, req *http.Request) {
	recent := d.ring.Recent()
	if s := req.URL.Query().Get("trace"); s != "" {
		id, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			http.Error(w, "tracez: bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		recent = d.ring.Get(id)
	}
	writeJSON(w, struct {
		Total  int64         `json:"total"`
		Recent []TraceSample `json:"recent"`
	}{d.ring.Recorded(), recent})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
