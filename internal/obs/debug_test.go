package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dbg_ops_total", "ops")
	c.Add(3)
	sl := NewSlowLog(time.Millisecond, 8)
	sl.Observe(77, 1, "put", 0, "memo@test", 5*time.Millisecond)

	d := NewDebugServer("127.0.0.1:0", []*Registry{r}, sl)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, "dbg_ops_total 3") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}

	statusz, ctype := get("/statusz")
	if ctype != "application/json" {
		t.Errorf("/statusz content type %q", ctype)
	}
	var body statuszBody
	if err := json.Unmarshal([]byte(statusz), &body); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if len(body.Metrics) == 0 || body.SlowTot != 1 || len(body.Slow) != 1 || body.Slow[0].Trace != 77 {
		t.Errorf("/statusz body wrong: %s", statusz)
	}

	slowz, _ := get("/slowz")
	if !strings.Contains(slowz, `"trace": 77`) {
		t.Errorf("/slowz missing entry:\n%s", slowz)
	}

	if pprofIdx, _ := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%s", pprofIdx)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-d.Done():
		if err != nil {
			t.Fatalf("serve loop ended with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after shutdown")
	}
}
