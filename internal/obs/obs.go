// Package obs is the observability core: allocation-free metric primitives
// (counters, gauges, fixed-bucket histograms), a process-wide registry with
// Prometheus text-format and JSON exposition, a bounded slow-request log
// fed by wire-propagated trace IDs, and the debug HTTP server every daemon
// mounts at -debug-addr.
//
// The primitives are designed for the steady-state request path, which PR 5
// made allocation-free and which memolint audits: a Counter increment, a
// Gauge move, and a Histogram observation are each a handful of atomic adds
// — no locks, no boxing, no allocation — so instrumentation can sit directly
// on the hot path without perturbing the AllocsPerRun gates it is meant to
// watch over.
//
// Metrics are usable standalone (a bare Counter is just an atomic with a
// name waiting to happen) or registered: package-level aggregates register
// into Default at init, per-instance metrics (a folder store's op counters,
// a redialer's link health) live inside their owner and surface either by
// explicit registration or through a scrape-time Collector that walks
// whatever instances exist at that moment.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use. Inc and Add are single atomic adds: safe on any hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotone;
// this is not checked — it is one atomic add).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load snapshots the count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways. The zero value
// is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load snapshots the value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: powers of four from 4⁰ through
// 4³¹, plus a final overflow slot, covering every positive int64. Powers of
// four give ~2 significant bits of resolution per decade — coarse, but the
// slow tail of a latency distribution is visible at a glance and the bucket
// index is a branch-free bit-length computation.
const histBuckets = 33

// Histogram is a fixed-bucket distribution (bucket i counts observations v
// with 4^(i-1) < v ≤ 4^i; non-positive observations land in bucket 0). The
// zero value is ready to use. Observe is two atomic adds — no locks, no
// allocation — so latency histograms can sit directly on the request path.
//
// Observations are unitless int64s; latency series in this repository
// observe nanoseconds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// bucketIndex returns ceil(log₄ v) clamped to the bucket range: the slot
// whose upper bound 4^i is the first to cover v.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// For v ≥ 2, (bits.Len64(v-1)+1)/2 is exactly ceil(log₄ v): v in
	// (4^(i-1), 4^i] has bit length of v-1 in {2i-1, 2i}.
	i := (bits.Len64(uint64(v-1)) + 1) / 2
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the per-bucket counts (non-cumulative).
func (h *Histogram) Snapshot() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound reports bucket i's inclusive upper bound, or -1 for the
// overflow bucket (rendered +Inf in the exposition).
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1 << (2 * uint(i))
}
