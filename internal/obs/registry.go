package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered series.
type Kind byte

// Series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// sample is one labeled time series under a metric name. Exactly one of
// read/hist is set.
type sample struct {
	labels string // pre-rendered `{k="v",...}`, or ""
	read   func() int64
	hist   *Histogram
}

// series is one metric name: its help text, kind, and statically
// registered samples.
type series struct {
	name, help string
	kind       Kind
	samples    []sample
}

// Collector emits dynamically scoped samples at scrape time — the hook for
// per-instance metrics whose instances come and go after registration (a
// memo server's folder servers appear at app registration; peer links
// appear on first forward). The emitter callback runs under the registry
// lock; keep it to reads and emits.
type Collector func(e *Emitter)

// Registry is a named collection of metric series. All methods are safe
// for concurrent use; registration is expected at setup time (it
// allocates), scraping at any time.
type Registry struct {
	mu         sync.Mutex
	series     []*series // registration order
	byName     map[string]*series
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*series)}
}

// Default is the process-wide registry: package-level aggregates (rpc,
// pool, transport, durable) register into it at init, and the daemons'
// debug servers expose it.
var Default = NewRegistry()

// RenderLabels renders a label map in the Prometheus sample form
// `{k="v",...}`, keys sorted; empty input renders "". Call it at
// registration time, not on a hot path.
func RenderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for name, creating it with the given kind and
// help on first use. Re-registrations under a different kind panic: that is
// a programming error, caught at setup time.
func (r *Registry) lookup(name, help string, kind Kind) *series {
	s, ok := r.byName[name]
	if !ok {
		s = &series{name: name, help: help, kind: kind}
		r.byName[name] = s
		r.series = append(r.series, s)
		return s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: series %q registered as both %v and %v", name, s.kind, kind))
	}
	return s
}

// Counter creates and registers an unlabeled counter series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, nil, c)
	return c
}

// Gauge creates and registers an unlabeled gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, nil, g)
	return g
}

// Histogram creates and registers an unlabeled histogram series.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, nil, h)
	return h
}

// RegisterCounter attaches an existing Counter as one labeled sample of the
// named series — the unification hook: an owner keeps its counter on the
// hot path and the registry reads the very same instance at scrape time.
func (r *Registry) RegisterCounter(name, help string, labels map[string]string, c *Counter) {
	r.register(name, help, KindCounter, sample{labels: RenderLabels(labels), read: c.Load})
}

// RegisterGauge attaches an existing Gauge as one labeled sample.
func (r *Registry) RegisterGauge(name, help string, labels map[string]string, g *Gauge) {
	r.register(name, help, KindGauge, sample{labels: RenderLabels(labels), read: g.Load})
}

// RegisterHistogram attaches an existing Histogram as one labeled sample.
func (r *Registry) RegisterHistogram(name, help string, labels map[string]string, h *Histogram) {
	r.register(name, help, KindHistogram, sample{labels: RenderLabels(labels), hist: h})
}

// RegisterCounterFunc registers a counter sample evaluated at scrape time —
// for totals derived from existing owner state rather than a dedicated
// atomic (e.g. a sum over per-link counters).
func (r *Registry) RegisterCounterFunc(name, help string, labels map[string]string, fn func() int64) {
	r.register(name, help, KindCounter, sample{labels: RenderLabels(labels), read: fn})
}

// RegisterGaugeFunc registers a gauge sample evaluated at scrape time —
// for values that are a walk of owner state (shard occupancy, waiter
// counts, in-flight maps) rather than a maintained atomic.
func (r *Registry) RegisterGaugeFunc(name, help string, labels map[string]string, fn func() int64) {
	r.register(name, help, KindGauge, sample{labels: RenderLabels(labels), read: fn})
}

func (r *Registry) register(name, help string, kind Kind, sm sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kind)
	s.samples = append(s.samples, sm)
}

// RegisterCollector adds a scrape-time collector (see Collector).
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Emitter receives one scrape's dynamically collected samples.
type Emitter struct {
	byName map[string]*series
	order  []*series
}

func (e *Emitter) emit(name, help string, kind Kind, labels map[string]string, v int64) {
	s, ok := e.byName[name]
	if !ok {
		s = &series{name: name, help: help, kind: kind}
		e.byName[name] = s
		e.order = append(e.order, s)
	}
	val := v
	s.samples = append(s.samples, sample{labels: RenderLabels(labels), read: func() int64 { return val }})
}

// Counter emits one counter sample.
func (e *Emitter) Counter(name, help string, labels map[string]string, v int64) {
	e.emit(name, help, KindCounter, labels, v)
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, labels map[string]string, v int64) {
	e.emit(name, help, KindGauge, labels, v)
}

// gather snapshots the registered series plus one collector pass, in
// registration order (collected series after static ones).
func (r *Registry) gather() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, 0, len(r.series)+8)
	out = append(out, r.series...)
	if len(r.collectors) > 0 {
		e := &Emitter{byName: make(map[string]*series)}
		for _, c := range r.collectors {
			c(e)
		}
		out = append(out, e.order...)
	}
	return out
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per series, one line per sample,
// histograms as cumulative le-buckets with _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, s := range r.gather() {
		if s.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
			return err
		}
		for _, sm := range s.samples {
			if sm.hist != nil {
				if err := writePromHist(w, s.name, sm.labels, sm.hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, sm.labels, sm.read()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one histogram sample: cumulative buckets, sum,
// count. The le label is appended to any pre-rendered labels.
func writePromHist(w io.Writer, name, labels string, h *Histogram) error {
	buckets := h.Snapshot()
	// Bucket lines splice le into any pre-rendered label block:
	// `{le="4"}` bare, `{folder="1",le="4"}` labeled.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := int64(0)
	for i, n := range buckets {
		cum += n
		le := "+Inf"
		if b := BucketBound(i); b >= 0 {
			le = fmt.Sprint(b)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}

// seriesJSON is the JSON snapshot shape of one series.
type seriesJSON struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Samples []sampleJSON `json:"samples"`
}

type sampleJSON struct {
	Labels string         `json:"labels,omitempty"`
	Value  *int64         `json:"value,omitempty"`
	Hist   *histogramJSON `json:"histogram,omitempty"`
}

type histogramJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot returns the registry's current state as a JSON-marshalable
// structure — the /statusz body and the METRICS.json dmemo-bench emits.
func (r *Registry) Snapshot() []seriesJSON {
	gathered := r.gather()
	out := make([]seriesJSON, 0, len(gathered))
	for _, s := range gathered {
		sj := seriesJSON{Name: s.name, Kind: s.kind.String(), Help: s.help}
		for _, sm := range s.samples {
			if sm.hist != nil {
				buckets := sm.hist.Snapshot()
				hj := &histogramJSON{Sum: sm.hist.Sum(), Buckets: make(map[string]int64)}
				for i, n := range buckets {
					hj.Count += n
					if n == 0 {
						continue
					}
					le := "+Inf"
					if b := BucketBound(i); b >= 0 {
						le = fmt.Sprint(b)
					}
					hj.Buckets[le] = n
				}
				sj.Samples = append(sj.Samples, sampleJSON{Labels: sm.labels, Hist: hj})
				continue
			}
			v := sm.read()
			sj.Samples = append(sj.Samples, sampleJSON{Labels: sm.labels, Value: &v})
		}
		out = append(out, sj)
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}
