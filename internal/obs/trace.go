package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Distributed span tracing (the cross-node half; wire/span.go defines the
// record format and the per-request SpanSet). A Tracer lives at the top of
// each server's dispatch: it decides at the entry point whether a request is
// sampled, hands the dispatch wrapper a SpanSet to collect into, and records
// every finished set — local spans plus whatever remote hops returned — into
// a bounded per-node TraceRing served at /tracez. `memo trace <id>` merges
// the rings of all nodes back into one timeline.

// Sampler makes the entry-point sampling decision. It is counter-based
// rather than random — one atomic add, deterministic at rate 1, and no rng
// on the hot path: a rate of 1/n samples exactly every nth entry request.
// A nil Sampler never samples.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler admitting roughly rate of entry requests
// (rate >= 1 admits all). rate <= 0 returns nil: never sample.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		return nil
	}
	every := uint64(1)
	if rate < 1 {
		every = uint64(1/rate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	return &Sampler{every: every}
}

// Sample reports whether this entry request should be sampled (nil-safe).
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// TraceSample is one request's spans as seen by one node: the local span
// set of each hop this node owned, plus the remote spans those hops'
// forwards returned. The entry node's sample holds the full tree.
type TraceSample struct {
	Trace uint64      `json:"trace"`
	Spans []wire.Span `json:"spans"`
}

// defaultTraceCap bounds the trace ring when NewTraceRing is given no
// capacity.
const defaultTraceCap = 256

// TraceRing is a bounded ring of recent trace samples, newest overwriting
// oldest — the per-node store behind /tracez. All methods are nil-safe.
type TraceRing struct {
	recorded Counter

	mu   sync.Mutex
	ring []TraceSample
	next int
	n    int
}

// NewTraceRing returns a ring holding the last capacity traces (<= 0 means
// the default).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &TraceRing{ring: make([]TraceSample, capacity)}
}

// Record stores one trace sample (nil-safe; trace 0 and empty span sets are
// dropped). The spans slice is stored as-is: callers hand over ownership
// (SpanSet.Finish already returns a private copy).
func (r *TraceRing) Record(trace uint64, spans []wire.Span) {
	if r == nil || trace == 0 || len(spans) == 0 {
		return
	}
	r.recorded.Inc()
	r.mu.Lock()
	r.ring[r.next] = TraceSample{Trace: trace, Spans: spans}
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// Recorded reports how many samples have been recorded since creation.
func (r *TraceRing) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.recorded.Load()
}

// Recent returns the recorded samples, newest first (at most the ring
// capacity). Nil-safe.
func (r *TraceRing) Recent() []TraceSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSample, 0, r.n)
	for i := 1; i <= r.n; i++ {
		idx := r.next - i
		if idx < 0 {
			idx += len(r.ring)
		}
		out = append(out, r.ring[idx])
	}
	return out
}

// Get returns every recorded sample for one trace ID, newest first — one
// trace can appear several times on a node that served several of its hops.
// Nil-safe.
func (r *TraceRing) Get(trace uint64) []TraceSample {
	if r == nil || trace == 0 {
		return nil
	}
	var out []TraceSample
	for _, ts := range r.Recent() {
		if ts.Trace == trace {
			out = append(out, ts)
		}
	}
	return out
}

// Tracer is one server's span-tracing front end: the sampling decision, the
// span-set ownership protocol, and the trace ring. A nil Tracer disables
// tracing entirely (every method is nil-safe); a Tracer with a nil sampler
// still collects and records spans for requests other nodes sampled.
type Tracer struct {
	node    string
	sampler *Sampler
	ring    *TraceRing
}

// NewTracer builds a tracer for a server named node ("memo@a",
// "folder-0@b"), sampling entry requests at rate (0 = relay-only) into a
// ring of ringCap traces (<= 0 means the default).
func NewTracer(node string, rate float64, ringCap int) *Tracer {
	return &Tracer{node: node, sampler: NewSampler(rate), ring: NewTraceRing(ringCap)}
}

// Ring exposes the trace ring (nil on a nil tracer) for /tracez.
func (t *Tracer) Ring() *TraceRing {
	if t == nil {
		return nil
	}
	return t.ring
}

// Begin is called by a dispatch wrapper at the top of a node. If the
// request deserves spans here — it arrived sampled, or it is an entry
// request (hop 0) the sampler admits — and no enclosing wrapper owns a set
// already, Begin attaches a fresh SpanSet to q and returns it; the caller
// owns the set and must Finish it. Otherwise it returns nil after a couple
// of branches: the tracing-off hot path allocates nothing and takes no
// timestamps.
func (t *Tracer) Begin(q *wire.Request) *wire.SpanSet {
	if t == nil || q.Spans != nil {
		return nil
	}
	if !q.Sampled {
		if q.Hops != 0 || !t.sampler.Sample() {
			return nil
		}
		q.Sampled = true
		if q.TraceID == 0 {
			q.TraceID = NewTraceID()
		}
	}
	set := wire.NewSpanSet()
	q.Spans = set
	return set
}

// Finish closes out a set returned by Begin: any remote spans still riding
// resp are merged in, every span recorded without a node name is stamped
// with this tracer's, the completed set is recorded into the ring, and a
// shallow clone of resp carrying the spans is returned for the rpc layer to
// ship back toward the entry node (resp itself may be the shared immutable
// OK response, so it is never mutated). q is never written either: an
// abandoned handler may still be reading q.Spans concurrently — it holds its
// own reference on the set, and whatever it appends after the copy below is
// dropped by the last Release, never leaked. The request object itself is
// fully reset before any reuse (recycleTask / DecodeRequestInto).
func (t *Tracer) Finish(q *wire.Request, set *wire.SpanSet, resp *wire.Response) *wire.Response {
	if len(resp.Spans) > 0 {
		set.AddMany(resp.Spans)
	}
	spans := set.Finish(t.node)
	t.ring.Record(q.TraceID, spans)
	set.Release()
	out := *resp
	out.Spans = spans
	return &out
}

// RecordSlow records a single-span sample for a traced request that turned
// out slow without being sampled — the "always-on for slow" half of the
// sampling policy: /tracez always has the requests /slowz complains about,
// even at -trace-sample 0. Nil-safe.
func (t *Tracer) RecordSlow(q *wire.Request, layer, op string, start time.Time, dur time.Duration) {
	if t == nil || q.TraceID == 0 {
		return
	}
	t.ring.Record(q.TraceID, []wire.Span{{
		Node:   t.node,
		Layer:  layer,
		Op:     op,
		Folder: q.FolderID,
		Hop:    q.TraceHop,
		Start:  start.UnixNano(),
		Dur:    int64(dur),
	}})
}
