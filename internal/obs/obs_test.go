package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Add(3)
	g.Add(-1)
	if got := g.Load(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3},
		{64, 3}, {65, 4}, {1 << 62, 31}, {1<<62 + 1, 32}, {1<<63 - 1, 32},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	h.Observe(3)
	h.Observe(100)
	h.Observe(100)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Sum(); got != 203 {
		t.Fatalf("sum = %d, want 203", got)
	}
	snap := h.Snapshot()
	if snap[1] != 1 || snap[4] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

// TestRecordAllocFree is the gate the tentpole promises: counter
// increments, gauge moves, histogram observations, and disabled/slow-miss
// slow-log observations are all 0 allocs/op, so instrumentation cannot
// perturb the PR 5 hot-path allocation budgets.
func TestRecordAllocFree(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	var h Histogram
	v := int64(1)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 97 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	var nilLog *SlowLog
	if n := testing.AllocsPerRun(1000, func() { nilLog.Observe(1, 0, "put", 0, "x", time.Second) }); n != 0 {
		t.Errorf("nil SlowLog.Observe allocates %v/op, want 0", n)
	}
	sl := NewSlowLog(time.Hour, 8)
	if n := testing.AllocsPerRun(1000, func() { sl.Observe(1, 0, "put", 0, "x", time.Millisecond) }); n != 0 {
		t.Errorf("below-threshold SlowLog.Observe allocates %v/op, want 0", n)
	}
}

func TestRegistryProm(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_ops_total", "ops so far")
	c.Add(7)
	g := &Gauge{}
	g.Set(3)
	r.RegisterGauge("demo_depth", "queue depth", map[string]string{"q": "a"}, g)
	h := r.Histogram("demo_latency_ns", "latency")
	h.Observe(2)
	h.Observe(1000)
	r.RegisterCollector(func(e *Emitter) {
		e.Gauge("demo_dynamic", "per-instance", map[string]string{"id": "1"}, 42)
	})

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE demo_ops_total counter",
		"demo_ops_total 7",
		`demo_depth{q="a"} 3`,
		"# TYPE demo_latency_ns histogram",
		`demo_latency_ns_bucket{le="4"} 1`,
		`demo_latency_ns_bucket{le="1024"} 2`,
		`demo_latency_ns_bucket{le="+Inf"} 2`,
		"demo_latency_ns_sum 1002",
		"demo_latency_ns_count 2",
		`demo_dynamic{id="1"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every sample line parses as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparsable sample line %q", line)
		}
	}
}

func TestRegistryHistogramLabels(t *testing.T) {
	r := NewRegistry()
	h := &Histogram{}
	h.Observe(1)
	r.RegisterHistogram("lab_hist", "", map[string]string{"k": "v"}, h)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lab_hist_bucket{k="v",le="1"} 1`) {
		t.Fatalf("labeled histogram bucket malformed:\n%s", b.String())
	}
}

func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("snap_total", "")
	c.Add(5)
	h := r.Histogram("snap_ns", "")
	h.Observe(10)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Name != "snap_total" || *snap[0].Samples[0].Value != 5 {
		t.Fatalf("counter snapshot wrong: %+v", snap[0])
	}
	hj := snap[1].Samples[0].Hist
	if hj == nil || hj.Count != 1 || hj.Sum != 10 {
		t.Fatalf("histogram snapshot wrong: %+v", snap[1])
	}
}

func TestSlowLog(t *testing.T) {
	sl := NewSlowLog(10*time.Millisecond, 4)
	if !sl.Enabled() {
		t.Fatal("enabled log reports disabled")
	}
	sl.Observe(1, 0, "get", 2, "memo@a", 5*time.Millisecond) // below threshold
	if got := sl.Recorded(); got != 0 {
		t.Fatalf("recorded %d below-threshold spans", got)
	}
	for i := uint64(1); i <= 6; i++ {
		sl.Observe(i, 1, "get", 2, "memo@a", 20*time.Millisecond)
	}
	rec := sl.Recent()
	if len(rec) != 4 {
		t.Fatalf("ring holds %d, want 4", len(rec))
	}
	if rec[0].Trace != 3 || rec[3].Trace != 6 {
		t.Fatalf("ring order wrong: %+v", rec)
	}
	if !sl.Contains(5) || sl.Contains(1) {
		t.Fatal("Contains disagrees with the ring")
	}
	if got := sl.Recorded(); got != 6 {
		t.Fatalf("recorded = %d, want 6", got)
	}

	var emitted []SlowEntry
	sl.SetEmit(func(e SlowEntry) { emitted = append(emitted, e) })
	sl.Observe(9, 2, "put", 0, "folder-0@b", time.Second)
	if len(emitted) != 1 || emitted[0].Trace != 9 || emitted[0].Hop != 2 {
		t.Fatalf("emit callback saw %+v", emitted)
	}

	sl.SetThreshold(0)
	if sl.Enabled() {
		t.Fatal("threshold 0 should disable")
	}
}

func TestNilSlowLog(t *testing.T) {
	var sl *SlowLog
	if sl.Enabled() {
		t.Fatal("nil log enabled")
	}
	sl.Observe(1, 0, "get", 0, "x", time.Hour)
	if sl.Recent() != nil || sl.Contains(1) || sl.Recorded() != 0 {
		t.Fatal("nil log should be inert")
	}
	sl.SetThreshold(time.Second)
	sl.SetEmit(func(SlowEntry) {})
}

func TestNewTraceID(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %d in 100 draws", id)
		}
		seen[id] = true
	}
}
