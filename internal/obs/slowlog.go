package obs

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// NewTraceID mints a non-zero request trace ID. 64 random bits: collisions
// across the log windows a trace is compared in are negligible, and zero is
// reserved for "untraced" so the wire extension can stay flag-gated.
func NewTraceID() uint64 {
	for {
		if t := rand.Uint64(); t != 0 {
			return t
		}
	}
}

// SlowEntry is one recorded slow request span: which request (trace ID +
// hop), what it was doing, where, and how long it took.
type SlowEntry struct {
	// Trace is the request's wire-propagated trace ID (0 = untraced).
	Trace uint64 `json:"trace"`
	// Hop is how many memo-server forwards the request had taken when this
	// span ran (0 = the client's own hop).
	Hop int `json:"hop"`
	// Op is the operation name.
	Op string `json:"op"`
	// Folder is the target folder-server id (-1 when not folder-addressed).
	Folder int `json:"folder"`
	// Where names the span's layer and host, e.g. "memo@glen-ellyn" or
	// "folder-3@bonnie".
	Where string `json:"where"`
	// Dur is the span duration.
	Dur time.Duration `json:"dur_ns"`
}

// defaultSlowCap bounds the slow-request ring when NewSlowLog is given no
// capacity.
const defaultSlowCap = 128

// SlowLog is a sampled structured log of slow request spans: spans at or
// over the threshold land in a bounded ring (readable via Recent and
// /slowz) and optionally flow to an emit callback (the daemons' structured
// log line). All methods are nil-safe — a component holding no slow log
// calls Enabled/Observe on nil and pays one pointer compare.
//
// The disabled path is the hot one: Enabled is a single atomic load, and
// callers skip even their time.Now() stamps when it reports false, so a
// daemon without -slow-request-threshold pays nothing per request.
type SlowLog struct {
	threshold atomic.Int64 // ns; <= 0 disables recording
	recorded  Counter

	mu   sync.Mutex
	ring []SlowEntry
	next int
	n    int

	emit atomic.Pointer[func(SlowEntry)]
}

// NewSlowLog returns a slow log recording spans at or over threshold
// (<= 0 starts disabled) into a ring of the given capacity (<= 0 means the
// default).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = defaultSlowCap
	}
	s := &SlowLog{ring: make([]SlowEntry, capacity)}
	s.threshold.Store(int64(threshold))
	return s
}

// Enabled reports whether Observe can record anything: callers use it to
// skip span timing entirely when the log is off.
func (s *SlowLog) Enabled() bool {
	return s != nil && s.threshold.Load() > 0
}

// Threshold reports the current threshold (0 on a nil log).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.threshold.Load())
}

// SetThreshold replaces the threshold (<= 0 disables). No-op on nil.
func (s *SlowLog) SetThreshold(d time.Duration) {
	if s == nil {
		return
	}
	s.threshold.Store(int64(d))
}

// SetEmit installs a callback invoked (outside the ring lock) for every
// recorded entry — the daemons' structured log line. No-op on nil.
func (s *SlowLog) SetEmit(fn func(SlowEntry)) {
	if s == nil {
		return
	}
	s.emit.Store(&fn)
}

// Recorded reports how many spans have been recorded since creation.
func (s *SlowLog) Recorded() int64 {
	if s == nil {
		return 0
	}
	return s.recorded.Load()
}

// Observe records one span if the log is enabled and dur meets the
// threshold; otherwise it returns after one atomic load — no allocation
// either way on the fast path.
func (s *SlowLog) Observe(trace uint64, hop int, op string, folder int, where string, dur time.Duration) {
	if s == nil {
		return
	}
	th := s.threshold.Load()
	if th <= 0 || int64(dur) < th {
		return
	}
	e := SlowEntry{Trace: trace, Hop: hop, Op: op, Folder: folder, Where: where, Dur: dur}
	s.recorded.Inc()
	s.mu.Lock()
	s.ring[s.next] = e
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
	if fn := s.emit.Load(); fn != nil {
		(*fn)(e)
	}
}

// Recent returns the recorded entries, oldest first (at most the ring
// capacity). Nil-safe.
func (s *SlowLog) Recent() []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlowEntry, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Contains reports whether any recorded entry carries the given trace ID —
// the assertion the trace-propagation tests and the acceptance criterion
// ("a client-recorded trace ID appears in a remote folder server's
// slow-request log") are built on.
func (s *SlowLog) Contains(trace uint64) bool {
	if s == nil || trace == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		if s.ring[i].Trace == trace {
			return true
		}
	}
	return false
}
