package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transport"
)

// recoveryADF: every folder on b, producers on a — all deposit traffic
// crosses the a—b link toward the host that gets killed.
const recoveryADF = `APP recovery
HOSTS
a 1 sun4 1
b 1 sun4 1
FOLDERS
0 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

// TestRecoveryCrashRestartExactlyOnce is the durability subsystem's
// acceptance test: SIGKILL (in-process hard-crash) the folder-owning memo
// server mid mixed Put/Get/AltTake workload, reopen it from the same data
// directory, and audit an exactly-once ledger.
//
// The guarantees audited:
//   - No memo is ever consumed twice — even though maybe-delivered puts are
//     transparently retried across the crash, their dedup tokens are
//     recovered from the WAL, so a retry can never double-deposit.
//   - Every acknowledged put survives the crash: it is consumed exactly
//     once or still present at drain time. The one irreducible exception is
//     a take that committed in the instant before the crash while its
//     response died with the process — at-most-once delivery to the dead
//     consumer. Consumers count those windows (maybe-consumed errors), and
//     the audit bounds the missing acked memos by that count.
//   - Every caller completes: fast failure or transparent retry, no hangs.
//
// Run under -race by the dedicated CI recovery step (-run Recovery).
func TestRecoveryCrashRestartExactlyOnce(t *testing.T) {
	dataDir := t.TempDir()
	c := boot(t, recoveryADF, Options{
		DataDir: dataDir,
		// A small snapshot threshold makes the log compact mid-workload, so
		// the crash lands on a live snapshot/truncate cycle, not a single
		// pristine generation.
		Durable: durable.Config{SnapshotEvery: 200},
		Resilience: rpc.Resilience{
			Heartbeat: 50 * time.Millisecond,
			Redial:    transport.Backoff{Min: 2 * time.Millisecond, Max: 30 * time.Millisecond},
			Retries:   6,
		},
	})

	newMemo := func(host string) *core.Memo {
		m, err := c.NewMemo(host)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ctl := newMemo("b")
	jobs := ctl.NamedKey("jobs")
	alt1 := ctl.NamedKey("alt1")
	alt2 := ctl.NamedKey("alt2")

	cc := &chaosCounts{
		acked:     make(map[int64]bool),
		uncertain: make(map[int64]bool),
		seen:      make(map[int64]int),
	}

	// Producers on a: unique ids, mostly to jobs, every fifth to an alt
	// folder. Failed puts are recorded uncertain and never blindly re-put
	// by the workload — transparent retries (token-deduplicated) belong to
	// the system under test.
	const producers = 3
	const perProducer = 120
	var attempted atomic.Int64
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		m := newMemo("a")
		prodWG.Add(1)
		go func(p int, m *core.Memo) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				id := int64(p*1_000_000 + i)
				key := jobs
				switch i % 10 {
				case 3:
					key = alt1
				case 7:
					key = alt2
				}
				attempted.Add(1)
				if err := m.PutGo(key, id); err != nil {
					cc.miss(id)
				} else {
					cc.ack(id)
				}
			}
		}(p, m)
	}

	// Consumers on b: blocking gets plus an AltTake. Their host is the one
	// being killed, so every consumer error after the request may have
	// dispatched is a maybe-consumed window; maybeConsumed bounds the
	// audit's tolerance for acked-but-vanished memos.
	var maybeConsumed atomic.Int64
	stop := make(chan struct{})
	var consWG sync.WaitGroup
	noteErr := func(err error) {
		var le *rpc.LinkError
		if errors.As(err, &le) && !le.Sent {
			return // provably never dispatched: nothing can have been consumed
		}
		maybeConsumed.Add(1)
	}
	for i := 0; i < 2; i++ {
		m := newMemo("b")
		consWG.Add(1)
		go func(m *core.Memo) {
			defer consWG.Done()
			for {
				v, err := m.GetCancel(jobs, stop)
				if err == core.ErrCanceled {
					return
				}
				if err != nil {
					noteErr(err)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				cc.see(asInt64(t, v))
			}
		}(m)
	}
	consWG.Add(1)
	go func() {
		defer consWG.Done()
		m := newMemo("b")
		for {
			_, v, err := m.GetAltCancel(stop, alt1, alt2)
			if err == core.ErrCanceled {
				return
			}
			if err != nil {
				noteErr(err)
				time.Sleep(2 * time.Millisecond)
				continue
			}
			cc.see(asInt64(t, v))
		}
	}()

	// Mid-flight: kill b, hold it down, restart it from the same data dir.
	for attempted.Load() < producers*perProducer/4 {
		time.Sleep(time.Millisecond)
	}
	if err := c.CrashNode("b"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := c.RestartNode("b"); err != nil {
		t.Fatalf("restart: %v", err)
	}

	waitTimeout(t, "producers", &prodWG, 60*time.Second)

	// Drain what nobody consumed through a fresh handle on the restarted
	// node, then cancel the parked consumers and join them.
	drain := newMemo("b")
	for _, key := range []symbol.Key{jobs, alt1, alt2} {
		for {
			v, ok, err := drain.GetSkip(key)
			if err != nil {
				t.Fatalf("drain %v: %v", key, err)
			}
			if !ok {
				break
			}
			cc.see(asInt64(t, v))
		}
	}
	close(stop)
	waitTimeout(t, "consumers", &consWG, 30*time.Second)

	// The audit. No lock needed: every worker has joined.
	produced := producers * perProducer
	if got := len(cc.acked) + len(cc.uncertain); got != produced {
		t.Fatalf("ledger covers %d ids, want %d", got, produced)
	}
	for id, n := range cc.seen {
		if n > 1 {
			t.Errorf("memo %d consumed %d times (duplicated across crash)", id, n)
		}
		if !cc.acked[id] && !cc.uncertain[id] {
			t.Errorf("memo %d consumed but never produced", id)
		}
	}
	var lostAcked int
	for id := range cc.acked {
		if cc.seen[id] == 0 {
			lostAcked++
		}
	}
	if int64(lostAcked) > maybeConsumed.Load() {
		t.Errorf("%d acked memos vanished but only %d maybe-consumed windows occurred: durable state lost",
			lostAcked, maybeConsumed.Load())
	}

	na, _ := c.Node("a")
	nb, _ := c.Node("b")
	var dupPuts int64
	if srv, ok := nb.LocalFolderServer(c.File.App, 0); ok {
		dupPuts = srv.Store().Stats().DupPuts
	}
	t.Logf("acked %d, uncertain %d (of those %d landed), lost-acked %d ≤ maybe-consumed %d, node-a retries %d, dedup hits %d",
		len(cc.acked), len(cc.uncertain), countUncertainLanded(cc), lostAcked, maybeConsumed.Load(),
		na.Stats().Retried, dupPuts)
	if na.Stats().Retried == 0 {
		t.Log("warning: no transparent retries fired; crash window may have been too gentle")
	}
	if len(cc.uncertain) == 0 && na.Stats().Retried == 0 {
		t.Log("warning: workload never observed the crash")
	}
}
