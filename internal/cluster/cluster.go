// Package cluster boots a complete simulated D-Memo network from an
// Application Description File: one simulated host per HOSTS line, a memo
// server on each, folder servers placed per the FOLDERS section, and link
// latencies derived from the PPC costs.
//
// This package is the substitute for the paper's 1994 testbed (Sun SPARCs,
// an Encore Multimax, an i486 SVR4 host, an IBM SP-1): the behaviours under
// test — cost-weighted memo distribution, topology-restricted routing,
// thread caching, lossy domain mappings — depend on the declared ratios and
// topology, which the ADF carries, not on the physical silicon. See
// DESIGN.md §3 for the substitution argument.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adf"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/memoserver"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/threadcache"
	"repro/internal/transferable"
	"repro/internal/transport"
)

// Options tune a cluster boot.
type Options struct {
	// BaseLatency is the one-way delay of a cost-1 link (0 = no delay).
	BaseLatency time.Duration
	// BytesPerLatency models link bandwidth (see transport.NetModel).
	BytesPerLatency int
	// Cache configures memo-server thread caches.
	Cache threadcache.Config
	// FolderCache configures folder-server thread caches.
	FolderCache threadcache.Config
	// Lambda is the placement topology attenuation (§5, experiment E5).
	Lambda float64
	// Arena, when positive, backs each folder server's memos with a
	// shared-memory arena of that many bytes.
	Arena int
	// FolderShards overrides the lock-stripe count of each folder
	// server's store (0 = folder.DefaultShards).
	FolderShards int
	// Batch is the rpc flush policy used by every connection in the
	// cluster — application clients, memo servers, and peer links (zero =
	// rpc defaults; rpc.Policy{MaxCount: 1} disables coalescing).
	Batch rpc.Policy
	// Resilience arms the link-resilience layer on every connection:
	// heartbeats, reconnect-with-backoff on dead peer links, and bounded
	// transparent retries of safely-retriable forwarded calls (zero =
	// disabled; see rpc.Resilience).
	Resilience rpc.Resilience
	// Chaos, when true, interposes a transport.Flaky between the simulated
	// network and every connection; the booted Cluster exposes it as
	// .Chaos so tests can sever, blackhole, delay, or drop links.
	Chaos bool
	// DataDir, when non-empty, makes every folder server in the cluster
	// durable: per-host subdirectories of DataDir hold per-shard
	// write-ahead logs and snapshots, and a crashed host's memo server can
	// be restarted (RestartNode) recovering every acknowledged memo.
	DataDir string
	// Durable tunes the write-ahead logs when DataDir is set (zero =
	// durable defaults).
	Durable durable.Config
}

// Cluster is a running simulated network.
type Cluster struct {
	File  *adf.File
	Sim   *transport.Sim
	Table *routing.Table
	Place *placement.Map
	// Chaos is the fault-injection layer (nil unless Options.Chaos).
	Chaos *transport.Flaky

	registry *symbol.Registry
	opts     Options
	dialFrom memoserver.DialFunc
	network  memoserver.Network

	mu    sync.Mutex
	nodes map[string]*memoserver.Node
	memos []*core.Memo
}

// Boot validates the ADF, builds the network model, starts a memo server on
// every host, and registers the application everywhere (§4.4's registration
// step, performed by the launcher).
func Boot(f *adf.File, opts Options) (*Cluster, error) {
	if err := adf.Validate(f); err != nil {
		return nil, err
	}
	g, err := f.Graph()
	if err != nil {
		return nil, err
	}
	tbl := routing.Build(g)
	place, err := placement.New(f, tbl, placement.Options{Lambda: opts.Lambda})
	if err != nil {
		return nil, err
	}

	model := transport.NewNetModel(opts.BaseLatency)
	model.BytesPerLatency = opts.BytesPerLatency
	for _, l := range f.Links {
		model.SetLink(l.From, l.To, l.Cost)
		if l.Duplex {
			model.SetLink(l.To, l.From, l.Cost)
		}
	}
	sim := transport.NewSim(model)

	c := &Cluster{
		File:     f,
		Sim:      sim,
		Table:    tbl,
		Place:    place,
		registry: symbol.NewRegistry(),
		opts:     opts,
		dialFrom: sim.DialFrom,
		nodes:    make(map[string]*memoserver.Node),
	}
	c.network = sim
	if opts.Chaos {
		c.Chaos = transport.NewFlaky(sim)
		c.dialFrom = c.Chaos.DialFrom
		c.network = c.Chaos
	}
	for _, h := range f.Hosts {
		if _, err := c.startNode(h.Name); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	return c, nil
}

// startNode builds, starts, and registers the memo server for one host,
// installing it in the node table. Used by Boot and RestartNode.
func (c *Cluster) startNode(host string) (*memoserver.Node, error) {
	cfg := memoserver.Config{
		Cache:        c.opts.Cache,
		FolderCache:  c.opts.FolderCache,
		Lambda:       c.opts.Lambda,
		Arena:        c.opts.Arena,
		FolderShards: c.opts.FolderShards,
		Batch:        c.opts.Batch,
		Resilience:   c.opts.Resilience,
		Durable:      c.opts.Durable,
	}
	if c.opts.DataDir != "" {
		cfg.DataDir = fmt.Sprintf("%s/%s", c.opts.DataDir, host)
	}
	n := memoserver.NewWithNetwork(host, c.network, cfg)
	if err := n.Start(); err != nil {
		return nil, err
	}
	if err := n.RegisterApp(c.File); err != nil {
		n.Close()
		return nil, err
	}
	c.mu.Lock()
	c.nodes[host] = n
	c.mu.Unlock()
	return n, nil
}

// CrashNode hard-stops a host's memo server as SIGKILL would: every link
// and listener dies at once and durable folder stores abandon unacknowledged
// records (see memoserver.Node.Crash). The node stays in the table so its
// peers keep re-dialing its address; RestartNode brings the host back.
func (c *Cluster) CrashNode(host string) error {
	n, ok := c.Node(host)
	if !ok {
		return fmt.Errorf("cluster: unknown host %s", host)
	}
	n.Crash()
	return nil
}

// RestartNode boots a fresh memo server for a crashed (or closed) host —
// same address, same configuration, same data directory, so durable folder
// servers recover their committed state and peers' redialers reconnect.
func (c *Cluster) RestartNode(host string) (*memoserver.Node, error) {
	if _, ok := c.File.HostByName(host); !ok {
		return nil, fmt.Errorf("cluster: unknown host %s", host)
	}
	return c.startNode(host)
}

// BootADF parses and boots in one step.
func BootADF(adfText string, opts Options) (*Cluster, error) {
	f, err := adf.Parse(adfText)
	if err != nil {
		return nil, err
	}
	return Boot(f, opts)
}

// Node returns the memo server on a host.
func (c *Cluster) Node(host string) (*memoserver.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[host]
	return n, ok
}

// Registry exposes the application-wide symbol registry.
func (c *Cluster) Registry() *symbol.Registry { return c.registry }

// DomainFor maps an ADF architecture name to its native word domain
// (§3.1.3). Unknown architectures get the 64-bit domain.
func DomainFor(arch string) transferable.Domain {
	switch arch {
	case "sun4", "sparc", "multimax", "encore", "sequent", "i386", "transputer":
		return transferable.Domain32
	case "i486-16", "i286", "pc16":
		return transferable.Domain16
	case "sp1", "alpha", "rs6000":
		return transferable.Domain64
	}
	return transferable.Domain64
}

// NewMemo opens an API handle for a process on the given host (Fig. 1: the
// process connects to its host's memo server).
func (c *Cluster) NewMemo(host string) (*core.Memo, error) {
	h, ok := c.File.HostByName(host)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown host %s", host)
	}
	client, err := memoserver.DialClientResilient(c.dialFrom, host, c.File.App, c.opts.Batch, c.opts.Resilience)
	if err != nil {
		return nil, err
	}
	m, err := core.New(core.Config{
		App:      c.File.App,
		Host:     host,
		Domain:   DomainFor(h.Arch),
		Registry: c.registry,
		Place:    c.Place,
		Client:   client,
	})
	if err != nil {
		client.Close()
		return nil, err
	}
	c.mu.Lock()
	c.memos = append(c.memos, m)
	c.mu.Unlock()
	return m, nil
}

// ProcFunc is the body of one application process. The paper's launcher
// runs the executable built from each PROCESSES directory; here the caller
// supplies one Go function per directory name ("boss", "worker1", ...).
type ProcFunc func(p adf.Process, m *core.Memo) error

// Run launches every ADF process as a goroutine on its assigned host, using
// bodies[dir] as the program for source directory dir, and waits for all to
// finish. The first error aborts the wait result (other processes still run
// to completion).
func (c *Cluster) Run(bodies map[string]ProcFunc) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(c.File.Processes))
	for _, p := range c.File.Processes {
		body, ok := bodies[p.Dir]
		if !ok {
			return fmt.Errorf("cluster: no program supplied for directory %q (process %d)", p.Dir, p.ID)
		}
		m, err := c.NewMemo(p.Host)
		if err != nil {
			return fmt.Errorf("cluster: process %d on %s: %w", p.ID, p.Host, err)
		}
		wg.Add(1)
		go func(p adf.Process, body ProcFunc, m *core.Memo) {
			defer wg.Done()
			if err := body(p, m); err != nil {
				errc <- fmt.Errorf("process %d (%s on %s): %w", p.ID, p.Dir, p.Host, err)
			}
		}(p, body, m)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// FolderStats aggregates per-host memo-server and folder-server counters
// for the experiments.
type FolderStats struct {
	Host     string
	FolderID int
	Puts     int64
	Takes    int64
}

// FolderServerStats lists per-folder-server operation counts (E4/E5 memo
// distribution measurements).
func (c *Cluster) FolderServerStats() []FolderStats {
	var out []FolderStats
	for _, fs := range c.File.Folders {
		n, ok := c.Node(fs.Host)
		if !ok {
			continue
		}
		srv, ok := n.LocalFolderServer(c.File.App, fs.ID)
		if !ok {
			continue
		}
		st := srv.Store().Stats()
		out = append(out, FolderStats{Host: fs.Host, FolderID: fs.ID, Puts: st.Puts, Takes: st.Takes})
	}
	return out
}

// HostPutShares reports the observed fraction of puts landing on each host.
func (c *Cluster) HostPutShares() map[string]float64 {
	stats := c.FolderServerStats()
	var total int64
	perHost := make(map[string]int64)
	for _, s := range stats {
		perHost[s.Host] += s.Puts
		total += s.Puts
	}
	out := make(map[string]float64, len(perHost))
	if total == 0 {
		return out
	}
	for h, n := range perHost {
		out[h] = float64(n) / float64(total)
	}
	return out
}

// Shutdown stops every memo server and closes all handles.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	memos := c.memos
	c.memos = nil
	nodes := c.nodes
	c.nodes = map[string]*memoserver.Node{}
	c.mu.Unlock()
	for _, m := range memos {
		m.Close()
	}
	for _, n := range nodes {
		n.Close()
	}
}
