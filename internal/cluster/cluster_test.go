package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

const paperADF = `APP invert
HOSTS
glen 1 sun4 1
aurora 1 sun4 1
joliet 1 sun4 1
bonnie 128 sp1 sun4*0.5
FOLDERS
0 glen
1 aurora
2 joliet
3-8 bonnie
PROCESSES
0 boss glen
1 worker1 aurora
2 worker1 joliet
3-6 worker2 bonnie
PPC
glen <-> aurora 1
glen <-> joliet 1
glen <-> bonnie 2
`

func boot(t testing.TB, adfText string, opts Options) *Cluster {
	t.Helper()
	c, err := BootADF(adfText, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestBootPaperTopology(t *testing.T) {
	c := boot(t, paperADF, Options{})
	for _, h := range []string{"glen", "aurora", "joliet", "bonnie"} {
		if _, ok := c.Node(h); !ok {
			t.Fatalf("no memo server on %s", h)
		}
	}
	if c.Place.Len() != 9 {
		t.Fatalf("placement has %d servers want 9", c.Place.Len())
	}
}

func TestBootRejectsInvalidADF(t *testing.T) {
	if _, err := BootADF("APP x\n", Options{}); err == nil {
		t.Fatal("invalid ADF booted")
	}
}

func TestPutGetAcrossCluster(t *testing.T) {
	c := boot(t, paperADF, Options{})
	boss, err := c.NewMemo("glen")
	if err != nil {
		t.Fatal(err)
	}
	worker, err := c.NewMemo("bonnie")
	if err != nil {
		t.Fatal(err)
	}
	k := boss.NamedKey("task", 1)
	if err := boss.Put(k, transferable.String("do it")); err != nil {
		t.Fatal(err)
	}
	v, err := worker.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "do it" {
		t.Fatalf("got %v", v)
	}
}

func TestSymbolAgreementAcrossProcesses(t *testing.T) {
	c := boot(t, paperADF, Options{})
	a, _ := c.NewMemo("glen")
	b, _ := c.NewMemo("aurora")
	if a.Symbol("shared") != b.Symbol("shared") {
		t.Fatal("processes disagree on interned symbol")
	}
	if a.CreateSymbol() == b.CreateSymbol() {
		t.Fatal("create_symbol returned duplicate symbols")
	}
}

func TestRunProcesses(t *testing.T) {
	c := boot(t, paperADF, Options{})
	var mu sync.Mutex
	ran := make(map[string]int)
	err := c.Run(map[string]ProcFunc{
		"boss": func(p adf.Process, m *core.Memo) error {
			// Boss distributes one memo per worker process id.
			for i := 1; i <= 6; i++ {
				if err := m.Put(m.NamedKey("work", uint32(i)), transferable.Int64(int64(i*i))); err != nil {
					return err
				}
			}
			mu.Lock()
			ran["boss"]++
			mu.Unlock()
			return nil
		},
		"worker1": func(p adf.Process, m *core.Memo) error {
			v, err := m.Get(m.NamedKey("work", uint32(p.ID)))
			if err != nil {
				return err
			}
			if n, _ := transferable.AsInt(v); n != int64(p.ID*p.ID) {
				return fmt.Errorf("worker %d got %v", p.ID, v)
			}
			mu.Lock()
			ran["worker1"]++
			mu.Unlock()
			return nil
		},
		"worker2": func(p adf.Process, m *core.Memo) error {
			v, err := m.Get(m.NamedKey("work", uint32(p.ID)))
			if err != nil {
				return err
			}
			if n, _ := transferable.AsInt(v); n != int64(p.ID*p.ID) {
				return fmt.Errorf("worker %d got %v", p.ID, v)
			}
			mu.Lock()
			ran["worker2"]++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran["boss"] != 1 || ran["worker1"] != 2 || ran["worker2"] != 4 {
		t.Fatalf("process counts: %v", ran)
	}
}

func TestRunMissingProgram(t *testing.T) {
	c := boot(t, paperADF, Options{})
	err := c.Run(map[string]ProcFunc{})
	if err == nil {
		t.Fatal("Run accepted missing program")
	}
}

func TestRunPropagatesProcessError(t *testing.T) {
	c := boot(t, paperADF, Options{})
	sentinel := errors.New("worker exploded")
	err := c.Run(map[string]ProcFunc{
		"boss":    func(p adf.Process, m *core.Memo) error { return nil },
		"worker1": func(p adf.Process, m *core.Memo) error { return sentinel },
		"worker2": func(p adf.Process, m *core.Memo) error { return nil },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemoDistributionTracksPower(t *testing.T) {
	// E4 at test scale: puts to many distinct folders distribute across
	// hosts in proportion to processing power (bonnie ≈ 256/259).
	c := boot(t, paperADF, Options{})
	m, err := c.NewMemo("glen")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		k := m.NamedKey(fmt.Sprintf("folder-%d", i))
		if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	shares := c.HostPutShares()
	intended := c.Place.HostShares()
	for host, want := range intended {
		got := shares[host]
		if math.Abs(got-want) > 0.05+0.15*want {
			t.Errorf("host %s: observed share %.4f intended %.4f", host, got, want)
		}
	}
	if shares["bonnie"] < 0.9 {
		t.Errorf("bonnie share %.3f; the SP-1 should dominate", shares["bonnie"])
	}
}

func TestSimulatedLatencyOrdersHosts(t *testing.T) {
	// With a real base latency, operations against a far folder server take
	// longer than against a local one (E2's shape).
	const adfText = `APP lat
HOSTS
near 1 sun4 1
far 1 sun4 1
FOLDERS
0 near
1 far
PROCESSES
0 boss near
PPC
near <-> far 5
`
	c := boot(t, adfText, Options{BaseLatency: 2 * time.Millisecond})
	m, err := c.NewMemo("near")
	if err != nil {
		t.Fatal(err)
	}
	// Folder ids are fixed: 0 near, 1 far. Find keys that place on each.
	var nearKey, farKey symbol.Key
	for i := uint32(0); i < 10000; i++ {
		k := m.Key(m.Symbol("probe"), i)
		switch c.Place.Place(k).ID {
		case 0:
			if nearKey.S == symbol.None {
				nearKey = k
			}
		case 1:
			if farKey.S == symbol.None {
				farKey = k
			}
		}
		if nearKey.S != symbol.None && farKey.S != symbol.None {
			break
		}
	}
	timeOp := func(k symbol.Key) time.Duration {
		start := time.Now()
		for i := 0; i < 5; i++ {
			if err := m.Put(k, transferable.Int64(1)); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Get(k); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	near := timeOp(nearKey)
	far := timeOp(farKey)
	if far <= near {
		t.Fatalf("far ops (%v) not slower than near ops (%v)", far, near)
	}
}

func TestNoBroadcastsEver(t *testing.T) {
	// §5: "No broadcasting is done by the system."
	c := boot(t, paperADF, Options{})
	m, _ := c.NewMemo("glen")
	for i := 0; i < 100; i++ {
		m.Put(m.NamedKey("nb", uint32(i)), transferable.Int64(int64(i)))
	}
	// The sim transport has no broadcast primitive at all; verify the stats
	// hook agrees for a statsed transport (structural invariant).
	// NetModel records only point-to-point links:
	msgs, _ := c.Sim.Model().LinkTraffic("glen", "bonnie")
	if msgs == 0 {
		t.Fatal("expected point-to-point traffic on declared links")
	}
}

func TestDomainFor(t *testing.T) {
	if DomainFor("sun4").IntBits != 32 {
		t.Fatal("sun4 should be 32-bit")
	}
	if DomainFor("sp1").IntBits != 64 {
		t.Fatal("sp1 should be 64-bit")
	}
	if DomainFor("i486-16").IntBits != 16 {
		t.Fatal("i486-16 should be 16-bit")
	}
	if DomainFor("mystery").IntBits != 64 {
		t.Fatal("unknown arch should default to 64-bit")
	}
}

func TestLossyMappingSurfacesOn16BitHost(t *testing.T) {
	// An Alpha-style host sends a big native int; the 16-bit host's Get
	// reports ErrLossy (§3.1.3's example, end to end).
	const adfText = `APP lossy
HOSTS
wide 1 alpha 1
narrow 1 i486-16 1
FOLDERS
0 wide
PROCESSES
0 boss wide
PPC
wide <-> narrow 1
`
	c := boot(t, adfText, Options{})
	wide, _ := c.NewMemo("wide")
	narrow, _ := c.NewMemo("narrow")
	k := wide.NamedKey("xfer")
	if err := wide.Put(k, transferable.Native{V: 100000, Bits: 64}); err != nil {
		t.Fatal(err)
	}
	_, err := narrow.Get(k)
	var lossy *transferable.ErrLossy
	if !errors.As(err, &lossy) {
		t.Fatalf("want ErrLossy on 16-bit host, got %v", err)
	}
	// Absolute domains cross fine.
	if err := wide.Put(k, transferable.Int64(100000)); err != nil {
		t.Fatal(err)
	}
	v, err := narrow.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(v); n != 100000 {
		t.Fatalf("absolute domain value = %v", v)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	c := boot(t, paperADF, Options{})
	c.Shutdown()
	c.Shutdown()
}
