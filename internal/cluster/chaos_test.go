package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transferable"
	"repro/internal/transport"
)

// chaosADF: two hosts, every folder server on b, so all folder traffic from
// a crosses the severable a—b link while consumers on b stay local.
const chaosADF = `APP chaos
HOSTS
a 1 sun4 1
b 1 sun4 1
FOLDERS
0 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

const poisonID = int64(-1)

// chaosCounts is the exactly-once ledger: producers record each memo id as
// acked (put returned OK — the memo is definitely in a folder exactly once)
// or uncertain (put returned an error — the link died with the request
// maybe applied, so 0 or 1 copies exist, never 2).
type chaosCounts struct {
	mu        sync.Mutex
	acked     map[int64]bool
	uncertain map[int64]bool
	seen      map[int64]int // id -> times consumed or drained
}

func (cc *chaosCounts) ack(id int64)  { cc.mu.Lock(); cc.acked[id] = true; cc.mu.Unlock() }
func (cc *chaosCounts) miss(id int64) { cc.mu.Lock(); cc.uncertain[id] = true; cc.mu.Unlock() }
func (cc *chaosCounts) see(id int64)  { cc.mu.Lock(); cc.seen[id]++; cc.mu.Unlock() }

func asInt64(t *testing.T, v transferable.Value) int64 {
	t.Helper()
	id, ok := transferable.AsInt(v)
	if !ok {
		t.Fatalf("memo payload %v, want integer", v)
	}
	return id
}

// waitTimeout fails the test if the group does not finish in time — a hung
// goroutine is exactly the bug class this test exists to catch.
func waitTimeout(t *testing.T, what string, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s still running after %v (stuck goroutine)", what, d)
	}
}

// TestChaosSeverRestoreNoLossNoDup runs a mixed Put/Get/AltTake workload
// while the a—b link is severed and later restored, then audits the ledger:
// every acknowledged memo is consumed exactly once, nothing is consumed
// twice, and every caller completes (fast-fail with ErrLinkDown-derived
// errors, never a hang). Run under -race by the dedicated CI chaos step.
func TestChaosSeverRestoreNoLossNoDup(t *testing.T) {
	c := boot(t, chaosADF, Options{
		Chaos: true,
		Resilience: rpc.Resilience{
			Heartbeat: 100 * time.Millisecond,
			Redial:    transport.Backoff{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond},
			Retries:   2,
		},
	})

	newMemo := func(host string) *core.Memo {
		m, err := c.NewMemo(host)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ctl := newMemo("b") // control-plane handle: local to the folders, reliable

	jobs := ctl.NamedKey("jobs")
	alt1 := ctl.NamedKey("alt1")
	alt2 := ctl.NamedKey("alt2")
	sentinel := ctl.NamedKey("sentinel")
	if err := ctl.PutGo(sentinel, int64(7777)); err != nil {
		t.Fatal(err)
	}

	cc := &chaosCounts{
		acked:     make(map[int64]bool),
		uncertain: make(map[int64]bool),
		seen:      make(map[int64]int),
	}

	// Producers on a: unique ids, mostly to jobs, every fifth to an alt
	// folder. Failed puts are recorded uncertain and never blindly re-put —
	// the no-duplicate guarantee belongs to the system, not the workload.
	const producers = 3
	const perProducer = 120
	var attempted atomic.Int64
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		m := newMemo("a")
		prodWG.Add(1)
		go func(p int, m *core.Memo) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				id := int64(p*1_000_000 + i)
				key := jobs
				switch i % 10 {
				case 3:
					key = alt1
				case 7:
					key = alt2
				}
				attempted.Add(1)
				if err := m.PutGo(key, id); err != nil {
					cc.miss(id)
				} else {
					cc.ack(id)
				}
			}
		}(p, m)
	}

	// Consumers on b: blocking gets on jobs plus an AltTake over the alt
	// folders. They run local to the folder server, so severing a—b cannot
	// make a consumed memo's ack vanish — the ledger stays exact.
	var consWG sync.WaitGroup
	const jobConsumers = 2
	for i := 0; i < jobConsumers; i++ {
		m := newMemo("b")
		consWG.Add(1)
		go func(m *core.Memo) {
			defer consWG.Done()
			for {
				v, err := m.Get(jobs)
				if err != nil {
					t.Errorf("consumer get: %v", err)
					return
				}
				id := asInt64(t, v)
				if id == poisonID {
					// Another consumer may still be parked; pass it on.
					if err := m.PutGo(jobs, poisonID); err != nil {
						t.Errorf("re-put poison: %v", err)
					}
					return
				}
				cc.see(id)
			}
		}(m)
	}
	consWG.Add(1)
	go func() {
		defer consWG.Done()
		m := newMemo("b")
		for {
			_, v, err := m.GetAlt(alt1, alt2)
			if err != nil {
				t.Errorf("alt consumer: %v", err)
				return
			}
			id := asInt64(t, v)
			if id == poisonID {
				return
			}
			cc.see(id)
		}
	}()

	// Noise on a: remote GetCopy across the chaos link. It must always
	// return — success or fast failure — and succeed again after restore.
	noiseStop := make(chan struct{})
	var noiseOK, noiseErr atomic.Int64
	var noiseWG sync.WaitGroup
	noiseWG.Add(1)
	go func() {
		defer noiseWG.Done()
		m := newMemo("a")
		for {
			select {
			case <-noiseStop:
				return
			default:
			}
			if _, err := m.GetCopy(sentinel); err != nil {
				var re *core.RemoteError
				if !errors.As(err, &re) {
					t.Errorf("noise get_copy: unexpected error type %T: %v", err, err)
					return
				}
				noiseErr.Add(1)
			} else {
				noiseOK.Add(1)
			}
		}
	}()

	// Mid-flight: sever the link, hold it down, restore.
	for attempted.Load() < producers*perProducer/4 {
		time.Sleep(time.Millisecond)
	}
	c.Chaos.Sever("a", "b")
	time.Sleep(80 * time.Millisecond)
	c.Chaos.Restore("a", "b")

	waitTimeout(t, "producers", &prodWG, 60*time.Second)
	close(noiseStop)
	waitTimeout(t, "noise", &noiseWG, 30*time.Second)

	// Producers are done: poison the consumers, then join them.
	if err := ctl.PutGo(jobs, poisonID); err != nil {
		t.Fatal(err)
	}
	if err := ctl.PutGo(alt1, poisonID); err != nil {
		t.Fatal(err)
	}
	waitTimeout(t, "consumers", &consWG, 30*time.Second)

	// Drain what nobody consumed (leftover memos, surviving poisons).
	for _, key := range []symbol.Key{jobs, alt1, alt2} {
		for {
			v, ok, err := ctl.GetSkip(key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if id := asInt64(t, v); id != poisonID {
				cc.see(id)
			}
		}
	}

	// The audit. No lock needed: every worker has joined.
	produced := producers * perProducer
	if got := len(cc.acked) + len(cc.uncertain); got != produced {
		t.Fatalf("ledger covers %d ids, want %d", got, produced)
	}
	if len(cc.uncertain) == 0 {
		t.Log("warning: no put failed during the sever window; chaos window may be too gentle")
	}
	for id, n := range cc.seen {
		if n > 1 {
			t.Errorf("memo %d consumed %d times (duplicated)", id, n)
		}
		if !cc.acked[id] && !cc.uncertain[id] {
			t.Errorf("memo %d consumed but never produced", id)
		}
	}
	for id := range cc.acked {
		if cc.seen[id] != 1 {
			t.Errorf("acked memo %d consumed %d times, want exactly 1 (lost or duplicated)", id, cc.seen[id])
		}
	}
	if noiseOK.Load() == 0 {
		t.Error("remote get_copy noise never succeeded")
	}
	t.Logf("acked %d, uncertain %d (of those %d landed), noise ok/err %d/%d, node-a retries %d",
		len(cc.acked), len(cc.uncertain), countUncertainLanded(cc), noiseOK.Load(), noiseErr.Load(),
		nodeStat(t, c, "a"))
}

func countUncertainLanded(cc *chaosCounts) int {
	n := 0
	for id := range cc.uncertain {
		if cc.seen[id] > 0 {
			n++
		}
	}
	return n
}

func nodeStat(t *testing.T, c *Cluster, host string) int64 {
	t.Helper()
	n, ok := c.Node(host)
	if !ok {
		t.Fatalf("no node %s", host)
	}
	return n.Stats().Retried
}
