package adf

import (
	"fmt"
	"strconv"
)

// evalExpr evaluates a cost expression: numbers, previously bound
// architecture names, + - * /, unary minus, and parentheses. The paper's
// example is "sun4*0.5". vars may be nil when identifiers are not allowed
// (PPC link costs).
func evalExpr(src string, vars map[string]float64) (float64, error) {
	p := &exprParser{src: src, vars: vars}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing characters at %q", p.src[p.pos:])
	}
	return v, nil
}

type exprParser struct {
	src  string
	pos  int
	vars map[string]float64
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseExpr() (float64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseTerm() (float64, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseFactor() (float64, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing closing parenthesis")
		}
		p.pos++
		return v, nil
	case c == '-':
		p.pos++
		v, err := p.parseFactor()
		return -v, err
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if (c >= '0' && c <= '9') || c == '.' {
				p.pos++
				continue
			}
			break
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", p.src[start:p.pos])
		}
		return v, nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if p.vars == nil {
			return 0, fmt.Errorf("identifiers not allowed here: %q", name)
		}
		v, ok := p.vars[name]
		if !ok {
			return 0, fmt.Errorf("unknown architecture %q (must be defined on an earlier HOSTS line)", name)
		}
		return v, nil
	case c == 0:
		return 0, fmt.Errorf("unexpected end of expression")
	}
	return 0, fmt.Errorf("unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
