package adf

import (
	"strings"
	"testing"
)

// paperADF is the exact example from §4.3 of the paper, assembled from its
// four section listings.
const paperADF = `
# Application Name
APP invert

HOSTS
# Hosts #Procs Arch  Cost
glen-ellyn.iit.edu  1 sun4  1
aurora.iit.edu  1 sun4  1
joliet.iit.edu  1 sun4  1
bonnie.mcs.anl.gov 128 sp1  sun4*0.5

FOLDERS
# Folder Location at
0 glen-ellyn.iit.edu
1 aurora.iit.edu
2 joliet.iit.edu
3-8 bonnie.mcs.anl.gov

PROCESSES
#Proc Directory Located at
0 boss glen-ellyn.iit.edu
1 worker1 aurora.iit.edu
2 worker1 joliet.iit.edu
3-22 worker2 bonnie.mcs.anl.gov

PPC
# Point-to-Point Connection with cost
glen-ellyn.iit.edu <-> aurora.iit.edu 1
glen-ellyn.iit.edu <-> joliet.iit.edu 1
glen-ellyn.iit.edu <-> bonnie.mcs.anl.gov 2
`

func TestParsePaperExample(t *testing.T) {
	f, err := Parse(paperADF)
	if err != nil {
		t.Fatal(err)
	}
	if f.App != "invert" {
		t.Fatalf("App = %q", f.App)
	}
	if len(f.Hosts) != 4 {
		t.Fatalf("Hosts = %d", len(f.Hosts))
	}
	sp1, ok := f.HostByName("bonnie.mcs.anl.gov")
	if !ok {
		t.Fatal("bonnie missing")
	}
	if sp1.Procs != 128 || sp1.Arch != "sp1" || sp1.Cost != 0.5 {
		t.Fatalf("sp1 host = %+v (cost expression sun4*0.5 should give 0.5)", sp1)
	}
	if len(f.Folders) != 9 { // 0,1,2 + 3..8
		t.Fatalf("Folders = %d want 9", len(f.Folders))
	}
	if f.Folders[8].ID != 8 || f.Folders[8].Host != "bonnie.mcs.anl.gov" {
		t.Fatalf("folder 8 = %+v", f.Folders[8])
	}
	if len(f.Processes) != 23 { // 0,1,2 + 3..22
		t.Fatalf("Processes = %d want 23", len(f.Processes))
	}
	if f.Processes[0].Dir != "boss" || f.Processes[22].Dir != "worker2" {
		t.Fatalf("process dirs: %+v %+v", f.Processes[0], f.Processes[22])
	}
	if len(f.Links) != 3 {
		t.Fatalf("Links = %d", len(f.Links))
	}
	if !f.Links[2].Duplex || f.Links[2].Cost != 2 {
		t.Fatalf("SP-1 link = %+v", f.Links[2])
	}
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPowerRatio(t *testing.T) {
	f, _ := Parse(paperADF)
	sparc, _ := f.HostByName("aurora.iit.edu")
	sp1, _ := f.HostByName("bonnie.mcs.anl.gov")
	if sparc.Power() != 1 {
		t.Fatalf("sparc power = %g", sparc.Power())
	}
	if sp1.Power() != 256 { // 128 procs / 0.5 cost
		t.Fatalf("sp1 power = %g want 256", sp1.Power())
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	f, err := Parse("APP x # trailing comment\n\n   # whole-line comment\nHOSTS\nh 1 a 1 # another\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.App != "x" || len(f.Hosts) != 1 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"data outside section", "h 1 a 1\n", "outside any section"},
		{"app twice", "APP a\nAPP b\n", "duplicate APP"},
		{"app arity", "APP a b\n", "exactly one name"},
		{"section twice", "HOSTS\nHOSTS\n", "duplicate HOSTS"},
		{"host arity", "HOSTS\nh 1 a\n", "wants: name procs arch cost"},
		{"host zero procs", "HOSTS\nh 0 a 1\n", "0 processors"},
		{"host bad procs", "HOSTS\nh x a 1\n", "bad processor count"},
		{"host bad cost", "HOSTS\nh 1 a bogus\n", "unknown architecture"},
		{"host zero cost", "HOSTS\nh 1 a 0\n", "non-positive cost"},
		{"folder arity", "FOLDERS\n0\n", "wants: id[-id] host"},
		{"folder bad range", "FOLDERS\n5-2 h\n", "descending"},
		{"folder huge range", "FOLDERS\n0-9999999 h\n", "implausibly large"},
		{"process arity", "PROCESSES\n0 dir\n", "wants: id[-id] directory host"},
		{"ppc bad arrow", "PPC\na -- b 1\n", "bad connector"},
		{"ppc bad cost", "PPC\na <-> b x\n", "bad link cost"},
		{"ppc zero cost", "PPC\na <-> b 0\n", "non-positive link cost"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("APP ok\nHOSTS\nbad line here\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d want 3", pe.Line)
	}
}

func TestCostExpressions(t *testing.T) {
	src := `APP e
HOSTS
base 1 sun4 2
half 1 sp1 sun4*0.5
sum 1 mix sun4+sp1
paren 1 p (sun4+sp1)*2
div 1 d sun4/4
neg 1 n 0-(-1)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"base": 2, "half": 1, "sum": 3, "paren": 6, "div": 0.5, "neg": 1}
	for name, w := range want {
		h, ok := f.HostByName(name)
		if !ok || h.Cost != w {
			t.Errorf("%s cost = %v want %g", name, h.Cost, w)
		}
	}
}

func TestArchBindsFirstDefinition(t *testing.T) {
	// Two sun4 hosts with different costs: the arch variable keeps the
	// first binding, as "architecture type names" denote the type.
	src := "APP a\nHOSTS\nh1 1 sun4 2\nh2 1 sun4 3\nh3 1 sp1 sun4*2\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	h3, _ := f.HostByName("h3")
	if h3.Cost != 4 {
		t.Fatalf("h3 cost = %g want 4 (first sun4 binding)", h3.Cost)
	}
}

func TestExprErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(1", "1)", "1+", "1/0", "2*", "@", "1 2"} {
		if _, err := evalExpr(src, map[string]float64{}); err == nil {
			t.Errorf("evalExpr(%q) accepted", src)
		}
	}
	if _, err := evalExpr("sun4", nil); err == nil {
		t.Error("identifier accepted with nil vars")
	}
}

func TestValidate(t *testing.T) {
	base := func() *File {
		f, err := Parse(paperADF)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	cases := []struct {
		name    string
		mutate  func(*File)
		wantSub string
	}{
		{"no app", func(f *File) { f.App = "" }, "missing APP"},
		{"dup host", func(f *File) { f.Hosts = append(f.Hosts, f.Hosts[0]) }, "duplicate host"},
		{"no hosts", func(f *File) { f.Hosts = nil }, "no hosts"},
		{"folder unknown host", func(f *File) { f.Folders[0].Host = "ghost" }, "unknown host"},
		{"dup folder", func(f *File) { f.Folders = append(f.Folders, f.Folders[0]) }, "duplicate folder"},
		{"no folders", func(f *File) { f.Folders = nil }, "no folder servers"},
		{"process unknown host", func(f *File) { f.Processes[0].Host = "ghost" }, "unknown host"},
		{"dup process", func(f *File) { f.Processes = append(f.Processes, f.Processes[0]) }, "duplicate process"},
		{"no processes", func(f *File) { f.Processes = nil }, "no processes"},
		{"empty dir", func(f *File) { f.Processes[0].Dir = "" }, "no source directory"},
		{"link unknown host", func(f *File) { f.Links[0].From = "ghost" }, "unknown host"},
		{"unreachable", func(f *File) { f.Links = f.Links[:2] }, "cannot reach"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := base()
			c.mutate(f)
			err := Validate(f)
			if err == nil {
				t.Fatal("validation passed")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestMergeDefaults(t *testing.T) {
	def, err := Parse("APP default\nHOSTS\nh 4 sun4 1\nFOLDERS\n0 h\nPROCESSES\n0 work h\nPPC\nh -> h2 1\n")
	if err == nil {
		// self link h->h2 fine; but wait — parse error impossible here
		_ = def
	}
	def, err = Parse("APP default\nHOSTS\nh 4 sun4 1\nh2 1 sun4 1\nFOLDERS\n0 h\nPROCESSES\n0 work h\nPPC\nh <-> h2 1\n")
	if err != nil {
		t.Fatal(err)
	}
	app, err := Parse("APP mine\nPROCESSES\n0 boss h\n1 worker h2\n")
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(def, app)
	if m.App != "mine" {
		t.Fatalf("App = %q", m.App)
	}
	if len(m.Hosts) != 2 || len(m.Folders) != 1 || len(m.Links) != 1 {
		t.Fatalf("defaults not applied: %+v", m)
	}
	if len(m.Processes) != 2 || m.Processes[0].Dir != "boss" {
		t.Fatalf("app section not preferred: %+v", m.Processes)
	}
	if err := Validate(m); err != nil {
		t.Fatalf("merged file invalid: %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f, err := Parse(paperADF)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(Format(f))
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, Format(f))
	}
	if f2.App != f.App || len(f2.Hosts) != len(f.Hosts) ||
		len(f2.Folders) != len(f.Folders) || len(f2.Processes) != len(f.Processes) ||
		len(f2.Links) != len(f.Links) {
		t.Fatalf("round trip changed structure")
	}
	if err := Validate(f2); err != nil {
		t.Fatal(err)
	}
}

func TestGraphFromADF(t *testing.T) {
	f, _ := Parse(paperADF)
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 4 {
		t.Fatalf("graph hosts = %v", g.Hosts())
	}
	if _, ok := g.HasLink("glen-ellyn.iit.edu", "bonnie.mcs.anl.gov"); !ok {
		t.Fatal("hub-SP1 link missing")
	}
	if _, ok := g.HasLink("aurora.iit.edu", "joliet.iit.edu"); ok {
		t.Fatal("phantom leaf-leaf link")
	}
}
