// Package adf parses and validates Application Description Files (paper
// §4.3).
//
// An ADF defines an application's logical network: its name (APP), host
// machines with processor counts and relative costs (HOSTS), folder-server
// placement (FOLDERS), process-to-host assignment with source directories
// (PROCESSES), and the logical point-to-point topology with link costs
// (PPC). '#' starts a comment. Numeric names accept ranges ("3-8"). Any
// missing section defaults to the corresponding section of the system ADF
// (see Merge).
//
// Processor costs may be arithmetic expressions over previously defined
// architecture names, as in the paper's SP-1 example "sun4*0.5": each HOSTS
// line binds its architecture name to its evaluated cost, and later lines
// may reference it.
package adf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/routing"
)

// Host is one HOSTS line.
type Host struct {
	Name  string
	Procs int
	Arch  string
	// Cost is the per-processor cost relative to other hosts; lower is
	// cheaper (the paper's SP-1 processors cost half a SPARC).
	Cost float64
}

// FolderServer is one FOLDERS entry after range expansion.
type FolderServer struct {
	ID   int
	Host string
}

// Process is one PROCESSES entry after range expansion.
type Process struct {
	ID   int
	Dir  string
	Host string
}

// File is a parsed ADF.
type File struct {
	App       string
	Hosts     []Host
	Folders   []FolderServer
	Processes []Process
	Links     []routing.Link

	// present tracks which sections appeared, for Merge defaulting.
	present map[string]bool
}

// HasSection reports whether the named section (APP, HOSTS, FOLDERS,
// PROCESSES, PPC) appeared in the source text.
func (f *File) HasSection(name string) bool { return f.present[name] }

// HostByName finds a host entry.
func (f *File) HostByName(name string) (Host, bool) {
	for _, h := range f.Hosts {
		if h.Name == name {
			return h, true
		}
	}
	return Host{}, false
}

// Power reports a host's processing power: processors divided by per-
// processor cost. This is the §5 "ratio percentage of processing power"
// numerator; see placement.
func (h Host) Power() float64 {
	if h.Cost <= 0 {
		return 0
	}
	return float64(h.Procs) / h.Cost
}

// Graph assembles the routing topology from the PPC section.
func (f *File) Graph() (*routing.Graph, error) {
	g := routing.NewGraph()
	for _, h := range f.Hosts {
		g.AddHost(h.Name)
	}
	for _, l := range f.Links {
		if err := g.AddLink(l); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("adf: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads an ADF from source text.
func Parse(src string) (*File, error) {
	f := &File{present: make(map[string]bool)}
	section := ""
	archCost := map[string]float64{}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		head := strings.ToUpper(fields[0])
		switch head {
		case "APP":
			if len(fields) != 2 {
				return nil, errf(lineNo, "APP wants exactly one name, got %d fields", len(fields)-1)
			}
			if f.present["APP"] {
				return nil, errf(lineNo, "duplicate APP section")
			}
			f.App = fields[1]
			f.present["APP"] = true
			section = ""
			continue
		case "HOSTS", "FOLDERS", "PROCESSES", "PPC":
			if len(fields) != 1 {
				return nil, errf(lineNo, "section keyword %s takes no arguments", head)
			}
			if f.present[head] {
				return nil, errf(lineNo, "duplicate %s section", head)
			}
			f.present[head] = true
			section = head
			continue
		}
		switch section {
		case "HOSTS":
			if err := f.parseHost(lineNo, fields, archCost); err != nil {
				return nil, err
			}
		case "FOLDERS":
			if err := f.parseFolder(lineNo, fields); err != nil {
				return nil, err
			}
		case "PROCESSES":
			if err := f.parseProcess(lineNo, fields); err != nil {
				return nil, err
			}
		case "PPC":
			if err := f.parseLink(lineNo, fields); err != nil {
				return nil, err
			}
		default:
			return nil, errf(lineNo, "data line %q outside any section", line)
		}
	}
	return f, nil
}

func (f *File) parseHost(lineNo int, fields []string, archCost map[string]float64) error {
	if len(fields) != 4 {
		return errf(lineNo, "HOSTS line wants: name procs arch cost")
	}
	procs, err := parseIntField(fields[1])
	if err != nil {
		return errf(lineNo, "bad processor count %q: %v", fields[1], err)
	}
	if procs < 1 {
		return errf(lineNo, "host %s has %d processors", fields[0], procs)
	}
	arch := fields[2]
	cost, err := evalExpr(fields[3], archCost)
	if err != nil {
		return errf(lineNo, "bad cost %q: %v", fields[3], err)
	}
	if cost <= 0 {
		return errf(lineNo, "host %s has non-positive cost %g", fields[0], cost)
	}
	// First definition of an architecture binds its name for later
	// expressions (the paper computes sp1 cost in terms of sun4).
	if _, seen := archCost[arch]; !seen {
		archCost[arch] = cost
	}
	f.Hosts = append(f.Hosts, Host{Name: fields[0], Procs: procs, Arch: arch, Cost: cost})
	return nil
}

func (f *File) parseFolder(lineNo int, fields []string) error {
	if len(fields) != 2 {
		return errf(lineNo, "FOLDERS line wants: id[-id] host")
	}
	lo, hi, err := parseRange(fields[0])
	if err != nil {
		return errf(lineNo, "bad folder id %q: %v", fields[0], err)
	}
	for id := lo; id <= hi; id++ {
		f.Folders = append(f.Folders, FolderServer{ID: id, Host: fields[1]})
	}
	return nil
}

func (f *File) parseProcess(lineNo int, fields []string) error {
	if len(fields) != 3 {
		return errf(lineNo, "PROCESSES line wants: id[-id] directory host")
	}
	lo, hi, err := parseRange(fields[0])
	if err != nil {
		return errf(lineNo, "bad process id %q: %v", fields[0], err)
	}
	for id := lo; id <= hi; id++ {
		f.Processes = append(f.Processes, Process{ID: id, Dir: fields[1], Host: fields[2]})
	}
	return nil
}

func (f *File) parseLink(lineNo int, fields []string) error {
	if len(fields) != 4 {
		return errf(lineNo, "PPC line wants: host <->|-> host cost")
	}
	var duplex bool
	switch fields[1] {
	case "<->":
		duplex = true
	case "->":
		duplex = false
	default:
		return errf(lineNo, "bad connector %q (want <-> or ->)", fields[1])
	}
	cost, err := evalExpr(fields[3], nil)
	if err != nil {
		return errf(lineNo, "bad link cost %q: %v", fields[3], err)
	}
	if cost <= 0 {
		return errf(lineNo, "non-positive link cost %g", cost)
	}
	f.Links = append(f.Links, routing.Link{From: fields[0], To: fields[2], Cost: cost, Duplex: duplex})
	return nil
}

// parseRange parses "7" or "3-8".
func parseRange(s string) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i > 0 {
		lo, err = parseIntField(s[:i])
		if err != nil {
			return 0, 0, err
		}
		hi, err = parseIntField(s[i+1:])
		if err != nil {
			return 0, 0, err
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("range %s is descending", s)
		}
		if hi-lo > 100000 {
			return 0, 0, fmt.Errorf("range %s is implausibly large", s)
		}
		return lo, hi, nil
	}
	lo, err = parseIntField(s)
	return lo, lo, err
}

func parseIntField(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("number too large: %q", s)
		}
	}
	return n, nil
}

// Merge fills sections missing from app with the system default ADF's
// sections (§4.3: "Any section missing will default to the appropriate
// system ADF section"). The result is a new File; inputs are not modified.
func Merge(def, app *File) *File {
	out := &File{present: make(map[string]bool)}
	pick := func(name string) *File {
		if app.HasSection(name) {
			return app
		}
		if def.HasSection(name) {
			return def
		}
		return nil
	}
	if src := pick("APP"); src != nil {
		out.App = src.App
		out.present["APP"] = true
	}
	if src := pick("HOSTS"); src != nil {
		out.Hosts = append(out.Hosts, src.Hosts...)
		out.present["HOSTS"] = true
	}
	if src := pick("FOLDERS"); src != nil {
		out.Folders = append(out.Folders, src.Folders...)
		out.present["FOLDERS"] = true
	}
	if src := pick("PROCESSES"); src != nil {
		out.Processes = append(out.Processes, src.Processes...)
		out.present["PROCESSES"] = true
	}
	if src := pick("PPC"); src != nil {
		out.Links = append(out.Links, src.Links...)
		out.present["PPC"] = true
	}
	return out
}

// Validate checks cross-section consistency: every referenced host exists,
// ids are unique, the topology connects every process host to every folder-
// server host, and the application is runnable (≥1 folder server, ≥1
// process).
func Validate(f *File) error {
	if f.App == "" {
		return fmt.Errorf("adf: missing APP name")
	}
	hosts := make(map[string]bool, len(f.Hosts))
	for _, h := range f.Hosts {
		if hosts[h.Name] {
			return fmt.Errorf("adf: duplicate host %s", h.Name)
		}
		hosts[h.Name] = true
	}
	if len(hosts) == 0 {
		return fmt.Errorf("adf: no hosts")
	}
	if len(f.Folders) == 0 {
		return fmt.Errorf("adf: no folder servers (at least one required)")
	}
	folderIDs := make(map[int]bool, len(f.Folders))
	for _, fs := range f.Folders {
		if !hosts[fs.Host] {
			return fmt.Errorf("adf: folder server %d on unknown host %s", fs.ID, fs.Host)
		}
		if folderIDs[fs.ID] {
			return fmt.Errorf("adf: duplicate folder server id %d", fs.ID)
		}
		folderIDs[fs.ID] = true
	}
	if len(f.Processes) == 0 {
		return fmt.Errorf("adf: no processes")
	}
	procIDs := make(map[int]bool, len(f.Processes))
	for _, p := range f.Processes {
		if !hosts[p.Host] {
			return fmt.Errorf("adf: process %d on unknown host %s", p.ID, p.Host)
		}
		if procIDs[p.ID] {
			return fmt.Errorf("adf: duplicate process id %d", p.ID)
		}
		procIDs[p.ID] = true
		if p.Dir == "" {
			return fmt.Errorf("adf: process %d has no source directory", p.ID)
		}
	}
	for _, l := range f.Links {
		if !hosts[l.From] || !hosts[l.To] {
			return fmt.Errorf("adf: link %s-%s references unknown host", l.From, l.To)
		}
	}
	// Reachability: every process host must reach every folder-server host
	// within the logical topology ("each software defined link must have a
	// corresponding physical connection" — and requests must be routable).
	g, err := f.Graph()
	if err != nil {
		return err
	}
	tbl := routing.Build(g)
	for _, p := range f.Processes {
		for _, fs := range f.Folders {
			if !tbl.Reachable(p.Host, fs.Host) {
				return fmt.Errorf("adf: process %d on %s cannot reach folder server %d on %s",
					p.ID, p.Host, fs.ID, fs.Host)
			}
		}
	}
	return nil
}

// Format renders the file back to ADF syntax (stable: sections in canonical
// order, ranges not re-compressed).
func Format(f *File) string {
	var b strings.Builder
	if f.App != "" {
		fmt.Fprintf(&b, "APP %s\n", f.App)
	}
	if len(f.Hosts) > 0 {
		b.WriteString("\nHOSTS\n")
		for _, h := range f.Hosts {
			fmt.Fprintf(&b, "%s %d %s %g\n", h.Name, h.Procs, h.Arch, h.Cost)
		}
	}
	if len(f.Folders) > 0 {
		b.WriteString("\nFOLDERS\n")
		fs := append([]FolderServer(nil), f.Folders...)
		sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
		for _, s := range fs {
			fmt.Fprintf(&b, "%d %s\n", s.ID, s.Host)
		}
	}
	if len(f.Processes) > 0 {
		b.WriteString("\nPROCESSES\n")
		ps := append([]Process(nil), f.Processes...)
		sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
		for _, p := range ps {
			fmt.Fprintf(&b, "%d %s %s\n", p.ID, p.Dir, p.Host)
		}
	}
	if len(f.Links) > 0 {
		b.WriteString("\nPPC\n")
		for _, l := range f.Links {
			conn := "->"
			if l.Duplex {
				conn = "<->"
			}
			fmt.Fprintf(&b, "%s %s %s %g\n", l.From, conn, l.To, l.Cost)
		}
	}
	return b.String()
}
