package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/threadcache"
	"repro/internal/transferable"
)

// E1ThreadCache reproduces Fig. 1's intra-machine serving behaviour: with
// thread caching on, a stream of requests is served by a small number of
// cached threads; with it off, every request spawns a fresh one, and
// latency rises.
func E1ThreadCache(cfg Config) (*Table, error) {
	const adfText = `APP e1
HOSTS
a 1 sun4 1
FOLDERS
0 a
PROCESSES
0 boss a
PPC
`
	ops := cfg.scale(2000, 20000)
	run := func(disable bool) (threadcache.Stats, time.Duration, error) {
		c, err := cluster.BootADF(adfText, cluster.Options{
			FolderCache: threadcache.Config{Disable: disable, IdleTimeout: 50 * time.Millisecond},
		})
		if err != nil {
			return threadcache.Stats{}, 0, err
		}
		defer c.Shutdown()
		m, err := c.NewMemo("a")
		if err != nil {
			return threadcache.Stats{}, 0, err
		}
		k := m.NamedKey("hot")
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
				return threadcache.Stats{}, 0, err
			}
			if _, err := m.Get(k); err != nil {
				return threadcache.Stats{}, 0, err
			}
		}
		elapsed := time.Since(start)
		node, _ := c.Node("a")
		fs, _ := node.LocalFolderServer("e1", 0)
		return fs.CacheStats(), elapsed, nil
	}

	cached, cachedTime, err := run(false)
	if err != nil {
		return nil, err
	}
	uncached, uncachedTime, err := run(true)
	if err != nil {
		return nil, err
	}
	reqs := int64(2 * ops)
	t := &Table{
		ID:    "E1",
		Title: "Thread caching at the folder server (Fig. 1, §4.1)",
		Claim: "cached threads serve repeat requests; caching avoids per-request spawn cost",
		Columns: []string{
			"mode", "requests", "threads spawned", "served by cached", "us/op",
		},
		Rows: [][]string{
			{"cache on", fmt.Sprint(reqs), fmt.Sprint(cached.Spawned), fmt.Sprint(cached.Reused),
				F(float64(cachedTime.Microseconds()) / float64(reqs))},
			{"cache off", fmt.Sprint(reqs), fmt.Sprint(uncached.Spawned), fmt.Sprint(uncached.Reused),
				F(float64(uncachedTime.Microseconds()) / float64(reqs))},
		},
	}
	if cached.Spawned*10 < uncached.Spawned {
		t.Notes = append(t.Notes, fmt.Sprintf("shape holds: caching cut thread creations %dx",
			uncached.Spawned/max64(cached.Spawned, 1)))
	} else {
		t.Notes = append(t.Notes, "WARNING: caching did not reduce spawns as expected")
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E2InterMachine reproduces Fig. 2's inter-machine path: a request reaches a
// remote folder server via one or more memo-server threads; latency grows
// with hop count.
func E2InterMachine(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Inter-machine request path length (Fig. 2, §4.1)",
		Claim:   "a put/get crosses memo servers on both hosts; round trip grows with hops",
		Columns: []string{"hosts", "hops to folder", "avg put+get RTT"},
	}
	ops := cfg.scale(10, 40)
	var prev time.Duration
	monotone := true
	for _, hosts := range []int{2, 3, 4, 6, 8} {
		adfText := lineADF(hosts)
		c, err := cluster.BootADF(adfText, cluster.Options{BaseLatency: 500 * time.Microsecond})
		if err != nil {
			return nil, err
		}
		m, err := c.NewMemo("h0")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		k := m.NamedKey("probe")
		// Warm the forwarding path. A failed warm Put would leave the warm
		// Get blocked forever, so both errors must surface.
		if err := m.Put(k, transferable.Int64(0)); err != nil {
			c.Shutdown()
			return nil, err
		}
		if _, err := m.Get(k); err != nil {
			c.Shutdown()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
				c.Shutdown()
				return nil, err
			}
			if _, err := m.Get(k); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		avg := time.Since(start) / time.Duration(ops)
		hops := c.Table.Hops("h0", fmt.Sprintf("h%d", hosts-1))
		t.Rows = append(t.Rows, []string{fmt.Sprint(hosts), fmt.Sprint(hops), D(avg)})
		if avg < prev {
			monotone = false
		}
		prev = avg
		c.Shutdown()
	}
	if monotone {
		t.Notes = append(t.Notes, "shape holds: RTT monotone in hop count")
	} else {
		t.Notes = append(t.Notes, "WARNING: RTT not monotone in hops")
	}
	return t, nil
}

// lineADF builds an n-host line with the only folder server on the far end.
func lineADF(n int) string {
	s := "APP e2\nHOSTS\n"
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("h%d 1 sun4 1\n", i)
	}
	s += fmt.Sprintf("FOLDERS\n0 h%d\nPROCESSES\n0 boss h0\nPPC\n", n-1)
	for i := 1; i < n; i++ {
		s += fmt.Sprintf("h%d <-> h%d 1\n", i-1, i)
	}
	return s
}

// E3Topology reproduces Fig. 3 and §4.3: the ADF's logical topology
// restricts communication; traffic transits only declared links, leaf-leaf
// traffic in a star transits the hub.
func E3Topology(cfg Config) (*Table, error) {
	const starADF = `APP e3
HOSTS
hub 1 sun4 1
leafA 1 sun4 1
leafB 1 sun4 1
FOLDERS
0 leafB
PROCESSES
0 boss leafA
PPC
hub <-> leafA 1
hub <-> leafB 1
`
	c, err := cluster.BootADF(starADF, cluster.Options{})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	m, err := c.NewMemo("leafA")
	if err != nil {
		return nil, err
	}
	ops := cfg.scale(50, 500)
	k := m.NamedKey("x")
	for i := 0; i < ops; i++ {
		if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
			return nil, err
		}
		if _, err := m.Get(k); err != nil {
			return nil, err
		}
	}
	model := c.Sim.Model()
	t := &Table{
		ID:      "E3",
		Title:   "Logical topology restricts communication (Fig. 3, §4.3)",
		Claim:   "leaf-to-leaf traffic transits the hub; undeclared links carry nothing",
		Columns: []string{"link", "messages"},
	}
	links := [][2]string{
		{"leafA", "hub"}, {"hub", "leafB"}, {"leafB", "hub"}, {"hub", "leafA"},
		{"leafA", "leafB"}, {"leafB", "leafA"},
	}
	var direct int64
	var viaHub int64
	for _, l := range links {
		msgs, _ := model.LinkTraffic(l[0], l[1])
		t.Rows = append(t.Rows, []string{l[0] + " -> " + l[1], fmt.Sprint(msgs)})
		if l[0] != "hub" && l[1] != "hub" {
			direct += msgs
		} else {
			viaHub += msgs
		}
	}
	if direct == 0 && viaHub > 0 {
		t.Notes = append(t.Notes, "shape holds: all leaf-leaf traffic transited the hub; zero off-topology messages")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %d messages bypassed the declared topology", direct))
	}
	return t, nil
}

// E4Distribution reproduces §5 ¶1: memo distribution proportional to
// processing-power ratios, on the paper's own invert configuration.
func E4Distribution(cfg Config) (*Table, error) {
	const invertADF = `APP invert
HOSTS
glen 1 sun4 1
aurora 1 sun4 1
joliet 1 sun4 1
bonnie 128 sp1 sun4*0.5
FOLDERS
0 glen
1 aurora
2 joliet
3-8 bonnie
PROCESSES
0 boss glen
PPC
glen <-> aurora 1
glen <-> joliet 1
glen <-> bonnie 2
`
	c, err := cluster.BootADF(invertADF, cluster.Options{})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	m, err := c.NewMemo("glen")
	if err != nil {
		return nil, err
	}
	n := cfg.scale(3000, 30000)
	for i := 0; i < n; i++ {
		k := m.NamedKey(fmt.Sprintf("f%d", i))
		if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
			return nil, err
		}
	}
	observed := c.HostPutShares()
	intended := c.Place.HostShares()
	t := &Table{
		ID:      "E4",
		Title:   "Cost-weighted memo distribution (§5, paper's invert hosts)",
		Claim:   "each host receives its ratio percentage of processing power",
		Columns: []string{"host", "procs", "cost", "power", "intended share", "observed share"},
	}
	maxErr := 0.0
	for _, h := range c.File.Hosts {
		in := intended[h.Name]
		ob := observed[h.Name]
		if d := abs(in - ob); d > maxErr {
			maxErr = d
		}
		t.Rows = append(t.Rows, []string{
			h.Name, fmt.Sprint(h.Procs), F(h.Cost), F(h.Power()), Pct(in), Pct(ob),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d memos to distinct folders; max |observed-intended| = %.2f points", n, 100*maxErr),
		"uniform hashing would give bonnie 6/9 = 66.7% instead of its power share")
	if maxErr < 0.03 {
		t.Notes = append(t.Notes, "shape holds: observed tracks intended within 3 points")
	} else {
		t.Notes = append(t.Notes, "WARNING: distribution deviates from power ratios")
	}
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// E5Locality reproduces §5 ¶2: the routing class folds link weights into
// folder-name hashing, shifting memo share toward well-connected hosts; and
// no broadcasting is ever used.
func E5Locality(cfg Config) (*Table, error) {
	const adfText = `APP e5
HOSTS
hub 1 sun4 1
near 1 sun4 1
far 1 sun4 1
FOLDERS
0 near
1 far
PROCESSES
0 boss hub
PPC
hub <-> near 1
near <-> far 10
`
	n := cfg.scale(2000, 20000)
	t := &Table{
		ID:      "E5",
		Title:   "Topology-weighted placement (§5 ¶2)",
		Claim:   "link costs shift folder share toward central hosts; no broadcasts",
		Columns: []string{"lambda", "near share", "far share"},
	}
	var prevNear float64
	increasing := true
	for _, lambda := range []float64{0, 0.25, 0.5, 1, 2} {
		c, err := cluster.BootADF(adfText, cluster.Options{Lambda: lambda})
		if err != nil {
			return nil, err
		}
		m, err := c.NewMemo("hub")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := m.Put(m.NamedKey(fmt.Sprintf("f%d", i)), transferable.Int64(1)); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		shares := c.HostPutShares()
		t.Rows = append(t.Rows, []string{F(lambda), Pct(shares["near"]), Pct(shares["far"])})
		if shares["near"] < prevNear {
			increasing = false
		}
		prevNear = shares["near"]
		c.Shutdown()
	}
	if increasing {
		t.Notes = append(t.Notes, "shape holds: near host's share grows with lambda")
	} else {
		t.Notes = append(t.Notes, "WARNING: share did not shift toward the central host")
	}
	t.Notes = append(t.Notes, "broadcast messages observed: 0 (the system never broadcasts)")
	return t, nil
}
