package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at quick scale and checks
// that each produced a table whose "shape holds" note is present — i.e. the
// paper's qualitative claim reproduced.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			out := buf.String()
			if !strings.Contains(out, r.ID) {
				t.Fatalf("table missing its ID:\n%s", out)
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "WARNING") {
					t.Errorf("%s claim did not reproduce: %s\n%s", r.ID, n, out)
				}
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("e4"); !ok {
		t.Fatal("Find is not case-insensitive")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:      "EX",
		Title:   "title",
		Claim:   "claim",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"very-long-cell", "b"}},
		Notes:   []string{"note text"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX — title", "claim: claim", "long-column", "very-long-cell", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
