package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/transferable"
	"repro/internal/transport"
)

// E12LinkHealth surfaces the link-resilience layer's health counters as a
// table: per-peer-link dials / failed dials / faults from the memo servers'
// Redialers, client-link counters, and node-level transparent retries —
// measured across a sever/restore cycle injected mid-workload. This is the
// observability follow-up to the PR 3 resilience layer: the same counters
// an operator would watch to see a flapping link heal.
func E12LinkHealth(cfg Config) (*Table, error) {
	const adfText = `APP e12
HOSTS
cli 1 sun4 1
srv 1 sun4 1
FOLDERS
0 srv
PROCESSES
0 boss cli
PPC
cli <-> srv 1
`
	ops := cfg.scale(120, 600)
	c, err := cluster.BootADF(adfText, cluster.Options{
		Chaos: true,
		Resilience: rpc.Resilience{
			Heartbeat: 50 * time.Millisecond,
			Redial:    transport.Backoff{Min: 2 * time.Millisecond, Max: 30 * time.Millisecond},
			Retries:   4,
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	m, err := c.NewMemo("cli")
	if err != nil {
		return nil, err
	}
	k := m.NamedKey("work")
	acked, failed := 0, 0
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			c.Chaos.Sever("cli", "srv")
		}
		if i == ops/3+ops/10 {
			c.Chaos.Restore("cli", "srv")
		}
		if err := m.Put(k, transferable.Int64(int64(i))); err != nil {
			failed++
			continue
		}
		acked++
		if _, _, err := m.GetSkip(k); err != nil {
			failed++
		}
	}

	t := &Table{
		ID:    "E12",
		Title: "Per-link health, redial, and retry counters",
		Claim: "link failures are observable and self-healing: faults trigger bounded redials, safely-retriable calls retry transparently, and the counters expose every step",
		Columns: []string{
			"link", "dials", "failed dials", "faults", "retried calls",
		},
	}
	healedLinks := 0
	for _, host := range []string{"cli", "srv"} {
		n, ok := c.Node(host)
		if !ok {
			return nil, fmt.Errorf("no node %s", host)
		}
		for _, ls := range n.LinkStats() {
			// Transparent retries are counted per node, not per link; the
			// per-link rows leave the column blank and a node-total row
			// follows.
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s->%s (peer)", host, ls.Peer),
				fmt.Sprint(ls.Dials), fmt.Sprint(ls.FailedDials), fmt.Sprint(ls.Faults),
				"-",
			})
			if ls.Dials >= 2 {
				healedLinks++
			}
		}
		if st := n.Stats(); st.Forwards > 0 || st.Retried > 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (node total)", host), "-", "-", "-", fmt.Sprint(st.Retried),
			})
		}
	}
	cs := m.ClientStats()
	t.Rows = append(t.Rows, []string{
		"app->cli (client)",
		fmt.Sprint(cs.Dials), fmt.Sprint(cs.FailedDials), fmt.Sprint(cs.Faults),
		fmt.Sprint(cs.Retried),
	})

	// The same counters back the metric registry — the stats structs above
	// and a /metrics scrape read one set of instances. Cross-check via a
	// registry snapshot of the client-side node.
	if n, ok := c.Node("cli"); ok {
		reg := obs.NewRegistry()
		n.RegisterMetrics(reg)
		var regRetried, regDials int64
		for _, s := range reg.Snapshot() {
			for _, sm := range s.Samples {
				switch s.Name {
				case "node_retried_total":
					regRetried = *sm.Value
				case "node_link_dials_total":
					regDials = *sm.Value
				}
			}
		}
		st := n.Stats()
		var lsDials int64
		for _, ls := range n.LinkStats() {
			lsDials += ls.Dials
		}
		if regRetried != st.Retried || regDials != lsDials {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: registry snapshot disagrees with stats structs (retried %d vs %d, dials %d vs %d)",
				regRetried, st.Retried, regDials, lsDials))
		} else {
			t.Notes = append(t.Notes, "registry cross-check: node_retried_total and node_link_dials_total match the Stats/LinkStats snapshots (one counter set backs both)")
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d ops: %d acked, %d failed across the sever window; %d peer links re-dialed (healed) after restore",
		ops, acked, failed, healedLinks))
	if healedLinks == 0 {
		t.Notes = append(t.Notes, "WARNING: no peer link recorded a re-dial; the sever window may not have faulted the link")
	}
	return t, nil
}
