// Package bench is the experiment harness: one function per experiment in
// DESIGN.md §4 (E1–E14), each returning a printable table reproducing a
// figure or claim of the paper (E11–E14 quantify this reproduction's own
// scaling, resilience, memory-management, and observability layers). cmd/dmemo-bench
// drives them from the command line; the repository-root bench_test.go
// wraps them as testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// tableJSON is the machine-readable shape of a Table. Field names are
// stable: downstream tooling diffs these files across PRs to track the
// perf trajectory.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// WriteJSON writes the table as BENCH_<ID>.json under dir (created if
// needed), one file per experiment, and returns the file path.
func (t *Table) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(tableJSON{
		ID: t.ID, Title: t.Title, Claim: t.Claim,
		Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	return path, os.WriteFile(path, append(blob, '\n'), 0o644)
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// D formats a duration compactly.
func D(d time.Duration) string { return d.Round(time.Microsecond).String() }

// Config scales experiment workloads.
type Config struct {
	// Quick shrinks workloads for CI-speed runs.
	Quick bool
}

// scale picks a workload size.
func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(cfg Config) (*Table, error)
}

// All lists every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "thread-cache", E1ThreadCache},
		{"E2", "inter-machine hops", E2InterMachine},
		{"E3", "topology routing", E3Topology},
		{"E4", "memo distribution", E4Distribution},
		{"E5", "locality-weighted placement", E5Locality},
		{"E6", "grain size", E6Grain},
		{"E7", "vs Linda", E7VsLinda},
		{"E8", "coordination structures", E8Structures},
		{"E9", "transferable scaling", E9Transferable},
		{"E10", "languages on the API", E10Languages},
		{"E11", "rpc batching amortization", E11Batching},
		{"E12", "link health and retries", E12LinkHealth},
		{"E13", "hot-path allocations (pooled vs seed)", E13AllocHotPath},
		{"E14", "instrumentation overhead", E14Overhead},
	}
}

// Find locates an experiment by ID (case-insensitive).
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
