package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/obs"
)

// preObsE14 is the recorded pre-instrumentation baseline for the E14 table:
// the E13 batched-round-trip rows measured at the commit just before the
// internal/obs metric hooks landed, on the same 1-CPU container the other
// experiment numbers come from. Keyed by caller count.
var preObsE14 = map[int]struct {
	nsOp   float64
	allocs float64
}{
	1:  {112900, 5.005},
	8:  {20410, 2.588},
	64: {3160, 2.101},
}

// E14Overhead quantifies what the observability layer costs the hot path:
// first the primitive record operations in isolation (counter increment,
// gauge add, histogram observe, trace-ID stamp, disabled slow-log check),
// then the full instrumented batched round trip against the recorded
// pre-instrumentation baseline. The instrumented path should stay within
// ~2% ns/op of the baseline with no extra allocs/op.
func E14Overhead(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Instrumentation overhead: metrics + tracing on the hot path",
		Claim: "always-on metrics and span timing cost <=2% round-trip latency and 0 extra allocs/op",
		Columns: []string{
			"measurement", "baseline ns/op", "instrumented ns/op", "baseline allocs/op", "instrumented allocs/op", "overhead",
		},
		Notes: []string{
			"baseline columns are recorded numbers from the pre-instrumentation commit (same workload, same 1-CPU container); see DESIGN.md §10",
			"primitive rows measure the record operation alone (no baseline: they did not exist before this layer)",
		},
	}

	// Primitive record costs, measured by ReadMemStats loops rather than
	// testing.AllocsPerRun so the bench binary needs no testing harness.
	// Each loop also reports allocations, pinning the 0-alloc claim.
	prim := func(name string, fn func()) {
		const iters = 1 << 20
		var ms0, ms1 runtime.MemStats
		fn() // warm once
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		nsOp := float64(elapsed.Nanoseconds()) / iters
		allocsOp := float64(ms1.Mallocs-ms0.Mallocs) / iters
		t.Rows = append(t.Rows, []string{
			name, "-", F(nsOp), "-", F(allocsOp), "-",
		})
	}
	var c obs.Counter
	var g obs.Gauge
	var h obs.Histogram
	var sl *obs.SlowLog // nil: the disabled fast path every un-armed daemon takes
	prim("counter inc", func() { c.Inc() })
	prim("gauge add", func() { g.Add(1) })
	prim("histogram observe", func() { h.Observe(4096) })
	prim("trace-id stamp", func() { _ = obs.NewTraceID() })
	prim("disabled slow-log check", func() {
		if sl.Enabled() {
			panic("nil slow log enabled")
		}
	})

	// The end-to-end check: the same workload as E13, now running with every
	// rpc-layer metric hook live, against the recorded numbers from the
	// commit just before those hooks existed.
	for _, callers := range []int{1, 8, 64} {
		nsOp, allocsOp, err := measureBatchedRoundTrip(cfg, callers)
		if err != nil {
			return nil, err
		}
		base := preObsE14[callers]
		overhead := nsOp/base.nsOp - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("round trip, %d callers", callers),
			F(base.nsOp), F(nsOp), F(base.allocs), F(allocsOp), Pct(overhead),
		})
	}
	return t, nil
}
