package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/transferable"
)

// E11Batching measures round-trip amortization by the rpc batching layer
// (§3.1.1 "communication cost amortized over time"): concurrent small
// requests from one host to a remote folder server coalesce into batch
// frames on the shared memo-server peer link, so per-operation cost falls
// as concurrency rises. The unbatched baseline (rpc.Policy{MaxCount: 1})
// reproduces the pre-batching one-request-per-frame wire behaviour.
func E11Batching(cfg Config) (*Table, error) {
	const adfText = `APP e11
HOSTS
cli 1 sun4 1
srv 1 sun4 1
FOLDERS
0 srv
PROCESSES
0 boss cli
PPC
cli <-> srv 1
`
	opsPerCaller := cfg.scale(30, 200)
	latency := 100 * time.Microsecond

	run := func(pol rpc.Policy, callers int) (time.Duration, error) {
		c, err := cluster.BootADF(adfText, cluster.Options{
			BaseLatency: latency,
			Batch:       pol,
		})
		if err != nil {
			return 0, err
		}
		defer c.Shutdown()
		m, err := c.NewMemo("cli")
		if err != nil {
			return 0, err
		}
		k := m.NamedKey("remote")
		// Warm the forwarding path (peer dial, registration checks).
		if err := m.Put(k, transferable.Int64(0)); err != nil {
			return 0, err
		}
		if _, err := m.Get(k); err != nil {
			return 0, err
		}
		var wg sync.WaitGroup
		errc := make(chan error, callers)
		start := time.Now()
		for w := 0; w < callers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				kw := m.NamedKey("remote", uint32(w))
				for i := 0; i < opsPerCaller; i++ {
					if err := m.Put(kw, transferable.Int64(int64(i))); err != nil {
						errc <- err
						return
					}
					if _, err := m.Get(kw); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return elapsed, nil
	}

	t := &Table{
		ID:    "E11",
		Title: "Round-trip amortization by rpc batching (§3.1.1)",
		Claim: "coalescing concurrent small requests into batch frames amortizes per-message link cost; throughput rises with concurrency",
		Columns: []string{
			"concurrent callers", "ops", "unbatched us/op", "batched us/op", "speedup",
		},
	}
	var speedupAtMax float64
	var single float64 = 1
	for _, callers := range []int{1, 8, 64} {
		ops := 2 * opsPerCaller * callers // each loop iteration is a put + a get
		un, err := run(rpc.Policy{MaxCount: 1}, callers)
		if err != nil {
			return nil, err
		}
		ba, err := run(rpc.Policy{}, callers)
		if err != nil {
			return nil, err
		}
		unOp := float64(un.Microseconds()) / float64(ops)
		baOp := float64(ba.Microseconds()) / float64(ops)
		speedup := unOp / baOp
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(callers), fmt.Sprint(ops), F(unOp), F(baOp), F(speedup),
		})
		speedupAtMax = speedup
		if callers == 1 {
			single = speedup
		}
	}
	if speedupAtMax >= 1.5 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"shape holds: batching gives %.1fx ops/sec at 64 concurrent callers (%.2fx at 1 — no single-caller regression expected ~1x)",
			speedupAtMax, single))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"WARNING: batching speedup at 64 callers only %.2fx", speedupAtMax))
	}
	return t, nil
}
