package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/linda"
	"repro/internal/lucid"
	"repro/internal/mdc"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// E6Grain reproduces §4.2: applications must pick medium-to-large grain
// sizes; too-small grains drown in communication overhead, too-large grains
// forfeit parallelism.
//
// Work units are simulated compute time (deadline waits), matching the rest
// of the simulation: the paper's workers computed on independent machines,
// which a single-CPU benchmark host cannot express with real cycles, but
// deadline-based work overlaps exactly as independent processors would.
// Communication remains the simulated link latency, so the grain tradeoff
// is the ratio the paper describes.
func E6Grain(cfg Config) (*Table, error) {
	const adfText = `APP e6
HOSTS
boss 1 sun4 1
w1 1 sun4 1
w2 1 sun4 1
w3 1 sun4 1
FOLDERS
0 boss
PROCESSES
0 boss boss
PPC
boss <-> w1 1
boss <-> w2 1
boss <-> w3 1
`
	totalWork := cfg.scale(1<<12, 1<<14) // abstract work units
	const unitDur = 20 * time.Microsecond
	workUnits := func(n int64) {
		deadline := time.Now().Add(time.Duration(n) * unitDur)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	grains := []int{8, 64, 512, 2048, totalWork / 2, totalWork}
	// Dedupe: small totalWork makes the fixed grains collide with the
	// proportional ones.
	seen := map[int]bool{}
	uniq := grains[:0]
	for _, g := range grains {
		if g > 0 && g <= totalWork && !seen[g] {
			seen[g] = true
			uniq = append(uniq, g)
		}
	}
	grains = uniq
	serial := time.Duration(totalWork) * unitDur

	t := &Table{
		ID:      "E6",
		Title:   "Grain size versus speedup (§4.2)",
		Claim:   "small grains lose to communication overhead; huge grains lose parallelism",
		Columns: []string{"grain (units/task)", "tasks", "elapsed", "speedup vs serial"},
	}
	best := 0.0
	bestGrain := 0
	var first, last float64
	for gi, grain := range grains {
		c, err := cluster.BootADF(adfText, cluster.Options{BaseLatency: 200 * time.Microsecond})
		if err != nil {
			return nil, err
		}
		boss, err := c.NewMemo("boss")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		tasks := totalWork / grain
		jobs := boss.NamedKey("jobs")
		done := boss.NamedKey("done")
		var wg sync.WaitGroup
		workerMemos := make([]*core.Memo, 3)
		for w := 0; w < 3; w++ {
			workerMemos[w], err = c.NewMemo(fmt.Sprintf("w%d", w+1))
			if err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		start := time.Now()
		for w := 0; w < 3; w++ {
			worker := workerMemos[w]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, err := worker.Get(jobs)
					if err != nil {
						return
					}
					n, _ := transferable.AsInt(v)
					if n < 0 {
						return
					}
					workUnits(n)
					if err := worker.Put(done, transferable.Int64(n)); err != nil {
						return
					}
				}
			}()
		}
		for i := 0; i < tasks; i++ {
			if err := boss.Put(jobs, transferable.Int64(int64(grain))); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		for i := 0; i < tasks; i++ {
			if _, err := boss.Get(done); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		// A lost poison pill would hang wg.Wait forever; on error, shut the
		// cluster down so the workers' blocked Gets unwind instead.
		for w := 0; w < 3; w++ {
			if err := boss.Put(jobs, transferable.Int64(-1)); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		wg.Wait()
		c.Shutdown()
		speedup := float64(serial) / float64(elapsed)
		if speedup > best {
			best = speedup
			bestGrain = grain
		}
		if gi == 0 {
			first = speedup
		}
		last = speedup
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(grain), fmt.Sprint(tasks), D(elapsed), F(speedup),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("serial baseline %s (simulated compute, 3 workers available); best speedup %.2fx at grain %d", D(serial), best, bestGrain))
	if best > first && best > last && best > 1 {
		t.Notes = append(t.Notes, "shape holds: speedup peaks above 1x at a medium grain (crossover on both sides)")
	} else {
		t.Notes = append(t.Notes, "WARNING: no interior speedup peak observed")
	}
	return t, nil
}

// E7VsLinda reproduces the §7 positioning: D-Memo folder lookup is an
// exact-name hash and stays flat as the space grows, while Linda associative
// matching examines candidate tuples and degrades.
func E7VsLinda(cfg Config) (*Table, error) {
	sizes := []int{100, 1000, 10000}
	if !cfg.Quick {
		sizes = append(sizes, 100000)
	}
	ops := cfg.scale(2000, 20000)
	t := &Table{
		ID:      "E7",
		Title:   "Folder lookup vs Linda associative matching (§7)",
		Claim:   "tuple space is 'a flat directory of unordered queues'; exact-name lookup beats matching as the space grows",
		Columns: []string{"resident items", "D-Memo ns/op", "Linda indexed ns/op", "Linda associative ns/op"},
	}
	var dmemoFirst, dmemoLast, assocFirst, assocLast float64
	for si, n := range sizes {
		// D-Memo: a folder store preloaded with n distinct folders.
		store := folder.NewStore()
		for i := 0; i < n; i++ {
			if err := store.Put(symbol.K(symbol.Symbol(1000+i)), []byte("noise")); err != nil {
				return nil, fmt.Errorf("E7: preload: %w", err)
			}
		}
		hot := symbol.K(7)
		payload := []byte("payload")
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := store.Put(hot, payload); err != nil {
				return nil, fmt.Errorf("E7: put: %w", err)
			}
			_, ok, err := store.GetSkip(hot)
			if err != nil {
				return nil, fmt.Errorf("E7: get-skip: %w", err)
			}
			if !ok {
				return nil, fmt.Errorf("E7: lost memo")
			}
		}
		dmemoNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

		// Linda indexed: distinct first-field actuals (best case).
		spIdx := linda.NewSpace()
		for i := 0; i < n; i++ {
			spIdx.Out(linda.Tuple{transferable.String(fmt.Sprintf("noise%d", i)), transferable.Int64(int64(i))})
		}
		hotT := linda.Tuple{transferable.String("hot"), transferable.Int64(1)}
		hotP := linda.Template{linda.A(transferable.String("hot")), linda.Any()}
		start = time.Now()
		for i := 0; i < ops; i++ {
			spIdx.Out(hotT)
			if _, ok := spIdx.Inp(hotP); !ok {
				return nil, fmt.Errorf("E7: lost tuple")
			}
		}
		lindaIdxNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

		// Linda associative: composite first fields defeat indexing; the
		// match template uses a formal, so candidates are scanned.
		spAssoc := linda.NewSpace()
		for i := 0; i < n; i++ {
			spAssoc.Out(linda.Tuple{
				transferable.NewList(transferable.Int64(int64(i))),
				transferable.Int64(int64(i)),
			})
		}
		assocP := linda.Template{linda.F(transferable.TagList), linda.A(transferable.Int64(int64(n - 1)))}
		assocOps := ops / 10
		if assocOps == 0 {
			assocOps = 1
		}
		start = time.Now()
		for i := 0; i < assocOps; i++ {
			if _, ok := spAssoc.Rdp(assocP); !ok {
				return nil, fmt.Errorf("E7: associative match failed")
			}
		}
		lindaAssocNs := float64(time.Since(start).Nanoseconds()) / float64(assocOps)

		if si == 0 {
			dmemoFirst, assocFirst = dmemoNs, lindaAssocNs
		}
		dmemoLast, assocLast = dmemoNs, lindaAssocNs
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), F(dmemoNs), F(lindaIdxNs), F(lindaAssocNs),
		})
	}
	dmemoGrowth := dmemoLast / dmemoFirst
	assocGrowth := assocLast / assocFirst
	t.Notes = append(t.Notes, fmt.Sprintf("growth from smallest to largest space: D-Memo %.1fx, Linda associative %.1fx", dmemoGrowth, assocGrowth))
	if assocGrowth > 4*dmemoGrowth {
		t.Notes = append(t.Notes, "shape holds: associative matching degrades with space size; folder lookup stays flat")
	} else {
		t.Notes = append(t.Notes, "WARNING: expected associative matching to degrade much faster than folder lookup")
	}
	return t, nil
}

// E8Structures measures every §6.2/§6.3 coordination structure end to end
// over a two-host cluster.
func E8Structures(cfg Config) (*Table, error) {
	const adfText = `APP e8
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
PPC
a <-> b 1
`
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	m, err := c.NewMemo("a")
	if err != nil {
		return nil, err
	}
	ops := cfg.scale(500, 5000)
	t := &Table{
		ID:      "E8",
		Title:   "Coordination structures built from folders (§6.2, §6.3)",
		Claim:   "named objects, arrays, queues, job jars, futures, I-structures, locks, semaphores, barriers and dataflow triggers all reduce to put/get on folders",
		Columns: []string{"structure", "operation", "ops", "us/op"},
	}
	row := func(name, op string, n int, d time.Duration) {
		t.Rows = append(t.Rows, []string{name, op, fmt.Sprint(n), F(float64(d.Microseconds()) / float64(n))})
	}

	q := collect.NewQueue(m)
	start := time.Now()
	for i := 0; i < ops; i++ {
		q.Enqueue(transferable.Int64(int64(i)))
		q.Dequeue()
	}
	row("queue", "enqueue+dequeue", ops, time.Since(start))

	obj, err := collect.NewNamedObject(m, transferable.Int64(0))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		obj.Update(func(v transferable.Value) (transferable.Value, error) {
			n, _ := transferable.AsInt(v)
			return transferable.Int64(n + 1), nil
		})
	}
	row("named object", "atomic update", ops, time.Since(start))

	arr := collect.NewArray(m, 64, 64)
	start = time.Now()
	for i := 0; i < ops; i++ {
		arr.Set(transferable.Int64(int64(i)), uint32(i%64), uint32((i/64)%64))
		arr.Get(uint32(i%64), uint32((i/64)%64))
	}
	row("array", "set+get", ops, time.Since(start))

	jar := collect.NewJobJar(m, "e8jar").WithLocal(1)
	start = time.Now()
	for i := 0; i < ops; i++ {
		jar.Add(transferable.Int64(int64(i)))
		jar.GetWork()
	}
	row("job jar", "add+get_work(alt)", ops, time.Since(start))

	futOps := ops / 5
	start = time.Now()
	for i := 0; i < futOps; i++ {
		f, err := collect.NewFuture(m)
		if err != nil {
			return nil, err
		}
		f.Resolve(transferable.Int64(int64(i)))
		f.Wait()
	}
	row("future", "create+resolve+wait", futOps, time.Since(start))

	lock, err := collect.NewLock(m)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		lock.Lock()
		lock.Unlock()
	}
	row("lock", "lock+unlock", ops, time.Since(start))

	sem, err := collect.NewSemaphore(m, 4)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		sem.P()
		sem.V()
	}
	row("semaphore", "P+V", ops, time.Since(start))

	barOps := ops / 10
	bar, err := collect.NewBarrier(m, 2)
	if err != nil {
		return nil, err
	}
	m2, err := c.NewMemo("b")
	if err != nil {
		return nil, err
	}
	bar2 := collect.BindBarrier(m2, bar.Name(), 2)
	start = time.Now()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < barOps; i++ {
			if err := bar2.Await(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < barOps; i++ {
		if err := bar.Await(); err != nil {
			return nil, err
		}
	}
	if err := <-done; err != nil {
		return nil, err
	}
	row("barrier", "2-party await", barOps, time.Since(start))

	trigOps := ops / 5
	start = time.Now()
	for i := 0; i < trigOps; i++ {
		operand := m.NamedKey("e8op", uint32(i))
		sink := m.NamedKey("e8sink")
		if err := collect.Trigger(m, operand, sink, transferable.Int64(int64(i))); err != nil {
			return nil, err
		}
		// A failed arm Put would leave the collect Get blocked forever.
		if err := m.Put(operand, transferable.Nil{}); err != nil {
			return nil, err
		}
		if _, err := m.Get(sink); err != nil {
			return nil, err
		}
		if _, _, err := m.GetSkip(operand); err != nil { // clean the trigger memo
			return nil, err
		}
	}
	row("dataflow trigger", "arm+fire+collect", trigOps, time.Since(start))

	return t, nil
}

// E9Transferable reproduces §3.1.3: arbitrary structures (with sharing and
// cycles) encode and decode in time linear in their size.
func E9Transferable(cfg Config) (*Table, error) {
	sizes := []int{100, 1000, 10000}
	if !cfg.Quick {
		sizes = append(sizes, 100000)
	}
	t := &Table{
		ID:      "E9",
		Title:   "Transferable linearization scaling (§3.1.3)",
		Claim:   "spanning-tree encode/decode of arbitrary structures is (near-)linear in nodes",
		Columns: []string{"nodes", "bytes", "encode ns/node", "decode ns/node"},
	}
	var firstEnc, lastEnc float64
	for si, n := range sizes {
		root := randomGraph(n)
		nodes := transferable.NodeCount(root)
		reps := cfg.scale(3, 10)
		var data []byte
		start := time.Now()
		var err error
		for r := 0; r < reps; r++ {
			data, err = transferable.Marshal(root)
			if err != nil {
				return nil, err
			}
		}
		encNs := float64(time.Since(start).Nanoseconds()) / float64(reps) / float64(nodes)
		start = time.Now()
		for r := 0; r < reps; r++ {
			if _, err := transferable.Unmarshal(data, transferable.Domain64); err != nil {
				return nil, err
			}
		}
		decNs := float64(time.Since(start).Nanoseconds()) / float64(reps) / float64(nodes)
		if si == 0 {
			firstEnc = encNs
		}
		lastEnc = encNs
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nodes), fmt.Sprint(len(data)), F(encNs), F(decNs),
		})
	}
	if lastEnc < 8*firstEnc {
		t.Notes = append(t.Notes, "shape holds: per-node cost roughly flat across 3 orders of magnitude (linear total)")
	} else {
		t.Notes = append(t.Notes, "WARNING: per-node cost grew superlinearly")
	}
	return t, nil
}

// randomGraph builds a deterministic pseudo-random DAG-with-back-edges of
// about n composite nodes, including shared substructure and cycles.
func randomGraph(n int) transferable.Value {
	nodes := make([]*transferable.List, n)
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		nodes[i] = transferable.NewList(transferable.Int64(int64(i)))
	}
	for i := 1; i < n; i++ {
		parent := int(next() % uint64(i))
		nodes[parent].Append(nodes[i])
		if next()%8 == 0 { // shared reference
			other := int(next() % uint64(i))
			nodes[other].Append(nodes[i])
		}
		if next()%16 == 0 { // back edge (cycle)
			nodes[i].Append(nodes[int(next()%uint64(i))])
		}
	}
	return nodes[0]
}

// E10Languages reproduces §2's claim that higher-level languages run on the
// API: MDC actor messaging and Lucid demand-driven evaluation.
func E10Languages(cfg Config) (*Table, error) {
	const adfText = `APP e10
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
PPC
a <-> b 1
`
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	t := &Table{
		ID:      "E10",
		Title:   "Languages implemented on the API (§2)",
		Claim:   "MDC (Actors) and Lucid (dataflow) run on top of D-Memo",
		Columns: []string{"language", "workload", "metric", "value"},
	}

	// MDC ping-pong across hosts.
	ma, err := c.NewMemo("a")
	if err != nil {
		return nil, err
	}
	mb, err := c.NewMemo("b")
	if err != nil {
		return nil, err
	}
	sysA := mdc.NewSystem(ma)
	sysB := mdc.NewSystem(mb)
	defer sysA.Shutdown()
	defer sysB.Shutdown()
	msgs := cfg.scale(500, 5000)
	doneCh := make(chan struct{})
	var pongRef mdc.Ref
	pingRef := sysA.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		if n >= int64(msgs) {
			close(doneCh)
			ctx.Stop()
			return nil
		}
		return ctx.Send(pongRef, transferable.Int64(n+1))
	})
	pongRef = sysB.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		return ctx.Send(pingRef, transferable.Int64(n+1))
	})
	start := time.Now()
	sysA.Send(pingRef, transferable.Int64(0))
	<-doneCh
	elapsed := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"MDC", fmt.Sprintf("ping-pong x%d (cross-host)", msgs), "msgs/sec",
		F(float64(msgs) / elapsed.Seconds()),
	})

	// Lucid: fib via local cache, naturals via the distributed folder cache.
	prog, err := lucid.Parse("fib = 0 fby g; g = 1 fby fib + g;")
	if err != nil {
		return nil, err
	}
	depth := cfg.scale(200, 1000)
	start = time.Now()
	ev := lucid.NewEvaluator(prog, nil)
	if _, err := ev.At("fib", depth); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"Lucid", fmt.Sprintf("fib stream to depth %d (local cache)", depth), "elements/sec",
		F(float64(depth) / time.Since(start).Seconds()),
	})

	distDepth := cfg.scale(50, 300)
	evF := lucid.NewEvaluator(prog, lucid.NewFolderCache(ma))
	start = time.Now()
	if _, err := evF.At("fib", distDepth); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"Lucid", fmt.Sprintf("fib stream to depth %d (folder-space cache)", distDepth), "elements/sec",
		F(float64(distDepth) / time.Since(start).Seconds()),
	})
	t.Notes = append(t.Notes, "both language layers execute purely through the Memo API")
	return t, nil
}
