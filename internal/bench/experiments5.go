package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// seedE13 is the recorded pre-pooling baseline for the E13 table: the
// batched rows of BenchmarkRPCBatchedRoundTrip measured at the PR-5 seed
// commit (before internal/pool and the zero-copy framing path), on the same
// 1-CPU container the other experiment numbers come from. Keyed by caller
// count.
var seedE13 = map[int]struct {
	nsOp   float64
	allocs float64
}{
	1:  {113013, 29},
	8:  {21545, 19},
	64: {3854, 13},
}

// measureBatchedRoundTrip runs the steady-state remote round trip workload
// (the same as BenchmarkRPCBatchedRoundTrip's batched mode: ping round trips
// over sim-latency links through the mux and the batching rpc layer) with the
// given caller count and reports latency and heap allocations per op. Shared
// by E13 (pooled vs seed) and E14 (instrumented vs pre-instrumentation).
func measureBatchedRoundTrip(cfg Config, callers int) (nsOp, allocsOp float64, err error) {
	const linkDelay = 50 * time.Microsecond
	opsPerCaller := cfg.scale(200, 2000)

	model := transport.NewNetModel(linkDelay)
	model.SetLink("cli", "srv", 1)
	model.SetLink("srv", "cli", 1)
	sim := transport.NewSim(model)
	l, err := sim.Listen("srv/rpc")
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mux := transport.NewMux(conn, 1<<20)
			go mux.Run()
			go func() {
				for {
					ch, err := mux.Accept()
					if err != nil {
						return
					}
					go rpc.Serve(ch, func(q *wire.Request, _ <-chan struct{}) *wire.Response {
						return wire.OK()
					}, nil, rpc.Policy{})
				}
			}()
		}
	}()
	conn, err := sim.DialFrom("cli", "srv/rpc")
	if err != nil {
		return 0, 0, err
	}
	mux := transport.NewMux(conn, 1<<20)
	go mux.Run()
	defer mux.Close()
	c := rpc.NewConn(mux.Channel(1), rpc.Policy{})
	defer c.Close()

	// Warm the path (and the buffer pools) so setup cost stays out of
	// the measurement.
	for i := 0; i < 32; i++ {
		if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
			return 0, 0, err
		}
	}

	total := int64(opsPerCaller * callers)
	var next, failed atomic.Int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= total {
				if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if failed.Load() > 0 {
		return 0, 0, fmt.Errorf("%d calls failed", failed.Load())
	}
	nsOp = float64(elapsed.Nanoseconds()) / float64(total)
	allocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
	return nsOp, allocsOp, nil
}

// E13AllocHotPath measures per-operation heap allocations and latency of
// the steady-state remote round trip and compares them against the recorded
// seed baseline. The pooled path should hold allocs/op ≥70% under the seed
// at 8 and 64 callers with no single-caller latency regression.
func E13AllocHotPath(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Hot-path allocations: pooled vs. seed path (batched rpc round trip)",
		Claim: "pooled buffers + zero-copy framing cut steady-state allocs/op >=70% with no single-caller latency regression",
		Columns: []string{
			"concurrent callers", "seed ns/op", "pooled ns/op", "seed allocs/op", "pooled allocs/op", "allocs cut",
		},
		Notes: []string{
			"seed columns are recorded numbers from the pre-pooling commit (same workload, same 1-CPU container); see DESIGN.md §8",
		},
	}
	for _, callers := range []int{1, 8, 64} {
		nsOp, allocsOp, err := measureBatchedRoundTrip(cfg, callers)
		if err != nil {
			return nil, err
		}
		seed := seedE13[callers]
		cut := 1 - allocsOp/seed.allocs
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(callers), F(seed.nsOp), F(nsOp), F(seed.allocs), F(allocsOp), Pct(cut),
		})
	}
	return t, nil
}
