package transferable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/symbol"
)

// KeyValue wraps a folder key so keys can travel inside memos (the paper's
// applications pass folder names around, e.g. reply-to folders).
type KeyValue struct {
	K symbol.Key
}

// Tag implements Value.
func (KeyValue) Tag() Tag { return TagKey }

// UserValue is implemented by application-defined transferables. They are
// composites: identity is preserved across the wire so shared or cyclic
// references to a user value survive transfer.
type UserValue interface {
	Value
	// TypeName is the registered wire name of the type.
	TypeName() string
	// EncodeFields writes the value's payload.
	EncodeFields(e *Encoder) error
	// DecodeFields reads the payload written by EncodeFields.
	DecodeFields(d *Decoder) error
}

var userTypes struct {
	sync.RWMutex
	factory map[string]func() UserValue
}

// RegisterUserType makes a user transferable decodable. The factory must
// return a fresh zero value; name must be globally unique. Registering the
// same name twice panics, mirroring gob's behaviour for programmer errors.
func RegisterUserType(name string, factory func() UserValue) {
	userTypes.Lock()
	defer userTypes.Unlock()
	if userTypes.factory == nil {
		userTypes.factory = make(map[string]func() UserValue)
	}
	if _, dup := userTypes.factory[name]; dup {
		panic("transferable: duplicate user type " + name)
	}
	userTypes.factory[name] = factory
}

func lookupUserType(name string) (func() UserValue, bool) {
	userTypes.RLock()
	defer userTypes.RUnlock()
	f, ok := userTypes.factory[name]
	return f, ok
}

// Encoder linearizes a value graph. Composite nodes (*List, *Record, user
// values) are assigned ids in spanning-tree discovery order; revisiting a
// node emits a back-reference instead of recursing, so cyclic and shared
// structures encode in time linear in the number of nodes and edges.
type Encoder struct {
	buf  bytes.Buffer
	ids  map[any]uint64
	next uint64
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{ids: make(map[any]uint64)}
}

// Bytes returns the encoded form.
func (e *Encoder) Bytes() []byte { return e.buf.Bytes() }

func (e *Encoder) writeTag(t Tag) { e.buf.WriteByte(byte(t)) }
func (e *Encoder) writeUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}
func (e *Encoder) writeVarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}
func (e *Encoder) writeString(s string) {
	e.writeUvarint(uint64(len(s)))
	e.buf.WriteString(s)
}
func (e *Encoder) writeBytes(b []byte) {
	e.writeUvarint(uint64(len(b)))
	e.buf.Write(b)
}

// WriteUint encodes an unsigned payload integer (for user types).
func (e *Encoder) WriteUint(v uint64) { e.writeUvarint(v) }

// WriteInt encodes a signed payload integer (for user types).
func (e *Encoder) WriteInt(v int64) { e.writeVarint(v) }

// WriteString encodes a payload string (for user types).
func (e *Encoder) WriteString(s string) { e.writeString(s) }

// WriteFloat encodes a payload float (for user types).
func (e *Encoder) WriteFloat(v float64) { e.writeUvarint(math.Float64bits(v)) }

// WriteValue encodes a nested value (for user types).
func (e *Encoder) WriteValue(v Value) error { return e.Encode(v) }

// Encode appends v to the encoder's buffer.
func (e *Encoder) Encode(v Value) error {
	switch x := v.(type) {
	case nil:
		e.writeTag(TagNil)
	case Nil:
		e.writeTag(TagNil)
	case Bool:
		e.writeTag(TagBool)
		if x {
			e.buf.WriteByte(1)
		} else {
			e.buf.WriteByte(0)
		}
	case Int8:
		e.writeTag(TagInt8)
		e.writeVarint(int64(x))
	case Int16:
		e.writeTag(TagInt16)
		e.writeVarint(int64(x))
	case Int32:
		e.writeTag(TagInt32)
		e.writeVarint(int64(x))
	case Int64:
		e.writeTag(TagInt64)
		e.writeVarint(int64(x))
	case Uint8:
		e.writeTag(TagUint8)
		e.writeUvarint(uint64(x))
	case Uint16:
		e.writeTag(TagUint16)
		e.writeUvarint(uint64(x))
	case Uint32:
		e.writeTag(TagUint32)
		e.writeUvarint(uint64(x))
	case Uint64:
		e.writeTag(TagUint64)
		e.writeUvarint(uint64(x))
	case Float32:
		e.writeTag(TagFloat32)
		e.writeUvarint(uint64(math.Float32bits(float32(x))))
	case Float64:
		e.writeTag(TagFloat64)
		e.writeUvarint(math.Float64bits(float64(x)))
	case String:
		e.writeTag(TagString)
		e.writeString(string(x))
	case Bytes:
		e.writeTag(TagBytes)
		e.writeBytes([]byte(x))
	case Native:
		e.writeTag(TagNative)
		e.writeUvarint(uint64(x.Bits))
		e.writeVarint(x.V)
	case NativeFloat:
		e.writeTag(TagNativeFloat)
		e.writeUvarint(uint64(x.Bits))
		e.writeUvarint(math.Float64bits(x.V))
	case KeyValue:
		e.writeTag(TagKey)
		e.writeUvarint(uint64(x.K.S))
		e.writeUvarint(uint64(len(x.K.X)))
		for _, xi := range x.K.X {
			e.writeUvarint(uint64(xi))
		}
	case *List:
		if x == nil {
			e.writeTag(TagNil)
			return nil
		}
		if id, seen := e.ids[x]; seen {
			e.writeTag(TagRef)
			e.writeUvarint(id)
			return nil
		}
		id := e.next
		e.next++
		e.ids[x] = id
		e.writeTag(TagList)
		e.writeUvarint(id)
		e.writeUvarint(uint64(len(x.Items)))
		for _, item := range x.Items {
			if err := e.Encode(item); err != nil {
				return err
			}
		}
	case *Record:
		if x == nil {
			e.writeTag(TagNil)
			return nil
		}
		if id, seen := e.ids[x]; seen {
			e.writeTag(TagRef)
			e.writeUvarint(id)
			return nil
		}
		id := e.next
		e.next++
		e.ids[x] = id
		e.writeTag(TagRecord)
		e.writeUvarint(id)
		e.writeUvarint(uint64(len(x.fields)))
		for _, f := range x.fields {
			e.writeString(f.name)
			if err := e.Encode(f.val); err != nil {
				return err
			}
		}
	case UserValue:
		if id, seen := e.ids[x]; seen {
			e.writeTag(TagRef)
			e.writeUvarint(id)
			return nil
		}
		id := e.next
		e.next++
		e.ids[x] = id
		e.writeTag(TagUser)
		e.writeUvarint(id)
		e.writeString(x.TypeName())
		if err := x.EncodeFields(e); err != nil {
			return err
		}
	default:
		return fmt.Errorf("transferable: cannot encode %T", v)
	}
	return nil
}

// Decoder reads values written by Encoder. The Domain field gates native
// value decoding (see ErrLossy).
type Decoder struct {
	r      *bytes.Reader
	refs   map[uint64]Value
	Domain Domain
}

// NewDecoder returns a decoder over data for a host with the given domain.
func NewDecoder(data []byte, d Domain) *Decoder {
	return &Decoder{r: bytes.NewReader(data), refs: make(map[uint64]Value), Domain: d}
}

// Remaining reports how many undecoded bytes remain.
func (d *Decoder) Remaining() int { return d.r.Len() }

func (d *Decoder) readTag() (Tag, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return TagInvalid, err
	}
	return Tag(b), nil
}

func (d *Decoder) readUvarint() (uint64, error) { return binary.ReadUvarint(d.r) }
func (d *Decoder) readVarint() (int64, error)   { return binary.ReadVarint(d.r) }

func (d *Decoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.r.Len()) {
		return "", errors.New("transferable: truncated string")
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *Decoder) readBytes() ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.r.Len()) {
		return nil, errors.New("transferable: truncated bytes")
	}
	b := make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(d.r, b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ReadUint decodes an unsigned payload integer (for user types).
func (d *Decoder) ReadUint() (uint64, error) { return d.readUvarint() }

// ReadInt decodes a signed payload integer (for user types).
func (d *Decoder) ReadInt() (int64, error) { return d.readVarint() }

// ReadString decodes a payload string (for user types).
func (d *Decoder) ReadString() (string, error) { return d.readString() }

// ReadFloat decodes a payload float (for user types).
func (d *Decoder) ReadFloat() (float64, error) {
	bits, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// ReadValue decodes a nested value (for user types).
func (d *Decoder) ReadValue() (Value, error) { return d.Decode() }

// Decode reads the next value.
func (d *Decoder) Decode() (Value, error) {
	tag, err := d.readTag()
	if err != nil {
		return nil, err
	}
	switch tag {
	case TagNil:
		return Nil{}, nil
	case TagBool:
		b, err := d.r.ReadByte()
		if err != nil {
			return nil, err
		}
		return Bool(b != 0), nil
	case TagInt8:
		v, err := d.readVarint()
		return Int8(v), err
	case TagInt16:
		v, err := d.readVarint()
		return Int16(v), err
	case TagInt32:
		v, err := d.readVarint()
		return Int32(v), err
	case TagInt64:
		v, err := d.readVarint()
		return Int64(v), err
	case TagUint8:
		v, err := d.readUvarint()
		return Uint8(v), err
	case TagUint16:
		v, err := d.readUvarint()
		return Uint16(v), err
	case TagUint32:
		v, err := d.readUvarint()
		return Uint32(v), err
	case TagUint64:
		v, err := d.readUvarint()
		return Uint64(v), err
	case TagFloat32:
		bits, err := d.readUvarint()
		return Float32(math.Float32frombits(uint32(bits))), err
	case TagFloat64:
		bits, err := d.readUvarint()
		return Float64(math.Float64frombits(bits)), err
	case TagString:
		s, err := d.readString()
		return String(s), err
	case TagBytes:
		b, err := d.readBytes()
		return Bytes(b), err
	case TagNative:
		bits, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		v, err := d.readVarint()
		if err != nil {
			return nil, err
		}
		if err := d.Domain.CheckInt(v); err != nil {
			return nil, err
		}
		return Native{V: v, Bits: int(bits)}, nil
	case TagNativeFloat:
		bits, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		fb, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		v := math.Float64frombits(fb)
		if err := d.Domain.CheckFloat(v); err != nil {
			return nil, err
		}
		return NativeFloat{V: v, Bits: int(bits)}, nil
	case TagKey:
		s, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.r.Len()) {
			return nil, errors.New("transferable: truncated key")
		}
		k := symbol.Key{S: symbol.Symbol(s)}
		if n > 0 {
			k.X = make([]uint32, n)
			for i := range k.X {
				xi, err := d.readUvarint()
				if err != nil {
					return nil, err
				}
				k.X[i] = uint32(xi)
			}
		}
		return KeyValue{K: k}, nil
	case TagList:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		l := &List{}
		// Register before decoding children so cycles resolve to l.
		d.refs[id] = l
		if n > 0 {
			l.Items = make([]Value, 0, min(int(n), 1<<16))
			for i := uint64(0); i < n; i++ {
				item, err := d.Decode()
				if err != nil {
					return nil, err
				}
				l.Items = append(l.Items, item)
			}
		}
		return l, nil
	case TagRecord:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		r := NewRecord()
		d.refs[id] = r
		for i := uint64(0); i < n; i++ {
			name, err := d.readString()
			if err != nil {
				return nil, err
			}
			v, err := d.Decode()
			if err != nil {
				return nil, err
			}
			r.Set(name, v)
		}
		return r, nil
	case TagUser:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		name, err := d.readString()
		if err != nil {
			return nil, err
		}
		factory, ok := lookupUserType(name)
		if !ok {
			return nil, fmt.Errorf("transferable: unknown user type %q", name)
		}
		u := factory()
		d.refs[id] = u
		if err := u.DecodeFields(d); err != nil {
			return nil, err
		}
		return u, nil
	case TagRef:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		v, ok := d.refs[id]
		if !ok {
			return nil, fmt.Errorf("transferable: dangling back-reference %d", id)
		}
		return v, nil
	}
	return nil, fmt.Errorf("transferable: unknown tag %d", tag)
}

// Marshal encodes a single value to bytes.
func Marshal(v Value) ([]byte, error) {
	e := NewEncoder()
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// Unmarshal decodes a single value for a host with the given domain. Trailing
// bytes are an error: a memo holds exactly one value.
func Unmarshal(data []byte, dom Domain) (Value, error) {
	d := NewDecoder(data, dom)
	v, err := d.Decode()
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("transferable: %d trailing bytes after value", d.Remaining())
	}
	return v, nil
}
