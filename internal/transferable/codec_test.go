package transferable

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/symbol"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	b, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	got, err := Unmarshal(b, Domain64)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	cases := []Value{
		Nil{},
		Bool(true), Bool(false),
		Int8(-128), Int8(127),
		Int16(-32768), Int16(32767),
		Int32(math.MinInt32), Int32(math.MaxInt32),
		Int64(math.MinInt64), Int64(math.MaxInt64),
		Uint8(255), Uint16(65535), Uint32(math.MaxUint32), Uint64(math.MaxUint64),
		Float32(3.14159), Float64(2.718281828459045),
		Float64(math.Inf(1)), Float64(math.Inf(-1)),
		String(""), String("héllo wörld"),
		Bytes(nil), Bytes{0, 1, 2, 255},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !Equal(got, v) {
			t.Errorf("round trip %#v: got %#v", v, got)
		}
	}
}

func TestNaNRoundTrip(t *testing.T) {
	got := roundTrip(t, Float64(math.NaN()))
	f, ok := got.(Float64)
	if !ok || !math.IsNaN(float64(f)) {
		t.Fatalf("NaN round trip: got %#v", got)
	}
}

func TestKeyValueRoundTrip(t *testing.T) {
	k := symbol.K(42, 1, 2, 3)
	got := roundTrip(t, KeyValue{K: k})
	kv, ok := got.(KeyValue)
	if !ok || !kv.K.Equal(k) {
		t.Fatalf("key round trip: got %#v", got)
	}
}

func TestListRoundTrip(t *testing.T) {
	l := NewList(Int64(1), String("two"), NewList(Bool(true)))
	got := roundTrip(t, l).(*List)
	if !Equal(got, l) {
		t.Fatalf("list round trip mismatch")
	}
}

func TestRecordRoundTripPreservesOrder(t *testing.T) {
	r := NewRecord().Set("z", Int64(1)).Set("a", Int64(2)).Set("m", Int64(3))
	got := roundTrip(t, r).(*Record)
	f := got.Fields()
	if len(f) != 3 || f[0] != "z" || f[1] != "a" || f[2] != "m" {
		t.Fatalf("field order not preserved: %v", f)
	}
	if !Equal(got, r) {
		t.Fatal("record round trip mismatch")
	}
}

func TestSelfReferentialList(t *testing.T) {
	l := NewList(Int64(7))
	l.Append(l) // cycle
	got := roundTrip(t, l).(*List)
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	if got.At(1) != Value(got) {
		t.Fatal("cycle not reconstructed: second item is not the list itself")
	}
}

func TestSharedSubstructurePreserved(t *testing.T) {
	shared := NewList(Int64(1), Int64(2))
	top := NewList(shared, shared)
	got := roundTrip(t, top).(*List)
	a, b := got.At(0).(*List), got.At(1).(*List)
	if a != b {
		t.Fatal("shared substructure duplicated on decode")
	}
	a.Items[0] = Int64(99)
	if v, _ := AsInt(b.At(0)); v != 99 {
		t.Fatal("decoded items do not alias")
	}
}

func TestMutualCycle(t *testing.T) {
	a := NewRecord()
	b := NewRecord()
	a.Set("other", b).Set("name", String("a"))
	b.Set("other", a).Set("name", String("b"))
	got := roundTrip(t, a).(*Record)
	gb, _ := got.Get("other")
	gbr := gb.(*Record)
	back, _ := gbr.Get("other")
	if back != Value(got) {
		t.Fatal("mutual cycle not reconstructed")
	}
	if n, _ := gbr.Get("name"); string(n.(String)) != "b" {
		t.Fatal("inner record fields lost")
	}
}

func TestDeepNesting(t *testing.T) {
	// 1000-deep nesting exercises recursive encode/decode without overflow.
	v := Value(Int64(0))
	for i := 0; i < 1000; i++ {
		v = NewList(v)
	}
	got := roundTrip(t, v)
	for i := 0; i < 1000; i++ {
		l, ok := got.(*List)
		if !ok || l.Len() != 1 {
			t.Fatalf("nesting broken at depth %d", i)
		}
		got = l.At(0)
	}
	if n, _ := AsInt(got); n != 0 {
		t.Fatal("leaf lost")
	}
}

func TestLossyNativeInt(t *testing.T) {
	// 64-bit host sends a large native int to a 16-bit host: ErrLossy.
	b, err := Marshal(Native{V: 100000, Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Unmarshal(b, Domain16)
	var lossy *ErrLossy
	if !errors.As(err, &lossy) {
		t.Fatalf("want ErrLossy, got %v", err)
	}
	if lossy.Have != 16 || lossy.Need != 32 {
		t.Fatalf("lossy detail: %+v", lossy)
	}
	// The same value fits a 32-bit host.
	if _, err := Unmarshal(b, Domain32); err != nil {
		t.Fatalf("32-bit host rejected representable value: %v", err)
	}
}

func TestNativeIntFitsSmallValue(t *testing.T) {
	b, err := Marshal(Native{V: 1234, Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Unmarshal(b, Domain16)
	if err != nil {
		t.Fatalf("small native int rejected: %v", err)
	}
	if n := v.(Native); n.V != 1234 {
		t.Fatalf("value = %d", n.V)
	}
}

func TestLossyNativeFloat(t *testing.T) {
	v := 1.0000000001 // not representable in float32
	b, err := Marshal(NativeFloat{V: v, Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Unmarshal(b, Domain16) // FloatBits: 32
	var lossy *ErrLossy
	if !errors.As(err, &lossy) {
		t.Fatalf("want ErrLossy, got %v", err)
	}
	// float32-exact values pass.
	b2, _ := Marshal(NativeFloat{V: 0.5, Bits: 64})
	if _, err := Unmarshal(b2, Domain16); err != nil {
		t.Fatalf("exact value rejected: %v", err)
	}
}

func TestAbsoluteDomainsNeverLossy(t *testing.T) {
	// The paper's prescription: absolute domains transfer losslessly even to
	// the narrowest host.
	for _, v := range []Value{Int64(math.MaxInt64), Float64(1.0000000001), Uint64(math.MaxUint64)} {
		b, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b, Domain16)
		if err != nil {
			t.Fatalf("absolute domain %T rejected on 16-bit host: %v", v, err)
		}
		if !Equal(got, v) {
			t.Fatalf("absolute domain %T altered: %v", v, got)
		}
	}
}

func TestTruncatedInputs(t *testing.T) {
	full, err := Marshal(NewList(String("hello"), Int64(42)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, err := Unmarshal(full[:cut], Domain64); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	b, _ := Marshal(Int64(1))
	if _, err := Unmarshal(append(b, 0xFF), Domain64); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDanglingRefRejected(t *testing.T) {
	e := NewEncoder()
	e.writeTag(TagRef)
	e.writeUvarint(99)
	if _, err := Unmarshal(e.Bytes(), Domain64); err == nil {
		t.Fatal("dangling back-reference accepted")
	}
}

func TestUnknownTagRejected(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE}, Domain64); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestHostileLengthRejected(t *testing.T) {
	// A string claiming 2^40 bytes must be rejected, not allocated.
	e := NewEncoder()
	e.writeTag(TagString)
	e.writeUvarint(1 << 40)
	if _, err := Unmarshal(e.Bytes(), Domain64); err == nil {
		t.Fatal("hostile string length accepted")
	}
	e2 := NewEncoder()
	e2.writeTag(TagBytes)
	e2.writeUvarint(1 << 40)
	if _, err := Unmarshal(e2.Bytes(), Domain64); err == nil {
		t.Fatal("hostile bytes length accepted")
	}
	e3 := NewEncoder()
	e3.writeTag(TagKey)
	e3.writeUvarint(1)       // symbol
	e3.writeUvarint(1 << 40) // vector length
	if _, err := Unmarshal(e3.Bytes(), Domain64); err == nil {
		t.Fatal("hostile key length accepted")
	}
}

// quick-check: any tree of ints/strings round-trips exactly.
func TestQuickRoundTripInts(t *testing.T) {
	f := func(xs []int64) bool {
		l := &List{}
		for _, x := range xs {
			l.Append(Int64(x))
		}
		b, err := Marshal(l)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b, Domain64)
		return err == nil && Equal(got, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripStrings(t *testing.T) {
	f := func(ss []string) bool {
		l := &List{}
		for _, s := range ss {
			l.Append(String(s))
		}
		b, err := Marshal(l)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b, Domain64)
		return err == nil && Equal(got, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNativeLossyIffOutOfRange(t *testing.T) {
	f := func(v int64) bool {
		b, err := Marshal(Native{V: v, Bits: 64})
		if err != nil {
			return false
		}
		_, err = Unmarshal(b, Domain16)
		fits := v >= -32768 && v <= 32767
		if fits {
			return err == nil
		}
		var lossy *ErrLossy
		return errors.As(err, &lossy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type point struct {
	X, Y int64
	Next *point // may form a cycle
}

func (*point) Tag() Tag         { return TagUser }
func (*point) TypeName() string { return "test.point" }

func (p *point) EncodeFields(e *Encoder) error {
	e.WriteInt(p.X)
	e.WriteInt(p.Y)
	if p.Next == nil {
		return e.WriteValue(Nil{})
	}
	return e.WriteValue(p.Next)
}

func (p *point) DecodeFields(d *Decoder) error {
	var err error
	if p.X, err = d.ReadInt(); err != nil {
		return err
	}
	if p.Y, err = d.ReadInt(); err != nil {
		return err
	}
	v, err := d.ReadValue()
	if err != nil {
		return err
	}
	if next, ok := v.(*point); ok {
		p.Next = next
	}
	return nil
}

func init() {
	RegisterUserType("test.point", func() UserValue { return &point{} })
}

func TestUserTypeRoundTrip(t *testing.T) {
	p := &point{X: 3, Y: 4}
	got := roundTrip(t, p).(*point)
	if got.X != 3 || got.Y != 4 || got.Next != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestUserTypeCycle(t *testing.T) {
	a := &point{X: 1}
	b2 := &point{X: 2, Next: a}
	a.Next = b2
	got := roundTrip(t, a).(*point)
	if got.Next == nil || got.Next.Next != got {
		t.Fatal("user-type cycle not reconstructed")
	}
	if got.Next.X != 2 {
		t.Fatalf("fields lost: %+v", got.Next)
	}
}

func TestUnknownUserTypeRejected(t *testing.T) {
	e := NewEncoder()
	e.writeTag(TagUser)
	e.writeUvarint(0)
	e.writeString("no.such.type")
	if _, err := Unmarshal(e.Bytes(), Domain64); err == nil {
		t.Fatal("unknown user type accepted")
	}
}

func TestDuplicateUserTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterUserType("test.point", func() UserValue { return &point{} })
}

func BenchmarkEncodeFlatList(b *testing.B) {
	l := &List{}
	for i := 0; i < 1000; i++ {
		l.Append(Int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFlatList(b *testing.B) {
	l := &List{}
	for i := 0; i < 1000; i++ {
		l.Append(Int64(i))
	}
	data, _ := Marshal(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data, Domain64); err != nil {
			b.Fatal(err)
		}
	}
}
