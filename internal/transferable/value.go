// Package transferable implements D-Memo's transferable classes (paper
// §3.1.3): values that encode and decode themselves in a language- and
// machine-independent way so memos can move between heterogeneous hosts.
//
// Two properties distinguish transferables from plain serialization, both
// taken from the paper:
//
//  1. Arbitrary data structures — including self-referential (cyclic) ones —
//     move intact. The encoder linearizes the object graph along a spanning
//     tree, emitting back-references for already-visited nodes, and the
//     decoder reconstructs the identical shape in linear time.
//
//  2. Concrete domains. Instead of native int/float, applications use
//     absolute domains (Int16, Uint32, Float64, ...), which transfer
//     losslessly everywhere. Native-width values (Native, NativeFloat) are
//     also supported but decoding them checks the destination host's declared
//     word size and reports ErrLossy when the value cannot be represented —
//     the Alpha→80486 example from the paper.
package transferable

import (
	"fmt"
	"strconv"
)

// Tag identifies the wire type of a value.
type Tag byte

// Wire tags. The numeric values are part of the wire format; do not reorder.
const (
	TagInvalid Tag = iota
	TagNil
	TagBool
	TagInt8
	TagInt16
	TagInt32
	TagInt64
	TagUint8
	TagUint16
	TagUint32
	TagUint64
	TagFloat32
	TagFloat64
	TagString
	TagBytes
	TagList
	TagRecord
	TagRef
	TagNative
	TagNativeFloat
	TagKey
	TagUser
)

func (t Tag) String() string {
	switch t {
	case TagNil:
		return "nil"
	case TagBool:
		return "bool"
	case TagInt8:
		return "int8"
	case TagInt16:
		return "int16"
	case TagInt32:
		return "int32"
	case TagInt64:
		return "int64"
	case TagUint8:
		return "uint8"
	case TagUint16:
		return "uint16"
	case TagUint32:
		return "uint32"
	case TagUint64:
		return "uint64"
	case TagFloat32:
		return "float32"
	case TagFloat64:
		return "float64"
	case TagString:
		return "string"
	case TagBytes:
		return "bytes"
	case TagList:
		return "list"
	case TagRecord:
		return "record"
	case TagRef:
		return "ref"
	case TagNative:
		return "native-int"
	case TagNativeFloat:
		return "native-float"
	case TagKey:
		return "key"
	case TagUser:
		return "user"
	}
	return "tag(" + strconv.Itoa(int(t)) + ")"
}

// Value is a transferable datum. All implementations in this package are
// either immutable scalars or the composite types *List and *Record.
type Value interface {
	// Tag reports the wire type.
	Tag() Tag
}

// Scalar absolute-domain types. Each is a distinct Go type so the domain
// travels with the value, exactly as the paper's int16/float32 classes do.
type (
	// Nil is the absent value.
	Nil struct{}
	// Bool is a transferable boolean.
	Bool bool
	// Int8 is the 8-bit signed absolute domain.
	Int8 int8
	// Int16 is the 16-bit signed absolute domain.
	Int16 int16
	// Int32 is the 32-bit signed absolute domain.
	Int32 int32
	// Int64 is the 64-bit signed absolute domain.
	Int64 int64
	// Uint8 is the 8-bit unsigned absolute domain.
	Uint8 uint8
	// Uint16 is the 16-bit unsigned absolute domain.
	Uint16 uint16
	// Uint32 is the 32-bit unsigned absolute domain.
	Uint32 uint32
	// Uint64 is the 64-bit unsigned absolute domain.
	Uint64 uint64
	// Float32 is the single-precision absolute domain.
	Float32 float32
	// Float64 is the double-precision absolute domain.
	Float64 float64
	// String is a transferable UTF-8 string.
	String string
	// Bytes is a transferable byte vector.
	Bytes []byte
)

// Native is an integer in the *sending* host's native width. Decoding checks
// the destination domain and fails with ErrLossy if the value does not fit.
// Bits records the source width (16, 32, or 64).
type Native struct {
	V    int64
	Bits int
}

// NativeFloat is a float in the sending host's native precision. Decoding
// into a narrower domain fails with ErrLossy if precision would be lost.
type NativeFloat struct {
	V    float64
	Bits int // 32 or 64
}

// List is an ordered sequence of values. Lists are reference types: two
// memos may share one list, and a list may (transitively) contain itself.
type List struct {
	Items []Value
}

// Record is a named-field aggregate. Field order is preserved for
// deterministic encoding. Records are reference types like List.
type Record struct {
	fields []field
	index  map[string]int
}

type field struct {
	name string
	val  Value
}

func (Nil) Tag() Tag         { return TagNil }
func (Bool) Tag() Tag        { return TagBool }
func (Int8) Tag() Tag        { return TagInt8 }
func (Int16) Tag() Tag       { return TagInt16 }
func (Int32) Tag() Tag       { return TagInt32 }
func (Int64) Tag() Tag       { return TagInt64 }
func (Uint8) Tag() Tag       { return TagUint8 }
func (Uint16) Tag() Tag      { return TagUint16 }
func (Uint32) Tag() Tag      { return TagUint32 }
func (Uint64) Tag() Tag      { return TagUint64 }
func (Float32) Tag() Tag     { return TagFloat32 }
func (Float64) Tag() Tag     { return TagFloat64 }
func (String) Tag() Tag      { return TagString }
func (Bytes) Tag() Tag       { return TagBytes }
func (Native) Tag() Tag      { return TagNative }
func (NativeFloat) Tag() Tag { return TagNativeFloat }
func (*List) Tag() Tag       { return TagList }
func (*Record) Tag() Tag     { return TagRecord }

// NewList returns a list holding the given items.
func NewList(items ...Value) *List {
	return &List{Items: items}
}

// Len reports the number of items.
func (l *List) Len() int { return len(l.Items) }

// At returns the i'th item.
func (l *List) At(i int) Value { return l.Items[i] }

// Append adds items to the end of the list.
func (l *List) Append(items ...Value) { l.Items = append(l.Items, items...) }

// NewRecord returns an empty record.
func NewRecord() *Record {
	return &Record{index: make(map[string]int)}
}

// Set stores a field, replacing any existing value under the same name while
// preserving its position.
func (r *Record) Set(name string, v Value) *Record {
	if r.index == nil {
		r.index = make(map[string]int)
	}
	if i, ok := r.index[name]; ok {
		r.fields[i].val = v
		return r
	}
	r.index[name] = len(r.fields)
	r.fields = append(r.fields, field{name, v})
	return r
}

// Get returns the value of a field.
func (r *Record) Get(name string) (Value, bool) {
	if r.index == nil {
		return nil, false
	}
	i, ok := r.index[name]
	if !ok {
		return nil, false
	}
	return r.fields[i].val, true
}

// MustGet returns the value of a field or Nil{} when absent.
func (r *Record) MustGet(name string) Value {
	if v, ok := r.Get(name); ok {
		return v
	}
	return Nil{}
}

// Fields returns field names in insertion order.
func (r *Record) Fields() []string {
	out := make([]string, len(r.fields))
	for i, f := range r.fields {
		out[i] = f.name
	}
	return out
}

// Len reports the number of fields.
func (r *Record) Len() int { return len(r.fields) }

// ErrLossy reports a lossy domain mapping: a native-width value arrived at a
// host whose declared domain cannot represent it.
type ErrLossy struct {
	Value  string // textual form of the offending value
	Need   int    // bits required by the value
	Have   int    // bits available in the destination domain
	Domain string // destination domain name
}

func (e *ErrLossy) Error() string {
	return fmt.Sprintf("transferable: lossy domain mapping: value %s needs %d bits but destination %s has %d",
		e.Value, e.Need, e.Domain, e.Have)
}

// Domain describes a host's native word sizes, used only when decoding
// Native and NativeFloat values. Absolute-domain values ignore it.
type Domain struct {
	Name      string
	IntBits   int // 16, 32, or 64
	FloatBits int // 32 or 64
}

// Standard domains mirroring the paper's platform examples.
var (
	// Domain64 models a 64-bit host (the paper's Alpha).
	Domain64 = Domain{Name: "alpha64", IntBits: 64, FloatBits: 64}
	// Domain32 models a 32-bit host (SPARC, Multimax).
	Domain32 = Domain{Name: "sparc32", IntBits: 32, FloatBits: 64}
	// Domain16 models the paper's 16-bit Intel 80486 configuration.
	Domain16 = Domain{Name: "i486-16", IntBits: 16, FloatBits: 32}
)

// bitsNeeded reports the minimum signed width that represents v.
func bitsNeeded(v int64) int {
	switch {
	case v >= -128 && v <= 127:
		return 8
	case v >= -32768 && v <= 32767:
		return 16
	case v >= -2147483648 && v <= 2147483647:
		return 32
	default:
		return 64
	}
}

// CheckInt reports whether v fits d's native integer width.
func (d Domain) CheckInt(v int64) error {
	need := bitsNeeded(v)
	if need > d.IntBits {
		return &ErrLossy{
			Value:  strconv.FormatInt(v, 10),
			Need:   need,
			Have:   d.IntBits,
			Domain: d.Name,
		}
	}
	return nil
}

// CheckFloat reports whether v survives d's native float precision.
func (d Domain) CheckFloat(v float64) error {
	if d.FloatBits >= 64 {
		return nil
	}
	if float64(float32(v)) != v {
		return &ErrLossy{
			Value:  strconv.FormatFloat(v, 'g', -1, 64),
			Need:   64,
			Have:   d.FloatBits,
			Domain: d.Name,
		}
	}
	return nil
}
