package transferable

import (
	"fmt"
	"math"
	"sort"
)

// FromGo converts common Go values into transferables. Integers map to the
// matching absolute domain; maps become records with sorted keys for
// determinism; slices become lists. Unsupported kinds return an error rather
// than panicking so callers can surface application bugs cleanly.
func FromGo(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Nil{}, nil
	case Value:
		return x, nil
	case bool:
		return Bool(x), nil
	case int8:
		return Int8(x), nil
	case int16:
		return Int16(x), nil
	case int32:
		return Int32(x), nil
	case int64:
		return Int64(x), nil
	case int:
		return Int64(x), nil
	case uint8:
		return Uint8(x), nil
	case uint16:
		return Uint16(x), nil
	case uint32:
		return Uint32(x), nil
	case uint64:
		return Uint64(x), nil
	case uint:
		return Uint64(x), nil
	case float32:
		return Float32(x), nil
	case float64:
		return Float64(x), nil
	case string:
		return String(x), nil
	case []byte:
		return Bytes(x), nil
	case []any:
		l := &List{Items: make([]Value, len(x))}
		for i, item := range x {
			tv, err := FromGo(item)
			if err != nil {
				return nil, err
			}
			l.Items[i] = tv
		}
		return l, nil
	case []int:
		l := &List{Items: make([]Value, len(x))}
		for i, item := range x {
			l.Items[i] = Int64(item)
		}
		return l, nil
	case []float64:
		l := &List{Items: make([]Value, len(x))}
		for i, item := range x {
			l.Items[i] = Float64(item)
		}
		return l, nil
	case []string:
		l := &List{Items: make([]Value, len(x))}
		for i, item := range x {
			l.Items[i] = String(item)
		}
		return l, nil
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		r := NewRecord()
		for _, k := range keys {
			tv, err := FromGo(x[k])
			if err != nil {
				return nil, err
			}
			r.Set(k, tv)
		}
		return r, nil
	}
	return nil, fmt.Errorf("transferable: unsupported Go type %T", v)
}

// MustFromGo is FromGo that panics on error; for literals in examples/tests.
func MustFromGo(v any) Value {
	tv, err := FromGo(v)
	if err != nil {
		panic(err)
	}
	return tv
}

// ToGo converts a transferable back to a plain Go value. Lists become
// []any, records map[string]any. Cyclic structures would not terminate;
// callers converting untrusted graphs should Clone first or use the typed
// accessors. Shared (non-cyclic) structure is expanded.
func ToGo(v Value) any {
	switch x := v.(type) {
	case Nil:
		return nil
	case Bool:
		return bool(x)
	case Int8:
		return int8(x)
	case Int16:
		return int16(x)
	case Int32:
		return int32(x)
	case Int64:
		return int64(x)
	case Uint8:
		return uint8(x)
	case Uint16:
		return uint16(x)
	case Uint32:
		return uint32(x)
	case Uint64:
		return uint64(x)
	case Float32:
		return float32(x)
	case Float64:
		return float64(x)
	case String:
		return string(x)
	case Bytes:
		return []byte(x)
	case Native:
		return x.V
	case NativeFloat:
		return x.V
	case KeyValue:
		return x.K
	case *List:
		out := make([]any, len(x.Items))
		for i, item := range x.Items {
			out[i] = ToGo(item)
		}
		return out
	case *Record:
		out := make(map[string]any, len(x.fields))
		for _, f := range x.fields {
			out[f.name] = ToGo(f.val)
		}
		return out
	}
	return v
}

// AsInt extracts an integer from any integer-domain value.
func AsInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case Int8:
		return int64(x), true
	case Int16:
		return int64(x), true
	case Int32:
		return int64(x), true
	case Int64:
		return int64(x), true
	case Uint8:
		return int64(x), true
	case Uint16:
		return int64(x), true
	case Uint32:
		return int64(x), true
	case Uint64:
		if uint64(x) > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	case Native:
		return x.V, true
	}
	return 0, false
}

// AsFloat extracts a float from any numeric value.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Float32:
		return float64(x), true
	case Float64:
		return float64(x), true
	case NativeFloat:
		return x.V, true
	}
	if i, ok := AsInt(v); ok {
		return float64(i), true
	}
	return 0, false
}

// AsString extracts a string value.
func AsString(v Value) (string, bool) {
	if s, ok := v.(String); ok {
		return string(s), true
	}
	return "", false
}

// Equal reports deep structural equality of two values. Cyclic structures
// are handled: two graphs are equal if their unfoldings match, tracked by a
// visited-pair set.
func Equal(a, b Value) bool {
	return equalRec(a, b, make(map[[2]any]bool))
}

func equalRec(a, b Value, seen map[[2]any]bool) bool {
	if a == nil {
		a = Nil{}
	}
	if b == nil {
		b = Nil{}
	}
	if a.Tag() != b.Tag() {
		return false
	}
	switch x := a.(type) {
	case Nil:
		return true
	case Bool:
		return x == b.(Bool)
	case Int8:
		return x == b.(Int8)
	case Int16:
		return x == b.(Int16)
	case Int32:
		return x == b.(Int32)
	case Int64:
		return x == b.(Int64)
	case Uint8:
		return x == b.(Uint8)
	case Uint16:
		return x == b.(Uint16)
	case Uint32:
		return x == b.(Uint32)
	case Uint64:
		return x == b.(Uint64)
	case Float32:
		return x == b.(Float32)
	case Float64:
		return x == b.(Float64)
	case String:
		return x == b.(String)
	case Bytes:
		y := b.(Bytes)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case Native:
		y := b.(Native)
		return x.V == y.V && x.Bits == y.Bits
	case NativeFloat:
		y := b.(NativeFloat)
		return x.V == y.V && x.Bits == y.Bits
	case KeyValue:
		return x.K.Equal(b.(KeyValue).K)
	case *List:
		y := b.(*List)
		if x == y {
			return true
		}
		pair := [2]any{x, y}
		if seen[pair] {
			return true // already comparing this pair higher in the stack
		}
		seen[pair] = true
		if len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !equalRec(x.Items[i], y.Items[i], seen) {
				return false
			}
		}
		return true
	case *Record:
		y := b.(*Record)
		if x == y {
			return true
		}
		pair := [2]any{x, y}
		if seen[pair] {
			return true
		}
		seen[pair] = true
		if len(x.fields) != len(y.fields) {
			return false
		}
		for i, f := range x.fields {
			if y.fields[i].name != f.name {
				return false
			}
			if !equalRec(f.val, y.fields[i].val, seen) {
				return false
			}
		}
		return true
	}
	// User values: compare by re-encoding. Correct though not cheap.
	ab, errA := Marshal(a)
	bb, errB := Marshal(b)
	if errA != nil || errB != nil {
		return false
	}
	return string(ab) == string(bb)
}

// Clone deep-copies a value, preserving sharing and cycles. Scalars are
// returned as-is (they are immutable); composites are rebuilt with a memo
// table so the copy has the same graph shape as the original. get_copy is
// built on Clone.
func Clone(v Value) Value {
	return cloneRec(v, make(map[any]Value))
}

func cloneRec(v Value, memo map[any]Value) Value {
	switch x := v.(type) {
	case *List:
		if x == nil {
			return Nil{}
		}
		if c, ok := memo[x]; ok {
			return c
		}
		c := &List{Items: make([]Value, len(x.Items))}
		memo[x] = c
		for i, item := range x.Items {
			c.Items[i] = cloneRec(item, memo)
		}
		return c
	case *Record:
		if x == nil {
			return Nil{}
		}
		if c, ok := memo[x]; ok {
			return c
		}
		c := NewRecord()
		memo[x] = c
		for _, f := range x.fields {
			c.Set(f.name, cloneRec(f.val, memo))
		}
		return c
	case Bytes:
		b := make(Bytes, len(x))
		copy(b, x)
		return b
	case KeyValue:
		return KeyValue{K: x.K.Clone()}
	case UserValue:
		if c, ok := memo[x]; ok {
			return c
		}
		// Round-trip through the codec; preserves identity within the value.
		b, err := Marshal(x)
		if err != nil {
			return x
		}
		out, err := Unmarshal(b, Domain64)
		if err != nil {
			return x
		}
		memo[x] = out
		return out
	default:
		return v
	}
}

// NodeCount reports the number of distinct composite nodes reachable from v.
// Used by the E9 benchmark to normalize encode time per node.
func NodeCount(v Value) int {
	seen := make(map[any]bool)
	var walk func(Value)
	walk = func(v Value) {
		switch x := v.(type) {
		case *List:
			if x == nil || seen[x] {
				return
			}
			seen[x] = true
			for _, item := range x.Items {
				walk(item)
			}
		case *Record:
			if x == nil || seen[x] {
				return
			}
			seen[x] = true
			for _, f := range x.fields {
				walk(f.val)
			}
		}
	}
	walk(v)
	return len(seen)
}
