package transferable

import (
	"testing"
)

func TestFromGoScalars(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Nil{}},
		{true, Bool(true)},
		{int8(-5), Int8(-5)},
		{int16(100), Int16(100)},
		{int32(7), Int32(7)},
		{int64(8), Int64(8)},
		{42, Int64(42)},
		{uint8(255), Uint8(255)},
		{uint(9), Uint64(9)},
		{float32(1.5), Float32(1.5)},
		{2.5, Float64(2.5)},
		{"s", String("s")},
	}
	for _, c := range cases {
		got, err := FromGo(c.in)
		if err != nil {
			t.Fatalf("FromGo(%v): %v", c.in, err)
		}
		if !Equal(got, c.want) {
			t.Errorf("FromGo(%v) = %#v want %#v", c.in, got, c.want)
		}
	}
}

func TestFromGoComposites(t *testing.T) {
	v, err := FromGo(map[string]any{
		"name": "job",
		"ids":  []int{1, 2, 3},
		"meta": map[string]any{"ok": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := v.(*Record)
	// Map keys must be sorted for deterministic encoding.
	f := r.Fields()
	if f[0] != "ids" || f[1] != "meta" || f[2] != "name" {
		t.Fatalf("fields not sorted: %v", f)
	}
	back := ToGo(v).(map[string]any)
	if back["name"] != "job" {
		t.Fatalf("ToGo lost name: %v", back)
	}
	ids := back["ids"].([]any)
	if len(ids) != 3 || ids[2] != int64(3) {
		t.Fatalf("ToGo ids: %v", ids)
	}
}

func TestFromGoUnsupported(t *testing.T) {
	if _, err := FromGo(struct{}{}); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if _, err := FromGo([]any{struct{}{}}); err == nil {
		t.Fatal("unsupported nested type accepted")
	}
}

func TestEqualBasic(t *testing.T) {
	if Equal(Int64(1), Int32(1)) {
		t.Fatal("different domains compared equal")
	}
	if !Equal(Nil{}, nil) {
		t.Fatal("nil and Nil should be equal")
	}
	if Equal(NewList(Int64(1)), NewList(Int64(2))) {
		t.Fatal("different lists equal")
	}
	if Equal(NewList(Int64(1)), NewList(Int64(1), Int64(2))) {
		t.Fatal("different lengths equal")
	}
}

func TestEqualCyclic(t *testing.T) {
	mk := func() *List {
		l := NewList(Int64(1))
		l.Append(l)
		return l
	}
	if !Equal(mk(), mk()) {
		t.Fatal("isomorphic cycles unequal")
	}
	a := mk()
	b := NewList(Int64(2))
	b.Append(b)
	if Equal(a, b) {
		t.Fatal("different cycles equal")
	}
}

func TestEqualRecordFieldOrderMatters(t *testing.T) {
	a := NewRecord().Set("x", Int64(1)).Set("y", Int64(2))
	b := NewRecord().Set("y", Int64(2)).Set("x", Int64(1))
	if Equal(a, b) {
		t.Fatal("records with different field order compared equal (encoding would differ)")
	}
}

func TestCloneScalarsIdentity(t *testing.T) {
	v := Int64(5)
	if Clone(v) != Value(v) {
		t.Fatal("scalar clone changed value")
	}
}

func TestCloneDeep(t *testing.T) {
	orig := NewList(NewRecord().Set("n", Int64(1)))
	c := Clone(orig).(*List)
	if !Equal(c, orig) {
		t.Fatal("clone not equal")
	}
	c.At(0).(*Record).Set("n", Int64(99))
	if v, _ := orig.At(0).(*Record).Get("n"); v.(Int64) != 1 {
		t.Fatal("clone shares structure with original")
	}
}

func TestCloneBytesIndependent(t *testing.T) {
	orig := Bytes{1, 2, 3}
	c := Clone(orig).(Bytes)
	c[0] = 9
	if orig[0] != 1 {
		t.Fatal("cloned bytes alias original")
	}
}

func TestClonePreservesCycle(t *testing.T) {
	l := NewList(Int64(1))
	l.Append(l)
	c := Clone(l).(*List)
	if c == l {
		t.Fatal("clone returned original")
	}
	if c.At(1) != Value(c) {
		t.Fatal("clone lost cycle")
	}
}

func TestClonePreservesSharing(t *testing.T) {
	shared := NewList(Int64(1))
	top := NewList(shared, shared)
	c := Clone(top).(*List)
	if c.At(0) != c.At(1) {
		t.Fatal("clone lost sharing")
	}
}

func TestAsIntAsFloatAsString(t *testing.T) {
	if v, ok := AsInt(Uint16(7)); !ok || v != 7 {
		t.Fatalf("AsInt(Uint16) = %d,%v", v, ok)
	}
	if _, ok := AsInt(String("x")); ok {
		t.Fatal("AsInt accepted a string")
	}
	if _, ok := AsInt(Uint64(1 << 63)); ok {
		t.Fatal("AsInt accepted an overflowing uint64")
	}
	if v, ok := AsFloat(Int32(3)); !ok || v != 3.0 {
		t.Fatalf("AsFloat(Int32) = %v,%v", v, ok)
	}
	if v, ok := AsFloat(Float32(0.5)); !ok || v != 0.5 {
		t.Fatalf("AsFloat(Float32) = %v,%v", v, ok)
	}
	if s, ok := AsString(String("hi")); !ok || s != "hi" {
		t.Fatalf("AsString = %q,%v", s, ok)
	}
	if _, ok := AsString(Int64(1)); ok {
		t.Fatal("AsString accepted an int")
	}
}

func TestNodeCount(t *testing.T) {
	shared := NewList()
	top := NewList(shared, shared, NewRecord().Set("s", shared))
	if n := NodeCount(top); n != 3 { // top, shared, record
		t.Fatalf("NodeCount = %d want 3", n)
	}
	cyc := NewList()
	cyc.Append(cyc)
	if n := NodeCount(cyc); n != 1 {
		t.Fatalf("NodeCount(cycle) = %d want 1", n)
	}
	if n := NodeCount(Int64(1)); n != 0 {
		t.Fatalf("NodeCount(scalar) = %d want 0", n)
	}
}

func TestRecordSetReplaces(t *testing.T) {
	r := NewRecord().Set("k", Int64(1)).Set("k", Int64(2))
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	v, _ := r.Get("k")
	if v.(Int64) != 2 {
		t.Fatalf("Get = %v", v)
	}
	if _, ok := NewRecord().Get("missing"); ok {
		t.Fatal("empty record returned a field")
	}
	if _, ok := r.MustGet("missing").(Nil); !ok {
		t.Fatal("MustGet(missing) should be Nil")
	}
}
