package placement

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/adf"
	"repro/internal/routing"
	"repro/internal/symbol"
)

// invertADF mirrors the paper's example: three SPARCs and one SP-1 whose
// processors are half price, with the SP-1 behind a cost-2 link.
const invertADF = `APP invert
HOSTS
glen 1 sun4 1
aurora 1 sun4 1
joliet 1 sun4 1
bonnie 128 sp1 sun4*0.5
FOLDERS
0 glen
1 aurora
2 joliet
3-8 bonnie
PROCESSES
0 boss glen
PPC
glen <-> aurora 1
glen <-> joliet 1
glen <-> bonnie 2
`

func mustParse(t testing.TB, src string) *adf.File {
	t.Helper()
	f, err := adf.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func buildMap(t testing.TB, src string, opt Options) *Map {
	t.Helper()
	f := mustParse(t, src)
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(f, routing.Build(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWeightsNormalized(t *testing.T) {
	m := buildMap(t, invertADF, Options{})
	var sum float64
	for _, s := range m.Servers() {
		if s.Weight <= 0 {
			t.Fatalf("server %d weight %g", s.ID, s.Weight)
		}
		sum += s.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func TestHostSharesMatchPowerRatios(t *testing.T) {
	m := buildMap(t, invertADF, Options{})
	shares := m.HostShares()
	// Powers: glen/aurora/joliet = 1 each, bonnie = 256. Total 259.
	want := map[string]float64{
		"glen":   1.0 / 259,
		"aurora": 1.0 / 259,
		"joliet": 1.0 / 259,
		"bonnie": 256.0 / 259,
	}
	for h, w := range want {
		if math.Abs(shares[h]-w) > 1e-12 {
			t.Errorf("share[%s] = %g want %g", h, shares[h], w)
		}
	}
}

func TestHostShareSplitAcrossServers(t *testing.T) {
	// bonnie's six folder servers each carry 1/6 of bonnie's share.
	m := buildMap(t, invertADF, Options{})
	var bonnieServers []Server
	for _, s := range m.Servers() {
		if s.Host == "bonnie" {
			bonnieServers = append(bonnieServers, s)
		}
	}
	if len(bonnieServers) != 6 {
		t.Fatalf("bonnie servers = %d", len(bonnieServers))
	}
	for _, s := range bonnieServers[1:] {
		if math.Abs(s.Weight-bonnieServers[0].Weight) > 1e-12 {
			t.Fatalf("bonnie servers unequal: %g vs %g", s.Weight, bonnieServers[0].Weight)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	m1 := buildMap(t, invertADF, Options{Lambda: 0.5})
	m2 := buildMap(t, invertADF, Options{Lambda: 0.5})
	reg := symbol.NewRegistry()
	for i := 0; i < 500; i++ {
		k := symbol.K(reg.Intern(fmt.Sprintf("f%d", i)), uint32(i))
		a := m1.Place(k)
		b := m2.Place(k)
		if a.ID != b.ID {
			t.Fatalf("key %v placed at %d and %d by identical maps", k, a.ID, b.ID)
		}
	}
}

func TestPlaceHashAgreesWithPlace(t *testing.T) {
	m := buildMap(t, invertADF, Options{})
	k := symbol.K(7, 1, 2)
	if m.Place(k).ID != m.PlaceHash(k.Hash()).ID {
		t.Fatal("Place and PlaceHash disagree")
	}
}

func TestObservedSharesTrackIntended(t *testing.T) {
	// Hash 100k distinct keys; per-host observed frequency must be within
	// 10% relative (or 0.5 point absolute) of the intended share. This is
	// the E4 claim at unit-test scale.
	m := buildMap(t, invertADF, Options{})
	reg := symbol.NewRegistry()
	const n = 100000
	got := make(map[string]int)
	for i := 0; i < n; i++ {
		k := symbol.K(reg.Intern(fmt.Sprintf("folder-%d", i/16)), uint32(i%16))
		got[m.Place(k).Host]++
	}
	for host, share := range m.HostShares() {
		obs := float64(got[host]) / n
		if math.Abs(obs-share) > 0.1*share+0.005 {
			t.Errorf("host %s: observed %.4f intended %.4f", host, obs, share)
		}
	}
}

func TestUniformBaselineIgnoresPower(t *testing.T) {
	f := mustParse(t, invertADF)
	m, err := Uniform(f)
	if err != nil {
		t.Fatal(err)
	}
	shares := m.HostShares()
	// 9 servers: glen/aurora/joliet 1 each, bonnie 6 → bonnie gets 6/9 ≈
	// 0.667, nowhere near its 0.988 power share.
	if math.Abs(shares["bonnie"]-6.0/9) > 1e-12 {
		t.Fatalf("uniform bonnie share = %g want %g", shares["bonnie"], 6.0/9)
	}
}

func TestLambdaShiftsShareTowardCentralHosts(t *testing.T) {
	// Equal-power hosts on a line: hub — near — far, with the far link ten
	// times the cost. With Lambda=0 shares are equal; with Lambda>0 the
	// more central server gains.
	src := `APP loc
HOSTS
hub 1 sun4 1
near 1 sun4 1
far 1 sun4 1
PROCESSES
0 boss hub
FOLDERS
0 near
1 far
PPC
hub <-> near 1
near <-> far 10
`
	m0 := buildMap(t, src, Options{})
	m1 := buildMap(t, src, Options{Lambda: 1})
	s0 := m0.HostShares()
	s1 := m1.HostShares()
	if math.Abs(s0["near"]-0.5) > 1e-12 {
		t.Fatalf("lambda=0 near share = %g want 0.5", s0["near"])
	}
	if s1["near"] <= s0["near"] {
		t.Fatalf("lambda did not shift share toward central host: %g vs %g", s1["near"], s0["near"])
	}
}

func TestLambdaRequiresTable(t *testing.T) {
	f := mustParse(t, invertADF)
	if _, err := New(f, nil, Options{Lambda: 1}); err == nil {
		t.Fatal("Lambda without table accepted")
	}
}

func TestNoFoldersRejected(t *testing.T) {
	f := &adf.File{}
	if _, err := New(f, nil, Options{}); err == nil {
		t.Fatal("empty folder set accepted")
	}
	if _, err := Uniform(f); err == nil {
		t.Fatal("uniform with empty folder set accepted")
	}
}

func TestServerByID(t *testing.T) {
	m := buildMap(t, invertADF, Options{})
	s, ok := m.ServerByID(4)
	if !ok || s.Host != "bonnie" {
		t.Fatalf("ServerByID(4) = %+v,%v", s, ok)
	}
	if _, ok := m.ServerByID(99); ok {
		t.Fatal("phantom server found")
	}
	if m.Len() != 9 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// Property: every hash lands on exactly one server, and that server is one
// of the declared ones.
func TestQuickPlaceTotal(t *testing.T) {
	m := buildMap(t, invertADF, Options{})
	valid := make(map[int]bool)
	for _, s := range m.Servers() {
		valid[s.ID] = true
	}
	f := func(h uint64) bool {
		return valid[m.PlaceHash(h).ID]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: placement is a pure function of the key hash.
func TestQuickPlaceDeterministic(t *testing.T) {
	m := buildMap(t, invertADF, Options{Lambda: 0.3})
	f := func(h uint64) bool {
		return m.PlaceHash(h).ID == m.PlaceHash(h).ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlace(b *testing.B) {
	m := buildMap(b, invertADF, Options{})
	k := symbol.K(42, 7, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Place(k)
	}
}
