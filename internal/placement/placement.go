// Package placement implements D-Memo's cost-weighted folder placement
// (paper §5).
//
// When an application touches a folder, the folder's key is hashed to one of
// the application's folder servers. Two considerations from the paper shape
// the mapping:
//
//  1. Processing power. "By classifying each host with a ratio percentage of
//     processing power, the system can control the distribution of memos...
//     giving a higher percentage of proportional probability of hashing
//     memos to a given host." A host's power is procs/cost from the ADF; a
//     host's share is split evenly among its folder servers.
//
//  2. Network topology. "Each link in the topology has a weight associated
//     with it which the routing class incorporates into the folder name
//     hashing." Every host must still resolve a key to the same server, so
//     the topology term has to be host-independent: we attenuate a server's
//     weight by the mean shortest-path cost from all hosts to it
//     (routing.Table.Centrality), scaled by Lambda. Lambda 0 reproduces the
//     pure power-ratio policy; E5 sweeps it.
//
// The mapping is deterministic: the key's 64-bit hash is mixed and reduced
// to [0,1), then binary-searched into the cumulative weight distribution.
// Every process on every host computes the same server for the same key,
// which §4.1 requires ("all references for memos in a particular folder will
// be directed to the appropriate folder server").
package placement

import (
	"fmt"
	"sort"

	"repro/internal/adf"
	"repro/internal/routing"
	"repro/internal/symbol"
)

// Server is one folder server with its placement weight.
type Server struct {
	ID     int
	Host   string
	Weight float64 // normalized; sums to 1 across all servers
}

// Map resolves folder keys to folder servers.
type Map struct {
	servers []Server  // sorted by ID
	cum     []float64 // cumulative weights, parallel to servers
}

// Options configure map construction.
type Options struct {
	// Lambda scales the topology attenuation; 0 disables it.
	Lambda float64
}

// New builds a placement map from the ADF's host and folder-server sections
// and the application routing table (used only when Lambda > 0; pass nil
// otherwise).
func New(f *adf.File, tbl *routing.Table, opt Options) (*Map, error) {
	if len(f.Folders) == 0 {
		return nil, fmt.Errorf("placement: no folder servers")
	}
	perHost := make(map[string]int)
	for _, fs := range f.Folders {
		perHost[fs.Host]++
	}
	servers := make([]Server, 0, len(f.Folders))
	var total float64
	for _, fs := range f.Folders {
		h, ok := f.HostByName(fs.Host)
		if !ok {
			return nil, fmt.Errorf("placement: folder server %d on unknown host %s", fs.ID, fs.Host)
		}
		w := h.Power() / float64(perHost[fs.Host])
		if opt.Lambda > 0 {
			if tbl == nil {
				return nil, fmt.Errorf("placement: Lambda > 0 requires a routing table")
			}
			c := tbl.Centrality(fs.Host)
			if c == routing.Unreachable {
				return nil, fmt.Errorf("placement: folder server host %s unreachable", fs.Host)
			}
			w /= 1 + opt.Lambda*c
		}
		if w <= 0 {
			return nil, fmt.Errorf("placement: folder server %d has non-positive weight", fs.ID)
		}
		servers = append(servers, Server{ID: fs.ID, Host: fs.Host, Weight: w})
		total += w
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].ID < servers[j].ID })
	cum := make([]float64, len(servers))
	run := 0.0
	for i := range servers {
		servers[i].Weight /= total
		run += servers[i].Weight
		cum[i] = run
	}
	cum[len(cum)-1] = 1 // guard against float drift
	return &Map{servers: servers, cum: cum}, nil
}

// Uniform builds a map that ignores power and topology — the "even
// distribution over the folder servers" the paper says you get *without*
// the cost-aware policy. It is the E4 baseline.
func Uniform(f *adf.File) (*Map, error) {
	if len(f.Folders) == 0 {
		return nil, fmt.Errorf("placement: no folder servers")
	}
	servers := make([]Server, 0, len(f.Folders))
	for _, fs := range f.Folders {
		servers = append(servers, Server{ID: fs.ID, Host: fs.Host, Weight: 1})
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].ID < servers[j].ID })
	cum := make([]float64, len(servers))
	for i := range servers {
		servers[i].Weight = 1 / float64(len(servers))
		cum[i] = float64(i+1) / float64(len(servers))
	}
	cum[len(cum)-1] = 1
	return &Map{servers: servers, cum: cum}, nil
}

// mix64 is splitmix64's finalizer: decorrelates the FNV key hash before
// reduction so adjacent keys spread across the unit interval.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(mix64(h)>>11) / float64(1<<53)
}

// Place resolves a key to its folder server.
func (m *Map) Place(k symbol.Key) Server {
	return m.placeAt(unit(k.Hash()))
}

// PlaceHash resolves a precomputed key hash (used by servers that receive
// canonical keys over the wire).
func (m *Map) PlaceHash(h uint64) Server {
	return m.placeAt(unit(h))
}

func (m *Map) placeAt(u float64) Server {
	i := sort.SearchFloat64s(m.cum, u)
	if i == len(m.cum) { // u == 1 cannot happen, but be safe
		i = len(m.cum) - 1
	}
	// SearchFloat64s returns the first cum >= u; since cum values are
	// exclusive upper bounds, advance past an exact boundary hit.
	if m.cum[i] == u && i+1 < len(m.cum) {
		i++
	}
	return m.servers[i]
}

// Servers returns the servers with normalized weights, sorted by ID.
func (m *Map) Servers() []Server {
	out := make([]Server, len(m.servers))
	copy(out, m.servers)
	return out
}

// HostShares aggregates normalized weights per host — the "ratio percentage"
// of memos each host is intended to receive.
func (m *Map) HostShares() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range m.servers {
		out[s.Host] += s.Weight
	}
	return out
}

// ServerByID finds a server.
func (m *Map) ServerByID(id int) (Server, bool) {
	for _, s := range m.servers {
		if s.ID == id {
			return s, true
		}
	}
	return Server{}, false
}

// Len reports the number of folder servers.
func (m *Map) Len() int { return len(m.servers) }
