package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// twoHost spreads nine folder servers over two hosts so alt/watch paths
// regularly cross servers.
const twoHostADF = `APP coretest
HOSTS
a 4 sun4 1
b 4 sun4 1
FOLDERS
0-3 a
4-8 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

func boot(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.BootADF(twoHostADF, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func memoOn(t testing.TB, c *cluster.Cluster, host string) *core.Memo {
	t.Helper()
	m, err := c.NewMemo(host)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPutGetRoundTripsValueGraph(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	k := m.NamedKey("graph")
	l := transferable.NewList(transferable.Int64(1))
	l.Append(l) // cyclic value through the whole stack
	if err := m.Put(k, l); err != nil {
		t.Fatal(err)
	}
	v, err := m.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*transferable.List)
	if got.Len() != 2 || got.At(1) != transferable.Value(got) {
		t.Fatal("cycle lost through put/get")
	}
}

func TestGetBlocksAcrossProcesses(t *testing.T) {
	c := boot(t)
	producer := memoOn(t, c, "a")
	consumer := memoOn(t, c, "b")
	k := producer.NamedKey("handoff")
	got := make(chan transferable.Value, 1)
	go func() {
		v, err := consumer.Get(k)
		if err == nil {
			got <- v
		}
	}()
	select {
	case <-got:
		t.Fatal("Get returned before Put")
	case <-time.After(30 * time.Millisecond):
	}
	if err := producer.Put(k, transferable.String("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if s, _ := transferable.AsString(v); s != "x" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke")
	}
}

func TestGetCancel(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := m.GetCancel(m.NamedKey("nothing"), cancel)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel ignored")
	}
}

func TestGetCopySemantics(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	k := m.NamedKey("record")
	if err := m.Put(k, transferable.Int64(42)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := m.GetCopy(k)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := transferable.AsInt(v); n != 42 {
			t.Fatalf("copy %d = %v", i, v)
		}
	}
	// Original still extractable exactly once.
	if _, err := m.Get(k); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.GetSkip(k); ok {
		t.Fatal("memo still present after final get")
	}
}

func TestGetSkipPolling(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	k := m.NamedKey("poll")
	if _, ok, err := m.GetSkip(k); err != nil || ok {
		t.Fatalf("empty GetSkip = %v %v", ok, err)
	}
	m.Put(k, transferable.Bool(true))
	v, ok, err := m.GetSkip(k)
	if err != nil || !ok {
		t.Fatalf("GetSkip after put: %v %v", ok, err)
	}
	if b := v.(transferable.Bool); !bool(b) {
		t.Fatalf("value %v", v)
	}
}

func TestPutDelayedDataflow(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	operand := m.NamedKey("operand")
	jobJar := m.NamedKey("jobjar")
	if err := m.PutDelayed(operand, jobJar, transferable.String("operation")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.GetSkip(jobJar); ok {
		t.Fatal("operation visible before operand arrived")
	}
	if err := m.Put(operand, transferable.Int64(5)); err != nil {
		t.Fatal(err)
	}
	// Release is asynchronous; block for it.
	v, err := m.Get(jobJar)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "operation" {
		t.Fatalf("job jar got %v", v)
	}
}

// keysOnDistinctServers finds n keys that place on pairwise distinct folder
// servers, guaranteeing the multi-server alt path.
func keysOnDistinctServers(t *testing.T, c *cluster.Cluster, m *core.Memo, n int) []symbol.Key {
	t.Helper()
	seen := make(map[int]bool)
	var out []symbol.Key
	for i := uint32(0); len(out) < n && i < 100000; i++ {
		k := m.Key(m.Symbol("alt"), i)
		id := c.Place.Place(k).ID
		if !seen[id] {
			seen[id] = true
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d keys on distinct servers", n)
	}
	return out
}

func TestGetAltSingleServer(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	// Two keys forced onto the same server by using the same placement.
	base := m.Key(m.Symbol("same"), 1)
	id := c.Place.Place(base).ID
	var same []symbol.Key
	for i := uint32(0); len(same) < 2 && i < 100000; i++ {
		k := m.Key(m.Symbol("same"), i)
		if c.Place.Place(k).ID == id {
			same = append(same, k)
		}
	}
	m.Put(same[1], transferable.Int64(7))
	k, v, err := m.GetAlt(same...)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(same[1]) {
		t.Fatalf("satisfied key %v want %v", k, same[1])
	}
	if n, _ := transferable.AsInt(v); n != 7 {
		t.Fatalf("value %v", v)
	}
}

func TestGetAltAcrossServersImmediate(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	keys := keysOnDistinctServers(t, c, m, 3)
	m.Put(keys[2], transferable.String("third"))
	k, v, err := m.GetAlt(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(keys[2]) {
		t.Fatalf("satisfied key %v want %v", k, keys[2])
	}
	if s, _ := transferable.AsString(v); s != "third" {
		t.Fatalf("value %v", v)
	}
}

func TestGetAltAcrossServersBlocksThenWakes(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	other := memoOn(t, c, "b")
	keys := keysOnDistinctServers(t, c, m, 3)
	type res struct {
		k symbol.Key
		v transferable.Value
	}
	got := make(chan res, 1)
	go func() {
		k, v, err := m.GetAlt(keys...)
		if err == nil {
			got <- res{k, v}
		}
	}()
	select {
	case <-got:
		t.Fatal("GetAlt returned with all folders empty")
	case <-time.After(50 * time.Millisecond):
	}
	if err := other.Put(keys[0], transferable.Int64(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.k.Equal(keys[0]) {
			t.Fatalf("satisfied key %v", r.k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("distributed GetAlt never woke")
	}
}

func TestGetAltCancelAcrossServers(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	keys := keysOnDistinctServers(t, c, m, 2)
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, _, err := m.GetAltCancel(cancel, keys...)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetAlt cancel ignored")
	}
}

func TestGetAltSkip(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	keys := keysOnDistinctServers(t, c, m, 3)
	if _, _, ok, err := m.GetAltSkip(keys...); err != nil || ok {
		t.Fatalf("empty alt skip: %v %v", ok, err)
	}
	m.Put(keys[1], transferable.Int64(9))
	k, v, ok, err := m.GetAltSkip(keys...)
	if err != nil || !ok {
		t.Fatalf("alt skip: %v %v", ok, err)
	}
	if !k.Equal(keys[1]) {
		t.Fatalf("key %v", k)
	}
	if n, _ := transferable.AsInt(v); n != 9 {
		t.Fatalf("value %v", v)
	}
}

func TestGetAltNoKeys(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	if _, _, err := m.GetAlt(); err == nil {
		t.Fatal("GetAlt() with no keys accepted")
	}
	if _, _, _, err := m.GetAltSkip(); err == nil {
		t.Fatal("GetAltSkip() with no keys accepted")
	}
}

func TestAltConsumesExactlyOnce(t *testing.T) {
	// N consumers race via GetAlt over folders fed with exactly N memos:
	// each memo is delivered exactly once.
	c := boot(t)
	m := memoOn(t, c, "a")
	keys := keysOnDistinctServers(t, c, m, 4)
	const total = 40
	var wg sync.WaitGroup
	seen := make(chan int64, total)
	for w := 0; w < 4; w++ {
		consumer := memoOn(t, c, "b")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				_, v, err := consumer.GetAlt(keys...)
				if err != nil {
					t.Errorf("GetAlt: %v", err)
					return
				}
				n, _ := transferable.AsInt(v)
				seen <- n
			}
		}()
	}
	for i := 0; i < total; i++ {
		if err := m.Put(keys[i%len(keys)], transferable.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(seen)
	got := make(map[int64]bool)
	for n := range seen {
		if got[n] {
			t.Fatalf("memo %d delivered twice", n)
		}
		got[n] = true
	}
	if len(got) != total {
		t.Fatalf("delivered %d distinct memos want %d", len(got), total)
	}
}

func TestPutGo(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	k := m.NamedKey("gonative")
	if err := m.PutGo(k, map[string]any{"n": 3, "s": "hi"}); err != nil {
		t.Fatal(err)
	}
	v, err := m.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	r := v.(*transferable.Record)
	if n, _ := r.Get("n"); n.(transferable.Int64) != 3 {
		t.Fatalf("record %v", transferable.ToGo(v))
	}
	if err := m.PutGo(k, struct{}{}); err == nil {
		t.Fatal("unsupported Go type accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := core.New(core.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRecordImplicitLock(t *testing.T) {
	// §6.3.1: get the record, update, put it back; concurrent updaters are
	// implicitly serialized because the folder is empty mid-update.
	c := boot(t)
	m := memoOn(t, c, "a")
	k := m.NamedKey("counter-record")
	if err := m.Put(k, transferable.Int64(0)); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		host := "a"
		if w%2 == 1 {
			host = "b"
		}
		mm := memoOn(t, c, host)
		wg.Add(1)
		go func(mm *core.Memo) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, err := mm.Get(k) // record locked
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				n, _ := transferable.AsInt(v)
				if err := mm.Put(k, transferable.Int64(n+1)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(mm)
	}
	wg.Wait()
	v, err := m.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(v); n != workers*iters {
		t.Fatalf("counter = %d want %d (implicit lock broken)", n, workers*iters)
	}
}

func TestProgramPumping(t *testing.T) {
	// §4.4 future work: ship executables to remote hosts without NFS.
	c := boot(t)
	m := memoOn(t, c, "a")
	blob := []byte("ELF\x7f pretend worker binary")
	if err := m.PumpProgram("b", "worker1", blob); err != nil {
		t.Fatal(err)
	}
	// Visible from the target host...
	other := memoOn(t, c, "b")
	got, err := other.FetchProgram("b", "worker1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("pumped program corrupted: %q", got)
	}
	// ...and fetchable remotely through forwarding.
	got2, err := m.FetchProgram("b", "worker1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(blob) {
		t.Fatal("remote fetch corrupted")
	}
	// Not present on other hosts: pumping is host-targeted.
	if _, err := m.FetchProgram("a", "worker1"); err == nil {
		t.Fatal("program appeared on a host it was not pumped to")
	}
	// Unknown host rejected.
	if err := m.PumpProgram("ghost", "worker1", blob); err == nil {
		t.Fatal("pump to unknown host accepted")
	}
	// Empty program name rejected.
	if err := m.PumpProgram("b", "", blob); err == nil {
		t.Fatal("empty program name accepted")
	}
}

// TestErrorsSurfaceAfterShutdown is the regression test for a family of
// discarded-error bugs the errgate analyzer uncovered: poison-pill Puts and
// probe GetSkips whose errors were silently dropped, so a dead cluster
// turned into a hang (the next blocking Get waited on a deposit that never
// happened) or a phantom-empty folder. The fixes surface those errors; this
// test pins the property they rely on — a call against a dead cluster fails
// fast with an error instead of blocking or reporting success.
func TestErrorsSurfaceAfterShutdown(t *testing.T) {
	c, err := cluster.BootADF(twoHostADF, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.NewMemo("a")
	if err != nil {
		c.Shutdown()
		t.Fatal(err)
	}
	k := m.NamedKey("gone")
	c.Shutdown()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := m.Put(k, transferable.Int64(1)); err == nil {
			t.Error("Put on a dead cluster reported success")
		}
		if _, ok, err := m.GetSkip(k); err == nil {
			t.Errorf("GetSkip on a dead cluster reported ok=%v with nil error", ok)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Put/GetSkip blocked on a dead cluster instead of failing")
	}
}
