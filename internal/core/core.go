// Package core implements the Memo Language API (paper §6): the member
// functions of class Memo that application processes program against.
//
// A Memo handle is bound to one application process on one host. Every
// operation resolves the folder key to a folder server with the
// application's placement map, then issues the request to the local memo
// server, which routes it (§4.1). Values are transferables; they are encoded
// on the way in and decoded — against this host's native word domain — on
// the way out, so heterogeneous word sizes surface as ErrLossy exactly where
// the paper says they must.
//
// The seven basic functions are Put, PutDelayed, Get, GetCopy, GetSkip,
// GetAlt, and GetAltSkip; CreateSymbol mints fresh folder symbols. The
// higher-level structures of §6.2/§6.3 (arrays, job jars, futures,
// semaphores, barriers...) live in the collect package.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memoserver"
	"repro/internal/placement"
	"repro/internal/symbol"
	"repro/internal/transferable"
	"repro/internal/wire"
)

// Errors.
var (
	// ErrCanceled reports a blocking call abandoned via its cancel channel.
	ErrCanceled = errors.New("memo: operation canceled")
)

// RemoteError carries an error message produced by a server.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "memo: " + e.Msg }

// Memo is the API handle for one application process.
type Memo struct {
	app    string
	host   string
	domain transferable.Domain
	reg    *symbol.Registry
	place  *placement.Map
	client *memoserver.Client

	mu     sync.Mutex
	closed bool
}

// Config assembles a Memo handle. All fields are required.
type Config struct {
	// App is the application name (folder names are scoped by it server-
	// side through the placement map's per-app registration).
	App string
	// Host is the process's machine.
	Host string
	// Domain is the host's native word domain (§3.1.3).
	Domain transferable.Domain
	// Registry is the application-wide symbol registry.
	Registry *symbol.Registry
	// Place must be identical to the placement map the memo servers built
	// at registration.
	Place *placement.Map
	// Client is the connection to the local memo server.
	Client *memoserver.Client
}

// New builds a Memo handle.
func New(cfg Config) (*Memo, error) {
	if cfg.App == "" || cfg.Registry == nil || cfg.Place == nil || cfg.Client == nil {
		return nil, errors.New("memo: incomplete config")
	}
	d := cfg.Domain
	if d.IntBits == 0 {
		d = transferable.Domain64
	}
	return &Memo{
		app:    cfg.App,
		host:   cfg.Host,
		domain: d,
		reg:    cfg.Registry,
		place:  cfg.Place,
		client: cfg.Client,
	}, nil
}

// App reports the application name.
func (m *Memo) App() string { return m.app }

// Host reports the process's host.
func (m *Memo) Host() string { return m.host }

// Domain reports the host's native word domain.
func (m *Memo) Domain() transferable.Domain { return m.domain }

// Registry exposes the symbol registry.
func (m *Memo) Registry() *symbol.Registry { return m.reg }

// Close releases the handle's connection.
func (m *Memo) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.client.Close()
}

// ClientStats reports the health counters of this handle's link to its
// local memo server (dials, redials, faults, transparent retries) —
// surfaced by dmemo-bench experiment E12.
func (m *Memo) ClientStats() memoserver.ClientStats { return m.client.Stats() }

// CreateSymbol returns a fresh unique symbol (§6.1.1 create_symbol).
func (m *Memo) CreateSymbol() symbol.Symbol { return m.reg.Fresh() }

// Symbol interns a named symbol, so cooperating processes can agree on
// well-known folders.
func (m *Memo) Symbol(name string) symbol.Symbol { return m.reg.Intern(name) }

// Key builds a folder key from a symbol and index vector.
func (m *Memo) Key(s symbol.Symbol, x ...uint32) symbol.Key { return symbol.K(s, x...) }

// NamedKey builds a folder key directly from a name.
func (m *Memo) NamedKey(name string, x ...uint32) symbol.Key {
	return symbol.K(m.reg.Intern(name), x...)
}

// target computes the folder server for a key.
func (m *Memo) target(k symbol.Key) int { return m.place.Place(k).ID }

// do sends a request and translates the response.
func (m *Memo) do(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	resp, err := m.client.Do(q, cancel)
	if err != nil {
		if err == memoserver.ErrClientCanceled {
			return nil, ErrCanceled
		}
		return nil, err
	}
	if resp.Status == wire.StatusErr {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return resp, nil
}

// Put deposits value in the folder labeled key. Control returns as soon as
// the folder server acknowledges the deposit (§6.1.2: "control is
// immediately returned to the executing process" — the call does not wait
// for any consumer). A failed Put means the memo was never deposited, so
// the error gates anything acknowledged on the deposit.
//
//memolint:must-check-error
func (m *Memo) Put(key symbol.Key, value transferable.Value) error {
	payload, err := transferable.Marshal(value)
	if err != nil {
		return fmt.Errorf("memo: put: %w", err)
	}
	_, err = m.do(&wire.Request{
		Op: wire.OpPut, App: m.app, FolderID: m.target(key), Key: key, Payload: payload,
	}, nil)
	return err
}

// PutDelayed hides value in folder key1 until another memo arrives there,
// whereupon the value is released into folder key2 (§6.1.2). This is the
// dataflow-triggering primitive.
//
//memolint:must-check-error
func (m *Memo) PutDelayed(key1, key2 symbol.Key, value transferable.Value) error {
	payload, err := transferable.Marshal(value)
	if err != nil {
		return fmt.Errorf("memo: put_delayed: %w", err)
	}
	_, err = m.do(&wire.Request{
		Op: wire.OpPutDelayed, App: m.app, FolderID: m.target(key1),
		Key: key1, Key2: key2, Payload: payload,
	}, nil)
	return err
}

// Get extracts a value from the folder labeled key, blocking until one is
// available. Extraction doubles as acquiring a shared record (§6.3.1), so a
// discarded error can silently skip a lock acquisition.
//
//memolint:must-check-error
func (m *Memo) Get(key symbol.Key) (transferable.Value, error) {
	return m.GetCancel(key, nil)
}

// GetCancel is Get with a cancellation channel (closing it abandons the
// wait). The paper's API blocks forever; cancellation is needed for orderly
// shutdown of Go programs.
//
//memolint:must-check-error
func (m *Memo) GetCancel(key symbol.Key, cancel <-chan struct{}) (transferable.Value, error) {
	resp, err := m.do(&wire.Request{
		Op: wire.OpGet, App: m.app, FolderID: m.target(key), Key: key,
	}, cancel)
	if err != nil {
		return nil, err
	}
	return transferable.Unmarshal(resp.Payload, m.domain)
}

// GetCopy returns a copy of a value in the folder labeled key without
// extracting it, blocking until one is available; another process (or this
// one) can still Get the original (§6.1.2).
func (m *Memo) GetCopy(key symbol.Key) (transferable.Value, error) {
	return m.GetCopyCancel(key, nil)
}

// GetCopyCancel is GetCopy with cancellation.
func (m *Memo) GetCopyCancel(key symbol.Key, cancel <-chan struct{}) (transferable.Value, error) {
	resp, err := m.do(&wire.Request{
		Op: wire.OpGetCopy, App: m.app, FolderID: m.target(key), Key: key,
	}, cancel)
	if err != nil {
		return nil, err
	}
	return transferable.Unmarshal(resp.Payload, m.domain)
}

// GetSkip extracts a value if one is present, returning ok=false otherwise
// (§6.1.2: "usually used to poll for messages"). The error distinguishes
// "folder empty" from "request failed" — conflating them turns an outage
// into a phantom empty folder.
//
//memolint:must-check-error
func (m *Memo) GetSkip(key symbol.Key) (transferable.Value, bool, error) {
	resp, err := m.do(&wire.Request{
		Op: wire.OpGetSkip, App: m.app, FolderID: m.target(key), Key: key,
	}, nil)
	if err != nil {
		return nil, false, err
	}
	if resp.Status == wire.StatusEmpty {
		return nil, false, nil
	}
	v, err := transferable.Unmarshal(resp.Payload, m.domain)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// GetAlt extracts a value from any one of the folders, blocking until one
// is available. If several folders hold values the choice is
// nondeterministic. It returns the folder that supplied the value.
//
//memolint:must-check-error
func (m *Memo) GetAlt(keys ...symbol.Key) (symbol.Key, transferable.Value, error) {
	return m.GetAltCancel(nil, keys...)
}

// GetAltCancel is GetAlt with cancellation.
//
//memolint:must-check-error
func (m *Memo) GetAltCancel(cancel <-chan struct{}, keys ...symbol.Key) (symbol.Key, transferable.Value, error) {
	if len(keys) == 0 {
		return symbol.Key{}, nil, errors.New("memo: get_alt: no keys")
	}
	groups := m.groupByServer(keys)
	if len(groups) == 1 {
		for fid, ks := range groups {
			resp, err := m.do(&wire.Request{
				Op: wire.OpAltTake, App: m.app, FolderID: fid, Keys: ks,
			}, cancel)
			if err != nil {
				return symbol.Key{}, nil, err
			}
			v, err := transferable.Unmarshal(resp.Payload, m.domain)
			if err != nil {
				return symbol.Key{}, nil, err
			}
			return resp.Key, v, nil
		}
	}
	// Keys span folder servers: alternate non-blocking sweeps with a
	// distributed watch. A Watch fires when some folder becomes non-empty;
	// we then race to take (another process may win, in which case we watch
	// again). This realizes get_alt's semantics without distributed locks.
	for {
		k, v, ok, err := m.GetAltSkip(keys...)
		if err != nil {
			return symbol.Key{}, nil, err
		}
		if ok {
			return k, v, nil
		}
		if err := m.watchAny(groups, cancel); err != nil {
			return symbol.Key{}, nil, err
		}
	}
}

// GetAltSkip tries each folder without blocking (§6.1.2 get_alt_skip).
func (m *Memo) GetAltSkip(keys ...symbol.Key) (symbol.Key, transferable.Value, bool, error) {
	if len(keys) == 0 {
		return symbol.Key{}, nil, false, errors.New("memo: get_alt_skip: no keys")
	}
	for fid, ks := range m.groupByServer(keys) {
		var resp *wire.Response
		var err error
		if len(ks) == 1 {
			resp, err = m.do(&wire.Request{
				Op: wire.OpGetSkip, App: m.app, FolderID: fid, Key: ks[0],
			}, nil)
			if resp != nil {
				resp.Key = ks[0]
			}
		} else {
			resp, err = m.doAltSkipGroup(fid, ks)
		}
		if err != nil {
			return symbol.Key{}, nil, false, err
		}
		if resp.Status == wire.StatusEmpty {
			continue
		}
		v, err := transferable.Unmarshal(resp.Payload, m.domain)
		if err != nil {
			return symbol.Key{}, nil, false, err
		}
		key := resp.Key
		if key.S == symbol.None {
			key = ks[0]
		}
		return key, v, true, nil
	}
	return symbol.Key{}, nil, false, nil
}

// doAltSkipGroup performs a non-blocking multi-key take on one server by
// issuing GetSkip per key. (A dedicated alt-skip op would save round trips;
// the semantics are identical.)
func (m *Memo) doAltSkipGroup(fid int, ks []symbol.Key) (*wire.Response, error) {
	for _, k := range ks {
		resp, err := m.do(&wire.Request{
			Op: wire.OpGetSkip, App: m.app, FolderID: fid, Key: k,
		}, nil)
		if err != nil {
			return nil, err
		}
		if resp.Status != wire.StatusEmpty {
			resp.Key = k
			return resp, nil
		}
	}
	return &wire.Response{Status: wire.StatusEmpty}, nil
}

// watchAny blocks until any watched group reports a non-empty folder.
func (m *Memo) watchAny(groups map[int][]symbol.Key, cancel <-chan struct{}) error {
	stop := make(chan struct{})
	defer close(stop)
	type wres struct{ err error }
	results := make(chan wres, len(groups))
	for fid, ks := range groups {
		go func(fid int, ks []symbol.Key) {
			_, err := m.do(&wire.Request{
				Op: wire.OpWatch, App: m.app, FolderID: fid, Keys: ks,
			}, stop)
			results <- wres{err}
		}(fid, ks)
	}
	select {
	case r := <-results:
		if r.err != nil && r.err != ErrCanceled {
			return r.err
		}
		return nil
	case <-cancel:
		return ErrCanceled
	}
}

// groupByServer buckets keys by their placement target.
func (m *Memo) groupByServer(keys []symbol.Key) map[int][]symbol.Key {
	groups := make(map[int][]symbol.Key)
	for _, k := range keys {
		fid := m.target(k)
		groups[fid] = append(groups[fid], k)
	}
	return groups
}

// PutGo is Put for plain Go values (convenience; see transferable.FromGo).
func (m *Memo) PutGo(key symbol.Key, v any) error {
	tv, err := transferable.FromGo(v)
	if err != nil {
		return err
	}
	return m.Put(key, tv)
}

// PumpProgram ships a program image to the memo server on a target host —
// the §4.4 executable distribution the paper planned for hosts without NFS
// ("a pumping method to get them to the appropriate remote host"). The blob
// is stored under the application's registration on that host.
func (m *Memo) PumpProgram(host, dir string, blob []byte) error {
	_, err := m.do(&wire.Request{
		Op: wire.OpPump, App: m.app, TargetHost: host, Dir: dir, Payload: blob,
	}, nil)
	return err
}

// FetchProgram retrieves a program image previously pumped to a host.
func (m *Memo) FetchProgram(host, dir string) ([]byte, error) {
	resp, err := m.do(&wire.Request{
		Op: wire.OpFetch, App: m.app, TargetHost: host, Dir: dir,
	}, nil)
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}
