package analysis

import (
	"strings"
)

// ignoreDirective is one parsed //memolint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // the line the comment ends on
	analyzer string
	reason   string
	pos      int // token.Pos, for reporting malformed directives
}

// ignoresIn parses every //memolint:ignore directive in the package.
func ignoresIn(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//memolint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				d := ignoreDirective{
					file: pkg.Fset.Position(c.End()).Filename,
					line: pkg.Fset.Position(c.End()).Line,
					pos:  int(c.Pos()),
				}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by an ignore directive: one
// naming the diagnostic's analyzer on the same line, or on the line
// directly above it. The reason is attached to the diagnostic.
func applySuppressions(pkg *Package, diags []Diagnostic) {
	ignores := ignoresIn(pkg)
	if len(ignores) == 0 {
		return
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := make(map[key]string, len(ignores))
	for _, d := range ignores {
		if d.analyzer == "" || d.reason == "" {
			continue // malformed; reported by checkIgnoreComments
		}
		index[key{d.file, d.line, d.analyzer}] = d.reason
	}
	for i := range diags {
		d := &diags[i]
		if reason, ok := index[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			d.Suppressed, d.Reason = true, reason
			continue
		}
		if reason, ok := index[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]; ok {
			d.Suppressed, d.Reason = true, reason
		}
	}
}

// checkIgnoreComments reports malformed ignore directives: a missing
// analyzer name, a name not among the analyzers of this run, or — the rule
// the issue insists on — a missing written reason.
func checkIgnoreComments(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//memolint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				bad := ""
				switch {
				case len(fields) == 0:
					bad = "missing analyzer name and reason"
				case len(fields) == 1:
					bad = "missing reason: every suppression must say why (//memolint:ignore <analyzer> <reason>)"
				case len(analyzers) > 1 && !known[fields[0]]:
					// Single-analyzer runs (analysistest) skip the name
					// check: testdata legitimately carries directives for
					// sibling analyzers.
					bad = "unknown analyzer " + fields[0]
				}
				if bad != "" {
					out = append(out, Diagnostic{
						Analyzer: "memolint",
						Pos:      pkg.Fset.Position(c.Pos()),
						Message:  "malformed ignore directive: " + bad,
					})
				}
			}
		}
	}
	return out
}
