package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Marker names. A marker is a doc- or line-comment of the form
// //memolint:<name> on a func/method declaration, an interface method, or a
// struct field. See the package documentation for what each one registers.
const (
	MarkPoolGet       = "pool-get"
	MarkPoolPut       = "pool-put"
	MarkTransfers     = "transfers-ownership"
	MarkReturnsBuffer = "returns-buffer"
	MarkAliases       = "aliases-buffer"
	MarkShardLock     = "shard-lock"
	MarkRequiresLock  = "requires-shard-lock"
	MarkForbidsLock   = "forbids-shard-lock"
	MarkMustCheck     = "must-check-error"
)

// Markers indexes every //memolint: marker seen across all loaded packages,
// keyed by the declared object, so an analyzer pass over package A can ask
// about markers declared in its dependency B (both load from source).
type Markers struct {
	m map[types.Object]map[string]bool
}

func newMarkers() *Markers {
	return &Markers{m: make(map[types.Object]map[string]bool)}
}

// Has reports whether obj carries the named marker.
func (mk *Markers) Has(obj types.Object, name string) bool {
	if obj == nil {
		return false
	}
	return mk.m[obj][name]
}

func (mk *Markers) add(obj types.Object, name string) {
	if obj == nil {
		return
	}
	set := mk.m[obj]
	if set == nil {
		set = make(map[string]bool)
		mk.m[obj] = set
	}
	set[name] = true
}

// markerNames extracts the memolint marker names from a comment group
// (ignore directives are handled separately and skipped here).
func markerNames(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//memolint:")
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(text, " ")
			name = strings.TrimSpace(name)
			if name == "" || name == "ignore" {
				continue
			}
			out = append(out, name)
		}
	}
	return out
}

// collect walks pkg's files and records every marker against the object it
// annotates: func and method declarations, interface methods, and struct
// fields (the shard-lock marker sits on a sync.Mutex field).
func (mk *Markers) collect(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				for _, name := range markerNames(d.Doc) {
					mk.add(pkg.Info.Defs[d.Name], name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					mk.collectType(pkg, ts.Type)
				}
			}
		}
	}
}

func (mk *Markers) collectType(pkg *Package, typ ast.Expr) {
	switch t := typ.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			names := markerNames(field.Doc, field.Comment)
			for _, id := range field.Names {
				for _, name := range names {
					mk.add(pkg.Info.Defs[id], name)
				}
			}
			mk.collectType(pkg, field.Type) // nested struct literals
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			names := markerNames(m.Doc, m.Comment)
			for _, id := range m.Names {
				for _, name := range names {
					mk.add(pkg.Info.Defs[id], name)
				}
			}
		}
	}
}

// Callee resolves the object a call expression invokes: a package function,
// a method (through embedding too), or nil for calls through function
// values and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fn]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[fn.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// CallHas reports whether call's callee carries the named marker.
func (mk *Markers) CallHas(info *types.Info, call *ast.CallExpr, name string) bool {
	return mk.Has(Callee(info, call), name)
}
