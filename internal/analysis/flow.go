package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Path identifies a value a function manipulates: a local variable plus a
// dotted/indexed access suffix, e.g. t + ".q" for t.q, entries + "[]" for
// entries[i]. Identity is the root *types.Var (stable under shadowing) plus
// the rendered suffix.
type Path struct {
	Root   *types.Var
	Suffix string
}

// PathOf resolves expr to a Path rooted at a local or package variable.
// Slicing and parenthesization are identity; index expressions collapse to
// "[]" (any element); &x and *x resolve to x's path (the analyzers reason
// about the underlying storage, not the pointer value).
func PathOf(info *types.Info, expr ast.Expr) (Path, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return Path{Root: v}, true
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return Path{Root: v}, true
		}
	case *ast.SelectorExpr:
		if p, ok := PathOf(info, e.X); ok {
			p.Suffix += "." + e.Sel.Name
			return p, true
		}
	case *ast.IndexExpr:
		if p, ok := PathOf(info, e.X); ok {
			p.Suffix += "[]"
			return p, true
		}
	case *ast.SliceExpr:
		return PathOf(info, e.X)
	case *ast.StarExpr:
		return PathOf(info, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return PathOf(info, e.X)
		}
	}
	return Path{}, false
}

// Covers reports whether two paths with the same root refer to overlapping
// storage: one suffix is a component-wise prefix of the other ("" covers
// ".q"; ".q" covers ".q.Key"; ".cc" does not cover ".q").
func (p Path) Covers(q Path) bool {
	if p.Root == nil || p.Root != q.Root {
		return false
	}
	a, b := p.Suffix, q.Suffix
	if len(a) > len(b) {
		a, b = b, a
	}
	if !strings.HasPrefix(b, a) {
		return false
	}
	return len(a) == len(b) || b[len(a)] == '.' || b[len(a)] == '['
}

// PathSet is a small set of tracked paths (one "family" of aliases).
type PathSet []Path

// Covers reports whether any member path overlaps p.
func (s PathSet) Covers(p Path) bool {
	for _, m := range s {
		if m.Covers(p) {
			return true
		}
	}
	return false
}

// CoversExpr reports whether expr resolves to a path a member overlaps.
func (s PathSet) CoversExpr(info *types.Info, expr ast.Expr) bool {
	p, ok := PathOf(info, expr)
	return ok && s.Covers(p)
}

// HasRoot reports whether any member is rooted at v.
func (s PathSet) HasRoot(v *types.Var) bool {
	if v == nil {
		return false
	}
	for _, m := range s {
		if m.Root == v {
			return true
		}
	}
	return false
}

// Add inserts p if not already present.
func (s *PathSet) Add(p Path) {
	for _, m := range *s {
		if m.Root == p.Root && m.Suffix == p.Suffix {
			return
		}
	}
	*s = append(*s, p)
}

// ContainsMember walks n's subtree and returns the first expression covered
// by the set (a read or carry of a tracked value), or nil. Selector paths
// are tested atomically: t.cc is a sibling field of t.q — disjoint storage —
// so its base t must not be re-tested on the way down, even though the bare
// expression t would overlap t.q.
func ContainsMember(info *types.Info, set PathSet, n ast.Node) ast.Expr {
	var found ast.Expr
	ast.Inspect(n, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if set.CoversExpr(info, e) {
			found = e
			return false
		}
		if _, isSel := e.(*ast.SelectorExpr); isSel {
			if _, resolved := PathOf(info, e); resolved {
				return false // uncovered sibling path; don't descend to its base
			}
		}
		return true
	})
	return found
}

// EachCall visits every call expression in n's subtree.
func EachCall(n ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok {
			f(c)
		}
		return true
	})
}

// NodeIndex maps every statement and expression back to the CFG node whose
// Exprs contain it, so an analyzer can anchor a traversal at the node
// holding a particular call.
func NodeIndex(g *Graph) map[ast.Node]*Node {
	idx := make(map[ast.Node]*Node)
	for _, n := range g.Nodes {
		for _, e := range n.Exprs() {
			ast.Inspect(e, func(x ast.Node) bool {
				if x != nil {
					idx[x] = n
				}
				return true
			})
		}
	}
	return idx
}

// AssignInfo is one plain-identifier (re)binding inside a statement.
// Non-identifier LHS (field stores, index stores) are not included.
type AssignInfo struct {
	LHSVar *types.Var
	LHS    *ast.Ident
	RHS    ast.Expr // nil when the value comes from a tuple or is absent
}

// NodeAssigns returns the variables a node's statement (re)binds.
func NodeAssigns(info *types.Info, n *Node) []AssignInfo {
	var out []AssignInfo
	for _, e := range n.Exprs() {
		collectAssigns(info, e, &out)
	}
	return out
}

func collectAssigns(info *types.Info, root ast.Node, out *[]AssignInfo) {
	ast.Inspect(root, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false // separate scope; not this node's bindings
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := ObjVar(info, id)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				*out = append(*out, AssignInfo{LHSVar: v, LHS: id, RHS: rhs})
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						v := ObjVar(info, id)
						if v == nil {
							continue
						}
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						}
						*out = append(*out, AssignInfo{LHSVar: v, LHS: id, RHS: rhs})
					}
				}
			}
		}
		return true
	})
}

// ObjVar resolves an identifier to the variable it defines or uses.
func ObjVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// ReadsVar reports whether n's statement reads v — any use of v's ident
// that is not a plain assignment target.
func ReadsVar(info *types.Info, n *Node, v *types.Var) bool {
	if v == nil {
		return false
	}
	assignLHS := make(map[*ast.Ident]bool)
	for _, a := range NodeAssigns(info, n) {
		assignLHS[a.LHS] = true
	}
	read := false
	for _, e := range n.Exprs() {
		ast.Inspect(e, func(x ast.Node) bool {
			if read {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			if assignLHS[id] {
				return true
			}
			if info.Uses[id] == v {
				read = true
				return false
			}
			return true
		})
		if read {
			return true
		}
	}
	return false
}

// FuncName renders a called object for diagnostics (pkg.Func or Type.Method).
func FuncName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch tt := t.(type) {
		case *types.Named:
			return tt.Obj().Name() + "." + fn.Name()
		case *types.Interface:
			return fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
