// Package a exercises poolcheck: every pool.Get must reach pool.Put or an
// ownership transfer, and the buffer must never be touched after release.
package a

import (
	"errors"

	"pool"
	"wire"
)

var errEarly = errors.New("early")

// Leak: the buffer reaches no put, no transfer, and never escapes.
func Leak() {
	buf := pool.Get(64) // want `never released`
	buf[0] = 1
}

// GoodPut is the plain get/use/put life cycle.
func GoodPut() {
	buf := pool.Get(64)
	buf[0] = 1
	pool.Put(buf)
}

// GoodDefer releases through a deferred put.
func GoodDefer() {
	buf := pool.Get(64)
	defer pool.Put(buf)
	buf[0] = 1
}

// Transfer hands ownership to the batcher; no put needed.
func Transfer(q *wire.Queue) {
	buf := pool.Get(8)
	q.Add(wire.Entry{ID: 1, Msg: buf})
}

// CallPattern mirrors rpc.Conn.Call: encode into a pooled buffer, put it
// back on the early-error path, transfer it to the queue otherwise.
func CallPattern(q *wire.Queue, key string, fail bool) error {
	msg := wire.AppendRequest(pool.Get(len(key)), key)
	if fail {
		pool.Put(msg)
		return errEarly
	}
	q.Add(wire.Entry{ID: 1, Msg: msg})
	return nil
}

// SendFrame mirrors the batcher flush: Send borrows the frame, so the
// caller still recycles it afterwards.
func SendFrame(q *wire.Queue, key string) {
	buf := pool.Get(8)
	frame := wire.AppendRequest(buf, key)
	q.Send(frame)
	pool.Put(frame)
}

// UseAfterPut touches the buffer after it went back to the pool.
func UseAfterPut() {
	buf := pool.Get(64)
	pool.Put(buf)
	buf[0] = 1 // want `use of buf after its buffer was released`
}

// UseAfterTransfer touches the buffer after the queue took it over.
func UseAfterTransfer(q *wire.Queue) {
	buf := pool.Get(8)
	q.Add(wire.Entry{ID: 1, Msg: buf})
	buf[0] = 1 // want `use of buf after its buffer was released`
}

// DoublePut releases twice; the second put is a use of a dead buffer.
func DoublePut() {
	buf := pool.Get(64)
	pool.Put(buf)
	pool.Put(buf) // want `use of buf after its buffer was released`
}

// EscapeReturn hands the buffer to the caller: ownership moves with it.
func EscapeReturn(n int) []byte {
	return pool.Get(n)
}

// EscapeStore parks the buffer in longer-lived storage; the holder owns it.
type holder struct{ b []byte }

func EscapeStore(h *holder) {
	h.b = pool.Get(16)
}

// Loop gets and puts a fresh buffer per iteration; the rebinding at the top
// of each iteration ends the previous family.
func Loop(n int) {
	for i := 0; i < n; i++ {
		buf := pool.Get(64)
		buf[0] = byte(i)
		pool.Put(buf)
	}
}

// Rebind: after the put, buf is rebound to a fresh buffer; using that one
// is fine.
func Rebind() {
	buf := pool.Get(64)
	pool.Put(buf)
	buf = pool.Get(32)
	buf[0] = 2
	pool.Put(buf)
}
