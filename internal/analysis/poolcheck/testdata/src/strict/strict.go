// Package strict exercises poolcheck's -strict mode: a release must exist
// on EVERY path to the exit, not just somewhere. Dropping the put on one
// branch — exactly the regression the issue asks lint to catch — fails.
package strict

import "pool"

// OnePath forgets the put on the cond==false path.
func OnePath(cond bool) {
	buf := pool.Get(64) // want `may not be released on every path`
	if cond {
		pool.Put(buf)
	}
}

// BothPaths releases on each branch.
func BothPaths(cond bool) {
	buf := pool.Get(64)
	if cond {
		buf[0] = 1
		pool.Put(buf)
	} else {
		pool.Put(buf)
	}
}

// Deferred satisfies strict mode: the deferred put runs on every path.
func Deferred(cond bool) {
	buf := pool.Get(64)
	defer pool.Put(buf)
	if cond {
		buf[0] = 1
	}
}
