// Package pool is a stub of repro/internal/pool carrying the same memolint
// markers, so poolcheck testdata exercises exactly the marker machinery the
// real tree uses.
package pool

//memolint:pool-get
func Get(n int) []byte { return make([]byte, n) }

//memolint:pool-put
func Put(b []byte) {}
