// Package wire stubs the append-style encoders and the batcher-shaped
// ownership sinks the real tree marks.
package wire

type Entry struct {
	ID  uint64
	Msg []byte
}

//memolint:returns-buffer
func AppendRequest(buf []byte, key string) []byte {
	return append(buf, key...)
}

type Queue struct{}

// add takes over e.Msg; the queue recycles it after the flush.
//
//memolint:transfers-ownership
func (q *Queue) Add(e Entry) {}

// Send borrows the frame: the caller still owns and recycles it.
func (q *Queue) Send(frame []byte) {}
