// Package ignore proves //memolint:ignore silences exactly the annotated
// poolcheck diagnostic and nothing else: two identical leaks, one
// suppressed with a written reason, one still reported.
package ignore

import "pool"

func Suppressed() {
	//memolint:ignore poolcheck buffer intentionally parked for the demo
	buf := pool.Get(64)
	buf[0] = 1
}

func NotSuppressed() {
	buf := pool.Get(64) // want `never released`
	buf[0] = 1
}
