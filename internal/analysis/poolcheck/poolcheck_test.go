package poolcheck_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.New(), "a")
}

func TestStrict(t *testing.T) {
	a := poolcheck.New()
	a.Strict = true
	analysistest.Run(t, "testdata", a, "strict")
}

// TestIgnore proves the suppression silences exactly the annotated
// diagnostic: the unannotated twin is still reported (checked by the want
// comment), and the annotated one is present but suppressed, carrying the
// written reason.
func TestIgnore(t *testing.T) {
	diags := analysistest.Run(t, "testdata", poolcheck.New(), "ignore")
	var suppressed []analysis.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("got %d suppressed diagnostics, want exactly 1: %v", len(suppressed), suppressed)
	}
	if want := "buffer intentionally parked for the demo"; suppressed[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", suppressed[0].Reason, want)
	}
}
