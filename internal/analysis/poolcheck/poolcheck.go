// Package poolcheck enforces the pool-ownership contract from
// repro/internal/pool: a buffer obtained from a pool-get function
// (//memolint:pool-get) must reach a pool-put (//memolint:pool-put) or a
// recognized ownership-transfer call (//memolint:transfers-ownership), and
// must never be touched again after ownership has been released.
//
//   - "never released": the buffer reaches no put, no transfer, and never
//     escapes the function (returned, stored into longer-lived storage,
//     sent on a channel, captured by a goroutine) — a pooled buffer silently
//     handed to the GC. Reported at the get call.
//   - "use after release": a control-flow path uses the buffer after a put
//     or transfer released it — the recycled-buffer corruption bug -race
//     cannot see. Reported at the use.
//   - strict mode additionally requires a release or escape on every path
//     to the function exit (deferred puts count).
//
// Buffer identity follows assignments, slicing, and append-style calls
// marked //memolint:returns-buffer (wire.AppendRequest and friends), so
// `msg := wire.AppendRequest(pool.Get(n), q)` tracks msg, and releasing any
// alias releases the family.
package poolcheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// New returns the poolcheck analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "poolcheck",
		Doc:  "pooled buffers must reach pool.Put or an ownership transfer, and never be used afterwards",
	}
	a.Run = func(pass *analysis.Pass) error { return run(pass, a) }
	return a
}

func run(pass *analysis.Pass, a *analysis.Analyzer) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, a, fd)
		}
	}
	return nil
}

// family is one pooled buffer's trace through a function: the get call that
// produced it and every local variable that came to carry it.
type family struct {
	src     *ast.CallExpr
	members analysis.PathSet
}

func checkFunc(pass *analysis.Pass, a *analysis.Analyzer, fd *ast.FuncDecl) {
	info := pass.Info
	g := analysis.BuildCFG(fd.Body)
	idx := analysis.NodeIndex(g)

	var sources []*ast.CallExpr
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok && pass.Markers.CallHas(info, c, analysis.MarkPoolGet) {
			sources = append(sources, c)
		}
		return true
	})

	for _, src := range sources {
		fam := &family{src: src}
		collectMembers(pass, fd, fam)
		defNode := idx[src]
		if defNode == nil {
			continue // e.g. inside a func literal; skipped (own CFG not built)
		}
		checkFamily(pass, a, fd, g, defNode, fam)
	}
}

// carrier reports whether expr carries fam's buffer: the get call itself, a
// member variable, a slice/paren of a carrier, or an append-style call
// (builtin append or //memolint:returns-buffer) with a carrier argument.
func carrier(pass *analysis.Pass, fam *family, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if e == fam.src {
		return true
	}
	switch v := e.(type) {
	case *ast.Ident:
		if p, ok := analysis.PathOf(pass.Info, v); ok {
			return fam.members.Covers(p)
		}
	case *ast.SliceExpr:
		return carrier(pass, fam, v.X)
	case *ast.CallExpr:
		isAppend := false
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && pass.Info.Uses[id] != nil && pass.Info.Uses[id].Pkg() == nil {
			isAppend = true
		}
		if !isAppend && !pass.Markers.CallHas(pass.Info, v, analysis.MarkReturnsBuffer) {
			return false
		}
		for _, arg := range v.Args {
			if carrier(pass, fam, arg) {
				return true
			}
		}
	}
	return false
}

// collectMembers runs the flow-insensitive fixpoint: any variable assigned
// from a carrier expression joins the family.
func collectMembers(pass *analysis.Pass, fd *ast.FuncDecl, fam *family) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if !carrier(pass, fam, rhs) {
						continue
					}
					id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					if v := analysis.ObjVar(pass.Info, id); v != nil && !fam.members.HasRoot(v) {
						fam.members.Add(analysis.Path{Root: v})
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(s.Values) != len(s.Names) {
					return true
				}
				for i, rhs := range s.Values {
					if !carrier(pass, fam, rhs) {
						continue
					}
					if v := analysis.ObjVar(pass.Info, s.Names[i]); v != nil && !fam.members.HasRoot(v) {
						fam.members.Add(analysis.Path{Root: v})
						changed = true
					}
				}
			}
			return true
		})
	}
}

// eventKind classifies what a CFG node does to the family.
type eventKind int

const (
	evNone    eventKind = iota
	evEscape            // returned/stored/sent/captured: ours no longer, but legal
	evRelease           // pool.Put or ownership transfer: buffer gone
)

// classify inspects one CFG node for release and escape events. Release
// wins when both appear (the release is what later uses must respect).
func classify(pass *analysis.Pass, fam *family, n *analysis.Node) (eventKind, ast.Node) {
	info := pass.Info
	var kind eventKind
	var at ast.Node
	note := func(k eventKind, n ast.Node) {
		if k > kind {
			kind, at = k, n
		}
	}
	for _, e := range n.Exprs() {
		// Release detection skips deferred calls (those run at exit and are
		// accounted as deferRelease) and closure bodies (those run whenever
		// the closure does, which the go/defer/escape cases cover).
		immediateCalls(e, func(c *ast.CallExpr) {
			isPut := pass.Markers.CallHas(info, c, analysis.MarkPoolPut)
			isXfer := pass.Markers.CallHas(info, c, analysis.MarkTransfers)
			if !isPut && !isXfer {
				return
			}
			for _, arg := range c.Args {
				if argCarries(pass, fam, arg) {
					note(evRelease, c)
				}
			}
		})
		ast.Inspect(e, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					if argCarries(pass, fam, r) {
						note(evEscape, s)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
						continue // local rebinding, handled as kill/propagate
					}
					if i < len(s.Rhs) && argCarries(pass, fam, s.Rhs[i]) {
						note(evEscape, s)
					}
					if len(s.Lhs) != len(s.Rhs) && len(s.Rhs) == 1 && argCarries(pass, fam, s.Rhs[0]) {
						note(evEscape, s)
					}
				}
			case *ast.SendStmt:
				if argCarries(pass, fam, s.Value) {
					note(evEscape, s)
				}
			case *ast.GoStmt:
				if analysis.ContainsMember(info, fam.members, s.Call) != nil {
					note(evEscape, s)
				}
			case *ast.FuncLit:
				if analysis.ContainsMember(info, fam.members, s.Body) != nil {
					note(evEscape, s)
				}
				return false
			}
			return true
		})
	}
	return kind, at
}

// immediateCalls visits the calls that run when the node itself executes:
// it descends neither into defer statements nor into function literals.
func immediateCalls(root ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(root, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			f(c)
		}
		return true
	})
}

// argCarries is carrier plus "appears anywhere inside a composite literal"
// — handing a struct containing the buffer to a transfer call transfers the
// buffer.
func argCarries(pass *analysis.Pass, fam *family, arg ast.Expr) bool {
	if carrier(pass, fam, arg) {
		return true
	}
	carries := false
	ast.Inspect(arg, func(x ast.Node) bool {
		if carries {
			return false
		}
		if e, ok := x.(ast.Expr); ok && carrier(pass, fam, e) {
			carries = true
			return false
		}
		return true
	})
	return carries
}

func checkFamily(pass *analysis.Pass, a *analysis.Analyzer, fd *ast.FuncDecl, g *analysis.Graph, defNode *analysis.Node, fam *family) {
	info := pass.Info
	name := "pooled buffer"
	if obj := analysis.Callee(info, fam.src); obj != nil {
		name = "buffer from " + analysis.FuncName(obj)
	}

	// Deferred releases count as a release on every path.
	deferRelease := false
	for _, dc := range g.Defers {
		for _, arg := range dc.Args {
			if argCarries(pass, fam, arg) &&
				(pass.Markers.CallHas(info, dc, analysis.MarkPoolPut) || pass.Markers.CallHas(info, dc, analysis.MarkTransfers)) {
				deferRelease = true
			}
		}
	}

	kinds := make(map[*analysis.Node]eventKind)
	anyRelease, anyEscape := deferRelease, false
	for _, n := range g.Nodes {
		k, _ := classify(pass, fam, n)
		kinds[n] = k
		if k == evRelease {
			anyRelease = true
		}
		if k == evEscape {
			anyEscape = true
		}
	}

	if !anyRelease && !anyEscape {
		pass.Reportf(fam.src.Pos(), "%s is never released: no pool.Put, no ownership transfer, and it does not escape", name)
		return
	}

	// Use-after-release: from every release node, any reachable read of a
	// member before its rebinding is a recycled-buffer bug.
	for _, rel := range g.Nodes {
		if kinds[rel] != evRelease {
			continue
		}
		for _, m := range fam.members {
			v := m.Root
			reported := false
			g.Forward(rel, func(n *analysis.Node) bool {
				if reported {
					return false
				}
				if analysis.ReadsVar(info, n, v) {
					pos := n.Stmt.Pos()
					pass.Reportf(pos, "use of %s after its buffer was released (released at line %d)", v.Name(), pass.Fset.Position(rel.Stmt.Pos()).Line)
					reported = true
					return false
				}
				for _, as := range analysis.NodeAssigns(info, n) {
					if as.LHSVar == v {
						return false // rebound: a fresh value, stop
					}
				}
				return true
			})
		}
	}

	// Strict mode: a release or escape must exist on every path to exit.
	if a.Strict && !deferRelease {
		leaks := false
		g.Forward(defNode, func(n *analysis.Node) bool {
			if leaks {
				return false
			}
			if kinds[n] == evRelease || kinds[n] == evEscape {
				return false
			}
			for _, as := range analysis.NodeAssigns(info, n) {
				if fam.members.HasRoot(as.LHSVar) && !carrier(pass, fam, as.RHS) {
					return false // buffer dropped by rebinding; GC's now
				}
			}
			if n == g.Exit {
				leaks = true
			}
			return true
		})
		if leaks {
			pass.Reportf(fam.src.Pos(), "%s may not be released on every path (strict)", name)
		}
	}
}
