// Package a exercises lockcheck: WAL appends dominated by the shard lock,
// fsyncs outside it, never two shard locks at once.
package a

import (
	"sync"

	"durable"
)

type shard struct {
	mu sync.Mutex //memolint:shard-lock
	n  int
}

type store struct {
	shards [4]shard
	wal    *durable.Log
}

// Good is the PutToken shape: append inside the critical section, commit
// (the fsync) after the unlock.
func (s *store) Good(i int) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	seq := s.wal.Append(i, &durable.Record{Key: "k"})
	sh.n++
	sh.mu.Unlock()
	return s.wal.Commit(i, seq)
}

// AppendUnlocked breaks WAL ordering: nothing dominates the append.
func (s *store) AppendUnlocked(i int) {
	s.wal.Append(i, &durable.Record{Key: "k"}) // want `requires the shard lock`
}

// AppendOneBranch only locks on one path; the append is not dominated.
func (s *store) AppendOneBranch(i int, c bool) {
	sh := &s.shards[i]
	if c {
		sh.mu.Lock()
	}
	s.wal.Append(i, &durable.Record{Key: "k"}) // want `requires the shard lock`
	if c {
		sh.mu.Unlock()
	}
}

// CommitLocked fsyncs inside the critical section (with the idiomatic
// deferred unlock, which releases only at exit — too late).
func (s *store) CommitLocked(i int, seq uint64) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.wal.Commit(i, seq) // want `must not run under a shard lock`
}

// BarrierMaybeLocked fsyncs while the lock MAY be held.
func (s *store) BarrierMaybeLocked(i int, c bool) {
	sh := &s.shards[i]
	if c {
		sh.mu.Lock()
	}
	s.wal.Barrier(i) // want `must not run under a shard lock`
	if c {
		sh.mu.Unlock()
	}
}

// Nested acquires a second stripe while holding the first: the deadlock the
// one-at-a-time discipline exists to prevent.
func (s *store) Nested(i, j int) {
	a, b := &s.shards[i], &s.shards[j]
	a.mu.Lock()
	b.mu.Lock() // want `acquired while`
	b.n, a.n = a.n, b.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// Sequential visits stripes one at a time; no overlap, no report.
func (s *store) Sequential(i, j int) {
	a, b := &s.shards[i], &s.shards[j]
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// logLocked documents "caller holds the shard lock": its body gets a
// virtual lock, and every call site is checked instead.
//
//memolint:requires-shard-lock
func (s *store) logLocked(i int) {
	s.wal.Append(i, &durable.Record{Key: "k"})
}

// GoodHelper holds the lock across the helper.
func (s *store) GoodHelper(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	s.logLocked(i)
	sh.mu.Unlock()
}

// BadHelper calls the requires-lock helper with no lock.
func (s *store) BadHelper(i int) {
	s.logLocked(i) // want `requires the shard lock`
}
