// Package ignore proves //memolint:ignore silences exactly the annotated
// lockcheck diagnostic: two identical violations, one suppressed with a
// written reason, one still reported.
package ignore

import (
	"sync"

	"durable"
)

type shard struct {
	mu sync.Mutex //memolint:shard-lock
}

type store struct {
	shards [2]shard
	wal    *durable.Log
}

func (s *store) Suppressed(i int) {
	//memolint:ignore lockcheck recovery runs single-threaded before serving starts
	s.wal.Append(i, &durable.Record{Key: "k"})
}

func (s *store) NotSuppressed(i int) {
	s.wal.Append(i, &durable.Record{Key: "k"}) // want `requires the shard lock`
}
