// Package durable stubs the WAL surface of repro/internal/durable with the
// same lock-discipline markers.
package durable

type Record struct{ Key string }

type Log struct{ seq uint64 }

// Append relies on the caller's shard critical section: per-shard WAL order
// must equal application order.
//
//memolint:requires-shard-lock
func (l *Log) Append(shard int, rec *Record) uint64 {
	l.seq++
	return l.seq
}

// Commit blocks on fsync; holding a shard lock across it would stall every
// operation on the stripe.
//
//memolint:forbids-shard-lock
func (l *Log) Commit(shard int, seq uint64) error { return nil }

// Barrier waits for all appended records to be durable.
//
//memolint:forbids-shard-lock
func (l *Log) Barrier(shard int) error { return nil }
