// Package lockcheck enforces the shard-lock discipline of the striped
// folder store and its WAL:
//
//   - functions marked //memolint:requires-shard-lock (durable.Log.Append,
//     the in-lock logging helpers) must be called while a shard lock — a
//     sync.Mutex field marked //memolint:shard-lock — is held on every
//     path; per-folder WAL order equals application order only because the
//     append happens inside the shard critical section.
//   - functions marked //memolint:forbids-shard-lock (durable.Log.Commit,
//     Barrier — they block on fsync) must never be called while a shard
//     lock may be held: an fsync under the shard lock would stall every
//     operation on the stripe for milliseconds.
//   - no two shard locks may be held at once: multi-shard operations
//     (AltTake, AltSkip, Watch) visit shards one at a time in ascending
//     order, and the deadlock-freedom of that scan rests on never nesting
//     stripe locks.
//
// A function whose own contract is "caller holds the shard lock" should be
// marked //memolint:requires-shard-lock: its body is then analyzed with a
// virtual lock held, and every call site is checked instead.
package lockcheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// New returns the lockcheck analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockcheck",
		Doc:  "WAL appends under the shard lock, commits outside it, never two shard locks at once",
	}
	a.Run = run
	return a
}

// callerLock is the virtual lock a requires-shard-lock function holds on
// entry.
const callerLock = "<caller>"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// lockOp is one Lock/Unlock of a shard mutex inside a node.
type lockOp struct {
	key    string // rendered path of the mutex, e.g. "sh.mu"
	unlock bool
	call   *ast.CallExpr
}

// state is the per-node dataflow fact: which shard-lock keys may/must be
// held on entry.
type state struct {
	may  map[string]bool
	must map[string]bool
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Info
	g := analysis.BuildCFG(fd.Body)

	entryHeld := map[string]bool{}
	if pass.Markers.Has(info.Defs[fd.Name], analysis.MarkRequiresLock) {
		entryHeld[callerLock] = true
	}

	// Pre-scan each node for its lock operations and checked calls.
	// Deferred calls and closure bodies are excluded: a deferred Unlock runs
	// at function exit, not where the defer statement sits, so treating it
	// as immediate would wrongly clear the lock mid-function. Leaving the
	// lock "held" for the rest of the body is the conservative reading and
	// the correct one for the fsync-under-lock check.
	ops := make(map[*analysis.Node][]lockOp)
	for _, n := range g.Nodes {
		for _, e := range n.Exprs() {
			eachImmediateCall(e, func(c *ast.CallExpr) {
				if op, ok := shardLockOp(pass, c); ok {
					ops[n] = append(ops[n], op)
				}
			})
		}
	}

	// Forward dataflow to fixpoint: may = union of preds, must =
	// intersection of visited preds.
	in := make(map[*analysis.Node]*state)
	out := make(map[*analysis.Node]*state)
	in[g.Entry] = &state{may: cloneSet(entryHeld), must: cloneSet(entryHeld)}
	work := []*analysis.Node{g.Entry}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		st := in[n]
		if st == nil {
			continue
		}
		o := &state{may: cloneSet(st.may), must: cloneSet(st.must)}
		for _, op := range ops[n] {
			if op.unlock {
				delete(o.may, op.key)
				delete(o.must, op.key)
				// an explicit unlock discharges the virtual caller lock
				// only if it is the sole held key; conservative: leave it.
			} else {
				o.may[op.key] = true
				o.must[op.key] = true
			}
		}
		if prev := out[n]; prev != nil && sameSet(prev.may, o.may) && sameSet(prev.must, o.must) {
			continue
		}
		out[n] = o
		for _, s := range n.Succs {
			prev := in[s]
			if prev == nil {
				in[s] = &state{may: cloneSet(o.may), must: cloneSet(o.must)}
				work = append(work, s)
				continue
			}
			changed := false
			for k := range o.may {
				if !prev.may[k] {
					prev.may[k] = true
					changed = true
				}
			}
			for k := range prev.must {
				if !o.must[k] {
					delete(prev.must, k)
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}

	// Checks per node, against the state holding *at* each operation
	// (locks acquired earlier in the same node count, in textual order).
	for _, n := range g.Nodes {
		st := in[n]
		if st == nil {
			continue // unreachable
		}
		held := &state{may: cloneSet(st.may), must: cloneSet(st.must)}
		nodeOps := ops[n]
		opIdx := 0
		for _, e := range n.Exprs() {
			eachImmediateCall(e, func(c *ast.CallExpr) {
				// Apply lock ops as we pass them.
				if opIdx < len(nodeOps) && nodeOps[opIdx].call == c {
					op := nodeOps[opIdx]
					opIdx++
					if op.unlock {
						delete(held.may, op.key)
						delete(held.must, op.key)
					} else {
						for k := range held.may {
							if k != op.key {
								pass.Reportf(c.Pos(), "shard lock %s acquired while %s may already be held: multi-shard operations must visit one shard at a time (ascending order, never nested)", op.key, k)
							}
						}
						held.may[op.key] = true
						held.must[op.key] = true
					}
					return
				}
				callee := analysis.Callee(info, c)
				if callee == nil {
					return
				}
				if pass.Markers.Has(callee, analysis.MarkRequiresLock) {
					if len(held.must) == 0 {
						pass.Reportf(c.Pos(), "%s requires the shard lock but no shard lock is held on every path to this call", analysis.FuncName(callee))
					}
				}
				if pass.Markers.Has(callee, analysis.MarkForbidsLock) {
					for k := range held.may {
						pass.Reportf(c.Pos(), "%s must not run under a shard lock, but %s may be held here (fsync inside the critical section)", analysis.FuncName(callee), k)
						break
					}
				}
			})
		}
	}
}

// eachImmediateCall visits the calls that execute when the node itself
// does: it descends neither into defer statements (those run at exit) nor
// into function literals (those run whenever the closure is invoked).
func eachImmediateCall(root ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(root, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			f(c)
		}
		return true
	})
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// shardLockOp recognizes x.mu.Lock() / x.mu.Unlock() where mu is a field
// marked //memolint:shard-lock, returning the rendered key of the mutex.
func shardLockOp(pass *analysis.Pass, c *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" {
		return lockOp{}, false
	}
	// receiver must be a selector whose field carries the marker
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fieldObj := pass.Info.Uses[recv.Sel]
	if fieldObj == nil || !pass.Markers.Has(fieldObj, analysis.MarkShardLock) {
		return lockOp{}, false
	}
	return lockOp{key: renderExpr(recv), unlock: name == "Unlock", call: c}, true
}

// renderExpr renders a lock path textually; distinct shards must render
// distinctly within one function for the nesting check to see them.
func renderExpr(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderExpr(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(v.X) + "[" + renderExpr(v.Index) + "]"
	case *ast.StarExpr:
		return renderExpr(v.X)
	case *ast.UnaryExpr:
		return renderExpr(v.X)
	case *ast.CallExpr:
		return renderExpr(v.Fun) + "()"
	case *ast.BasicLit:
		return v.Value
	}
	return "?"
}
