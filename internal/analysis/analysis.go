// Package analysis is a self-contained static-analysis framework shaped
// after golang.org/x/tools/go/analysis, built only on the standard library
// (go/ast, go/parser, go/types) so the repo's invariants can be machine-
// checked without any external module. It exists because the hot-path
// contracts introduced by the pooling and durability work — exactly-one
// pool.Put per pool.Get, Retain-before-escape for aliasing decoders,
// WAL appends inside the shard critical section, commit errors gating acks
// — are invisible to the compiler and to -race, yet a single missed call is
// silent data corruption.
//
// The framework is deliberately marker-driven: analyzers know almost
// nothing about this repo's packages. Instead, functions and fields carry
// machine-readable doc-comment markers (see package markers documentation
// in markers.go) that register them with the relevant analyzer:
//
//	//memolint:pool-get             returns a pooled buffer the caller owns
//	//memolint:pool-put             consumes a pooled buffer (the recycler)
//	//memolint:transfers-ownership  callee takes over the pooled buffer
//	//memolint:returns-buffer       append-style: result carries arg buffers
//	//memolint:aliases-buffer       result (or *Into dst) aliases input buf
//	//memolint:shard-lock           on a sync.Mutex field: a shard lock
//	//memolint:requires-shard-lock  callee must run under a shard lock
//	//memolint:forbids-shard-lock   callee must NOT run under a shard lock
//	//memolint:must-check-error     the error result must be consumed
//
// Diagnostics are suppressed by an adjacent comment
//
//	//memolint:ignore <analyzer> <reason>
//
// where the reason is mandatory; a reasonless ignore is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one memolint check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so a future migration to the real
// framework is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //memolint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
	// Strict, when true, enables the analyzer's pickier mode (currently
	// only poolcheck's all-paths disposal check). Toggled by the driver's
	// -strict flag and by analysistest.
	Strict bool
}

// Pass carries one package's load results to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Markers indexes every //memolint: marker in this package and in all
	// module packages it imports (transitively).
	Markers *Markers

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set by the driver when a matching //memolint:ignore
	// covers the diagnostic. The reason travels with it for reporting.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run loads nothing itself: it applies the given analyzers to one
// already-loaded package and returns the diagnostics, sorted by position,
// with suppressions from //memolint:ignore comments applied (matching
// diagnostics are marked Suppressed rather than dropped, so drivers can
// count and audit them).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Markers:  pkg.Markers,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = append(diags, checkIgnoreComments(pkg, analyzers)...)
	applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
