package aliascheck_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/aliascheck"
	"repro/internal/analysis/analysistest"
)

func TestAliascheck(t *testing.T) {
	analysistest.Run(t, "testdata", aliascheck.New(), "a")
}

// TestIgnore proves the suppression silences exactly the annotated
// diagnostic and nothing else.
func TestIgnore(t *testing.T) {
	diags := analysistest.Run(t, "testdata", aliascheck.New(), "ignore")
	var suppressed []analysis.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("got %d suppressed diagnostics, want exactly 1: %v", len(suppressed), suppressed)
	}
	if want := "sink is drained before dispatch returns"; suppressed[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", suppressed[0].Reason, want)
	}
}
