// Package aliascheck enforces the zero-copy decode contract: values
// produced by the aliasing decoders (//memolint:aliases-buffer — the
// wire.Decode* family) point into the connection's read buffer, which is
// recycled when the dispatch scope ends. Letting such a value outlive that
// scope — storing it into a struct field, a map, a global, sending it on a
// channel, capturing it in a spawned goroutine or closure, or returning it
// — without an intervening Retain() is silent data corruption: the buffer
// is reused and the "stored" bytes mutate under the reader. No race, so
// -race never sees it.
//
// The analyzer tracks both decoder results and *Into destinations (the
// pointer/slice arguments), follows local rebinding, and accepts a
// Retain() call on the tracked value (on any path between decode and
// escape) as the fix. Functions that deliberately hand an aliased value to
// their caller should themselves be marked //memolint:aliases-buffer so the
// obligation propagates to their callers instead of being reported.
package aliascheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// New returns the aliascheck analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "aliascheck",
		Doc:  "aliasing decoder outputs must not outlive the dispatch scope without Retain",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type family struct {
	src     *ast.CallExpr
	members analysis.PathSet
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Info
	g := analysis.BuildCFG(fd.Body)
	idx := analysis.NodeIndex(g)

	// A function marked aliases-buffer is allowed to return tracked values:
	// its own callers inherit the obligation.
	selfAliases := pass.Markers.Has(info.Defs[fd.Name], analysis.MarkAliases)

	var sources []*ast.CallExpr
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok && pass.Markers.CallHas(info, c, analysis.MarkAliases) {
			sources = append(sources, c)
		}
		return true
	})

	for _, src := range sources {
		defNode := idx[src]
		if defNode == nil {
			continue
		}
		fam := &family{src: src}
		seedMembers(pass, src, fam)
		propagateMembers(pass, fd, fam)
		if len(fam.members) == 0 {
			continue
		}
		checkFamily(pass, fd, g, defNode, fam, selfAliases)
	}
}

// seedMembers roots the family at the decode destinations: pointer and
// slice arguments of the call (the *Into destinations alias the buffer).
// Raw []byte arguments are the SOURCE buffer, not a decoded view — its
// lifetime is poolcheck's business — so they stay out of the family.
func seedMembers(pass *analysis.Pass, src *ast.CallExpr, fam *family) {
	info := pass.Info
	for _, arg := range src.Args {
		t := info.Types[arg].Type
		if !aliasish(t) || isByteSlice(t) {
			continue
		}
		if p, ok := analysis.PathOf(info, arg); ok {
			fam.members.Add(p)
		}
	}
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// errType is the predeclared error interface: decode results of this exact
// type are verdicts, not aliases, and must not join the family (else a bare
// `return err` would be flagged as leaking the buffer).
var errType = types.Universe.Lookup("error").Type()

// aliasish reports whether a value of type t can carry an alias into the
// read buffer: pointers, slices, and structs/arrays containing them.
// Plain scalars (BatchKind, error counts) and the error interface cannot.
func aliasish(t types.Type) bool {
	if t == nil || types.Identical(t, errType) {
		return false
	}
	seen := make(map[types.Type]bool)
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
			return true
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(t)
}

// carrier reports whether expr carries the family: the decode call itself,
// a covered path, or a slice/paren/address of a carrier.
func carrier(pass *analysis.Pass, fam *family, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	e := ast.Unparen(expr)
	if e == fam.src {
		return true
	}
	if pass.Info.Types[e].IsValue() {
		if fam.members.CoversExpr(pass.Info, e) {
			return true
		}
	}
	switch v := e.(type) {
	case *ast.SliceExpr:
		return carrier(pass, fam, v.X)
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			return carrier(pass, fam, v.X)
		}
	}
	return false
}

// propagateMembers: variables bound to carrier expressions join the family
// (result vars of the decode call, rebindings like entries = es, pointers
// like e := &entries[i]).
func propagateMembers(pass *analysis.Pass, fd *ast.FuncDecl, fam *family) {
	info := pass.Info
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			s, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// tuple binding from the decode call: every aliasish LHS joins
			if len(s.Rhs) == 1 && ast.Unparen(s.Rhs[0]) == fam.src {
				for _, lhs := range s.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					v := analysis.ObjVar(info, id)
					if v == nil || !aliasish(v.Type()) {
						continue
					}
					if !fam.members.HasRoot(v) {
						fam.members.Add(analysis.Path{Root: v})
						changed = true
					}
				}
				return true
			}
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				if !carrier(pass, fam, rhs) {
					continue
				}
				id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if v := analysis.ObjVar(info, id); v != nil && !fam.members.HasRoot(v) {
					fam.members.Add(analysis.Path{Root: v})
					changed = true
				}
			}
			return true
		})
	}
}

// escape classifies one CFG node: does it leak a tracked value out of the
// dispatch scope?
func escapeAt(pass *analysis.Pass, fam *family, n *analysis.Node, selfAliases bool) (ast.Node, string) {
	info := pass.Info
	var at ast.Node
	what := ""
	note := func(n ast.Node, w string) {
		if at == nil {
			at, what = n, w
		}
	}
	for _, e := range n.Exprs() {
		ast.Inspect(e, func(x ast.Node) bool {
			if at != nil {
				return false
			}
			switch s := x.(type) {
			case *ast.ReturnStmt:
				if selfAliases {
					return true
				}
				for _, r := range s.Results {
					if carrier(pass, fam, r) {
						note(s, "returned to the caller")
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					l := ast.Unparen(lhs)
					if _, isIdent := l.(*ast.Ident); isIdent {
						continue // local rebinding: tracked by propagation
					}
					// Storing INTO the aliased value is fine; storing the
					// aliased value into non-local storage is the bug.
					if i < len(s.Rhs) && carrierDeep(pass, fam, s.Rhs[i]) {
						note(s, "stored into "+lhsKind(l))
					}
				}
			case *ast.SendStmt:
				if carrierDeep(pass, fam, s.Value) {
					note(s, "sent on a channel")
				}
			case *ast.GoStmt:
				if analysis.ContainsMember(info, fam.members, s.Call) != nil {
					note(s, "captured by a spawned goroutine")
				}
			case *ast.DeferStmt:
				if analysis.ContainsMember(info, fam.members, s.Call) != nil {
					note(s, "captured by a deferred call")
				}
			case *ast.FuncLit:
				if analysis.ContainsMember(info, fam.members, s.Body) != nil {
					note(s, "captured by a closure")
				}
				return false
			}
			return true
		})
	}
	return at, what
}

func lhsKind(l ast.Expr) string {
	switch l.(type) {
	case *ast.SelectorExpr:
		return "a struct field or package variable"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "pointed-to storage"
	}
	return "non-local storage"
}

// carrierDeep is carrier plus composite literals built around a carrier —
// wrapping an aliased payload in a struct and storing that struct escapes
// the alias just the same. Selector paths are atomic: storing the sibling
// field t.cc does not leak t.q, so an uncovered selector's base is not
// re-tested on the way down.
func carrierDeep(pass *analysis.Pass, fam *family, e ast.Expr) bool {
	if carrier(pass, fam, e) {
		return true
	}
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false // handled as closure capture
		}
		ex, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if carrier(pass, fam, ex) {
			found = true
			return false
		}
		if _, isSel := ex.(*ast.SelectorExpr); isSel {
			if _, resolved := analysis.PathOf(pass.Info, ex); resolved {
				return false
			}
		}
		return true
	})
	return found
}

// retains reports whether node n calls Retain() (or a method marked
// aliases-buffer-clearing by the "Retain" name convention) on a tracked
// value, detaching the family from the read buffer.
func retains(pass *analysis.Pass, fam *family, n *analysis.Node) bool {
	info := pass.Info
	found := false
	for _, e := range n.Exprs() {
		analysis.EachCall(e, func(c *ast.CallExpr) {
			if found {
				return
			}
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Retain" {
				return
			}
			if p, ok := analysis.PathOf(info, sel.X); ok && (fam.members.Covers(p) || coversAny(p, fam.members)) {
				found = true
			}
		})
	}
	return found
}

func coversAny(p analysis.Path, set analysis.PathSet) bool {
	for _, m := range set {
		if p.Covers(m) {
			return true
		}
	}
	return false
}

func checkFamily(pass *analysis.Pass, fd *ast.FuncDecl, g *analysis.Graph, defNode *analysis.Node, fam *family, selfAliases bool) {
	info := pass.Info
	name := "decoded value"
	if obj := analysis.Callee(info, fam.src); obj != nil {
		name = "result of " + analysis.FuncName(obj)
	}

	// Walk forward from the decode. Retain cleanses the branch; rebinding
	// every root kills the family; an escape before either is the bug.
	// The def node itself may escape too (e.g. a field store of the call).
	reported := make(map[ast.Node]bool)
	check := func(n *analysis.Node) bool {
		if at, what := escapeAt(pass, fam, n, selfAliases); at != nil && !reported[at] {
			reported[at] = true
			pass.Reportf(at.Pos(), "%s aliases the read buffer but is %s without Retain — the buffer recycles when dispatch ends", name, what)
			return false
		}
		return true
	}
	check(defNode)
	g.Forward(defNode, func(n *analysis.Node) bool {
		if retains(pass, fam, n) {
			return false // detached: this branch is safe
		}
		if !check(n) {
			return false // one report per escape site; stop the cascade
		}
		// rebinding the decode destinations to fresh values ends tracking
		rebound := 0
		roots := make(map[*types.Var]bool)
		for _, m := range fam.members {
			roots[m.Root] = true
		}
		for _, as := range analysis.NodeAssigns(info, n) {
			if roots[as.LHSVar] && !carrier(pass, fam, as.RHS) && as.RHS != nil {
				rebound++
			}
		}
		if rebound > 0 && rebound >= len(roots) {
			return false
		}
		return true
	})
}
