// Package a exercises aliascheck: decoded views alias the read buffer and
// must not outlive the dispatch scope without Retain.
package a

import "wire"

type cache struct{ last wire.Request }

func use(wire.Request)    {}
func handle(wire.Request) {}

// StoreNoRetain parks a decoded view in a long-lived struct: the buffer
// recycles and the "stored" request mutates under the reader.
func StoreNoRetain(c *cache, buf []byte) {
	q, err := wire.DecodeRequest(buf)
	if err != nil {
		return
	}
	c.last = q // want `stored into a struct field`
}

// StoreWithRetain copies first; storing the copy is fine.
func StoreWithRetain(c *cache, buf []byte) {
	q, err := wire.DecodeRequest(buf)
	if err != nil {
		return
	}
	q.Retain()
	c.last = q
}

// SendNoRetain pushes the aliased view across a channel to a consumer that
// will read it after the buffer recycles.
func SendNoRetain(ch chan wire.Request, buf []byte) {
	q, _ := wire.DecodeRequest(buf)
	ch <- q // want `sent on a channel`
}

// SendRetained is the recvLoop pattern: Retain, then hand off.
func SendRetained(ch chan wire.Request, buf []byte) {
	q, _ := wire.DecodeRequest(buf)
	q.Retain()
	ch <- q
}

// GoCapture leaks the view into a goroutine that outlives dispatch. The
// *Into destination is tracked just like a result.
func GoCapture(buf []byte) {
	var q wire.Request
	if err := wire.DecodeRequestInto(&q, buf); err != nil {
		return
	}
	go handle(q) // want `captured by a spawned goroutine`
}

// ClosureCapture stores a closure over the view; whoever calls it later
// reads recycled bytes.
func ClosureCapture(buf []byte) func() {
	q, _ := wire.DecodeRequest(buf)
	return func() { use(q) } // want `captured by a closure`
}

// ReturnAlias hands the view to an unannotated caller.
func ReturnAlias(buf []byte) wire.Request {
	q, _ := wire.DecodeRequest(buf)
	return q // want `returned to the caller`
}

// DecodeHeader legitimately returns an aliased view: the marker moves the
// obligation to ITS callers instead of reporting here.
//
//memolint:aliases-buffer
func DecodeHeader(buf []byte) wire.Request {
	q, _ := wire.DecodeRequest(buf)
	return q
}

// ReturnRetained copies before returning.
func ReturnRetained(buf []byte) wire.Request {
	q, _ := wire.DecodeRequest(buf)
	q.Retain()
	return q
}

// RebindKills: once every decode destination is rebound to a fresh value,
// the family is dead and later escapes are fine.
func RebindKills(buf []byte) wire.Request {
	q, _ := wire.DecodeRequest(buf)
	use(q)
	q = wire.Request{}
	return q
}

// BatchLoop is the recvLoop shape: per-entry views are used within the
// iteration, the destination slice is reused, nothing escapes.
func BatchLoop(buf []byte) int {
	var entries []wire.Entry
	n := 0
	for i := 0; i < 3; i++ {
		entries = wire.DecodeBatchInto(entries[:0], buf)
		for j := range entries {
			n += len(entries[j].Msg)
		}
	}
	return n
}

// BatchEscape stores an entry's aliased payload past the loop.
func BatchEscape(sink *[][]byte, buf []byte) {
	entries := wire.DecodeBatchInto(nil, buf)
	for i := range entries {
		(*sink) = append(*sink, entries[i].Msg) // want `stored into`
	}
}

// task mirrors the server's dispatchTask: the decode destination q lives
// next to unrelated fields on the same struct.
type task struct {
	q  wire.Request
	cc chan struct{}
}

// SiblingField stores a sibling field of the decode destination. t.cc is
// disjoint storage from t.q — publishing it leaks nothing aliased — so this
// must stay clean even though both paths share the root t.
func SiblingField(m map[uint64]chan struct{}, buf []byte) {
	t := &task{cc: make(chan struct{})}
	if err := wire.DecodeRequestInto(&t.q, buf); err != nil {
		return
	}
	m[7] = t.cc
}
