// Package wire stubs the aliasing decoder surface of repro/internal/wire:
// decode results point into the caller's read buffer until Retain copies
// them out.
package wire

// Request is a decoded request view; Key and Value alias the read buffer.
type Request struct {
	Key   []byte
	Value []byte
}

// Retain copies the aliased fields into fresh storage.
func (r *Request) Retain() {
	r.Key = append([]byte(nil), r.Key...)
	r.Value = append([]byte(nil), r.Value...)
}

// Entry is one batch entry; Msg aliases the read buffer.
type Entry struct {
	ID  uint64
	Msg []byte
}

//memolint:aliases-buffer
func DecodeRequest(buf []byte) (Request, error) {
	return Request{Key: buf}, nil
}

//memolint:aliases-buffer
func DecodeRequestInto(dst *Request, buf []byte) error {
	dst.Key = buf
	return nil
}

//memolint:aliases-buffer
func DecodeBatchInto(dst []Entry, buf []byte) []Entry {
	return append(dst, Entry{Msg: buf})
}
