// Package ignore proves //memolint:ignore silences exactly the annotated
// aliascheck diagnostic: two identical escapes, one suppressed with a
// written reason, one still reported.
package ignore

import "wire"

type sink struct{ last wire.Request }

func Suppressed(s *sink, buf []byte) {
	q, _ := wire.DecodeRequest(buf)
	//memolint:ignore aliascheck sink is drained before dispatch returns
	s.last = q
}

func NotSuppressed(s *sink, buf []byte) {
	q, _ := wire.DecodeRequest(buf)
	s.last = q // want `stored into a struct field`
}
