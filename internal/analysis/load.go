package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus everything an analyzer
// pass needs.
type Package struct {
	Path    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Markers *Markers
}

// Loader parses and type-checks packages from source. In-tree packages
// (those under Module/SrcRoot) are loaded from source so their doc-comment
// markers are visible; everything else resolves through the standard
// library's source importer, which works offline from GOROOT.
type Loader struct {
	// SrcRoot is the directory packages load from.
	SrcRoot string
	// Module is the module path SrcRoot is the root of. When Module is
	// empty the loader is in GOPATH style: import path p maps to
	// SrcRoot/p. Otherwise p under the module maps to
	// SrcRoot/<p minus module prefix>.
	Module string
	// IncludeTests adds *_test.go files of the package itself (not
	// external _test packages) to the load.
	IncludeTests bool

	Fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	markers *Markers
}

// NewLoader returns a loader rooted at srcRoot. module may be empty for
// GOPATH-style roots (used by analysistest).
func NewLoader(srcRoot, module string) *Loader {
	// The source importer consults go/build, which would otherwise demand
	// cgo support for net and friends; the analyzers only ever need the
	// pure-Go view.
	os.Setenv("CGO_ENABLED", "0")
	fset := token.NewFileSet()
	return &Loader{
		SrcRoot: srcRoot,
		Module:  module,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		markers: newMarkers(),
	}
}

// ours reports whether path is loaded from source under SrcRoot, and the
// directory it maps to.
func (l *Loader) ours(path string) (string, bool) {
	if l.Module != "" {
		if path == l.Module {
			return l.SrcRoot, true
		}
		if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
			return filepath.Join(l.SrcRoot, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	return "", false
}

// Load type-checks the package at the given import path (and, transitively,
// every in-tree package it imports) and returns it.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.ours(path)
	if !ok {
		return nil, fmt.Errorf("memolint: %s is not under %s", path, l.SrcRoot)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("memolint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("memolint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if _, ok := l.ours(ipath); ok {
				p, err := l.Load(ipath)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return l.std.Import(ipath)
		}),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("memolint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:    path,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Markers: l.markers,
	}
	l.markers.collect(p)
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the package's Go files in dir, skipping external test
// packages and, unless IncludeTests is set, in-package test files.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") {
			continue // external test package
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			continue // stray package in dir (e.g. ignored build-tagged file)
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadAll walks SrcRoot and loads every package under it, skipping
// testdata, vendor, and hidden directories. Returned in path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.SrcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.SrcRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(p)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.SrcRoot, p)
		if err != nil {
			return err
		}
		ipath := l.Module
		if rel != "." {
			if l.Module != "" {
				ipath = l.Module + "/" + filepath.ToSlash(rel)
			} else {
				ipath = filepath.ToSlash(rel)
			}
		}
		if ipath == "" {
			return nil
		}
		paths = append(paths, ipath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true, nil
		}
	}
	return false, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
