// Package store stubs the mutating Store surface whose errors gate
// acknowledgements.
package store

type Store struct{}

// Put's error means "not durable — do not ack".
//
//memolint:must-check-error
func (s *Store) Put(key string, val []byte) error { return nil }

// Get tombstones the memo; losing the error loses the at-most-once claim.
//
//memolint:must-check-error
func (s *Store) Get(key string) ([]byte, error) { return nil, nil }
