// Package ignore proves //memolint:ignore silences exactly the annotated
// errgate diagnostic: two identical violations, one suppressed with a
// written reason, one still reported.
package ignore

import "store"

func Suppressed(s *store.Store) {
	//memolint:ignore errgate best-effort warmup write, no ack depends on it
	s.Put("k", nil)
}

func NotSuppressed(s *store.Store) {
	s.Put("k", nil) // want `discarded`
}
