// Package a exercises errgate: errors from marked calls must be consumed
// before the caller can ack.
package a

import (
	"fmt"

	"store"
)

func use([]byte) {}

// Discarded drops the error on the floor.
func Discarded(s *store.Store) {
	s.Put("k", nil) // want `discarded`
}

// Blanked explicitly ignores it, which is just as fatal for durability.
func Blanked(s *store.Store) {
	_ = s.Put("k", nil) // want `blank identifier`
}

// BlankedInTuple ignores only the error of a multi-result call.
func BlankedInTuple(s *store.Store) {
	v, _ := s.Get("k") // want `blank identifier`
	use(v)
}

// AssignedNeverChecked binds the error but never branches on it before
// overwriting it.
func AssignedNeverChecked(s *store.Store) error {
	v, err := s.Get("k") // want `never checked`
	use(v)
	err = nil
	return err
}

// Checked is the required shape.
func Checked(s *store.Store) error {
	v, err := s.Get("k")
	if err != nil {
		return err
	}
	use(v)
	return nil
}

// CheckedInline consumes the error in the if-init condition.
func CheckedInline(s *store.Store) error {
	if err := s.Put("k", nil); err != nil {
		return err
	}
	return nil
}

// Returned passes the error straight to the caller.
func Returned(s *store.Store) error {
	return s.Put("k", nil)
}

// Wrapped forwards the error through fmt.Errorf.
func Wrapped(s *store.Store) error {
	return fmt.Errorf("put: %w", s.Put("k", nil))
}

// CheckedLater branches on the error after unrelated work; still consumed.
func CheckedLater(s *store.Store) error {
	v, err := s.Get("k")
	use(v)
	if err != nil {
		return err
	}
	return nil
}

// GoDiscarded spawns the call and can never see its error.
func GoDiscarded(s *store.Store) {
	go s.Put("k", nil) // want `discarded by go statement`
}

// DeferDiscarded defers the call; the error evaporates at exit.
func DeferDiscarded(s *store.Store) {
	defer s.Put("k", nil) // want `discarded by defer statement`
}
