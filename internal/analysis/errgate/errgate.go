// Package errgate enforces that errors which gate acknowledgements are
// actually consulted. Since the durability work, the mutating Store
// operations (Put, PutDelayed, Get, GetSkip, AltSkip, the takes) and
// durable.Log.Commit return errors that mean "this operation is NOT
// durable — do not ack it". Dropping one acknowledges a write the disk
// never saw; a crash then silently loses an acked memo, defeating the
// whole exactly-once machinery.
//
// Functions whose error results gate acks carry //memolint:must-check-error.
// At every call, the error result must be consumed:
//
//   - a bare call statement discards it            → reported
//   - binding it to the blank identifier           → reported
//   - binding it to a variable that is never read
//     before rebinding or function exit            → reported
//   - returning it, branching on it, or passing it
//     on (fmt.Errorf, errors.Join, a channel...)   → fine
package errgate

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// New returns the errgate analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "errgate",
		Doc:  "errors from mutating store ops and durable commits must be checked before acking",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

var errType = types.Universe.Lookup("error").Type()

// errResultIndex returns the index of the trailing error result of the
// called function, or -1.
func errResultIndex(info *types.Info, c *ast.CallExpr) int {
	tv, ok := info.Types[c]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType) {
			return t.Len() - 1
		}
	default:
		if t != nil && types.Identical(t, errType) {
			return 0
		}
	}
	return -1
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Info
	g := analysis.BuildCFG(fd.Body)
	idx := analysis.NodeIndex(g)

	ast.Inspect(fd.Body, func(x ast.Node) bool {
		c, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(info, c)
		if callee == nil || !pass.Markers.Has(callee, analysis.MarkMustCheck) {
			return true
		}
		ei := errResultIndex(info, c)
		if ei < 0 {
			return true
		}
		name := analysis.FuncName(callee)
		node := idx[c]
		if node == nil {
			return true // inside a func literal; its own pass would need one
		}
		switch parent := stmtOf(node, c); p := parent.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(p.X) == c {
				pass.Reportf(c.Pos(), "error from %s is discarded: it gates the acknowledgement and must be checked before acking", name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, g, node, p, c, ei, name)
		case *ast.GoStmt:
			if ast.Unparen(p.Call) == c {
				pass.Reportf(c.Pos(), "error from %s is discarded by go statement: it gates the acknowledgement", name)
			}
		case *ast.DeferStmt:
			if ast.Unparen(p.Call) == c {
				pass.Reportf(c.Pos(), "error from %s is discarded by defer statement: it gates the acknowledgement", name)
			}
		}
		return true
	})
}

// stmtOf finds the direct statement context of call c within node n: the
// ExprStmt/AssignStmt whose immediate expression is c, if any. A call
// nested inside another expression (return f(), if f() != nil, g(f()))
// is consumed by construction.
func stmtOf(n *analysis.Node, c *ast.CallExpr) ast.Stmt {
	var found ast.Stmt
	for _, e := range n.Exprs() {
		ast.Inspect(e, func(x ast.Node) bool {
			if found != nil {
				return false
			}
			switch s := x.(type) {
			case *ast.ExprStmt:
				if ast.Unparen(s.X) == c {
					found = s
					return false
				}
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					if ast.Unparen(r) == c {
						found = s
						return false
					}
				}
			case *ast.GoStmt:
				if s.Call == c {
					found = s
					return false
				}
			case *ast.DeferStmt:
				if s.Call == c {
					found = s
					return false
				}
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}

// checkAssign handles `..., err := f()` / `..., _ = f()`: the error's
// binding must not be blank, and a named binding must be read on some path
// before being rebound or falling off the function.
func checkAssign(pass *analysis.Pass, g *analysis.Graph, node *analysis.Node, s *ast.AssignStmt, c *ast.CallExpr, ei int, name string) {
	info := pass.Info
	// Identify the LHS expression bound to the error result.
	var lhs ast.Expr
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if ei < len(s.Lhs) {
			lhs = s.Lhs[ei]
		}
	} else {
		for i, r := range s.Rhs {
			if ast.Unparen(r) == c && i < len(s.Lhs) {
				lhs = s.Lhs[i]
			}
		}
	}
	if lhs == nil {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored into a field/element: consumed (someone reads it)
	}
	if id.Name == "_" {
		pass.Reportf(c.Pos(), "error from %s is assigned to the blank identifier: it gates the acknowledgement and must be checked", name)
		return
	}
	v := analysis.ObjVar(info, id)
	if v == nil {
		return
	}
	// Read in the same statement (if err := f(); err != nil) or on any
	// path before rebinding?
	if readsOutsideAssign(info, node, s, v) {
		return
	}
	read := false
	g.Forward(node, func(n *analysis.Node) bool {
		if read {
			return false
		}
		if analysis.ReadsVar(info, n, v) {
			read = true
			return false
		}
		for _, as := range analysis.NodeAssigns(info, n) {
			if as.LHSVar == v {
				return false // rebound before any read on this path
			}
		}
		return true
	})
	if !read {
		pass.Reportf(c.Pos(), "error from %s is assigned to %s but never checked: it gates the acknowledgement", name, id.Name)
	}
}

// readsOutsideAssign reports whether node n reads v anywhere outside the
// binding assignment s itself (e.g. the condition of the if that s inits).
func readsOutsideAssign(info *types.Info, n *analysis.Node, s *ast.AssignStmt, v *types.Var) bool {
	read := false
	for _, e := range n.Exprs() {
		ast.Inspect(e, func(x ast.Node) bool {
			if read {
				return false
			}
			if x == s {
				return false // skip the binding itself
			}
			if id, ok := x.(*ast.Ident); ok && info.Uses[id] == v {
				read = true
				return false
			}
			return true
		})
	}
	return read
}
