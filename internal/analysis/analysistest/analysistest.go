// Package analysistest runs a memolint analyzer over a testdata package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	buf := pool.Get(64) // want `never released`
//
// Each `// want` comment carries one or more quoted or backquoted regular
// expressions; every unsuppressed diagnostic on that line must match one,
// and every expectation must be matched by a diagnostic. Suppressed
// diagnostics (covered by //memolint:ignore) are NOT matched against wants —
// a test asserts suppression by the absence of a want plus the returned
// diagnostics.
//
// Testdata lives under <analyzer>/testdata/src in GOPATH layout: package
// path "a" loads from testdata/src/a, and stub dependency packages (pool,
// wire, durable...) sit alongside so markers resolve exactly as they do in
// the real tree.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads pkgPath from dir/src, applies the analyzer, checks // want
// expectations, and returns all diagnostics (including suppressed ones) for
// further assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) []analysis.Diagnostic {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(dir, "src"), "")
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	type lineKey struct {
		file string
		line int
	}
	byLine := make(map[lineKey][]*expectation)
	for i := range wants {
		w := &wants[i]
		byLine[lineKey{w.file, w.line}] = append(byLine[lineKey{w.file, w.line}], w)
	}

	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, w := range byLine[lineKey{d.Pos.Filename, d.Pos.Line}] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", posName(pkg, d), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	return diags
}

func posName(pkg *analysis.Package, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re" \`re\“ comments from the package files.
func collectWants(t *testing.T, pkg *analysis.Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos.String(), text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitPatterns extracts the quoted/backquoted patterns from a want comment.
func splitPatterns(t *testing.T, pos, text string) []string {
	t.Helper()
	var pats []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated ` in want comment", pos)
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		case '"':
			// find the closing quote, honoring escapes
			i := 1
			for i < len(rest) && (rest[i] != '"' || rest[i-1] == '\\') {
				i++
			}
			if i >= len(rest) {
				t.Fatalf("%s: unterminated \" in want comment", pos)
			}
			s, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, rest[:i+1], err)
			}
			pats = append(pats, s)
			rest = strings.TrimSpace(rest[i+1:])
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted, got %q", pos, rest)
		}
	}
	return pats
}
