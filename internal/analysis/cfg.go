package analysis

import (
	"go/ast"
	"strings"
)

// Node is one control-flow-graph node. Simple statements map to one node
// each; compound statements (if/for/switch/select) contribute a header node
// covering only their init/cond/tag expressions, with bodies built as
// successor nodes. Synthetic nodes (entry, exit, joins) carry a nil Stmt.
type Node struct {
	Stmt   ast.Stmt
	Header bool // Stmt is compound; only its header expressions belong here
	Succs  []*Node
	Preds  []*Node
}

// Graph is the CFG of one function body. Deferred calls run at every exit:
// analyses treat g.Defers as statements executed on each path to Exit.
type Graph struct {
	Entry, Exit *Node
	Nodes       []*Node
	Defers      []*ast.CallExpr
}

// Exprs returns the AST nodes an analysis should inspect for n: the whole
// statement for simple nodes, only the header expressions for compound
// ones (their bodies are separate nodes).
func (n *Node) Exprs() []ast.Node {
	if n.Stmt == nil {
		return nil
	}
	if !n.Header {
		return []ast.Node{n.Stmt}
	}
	var out []ast.Node
	add := func(xs ...ast.Node) {
		for _, x := range xs {
			switch v := x.(type) {
			case nil:
			case ast.Stmt:
				if v != nil {
					out = append(out, v)
				}
			case ast.Expr:
				if v != nil {
					out = append(out, v)
				}
			}
		}
	}
	switch s := n.Stmt.(type) {
	case *ast.IfStmt:
		add(s.Init, s.Cond)
	case *ast.ForStmt:
		add(s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		add(s.Key, s.Value, s.X)
	case *ast.SwitchStmt:
		add(s.Init, s.Tag)
	case *ast.TypeSwitchStmt:
		add(s.Init, s.Assign)
	case *ast.SelectStmt:
		// comm clauses are their own nodes
	}
	return out
}

// BuildCFG constructs the CFG for one function body. The graph is a sound
// over-approximation for structured control flow; goto conservatively jumps
// to the function exit.
func BuildCFG(body *ast.BlockStmt) *Graph {
	g := &Graph{Entry: &Node{}, Exit: &Node{}}
	g.Nodes = append(g.Nodes, g.Entry, g.Exit)
	b := &cfgBuilder{g: g, labels: make(map[string]*loopCtx)}
	frontier := b.stmtList(body.List, []*Node{g.Entry}, nil)
	b.link(frontier, g.Exit)
	return g
}

// loopCtx is the pair of jump targets a break/continue resolves to.
type loopCtx struct {
	breakTo    *Node // synthetic join after the construct
	continueTo *Node // loop header; nil for switch/select
}

type cfgBuilder struct {
	g      *Graph
	labels map[string]*loopCtx
	// stack of enclosing breakable constructs; innermost last
	loops []*loopCtx
}

func (b *cfgBuilder) newNode(s ast.Stmt, header bool) *Node {
	n := &Node{Stmt: s, Header: header}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *cfgBuilder) link(froms []*Node, to *Node) {
	for _, f := range froms {
		f.Succs = append(f.Succs, to)
		to.Preds = append(to.Preds, f)
	}
}

// stmtList threads preds through stmts and returns the fall-through
// frontier. label names the enclosing labeled statement, if any, so a
// labeled loop registers its jump targets.
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, preds []*Node, _ *string) []*Node {
	for _, s := range stmts {
		preds = b.stmt(s, preds, "")
	}
	return preds
}

// terminating reports whether a call expression never returns.
func terminating(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			full := x.Name + "." + fn.Sel.Name
			return full == "os.Exit" || full == "runtime.Goexit" ||
				strings.HasPrefix(full, "log.Fatal") || strings.HasPrefix(full, "log.Panic")
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt, preds []*Node, label string) []*Node {
	switch s := s.(type) {
	case nil:
		return preds
	case *ast.BlockStmt:
		return b.stmtList(s.List, preds, nil)
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, preds, s.Label.Name)
	case *ast.ReturnStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		b.link([]*Node{n}, b.g.Exit)
		return nil
	case *ast.BranchStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		var ctx *loopCtx
		if s.Label != nil {
			ctx = b.labels[s.Label.Name]
		} else if len(b.loops) > 0 {
			switch s.Tok.String() {
			case "continue":
				// innermost ctx with a continue target
				for i := len(b.loops) - 1; i >= 0; i-- {
					if b.loops[i].continueTo != nil {
						ctx = b.loops[i]
						break
					}
				}
			default:
				ctx = b.loops[len(b.loops)-1]
			}
		}
		switch {
		case s.Tok.String() == "goto" || ctx == nil:
			b.link([]*Node{n}, b.g.Exit) // conservative
		case s.Tok.String() == "continue":
			b.link([]*Node{n}, ctx.continueTo)
		default: // break
			b.link([]*Node{n}, ctx.breakTo)
		}
		return nil
	case *ast.DeferStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		b.g.Defers = append(b.g.Defers, s.Call)
		return []*Node{n}
	case *ast.ExprStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminating(call) {
			b.link([]*Node{n}, b.g.Exit)
			return nil
		}
		return []*Node{n}
	case *ast.IfStmt:
		h := b.newNode(s, true)
		b.link(preds, h)
		thenF := b.stmtList(s.Body.List, []*Node{h}, nil)
		elseF := []*Node{h}
		if s.Else != nil {
			elseF = b.stmt(s.Else, []*Node{h}, "")
		}
		return append(thenF, elseF...)
	case *ast.ForStmt:
		h := b.newNode(s, true)
		join := &Node{}
		b.g.Nodes = append(b.g.Nodes, join)
		b.link(preds, h)
		ctx := &loopCtx{breakTo: join, continueTo: h}
		b.pushCtx(ctx, label)
		bodyF := b.stmtList(s.Body.List, []*Node{h}, nil)
		b.popCtx(label)
		b.link(bodyF, h) // loop back
		if s.Cond != nil {
			b.link([]*Node{h}, join)
		}
		return []*Node{join}
	case *ast.RangeStmt:
		h := b.newNode(s, true)
		join := &Node{}
		b.g.Nodes = append(b.g.Nodes, join)
		b.link(preds, h)
		ctx := &loopCtx{breakTo: join, continueTo: h}
		b.pushCtx(ctx, label)
		bodyF := b.stmtList(s.Body.List, []*Node{h}, nil)
		b.popCtx(label)
		b.link(bodyF, h)
		b.link([]*Node{h}, join) // range may be empty
		return []*Node{join}
	case *ast.SwitchStmt:
		return b.switchLike(s, s.Body, preds, label, func(c *ast.CaseClause) []ast.Stmt { return c.Body }, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		return b.switchLike(s, s.Body, preds, label, func(c *ast.CaseClause) []ast.Stmt { return c.Body }, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		h := b.newNode(s, true)
		join := &Node{}
		b.g.Nodes = append(b.g.Nodes, join)
		b.link(preds, h)
		ctx := &loopCtx{breakTo: join}
		b.pushCtx(ctx, label)
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			cpreds := []*Node{h}
			if comm.Comm != nil {
				cn := b.newNode(comm.Comm, false)
				b.link(cpreds, cn)
				cpreds = []*Node{cn}
			}
			f := b.stmtList(comm.Body, cpreds, nil)
			b.link(f, join)
		}
		b.popCtx(label)
		if len(s.Body.List) == 0 {
			b.link([]*Node{h}, join)
		}
		return []*Node{join}
	case *ast.GoStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		return []*Node{n}
	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, EmptyStmt, ...
		n := b.newNode(s, false)
		b.link(preds, n)
		return []*Node{n}
	}
}

// switchLike builds switch and type-switch graphs, including fallthrough.
func (b *cfgBuilder) switchLike(s ast.Stmt, body *ast.BlockStmt, preds []*Node, label string, caseBody func(*ast.CaseClause) []ast.Stmt, hasDefault bool) []*Node {
	h := b.newNode(s, true)
	join := &Node{}
	b.g.Nodes = append(b.g.Nodes, join)
	b.link(preds, h)
	ctx := &loopCtx{breakTo: join}
	b.pushCtx(ctx, label)
	var fallPreds []*Node // frontier of a case ending in fallthrough
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		stmts := caseBody(cc)
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if bs, ok := stmts[n-1].(*ast.BranchStmt); ok && bs.Tok.String() == "fallthrough" {
				stmts, fallsThrough = stmts[:n-1], true
			}
		}
		cpreds := append([]*Node{h}, fallPreds...)
		f := b.stmtList(stmts, cpreds, nil)
		if fallsThrough {
			fallPreds = f
		} else {
			fallPreds = nil
			b.link(f, join)
		}
	}
	b.popCtx(label)
	if !hasDefault {
		b.link([]*Node{h}, join)
	}
	return []*Node{join}
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) pushCtx(ctx *loopCtx, label string) {
	b.loops = append(b.loops, ctx)
	if label != "" {
		b.labels[label] = ctx
	}
}

func (b *cfgBuilder) popCtx(label string) {
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
}

// Forward visits every node reachable from start in breadth-first order
// (start itself is visited only if a cycle leads back to it). visit
// returns false to stop exploring past a node.
func (g *Graph) Forward(start *Node, visit func(*Node) bool) {
	seen := make(map[*Node]bool)
	queue := append([]*Node(nil), start.Succs...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		if !visit(n) {
			continue
		}
		queue = append(queue, n.Succs...)
	}
}
