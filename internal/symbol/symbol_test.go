package symbol

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestInternStable(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("alpha")
	b := r.Intern("beta")
	if a == b {
		t.Fatalf("distinct names got same symbol %d", a)
	}
	if got := r.Intern("alpha"); got != a {
		t.Fatalf("re-intern alpha: got %d want %d", got, a)
	}
	if r.Name(a) != "alpha" || r.Name(b) != "beta" {
		t.Fatalf("names: %q %q", r.Name(a), r.Name(b))
	}
}

func TestInternZeroNeverIssued(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		if s := r.Fresh(); s == None {
			t.Fatal("Fresh issued the invalid zero symbol")
		}
	}
	if s := r.Intern("x"); s == None {
		t.Fatal("Intern issued the invalid zero symbol")
	}
}

func TestFreshUnique(t *testing.T) {
	r := NewRegistry()
	seen := make(map[Symbol]bool)
	for i := 0; i < 1000; i++ {
		s := r.Fresh()
		if seen[s] {
			t.Fatalf("Fresh repeated symbol %d", s)
		}
		seen[s] = true
	}
}

func TestFreshDoesNotCollideWithIntern(t *testing.T) {
	r := NewRegistry()
	// Pre-claim a name Fresh would otherwise generate.
	pre := r.Intern("#anon1")
	f := r.Fresh()
	if f == pre {
		t.Fatal("Fresh returned a symbol already interned by name")
	}
}

func TestLookup(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing name")
	}
	s := r.Intern("present")
	got, ok := r.Lookup("present")
	if !ok || got != s {
		t.Fatalf("Lookup(present) = %d,%v want %d,true", got, ok, s)
	}
}

func TestConcurrentIntern(t *testing.T) {
	r := NewRegistry()
	const workers = 32
	var wg sync.WaitGroup
	results := make([]Symbol, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Intern("shared")
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("concurrent Intern disagreed: %d vs %d", results[i], results[0])
		}
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d symbols, want 1", r.Len())
	}
}

func TestKeyEqual(t *testing.T) {
	a := K(5, 1, 2, 3)
	b := K(5, 1, 2, 3)
	if !a.Equal(b) {
		t.Fatal("equal keys reported unequal")
	}
	if a.Equal(K(5, 1, 2)) {
		t.Fatal("different lengths reported equal")
	}
	if a.Equal(K(6, 1, 2, 3)) {
		t.Fatal("different symbols reported equal")
	}
	if a.Equal(K(5, 1, 2, 4)) {
		t.Fatal("different vectors reported equal")
	}
	if !K(7).Equal(Key{S: 7, X: []uint32{}}) {
		t.Fatal("nil and empty vectors should be equal")
	}
}

func TestKeyCanonRoundTrip(t *testing.T) {
	cases := []Key{
		K(1),
		K(42, 0),
		K(42, 1, 2, 3),
		K(1<<40, 4294967295, 0, 7),
	}
	for _, k := range cases {
		got, err := ParseCanon(k.Canon())
		if err != nil {
			t.Fatalf("ParseCanon(%q): %v", k.Canon(), err)
		}
		if !got.Equal(k) {
			t.Fatalf("round trip %q: got %v want %v", k.Canon(), got, k)
		}
	}
}

func TestParseCanonErrors(t *testing.T) {
	for _, s := range []string{"", "x", "1/x", "1/2.y", "-1"} {
		if _, err := ParseCanon(s); err == nil {
			t.Errorf("ParseCanon(%q) succeeded, want error", s)
		}
	}
}

func TestKeyCanonInjective(t *testing.T) {
	// Keys that could collide under naive string concatenation.
	a := K(1, 23)
	b := K(12, 3)
	c := K(1, 2, 3)
	if a.Canon() == b.Canon() || a.Canon() == c.Canon() || b.Canon() == c.Canon() {
		t.Fatalf("canonical forms collide: %q %q %q", a.Canon(), b.Canon(), c.Canon())
	}
}

func TestKeyHashProperties(t *testing.T) {
	// Equal keys hash equal; canonical form determines hash.
	f := func(s uint64, xs []uint32) bool {
		k1 := Key{S: Symbol(s), X: xs}
		k2 := k1.Clone()
		return k1.Hash() == k2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyCanonRoundTripProperty(t *testing.T) {
	f := func(s uint64, xs []uint32) bool {
		k := Key{S: Symbol(s), X: xs}
		got, err := ParseCanon(k.Canon())
		return err == nil && got.Equal(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	k := K(9, 1, 2)
	c := k.Clone()
	c.X[0] = 99
	if k.X[0] != 1 {
		t.Fatal("Clone shares the index vector")
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Intern("b")
	r.Intern("a")
	r.Intern("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names() = %v", names)
	}
}
