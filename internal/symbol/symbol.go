// Package symbol implements D-Memo symbols and folder keys (paper §6.1.1).
//
// A key is "a symbol, S, followed by a vector of unsigned integers, X". Keys
// name folders. Symbols are interned in a Registry so that distinct processes
// of one application can agree on symbol identity by name: create_symbol in
// the paper returns a fresh unique symbol, while Intern resolves a stable
// symbol for a known name (the paper's named objects rely on this).
package symbol

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Symbol identifies an interned name. The zero Symbol is invalid.
type Symbol uint64

// None is the invalid zero symbol.
const None Symbol = 0

// Registry interns symbols. It is safe for concurrent use. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]Symbol
	names   map[Symbol]string
	next    Symbol
	anonSeq uint64
}

// NewRegistry returns an empty symbol registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]Symbol),
		names:  make(map[Symbol]string),
		next:   1,
	}
}

// Intern returns the symbol for name, creating it if necessary. Interning the
// same name twice yields the same symbol.
func (r *Registry) Intern(name string) Symbol {
	r.mu.RLock()
	s, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		return s
	}
	s = r.next
	r.next++
	r.byName[name] = s
	r.names[s] = name
	return s
}

// Fresh returns a new unique anonymous symbol (the paper's create_symbol).
// The generated name is reserved in the registry so it cannot collide with a
// later Intern.
func (r *Registry) Fresh() Symbol {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		r.anonSeq++
		name := "#anon" + strconv.FormatUint(r.anonSeq, 10)
		if _, taken := r.byName[name]; taken {
			continue
		}
		s := r.next
		r.next++
		r.byName[name] = s
		r.names[s] = name
		return s
	}
}

// Name reports the interned name for s, or "" if s is unknown.
func (r *Registry) Name(s Symbol) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[s]
}

// Lookup returns the symbol for name without creating it.
func (r *Registry) Lookup(name string) (Symbol, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[name]
	return s, ok
}

// Len reports the number of interned symbols.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// Names returns all interned names in sorted order (for diagnostics).
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Key is a folder name: a symbol plus a vector of unsigned integers. The
// vector lets applications build structured names — the paper stores array
// element a[i,j] in the key {S: a, X: [i, j, 0]}.
type Key struct {
	S Symbol
	X []uint32
}

// K constructs a key from a symbol and index vector.
func K(s Symbol, x ...uint32) Key {
	return Key{S: s, X: x}
}

// Equal reports whether two keys name the same folder. A nil and an empty
// index vector are equivalent.
func (k Key) Equal(o Key) bool {
	if k.S != o.S || len(k.X) != len(o.X) {
		return false
	}
	for i := range k.X {
		if k.X[i] != o.X[i] {
			return false
		}
	}
	return true
}

// Canon returns the canonical string form of the key, usable as a map key.
// The form is "S/x0.x1.x2"; an empty vector yields just "S".
func (k Key) Canon() string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(uint64(k.S), 10))
	for i, x := range k.X {
		if i == 0 {
			b.WriteByte('/')
		} else {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(x), 10))
	}
	return b.String()
}

// Hash returns a stable 64-bit FNV-1a hash of the key. Every host must
// compute the same hash for the same key: folder placement depends on it.
func (k Key) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64(buf[:], uint64(k.S))
	h.Write(buf[:])
	var b4 [4]byte
	for _, x := range k.X {
		putU32(b4[:], x)
		h.Write(b4[:])
	}
	return h.Sum64()
}

// String renders the key with its symbol number; use Registry.Name for a
// human-readable symbol.
func (k Key) String() string {
	return "key{" + k.Canon() + "}"
}

// Clone returns a deep copy of the key (the index vector is copied).
func (k Key) Clone() Key {
	if k.X == nil {
		return Key{S: k.S}
	}
	x := make([]uint32, len(k.X))
	copy(x, k.X)
	return Key{S: k.S, X: x}
}

// ParseCanon parses a string produced by Canon.
func ParseCanon(s string) (Key, error) {
	symPart := s
	var vecPart string
	if i := strings.IndexByte(s, '/'); i >= 0 {
		symPart, vecPart = s[:i], s[i+1:]
	}
	sv, err := strconv.ParseUint(symPart, 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("symbol: bad canonical key %q: %v", s, err)
	}
	k := Key{S: Symbol(sv)}
	if vecPart != "" {
		parts := strings.Split(vecPart, ".")
		k.X = make([]uint32, len(parts))
		for i, p := range parts {
			xv, err := strconv.ParseUint(p, 10, 32)
			if err != nil {
				return Key{}, fmt.Errorf("symbol: bad canonical key %q: %v", s, err)
			}
			k.X[i] = uint32(xv)
		}
	}
	return k, nil
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
