package rpc

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Handler executes one request. cancel fires when the client abandons the
// call or the connection dies; blocking handlers must honour it.
type Handler func(q *wire.Request, cancel <-chan struct{}) *wire.Response

// SubmitFunc runs a task concurrently — typically threadcache.Pool.Submit
// or folder.Server.Submit, so batched requests land on the server's thread
// cache ("each request to a server will cause a thread to be created").
// A nil SubmitFunc runs each request on a plain goroutine.
type SubmitFunc func(task func()) error

// ServerChannel is the connection Serve drives: a transport.Conn with a
// liveness signal (satisfied by *transport.Channel).
type ServerChannel interface {
	transport.Conn
	Done() <-chan struct{}
}

// Serve answers requests on one connection until it closes, returning the
// terminal receive error. Batch frames dispatch concurrently through
// submit; each response is queued on a response batcher, so replies
// coalesce into batched frames in completion order and a blocked request
// never delays its batch-mates. Single frames are answered synchronously
// in arrival order, preserving the pre-batching protocol for old peers.
func Serve(ch ServerChannel, h Handler, submit SubmitFunc, pol Policy) error {
	s := &server{
		ch:       ch,
		h:        h,
		submit:   submit,
		inflight: make(map[uint64]chan struct{}),
	}
	s.out = newBatcher(wire.BatchResponse, pol.withDefaults(), ch.Send, func(error) { _ = ch.Close() })
	defer s.shutdown()
	for {
		buf, err := ch.Recv()
		if err != nil {
			return err
		}
		if !wire.IsBatchFrame(buf) {
			if err := s.serveSingle(buf); err != nil {
				return err
			}
			continue
		}
		kind, entries, err := wire.DecodeBatch(buf)
		if err != nil {
			return fmt.Errorf("rpc: bad batch from %s: %w", ch.RemoteAddr(), err)
		}
		if kind != wire.BatchRequest {
			return fmt.Errorf("rpc: %v from %s, want %v", kind, ch.RemoteAddr(), wire.BatchRequest)
		}
		for _, e := range entries {
			s.dispatch(e)
		}
	}
}

// server is the per-connection serving state.
type server struct {
	ch     ServerChannel
	h      Handler
	submit SubmitFunc
	out    *batcher

	mu       sync.Mutex
	inflight map[uint64]chan struct{} // request id -> its cancel channel
	down     bool
}

// serveSingle answers one legacy single-frame request inline — the
// pre-batching servers handled one request at a time per channel, and old
// clients depend on ordered responses.
func (s *server) serveSingle(buf []byte) error {
	q, err := wire.DecodeRequest(buf)
	var resp *wire.Response
	if err != nil {
		resp = wire.Errf("bad request: %v", err)
	} else {
		resp = s.h(q, s.ch.Done())
	}
	return s.ch.Send(wire.EncodeResponse(resp))
}

// dispatch routes one batch entry: heartbeats echo straight back through
// the response batcher (keeping both directions of the link visibly alive);
// cancels close the target request's cancel channel; requests run
// concurrently and respond through the batcher.
func (s *server) dispatch(e wire.BatchEntry) {
	if e.Heartbeat {
		// Control enqueue: the read pump must never park behind a response
		// queue wedged by a non-draining peer, and the echo must not be
		// dropped behind a saturated-but-draining one — it is the prober's
		// only proof of life.
		s.out.addControl(wire.BatchEntry{ID: e.ID, Heartbeat: true})
		return
	}
	if e.Cancel {
		s.mu.Lock()
		cc, ok := s.inflight[e.ID]
		if ok {
			delete(s.inflight, e.ID)
		}
		s.mu.Unlock()
		if ok {
			close(cc)
		}
		return
	}
	q, err := wire.DecodeRequest(e.Msg)
	if err != nil {
		s.respond(e.ID, wire.Errf("bad request: %v", err))
		return
	}
	// Re-attach the batch-entry dedup token; the request codec does not
	// carry it.
	q.Token = e.Token
	cc := make(chan struct{})
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return
	}
	if _, dup := s.inflight[e.ID]; dup {
		// A buggy or hostile peer reused a live id; honouring it would
		// orphan the first request's cancel channel.
		s.mu.Unlock()
		s.respond(e.ID, wire.Errf("duplicate request id %d", e.ID))
		return
	}
	s.inflight[e.ID] = cc
	s.mu.Unlock()

	task := func() {
		resp := s.h(q, cc)
		s.mu.Lock()
		delete(s.inflight, e.ID)
		s.mu.Unlock()
		s.respond(e.ID, resp)
	}
	if s.submit == nil {
		go task()
		return
	}
	if err := s.submit(task); err != nil {
		s.mu.Lock()
		delete(s.inflight, e.ID)
		s.mu.Unlock()
		s.respond(e.ID, wire.Errf("server shutting down"))
	}
}

// respond queues one response for batched delivery.
func (s *server) respond(id uint64, resp *wire.Response) {
	s.out.add(wire.BatchEntry{ID: id, Msg: wire.EncodeResponse(resp)})
}

// shutdown cancels every in-flight request so blocked handlers unwind, and
// retires the response batcher.
func (s *server) shutdown() {
	s.mu.Lock()
	s.down = true
	inflight := s.inflight
	s.inflight = make(map[uint64]chan struct{})
	s.mu.Unlock()
	for _, cc := range inflight {
		close(cc)
	}
	s.out.close()
}
