package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Handler executes one request. cancel fires when the client abandons the
// call or the connection dies; blocking handlers must honour it. The
// request's Payload aliases the connection's read buffer for the duration
// of the call: handlers that keep the bytes past their return (storing a
// memo, caching a program image) must copy them — the folder store's own
// deposit copy is exactly that Retain.
type Handler func(q *wire.Request, cancel <-chan struct{}) *wire.Response

// SubmitFunc runs fn(arg) concurrently — typically threadcache.Pool.SubmitArg
// or folder.Server.SubmitArg, so batched requests land on the server's
// thread cache ("each request to a server will cause a thread to be
// created") without allocating a closure per request. A nil SubmitFunc runs
// each request on a plain goroutine.
type SubmitFunc func(fn func(any), arg any) error

// ServerChannel is the connection Serve drives: a transport.Conn with a
// liveness signal (satisfied by *transport.Channel).
type ServerChannel interface {
	transport.Conn
	Done() <-chan struct{}
}

// Serve answers requests on one connection until it closes, returning the
// terminal receive error. Batch frames dispatch concurrently through
// submit; each response is queued on a response batcher, so replies
// coalesce into batched frames in completion order and a blocked request
// never delays its batch-mates. Single frames are answered synchronously
// in arrival order, preserving the pre-batching protocol for old peers.
//
// Buffer ownership: each received frame arrives in a pooled buffer that
// every request decoded from it aliases. The frame is reference-counted
// through dispatch and recycled when the last request of the batch
// completes — a batch holding one long-blocking folder wait pins at most
// one frame, never a copy per request.
func Serve(ch ServerChannel, h Handler, submit SubmitFunc, pol Policy) error {
	s := &server{
		ch:       ch,
		h:        h,
		submit:   submit,
		inflight: make(map[uint64]chan struct{}),
	}
	s.out = newBatcher(wire.BatchResponse, pol.withDefaults(), ch, func(error) { _ = ch.Close() })
	defer s.shutdown()
	var entries []wire.BatchEntry
	for {
		buf, err := ch.Recv()
		if err != nil {
			return err
		}
		if !wire.IsBatchFrame(buf) {
			if err := s.serveSingle(buf); err != nil {
				return err
			}
			continue
		}
		kind, es, err := wire.DecodeBatchInto(entries[:0], buf)
		if err != nil {
			return fmt.Errorf("rpc: bad batch from %s: %w", ch.RemoteAddr(), err)
		}
		entries = es
		if kind != wire.BatchRequest {
			return fmt.Errorf("rpc: %v from %s, want %v", kind, ch.RemoteAddr(), wire.BatchRequest)
		}
		// The frame starts with one reference held by this loop, gains one
		// per dispatched request, and recycles when the count drains.
		fb := newFrameBuf(buf)
		for i := range entries {
			s.dispatch(entries[i], fb)
			entries[i] = wire.BatchEntry{}
		}
		fb.release()
	}
}

// frameBuf reference-counts one received frame's pooled buffer.
type frameBuf struct {
	buf  []byte
	refs atomic.Int32
}

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

// newFrameBuf takes over buf: the frameBuf's refcount decides when it goes
// back to the pool.
//
//memolint:transfers-ownership
func newFrameBuf(buf []byte) *frameBuf {
	fb := frameBufPool.Get().(*frameBuf)
	fb.buf = buf
	fb.refs.Store(1)
	return fb
}

func (fb *frameBuf) retain() { fb.refs.Add(1) }

func (fb *frameBuf) release() {
	if fb.refs.Add(-1) == 0 {
		pool.Put(fb.buf)
		fb.buf = nil
		frameBufPool.Put(fb)
	}
}

// server is the per-connection serving state.
type server struct {
	ch     ServerChannel
	h      Handler
	submit SubmitFunc
	out    *batcher

	mu       sync.Mutex
	inflight map[uint64]chan struct{} // request id -> its cancel channel
	down     bool
}

// serveSingle answers one legacy single-frame request inline — the
// pre-batching servers handled one request at a time per channel, and old
// clients depend on ordered responses. It takes over buf and recycles it.
//
//memolint:transfers-ownership
func (s *server) serveSingle(buf []byte) error {
	q, err := wire.DecodeRequest(buf)
	var resp *wire.Response
	if err != nil {
		resp = wire.Errf("bad request: %v", err)
	} else {
		resp = s.h(q, s.ch.Done())
	}
	msg := wire.AppendResponse(pool.Get(wire.ResponseOverhead(resp)), resp)
	err = s.ch.Send(msg)
	pool.Put(msg)
	pool.Put(buf)
	return err
}

// dispatchTask is one batched request in flight: the pooled argument struct
// handed to SubmitFunc, so dispatch allocates neither a closure nor a fresh
// request per entry. The cancel channel is recycled with the task whenever
// the request completed without being canceled (a canceled request's
// channel is closed and must not be reused).
type dispatchTask struct {
	s  *server
	fb *frameBuf
	id uint64
	q  wire.Request
	cc chan struct{}
}

var dispatchTaskPool = sync.Pool{New: func() any {
	return &dispatchTask{cc: make(chan struct{})}
}}

// recycleTask resets t and returns it to the pool. The reset keeps the
// request's key-extension and key-list capacity — exactly what
// DecodeRequestInto's reuse branches refill — while dropping every
// reference into the (possibly already released) frame, so a parked task
// never pins a recycled buffer and never dangles aliased bytes. Only call
// it when t.cc is known unclosed.
func recycleTask(t *dispatchTask) {
	t.s, t.fb = nil, nil
	t.q = wire.Request{
		Key:  symbol.Key{X: t.q.Key.X[:0]},
		Key2: symbol.Key{X: t.q.Key2.X[:0]},
		Keys: t.q.Keys[:0],
	}
	dispatchTaskPool.Put(t)
}

// runDispatch executes one batched request: handle, respond, release the
// frame, recycle the task. Static function — its any argument is the pooled
// *dispatchTask, so submission costs no allocation.
func runDispatch(a any) {
	t := a.(*dispatchTask)
	s := t.s
	mServerRequests.Inc()
	mServerInflight.Add(1)
	resp := s.h(&t.q, t.cc)
	mServerInflight.Add(-1)
	s.mu.Lock()
	_, owned := s.inflight[t.id]
	if owned {
		delete(s.inflight, t.id)
	}
	s.mu.Unlock()
	s.respond(t.id, resp)
	t.fb.release()
	// owned means no cancel (or shutdown) removed the id first, so t.cc was
	// never closed and the whole task can recycle. Otherwise the channel is
	// (or is about to be) closed; drop the task for the GC.
	if owned {
		recycleTask(t)
	}
}

// dispatch routes one batch entry: heartbeats echo straight back through
// the response batcher (keeping both directions of the link visibly alive);
// cancels close the target request's cancel channel; requests run
// concurrently and respond through the batcher, holding a reference on the
// frame buffer their decoded payload aliases.
func (s *server) dispatch(e wire.BatchEntry, fb *frameBuf) {
	if e.Heartbeat {
		// Control enqueue: the read pump must never park behind a response
		// queue wedged by a non-draining peer, and the echo must not be
		// dropped behind a saturated-but-draining one — it is the prober's
		// only proof of life.
		s.out.addControl(wire.BatchEntry{ID: e.ID, Heartbeat: true})
		mEchoes.Inc()
		return
	}
	if e.Cancel {
		s.mu.Lock()
		cc, ok := s.inflight[e.ID]
		if ok {
			delete(s.inflight, e.ID)
		}
		s.mu.Unlock()
		if ok {
			close(cc)
		}
		return
	}
	t := dispatchTaskPool.Get().(*dispatchTask)
	if err := wire.DecodeRequestInto(&t.q, e.Msg); err != nil {
		recycleTask(t)
		s.respond(e.ID, wire.Errf("bad request: %v", err))
		return
	}
	// Re-attach the batch-entry dedup token, trace, and sampled bit; the
	// request codec does not carry them. Only sampled requests get a receive
	// stamp — the dispatch wrapper turns it into the queue-wait component of
	// its span — so the unsampled path takes no clock reading here.
	t.q.Token = e.Token
	t.q.TraceID, t.q.TraceHop = e.Trace, e.Hop
	t.q.Sampled = e.Sampled
	if e.Sampled {
		t.q.EnqueueNS = time.Now().UnixNano()
	}
	t.s, t.id = s, e.ID
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		recycleTask(t)
		return
	}
	if _, dup := s.inflight[e.ID]; dup {
		// A buggy or hostile peer reused a live id; honouring it would
		// orphan the first request's cancel channel.
		s.mu.Unlock()
		recycleTask(t)
		s.respond(e.ID, wire.Errf("duplicate request id %d", e.ID))
		return
	}
	s.inflight[e.ID] = t.cc
	s.mu.Unlock()

	fb.retain()
	t.fb = fb
	if s.submit == nil {
		//memolint:ignore aliascheck fb.retain above pins the frame buffer until runDispatch releases it, so the aliased request outliving dispatch is safe by refcount rather than by Retain copy
		go runDispatch(t)
		return
	}
	if err := s.submit(runDispatch, t); err != nil {
		s.mu.Lock()
		delete(s.inflight, e.ID)
		s.mu.Unlock()
		fb.release()
		s.respond(e.ID, wire.Errf("server shutting down"))
	}
}

// respond queues one response for batched delivery, encoded into a pooled
// buffer the batcher recycles once the frame ships. ResponseOverhead bounds
// the whole message (key and error string included), so the append never
// outgrows the buffer. Spans collected for a sampled request ship as a
// flag-gated span blob on the same entry, in their own pooled buffer.
func (s *server) respond(id uint64, resp *wire.Response) {
	msg := wire.AppendResponse(pool.Get(wire.ResponseOverhead(resp)), resp)
	if len(resp.Spans) > 0 {
		sp := wire.AppendSpans(pool.Get(wire.SpansOverhead(resp.Spans)), resp.Spans)
		s.out.add(wire.BatchEntry{ID: id, Spans: sp, Msg: msg})
		return
	}
	s.out.add(wire.BatchEntry{ID: id, Msg: msg})
}

// shutdown cancels every in-flight request so blocked handlers unwind, and
// retires the response batcher.
func (s *server) shutdown() {
	s.mu.Lock()
	s.down = true
	inflight := s.inflight
	s.inflight = make(map[uint64]chan struct{})
	s.mu.Unlock()
	for _, cc := range inflight {
		close(cc)
	}
	s.out.close()
}
