package rpc

import (
	"testing"

	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestSteadyStateCallAllocBudget gates the whole-path allocation budget of
// one rpc round trip: client encode → batcher → mux → inproc transport →
// server decode → thread-cache dispatch → response batcher → client decode.
// The seed path spent ~29 allocations per op here; the pooled path holds a
// single-digit budget, and this test keeps it that way — a future PR that
// quietly re-introduces per-op allocation on the hot path fails here
// instead of eroding E13. testing.AllocsPerRun counts mallocs process-wide,
// so the server side of the connection is inside the budget too.
func TestSteadyStateCallAllocBudget(t *testing.T) {
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tc := threadcache.New(threadcache.Config{})
	defer tc.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mux := transport.NewMux(conn, 1<<20)
			go mux.Run()
			go func() {
				for {
					ch, err := mux.Accept()
					if err != nil {
						return
					}
					go Serve(ch, echoBenchHandler, tc.SubmitArg, Policy{})
				}
			}()
		}
	}()
	conn, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 1<<20)
	go mux.Run()
	defer mux.Close()
	// Heartbeats off: the probe ticker would add background allocations
	// unrelated to the per-call budget.
	c := NewConnResilient(mux.Channel(1), Policy{}, Resilience{})
	defer c.Close()

	// Warm the path: buffer pools, call pool, dispatch-task pool, cached
	// server thread, goroutine stacks.
	for i := 0; i < 64; i++ {
		if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
			t.Fatal(err)
		}
	}

	q := &wire.Request{Op: wire.OpPing}
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := c.Call(q, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the steady state measures ~6 allocs/op (response struct and
	// friends); 12 leaves room for scheduler noise while still tripping on
	// any real regression (the pre-pooling path was ~29).
	if allocs > 12 {
		t.Fatalf("steady-state call allocates %.1f/op, budget 12 (seed path was ~29)", allocs)
	}
}

// TestSampledCallAllocBudget gates the span-sampled call path the same way:
// a sampled request carries the trace extension out (trace id, hop, sampled
// flag on the batch entry), collects an rpc send span into its pooled
// SpanSet, and the owner copies the set out with Finish. That is allowed a
// small fixed budget over the unsampled path — sampling one request in N
// must never make tracing the expensive part of the request.
func TestSampledCallAllocBudget(t *testing.T) {
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc-sampled")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tc := threadcache.New(threadcache.Config{})
	defer tc.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mux := transport.NewMux(conn, 1<<20)
			go mux.Run()
			go func() {
				for {
					ch, err := mux.Accept()
					if err != nil {
						return
					}
					go Serve(ch, echoBenchHandler, tc.SubmitArg, Policy{})
				}
			}()
		}
	}()
	conn, err := ip.Dial("srv/rpc-sampled")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 1<<20)
	go mux.Run()
	defer mux.Close()
	c := NewConnResilient(mux.Channel(1), Policy{}, Resilience{})
	defer c.Close()

	sampledCall := func() {
		set := wire.NewSpanSet()
		q := &wire.Request{Op: wire.OpPing, TraceID: 0x5A17, Sampled: true, Spans: set}
		if _, err := c.Call(q, nil); err != nil {
			t.Fatal(err)
		}
		if spans := set.Finish("gate"); len(spans) == 0 {
			t.Fatal("sampled call collected no spans")
		}
		set.Release()
	}
	for i := 0; i < 64; i++ {
		sampledCall()
	}
	allocs := testing.AllocsPerRun(300, sampledCall)
	// Budget: the unsampled path holds 12; the sampled path adds the Finish
	// copy and trace bookkeeping. 20 trips on any real regression (e.g. a
	// per-span allocation or an unpooled SpanSet).
	if allocs > 20 {
		t.Fatalf("sampled call allocates %.1f/op, budget 20 (unsampled budget is 12)", allocs)
	}
}
