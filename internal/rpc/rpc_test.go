package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// pipe builds a connected client/server channel pair over the in-process
// transport, with the server side running Serve(h).
func pipe(t *testing.T, h Handler, submit SubmitFunc, pol Policy) *Conn {
	t.Helper()
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mux := transport.NewMux(conn, 4096)
			go mux.Run()
			go func() {
				for {
					ch, err := mux.Accept()
					if err != nil {
						return
					}
					go Serve(ch, h, submit, pol)
				}
			}()
		}
	}()
	conn, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	t.Cleanup(func() { mux.Close() })
	c := NewConn(mux.Channel(1), pol)
	t.Cleanup(func() { c.Close() })
	return c
}

// echoHandler returns the request payload back.
func echoHandler(q *wire.Request, _ <-chan struct{}) *wire.Response {
	return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: q.Payload}
}

func TestCallRoundTrip(t *testing.T) {
	c := pipe(t, echoHandler, nil, Policy{})
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("msg-%d", i))
		resp, err := c.Call(&wire.Request{Op: wire.OpPut, Key: symbol.K(7), Payload: payload}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK || string(resp.Payload) != string(payload) {
			t.Fatalf("resp %d: %+v", i, resp)
		}
	}
}

func TestConcurrentCallsPipelineOnOneChannel(t *testing.T) {
	var inflight, maxInflight atomic.Int64
	h := func(q *wire.Request, _ <-chan struct{}) *wire.Response {
		n := inflight.Add(1)
		for {
			m := maxInflight.Load()
			if n <= m || maxInflight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return echoHandler(q, nil)
	}
	c := pipe(t, h, nil, Policy{})
	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Call(&wire.Request{Op: wire.OpPing, Payload: []byte{byte(i)}}, nil)
			if err != nil {
				errs <- err
				return
			}
			if len(resp.Payload) != 1 || resp.Payload[0] != byte(i) {
				errs <- fmt.Errorf("caller %d got %v", i, resp.Payload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := maxInflight.Load(); m < 2 {
		t.Fatalf("requests never overlapped on the server (max in-flight %d); pipelining broken", m)
	}
}

// slowConn delays every Send, emulating a link with per-message cost, and
// counts messages. Batching exists to amortize exactly this cost.
type slowConn struct {
	transport.Conn
	delay time.Duration
	sent  *atomic.Int64
}

func (c *slowConn) Send(msg []byte) error {
	time.Sleep(c.delay)
	c.sent.Add(1)
	return c.Conn.Send(msg)
}

// TestBatchingCoalesces verifies concurrent calls share frames on a busy
// wire: while one frame is in flight, companion requests accumulate and
// ship together, so far fewer than 2N messages cross the transport for N
// concurrent calls.
func TestBatchingCoalesces(t *testing.T) {
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const callers = 32
	const wireDelay = time.Millisecond
	var sent atomic.Int64
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(&slowConn{Conn: conn, delay: wireDelay, sent: &sent}, 1<<20)
		go mux.Run()
		for {
			ch, err := mux.Accept()
			if err != nil {
				return
			}
			go Serve(ch, echoHandler, nil, Policy{})
		}
	}()
	conn, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(&slowConn{Conn: conn, delay: wireDelay, sent: &sent}, 1<<20)
	go mux.Run()
	defer mux.Close()
	c := NewConn(mux.Channel(1), Policy{})
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	// Unbatched, callers requests + callers responses would cross as
	// 2*callers messages. (Muxed messages map 1:1 to transport messages
	// at this MTU.)
	if n := sent.Load(); n >= 2*callers {
		t.Fatalf("no coalescing: %d messages for %d calls", n, callers)
	} else {
		t.Logf("%d transport messages for %d concurrent calls", n, callers)
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	// First call blocks until the second completes; with pipelining the
	// second response overtakes the first.
	unblock := make(chan struct{})
	h := func(q *wire.Request, cancel <-chan struct{}) *wire.Response {
		if q.Op == wire.OpGet {
			select {
			case <-unblock:
			case <-cancel:
				return wire.Errf("canceled")
			}
		}
		return echoHandler(q, nil)
	}
	c := pipe(t, h, nil, Policy{})

	slow := make(chan *wire.Response, 1)
	go func() {
		resp, err := c.Call(&wire.Request{Op: wire.OpGet, Payload: []byte("slow")}, nil)
		if err == nil {
			slow <- resp
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the slow call reach the server

	resp, err := c.Call(&wire.Request{Op: wire.OpPing, Payload: []byte("fast")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "fast" {
		t.Fatalf("fast call got %q", resp.Payload)
	}
	select {
	case <-slow:
		t.Fatal("slow call completed before its unblock")
	default:
	}
	close(unblock)
	select {
	case resp := <-slow:
		if string(resp.Payload) != "slow" {
			t.Fatalf("slow call got %q", resp.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slow call never completed")
	}
}

func TestCancelUnblocksServer(t *testing.T) {
	started := make(chan struct{}, 1)
	canceled := make(chan struct{}, 1)
	h := func(q *wire.Request, cancel <-chan struct{}) *wire.Response {
		started <- struct{}{}
		select {
		case <-cancel:
			canceled <- struct{}{}
			return wire.Errf("canceled")
		case <-time.After(5 * time.Second):
			return wire.Errf("cancel never propagated")
		}
	}
	c := pipe(t, h, nil, Policy{})

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{Op: wire.OpGet}, cancel)
		done <- err
	}()
	<-started
	close(cancel)
	if err := <-done; err != ErrCanceled {
		t.Fatalf("Call returned %v, want ErrCanceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("server handler never saw the cancel")
	}
	// The connection remains alive after a cancel.
	if c.Err() != nil {
		t.Fatalf("connection died after cancel: %v", c.Err())
	}
}

// TestLegacySingleFramePeer drives Serve with raw pre-batching single
// frames, as an old client (or wire-debugging session) would.
func TestLegacySingleFramePeer(t *testing.T) {
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(conn, 4096)
		go mux.Run()
		for {
			ch, err := mux.Accept()
			if err != nil {
				return
			}
			go Serve(ch, echoHandler, nil, Policy{})
		}
	}()
	conn, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	defer mux.Close()
	ch := mux.Channel(1)

	for i := 0; i < 3; i++ {
		payload := []byte{byte(i)}
		if err := ch.Send(wire.EncodeRequest(&wire.Request{Op: wire.OpPing, Payload: payload})); err != nil {
			t.Fatal(err)
		}
		buf, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if wire.IsBatchFrame(buf) {
			t.Fatal("server answered a single frame with a batch frame")
		}
		resp, err := wire.DecodeResponse(buf)
		if err != nil || resp.Status != wire.StatusOK || resp.Payload[0] != byte(i) {
			t.Fatalf("single-frame response: %+v %v", resp, err)
		}
	}
	// Malformed single frames get an error response, not a dead channel.
	if err := ch.Send([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	buf, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(buf)
	if err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("malformed frame response: %+v %v", resp, err)
	}
}

func TestMalformedBatchEntryGetsErrorResponse(t *testing.T) {
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(conn, 4096)
		go mux.Run()
		ch, err := mux.Accept()
		if err != nil {
			return
		}
		Serve(ch, echoHandler, nil, Policy{})
	}()
	conn, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	defer mux.Close()
	ch := mux.Channel(1)
	frame := wire.EncodeBatch(wire.BatchRequest, []wire.BatchEntry{
		{ID: 9, Msg: []byte{0xFF, 0xFF}},
		{ID: 10, Msg: wire.EncodeRequest(&wire.Request{Op: wire.OpPing})},
	})
	if err := ch.Send(frame); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]wire.Status{}
	for len(got) < 2 {
		buf, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		kind, entries, err := wire.DecodeBatch(buf)
		if err != nil || kind != wire.BatchResponse {
			t.Fatalf("%v %v", kind, err)
		}
		for _, e := range entries {
			resp, err := wire.DecodeResponse(e.Msg)
			if err != nil {
				t.Fatal(err)
			}
			got[e.ID] = resp.Status
		}
	}
	if got[9] != wire.StatusErr || got[10] != wire.StatusOK {
		t.Fatalf("statuses: %v", got)
	}
}

func TestConnFailsPendingOnTeardown(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := func(q *wire.Request, cancel <-chan struct{}) *wire.Response {
		select {
		case <-block:
		case <-cancel:
		}
		return wire.Errf("late")
	}
	c := pipe(t, h, nil, Policy{})
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{Op: wire.OpGet}, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call hung after Close")
	}
	if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err == nil {
		t.Fatal("call on closed conn succeeded")
	}
}

func TestSubmitThroughThreadCache(t *testing.T) {
	var submitted atomic.Int64
	submit := func(fn func(any), arg any) error {
		submitted.Add(1)
		go fn(arg)
		return nil
	}
	c := pipe(t, echoHandler, submit, Policy{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if submitted.Load() != n {
		t.Fatalf("submitted %d tasks, want %d", submitted.Load(), n)
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MaxCount != DefaultMaxCount || p.MaxBytes != DefaultMaxBytes || p.Linger != DefaultLinger {
		t.Fatalf("defaults: %+v", p)
	}
	u := Policy{MaxCount: 1}.withDefaults()
	if u.MaxCount != 1 {
		t.Fatalf("MaxCount 1 overridden: %+v", u)
	}
}
