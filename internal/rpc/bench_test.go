package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkRPCBatchedRoundTrip measures request round trips over the
// simulated-latency transport with 1, 8, and 64 concurrent callers sharing
// one connection, batched (default flush policy) versus unbatched
// (MaxCount = 1: one frame per message — the pre-batching wire behaviour).
//
// The sim transport charges each transport message one link delay, and the
// mux serializes sends on the shared physical conn, exactly like a real
// link: unbatched concurrent callers queue behind each other's frames,
// batched callers amortize one delay over a whole frame of requests.
func BenchmarkRPCBatchedRoundTrip(b *testing.B) {
	const linkDelay = 50 * time.Microsecond
	for _, callers := range []int{1, 8, 64} {
		for _, mode := range []struct {
			name string
			pol  Policy
		}{
			{"unbatched", Policy{MaxCount: 1}},
			{"batched", Policy{}},
		} {
			b.Run(fmt.Sprintf("callers=%d/%s", callers, mode.name), func(b *testing.B) {
				benchRoundTrips(b, callers, mode.pol, linkDelay)
			})
		}
	}
}

func benchRoundTrips(b *testing.B, callers int, pol Policy, linkDelay time.Duration) {
	model := transport.NewNetModel(linkDelay)
	model.SetLink("cli", "srv", 1)
	model.SetLink("srv", "cli", 1)
	sim := transport.NewSim(model)
	l, err := sim.Listen("srv/rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mux := transport.NewMux(conn, 1<<20)
			go mux.Run()
			go func() {
				for {
					ch, err := mux.Accept()
					if err != nil {
						return
					}
					go Serve(ch, echoBenchHandler, nil, pol)
				}
			}()
		}
	}()

	conn, err := sim.DialFrom("cli", "srv/rpc")
	if err != nil {
		b.Fatal(err)
	}
	mux := transport.NewMux(conn, 1<<20)
	go mux.Run()
	defer mux.Close()
	c := NewConn(mux.Channel(1), pol)
	defer c.Close()

	// Warm the path so setup cost stays out of the measurement.
	if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
		b.Fatal(err)
	}

	var next atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() > 0 {
		b.Fatalf("%d calls failed", failed.Load())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

func echoBenchHandler(q *wire.Request, _ <-chan struct{}) *wire.Response {
	return &wire.Response{Status: wire.StatusOK, Payload: q.Payload}
}
