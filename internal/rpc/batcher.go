package rpc

import (
	"sync"
	"time"

	"repro/internal/wire"
)

// batcher coalesces batch entries into frames. Both ends of a connection
// use one: the Conn for requests, Serve for responses.
//
// The engine is backpressure draining: a dedicated sender goroutine ships
// whatever has accumulated the moment the wire goes idle. A lone entry on
// an idle wire is sent immediately (no added latency for a single caller);
// under concurrency the previous frame's transmission time is exactly the
// window in which companions accumulate, so batch size adapts to the link
// speed by itself. The Policy bounds the mechanism: MaxCount/MaxBytes cap
// a frame, and Linger is the safety-valve timer bounding how long an entry
// may wait for the sender in any case the drain signal loses a race.
//
// The queue itself is bounded: past a high-water mark (a few frames'
// worth), add blocks until the sender drains — so a peer that stops
// reading stalls its producers (callers, handler threads) instead of
// growing server memory without limit, the same backpressure the old
// synchronous one-request-per-channel loop enforced.
type batcher struct {
	kind  wire.BatchKind
	pol   Policy
	send  func([]byte) error // transports one encoded frame
	onErr func(error)        // called once when send fails
	// preSend, when set, observes each frame's entries immediately before
	// the transport send. The Conn uses it to mark calls as
	// handed-to-the-wire: marking before the send means a send that fails
	// midway still counts as "maybe sent", the conservative direction for
	// retry safety.
	preSend func([]wire.BatchEntry)

	mu        sync.Mutex
	unblocked *sync.Cond // signaled when queue drains below high water
	queue     []wire.BatchEntry
	closed    bool
	timer     *time.Timer
	armed     bool

	wake chan struct{} // capacity 1: "queue may be non-empty"
}

func newBatcher(kind wire.BatchKind, pol Policy, send func([]byte) error, onErr func(error)) *batcher {
	b := &batcher{kind: kind, pol: pol, send: send, onErr: onErr, wake: make(chan struct{}, 1)}
	b.unblocked = sync.NewCond(&b.mu)
	go b.sender()
	return b
}

// highWater is the queue depth at which add starts blocking: four full
// frames of headroom keeps the sender busy without unbounded buildup.
func (b *batcher) highWater() int { return 4 * b.pol.MaxCount }

// add queues one entry and nudges the sender, blocking while the queue is
// over the high-water mark.
func (b *batcher) add(e wire.BatchEntry) {
	b.mu.Lock()
	for !b.closed && len(b.queue) >= b.highWater() {
		b.unblocked.Wait()
	}
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.appendLocked(e)
	b.mu.Unlock()
	b.signal()
}

// addControl enqueues a control entry (heartbeat probe or echo, cancel)
// without ever blocking: control traffic must not park behind the
// backpressure wait — the heartbeat loop and the server read pump cannot
// afford to stop — and must not be dropped at high water either, because a
// saturated-but-healthy link still needs its proof-of-life traffic (a
// probe starved by a full data queue would let the deadman kill a live
// link). Control entries are tiny and rate-bounded (one probe per
// interval, one echo per inbound probe, one cancel per abandoned call), so
// exceeding the high-water mark by their count is harmless. Returns false
// only when the batcher is already closed.
func (b *batcher) addControl(e wire.BatchEntry) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.appendLocked(e)
	b.mu.Unlock()
	b.signal()
	return true
}

// appendLocked appends e and arms the linger timer. Caller holds b.mu and
// signals the sender after unlocking.
func (b *batcher) appendLocked(e wire.BatchEntry) {
	b.queue = append(b.queue, e)
	if !b.armed {
		b.armed = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.pol.Linger, b.signal)
		} else {
			b.timer.Reset(b.pol.Linger)
		}
	}
}

func (b *batcher) signal() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// sender drains the queue into frames, one Policy-capped frame per send,
// for as long as entries remain; then it blocks for the next wake-up.
func (b *batcher) sender() {
	for range b.wake { // never closed; exit is via the closed flag
		for {
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				return
			}
			if len(b.queue) == 0 {
				b.armed = false
				b.mu.Unlock()
				break
			}
			batch := b.takeLocked()
			b.mu.Unlock()
			if b.preSend != nil {
				b.preSend(batch)
			}
			err := b.send(wire.EncodeBatch(b.kind, batch))
			// The backing array is shared with the queue; zero the sent
			// entries so their payloads are collectable while later
			// entries keep the array alive.
			for i := range batch {
				batch[i] = wire.BatchEntry{}
			}
			if err != nil {
				b.close()
				if b.onErr != nil {
					b.onErr(err)
				}
				return
			}
		}
	}
}

// takeLocked removes up to MaxCount entries / ~MaxBytes encoded bytes
// (always at least one entry) from the queue head, without copying the
// remainder.
func (b *batcher) takeLocked() []wire.BatchEntry {
	n, size := 0, 0
	for n < len(b.queue) && n < b.pol.MaxCount {
		size += len(b.queue[n].Msg) + 12 // ~ per-entry framing overhead
		n++
		if size >= b.pol.MaxBytes {
			break
		}
	}
	batch := b.queue[:n:n]
	if n == len(b.queue) {
		b.queue = nil
	} else {
		b.queue = b.queue[n:]
	}
	b.unblocked.Broadcast()
	return batch
}

// close drops queued entries and retires the sender; subsequent adds no-op.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.queue = nil
	if b.timer != nil {
		b.timer.Stop()
	}
	b.unblocked.Broadcast()
	b.mu.Unlock()
	// Unblock the sender so it observes closed and exits. The wake channel
	// is never closed: a racing add may still signal it.
	b.signal()
}
