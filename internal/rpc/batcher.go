package rpc

import (
	"sync"
	"time"

	"repro/internal/pool"
	"repro/internal/transport"
	"repro/internal/wire"
)

// batcher coalesces batch entries into frames. Both ends of a connection
// use one: the Conn for requests, Serve for responses.
//
// The engine is backpressure draining: a dedicated sender goroutine ships
// whatever has accumulated the moment the wire goes idle. A lone entry on
// an idle wire is sent immediately (no added latency for a single caller);
// under concurrency the previous frame's transmission time is exactly the
// window in which companions accumulate, so batch size adapts to the link
// speed by itself. The Policy bounds the mechanism: MaxCount/MaxBytes cap
// a frame, and Linger is the safety-valve timer bounding how long an entry
// may wait for the sender in any case the drain signal loses a race.
//
// The queue itself is bounded: past a high-water mark (a few frames'
// worth), add blocks until the sender drains — so a peer that stops
// reading stalls its producers (callers, handler threads) instead of
// growing server memory without limit, the same backpressure the old
// synchronous one-request-per-channel loop enforced.
//
// The steady state allocates nothing: entry Msg bytes arrive in pooled
// buffers owned by the batcher (recycled after their frame ships), the
// frame itself is encoded into a pooled buffer with mux header space
// reserved up front (stamped in place when the conn is a
// transport.ReservedSender, so the frame is never copied), and both the
// queue array and the sender's drain slice are reused across frames.
type batcher struct {
	kind wire.BatchKind
	pol  Policy
	conn frameSender // transports one encoded frame
	// reserved is conn as a ReservedSender when it is one (a mux channel):
	// frames are then encoded behind reserved header space and stamped in
	// place instead of re-framed.
	reserved transport.ReservedSender
	onErr    func(error) // called once when send fails
	// preSend, when set, observes each frame's entries immediately before
	// the transport send. The Conn uses it to mark calls as
	// handed-to-the-wire: marking before the send means a send that fails
	// midway still counts as "maybe sent", the conservative direction for
	// retry safety.
	preSend func([]wire.BatchEntry)

	mu        sync.Mutex
	unblocked *sync.Cond // signaled when queue drains below high water
	queue     []wire.BatchEntry
	closed    bool
	timer     *time.Timer
	armed     bool

	wake chan struct{} // capacity 1: "queue may be non-empty"
}

// frameSender is the slice of transport.Conn the batcher drives.
type frameSender interface {
	Send(msg []byte) error
}

func newBatcher(kind wire.BatchKind, pol Policy, conn frameSender, onErr func(error)) *batcher {
	b := &batcher{kind: kind, pol: pol, conn: conn, onErr: onErr, wake: make(chan struct{}, 1)}
	b.reserved, _ = conn.(transport.ReservedSender)
	b.unblocked = sync.NewCond(&b.mu)
	go b.sender()
	return b
}

// highWater is the queue depth at which add starts blocking: four full
// frames of headroom keeps the sender busy without unbounded buildup.
func (b *batcher) highWater() int { return 4 * b.pol.MaxCount }

// add queues one entry and nudges the sender, blocking while the queue is
// over the high-water mark. Ownership of e.Msg's buffer passes to the
// batcher, which recycles it once the entry's frame has shipped.
//
//memolint:transfers-ownership
func (b *batcher) add(e wire.BatchEntry) {
	b.mu.Lock()
	for !b.closed && len(b.queue) >= b.highWater() {
		b.unblocked.Wait()
	}
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.appendLocked(e)
	b.mu.Unlock()
	b.signal()
}

// addControl enqueues a control entry (heartbeat probe or echo, cancel)
// without ever blocking: control traffic must not park behind the
// backpressure wait — the heartbeat loop and the server read pump cannot
// afford to stop — and must not be dropped at high water either, because a
// saturated-but-healthy link still needs its proof-of-life traffic (a
// probe starved by a full data queue would let the deadman kill a live
// link). Control entries are tiny and rate-bounded (one probe per
// interval, one echo per inbound probe, one cancel per abandoned call), so
// exceeding the high-water mark by their count is harmless. Returns false
// only when the batcher is already closed. Like add, it takes over e.Msg's
// buffer (when the entry carries one).
//
//memolint:transfers-ownership
func (b *batcher) addControl(e wire.BatchEntry) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.appendLocked(e)
	b.mu.Unlock()
	b.signal()
	return true
}

// appendLocked appends e and arms the linger timer. Caller holds b.mu and
// signals the sender after unlocking.
func (b *batcher) appendLocked(e wire.BatchEntry) {
	b.queue = append(b.queue, e)
	if !b.armed {
		b.armed = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.pol.Linger, b.signal)
		} else {
			b.timer.Reset(b.pol.Linger)
		}
	}
}

func (b *batcher) signal() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// sender drains the queue into frames, one Policy-capped frame per send,
// for as long as entries remain; then it blocks for the next wake-up. The
// drain slice and frame buffer are reused across iterations; entry Msg
// buffers recycle after each send.
func (b *batcher) sender() {
	var batch []wire.BatchEntry
	for range b.wake { // never closed; exit is via the closed flag
		for {
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				return
			}
			if len(b.queue) == 0 {
				b.armed = false
				b.mu.Unlock()
				break
			}
			batch = b.takeLocked(batch[:0])
			b.mu.Unlock()
			if b.preSend != nil {
				b.preSend(batch)
			}
			err := b.sendFrame(batch)
			// Recycle each entry's message and span buffers and drop the
			// references so payloads aren't pinned until the next drain.
			for i := range batch {
				if m := batch[i].Msg; m != nil {
					pool.Put(m)
				}
				if sp := batch[i].Spans; sp != nil {
					pool.Put(sp)
				}
				batch[i] = wire.BatchEntry{}
			}
			if err != nil {
				b.close()
				if b.onErr != nil {
					b.onErr(err)
				}
				return
			}
		}
	}
}

// sendFrame encodes one frame into a pooled buffer and ships it. On a
// ReservedSender the mux header is stamped into reserved space at the front
// of the same buffer — no reframe allocation, no copy.
func (b *batcher) sendFrame(batch []wire.BatchEntry) error {
	mFrames.Inc()
	mBatchEntries.Observe(int64(len(batch)))
	msgBytes := 0
	for i := range batch {
		msgBytes += len(batch[i].Msg) + len(batch[i].Spans)
	}
	reserve := 0
	if b.reserved != nil {
		reserve = transport.MuxHeaderSpace
	}
	buf := pool.Get(reserve + wire.BatchOverhead(len(batch), msgBytes))
	buf = buf[:reserve]
	frame := wire.AppendBatch(buf, b.kind, batch)
	var err error
	if b.reserved != nil {
		err = b.reserved.SendReserved(frame)
	} else {
		err = b.conn.Send(frame)
	}
	pool.Put(frame)
	return err
}

// takeLocked copies up to MaxCount entries / ~MaxBytes encoded bytes
// (always at least one entry) from the queue head into dst, compacting the
// queue in place so its backing array is reused forever.
func (b *batcher) takeLocked(dst []wire.BatchEntry) []wire.BatchEntry {
	n, size := 0, 0
	for n < len(b.queue) && n < b.pol.MaxCount {
		size += len(b.queue[n].Msg) + len(b.queue[n].Spans) + 12 // ~ per-entry framing overhead
		n++
		if size >= b.pol.MaxBytes {
			break
		}
	}
	dst = append(dst, b.queue[:n]...)
	rest := copy(b.queue, b.queue[n:])
	for i := rest; i < len(b.queue); i++ {
		b.queue[i] = wire.BatchEntry{}
	}
	b.queue = b.queue[:rest]
	b.unblocked.Broadcast()
	return dst
}

// close drops queued entries and retires the sender; subsequent adds no-op.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.queue = nil
	if b.timer != nil {
		b.timer.Stop()
	}
	b.unblocked.Broadcast()
	b.mu.Unlock()
	// Unblock the sender so it observes closed and exits. The wake channel
	// is never closed: a racing add may still signal it.
	b.signal()
}
