package rpc

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Conn is the client side of one pipelined RPC connection. Any number of
// goroutines may Call concurrently; their requests share one transport
// channel, coalesce into batch frames under the flush policy, and complete
// out of order, matched by id.
type Conn struct {
	ch  transport.Conn
	pol Policy
	out *batcher

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error

	done     chan struct{}
	failOnce sync.Once
}

// NewConn starts an RPC connection over ch (typically one transport.Mux
// channel) and its receive loop. The zero Policy means defaults.
func NewConn(ch transport.Conn, pol Policy) *Conn {
	c := &Conn{
		ch:      ch,
		pol:     pol.withDefaults(),
		pending: make(map[uint64]chan *wire.Response),
		done:    make(chan struct{}),
	}
	c.out = newBatcher(wire.BatchRequest, c.pol, ch.Send, c.fail)
	go c.recvLoop()
	return c
}

// Call sends one request and blocks for its response. Closing cancel
// abandons the call: a cancel entry tells the server to unblock and discard
// the request, and Call returns ErrCanceled without waiting for it.
func (c *Conn) Call(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	msg := wire.EncodeRequest(q)
	rc := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = rc
	c.mu.Unlock()

	c.out.add(wire.BatchEntry{ID: id, Msg: msg})

	select {
	case resp := <-rc:
		return resp, nil
	case <-cancel:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Tell the server to abandon the in-flight request, which may be
		// pinning a server thread on a folder wait.
		c.out.add(wire.BatchEntry{ID: id, Cancel: true})
		return nil, ErrCanceled
	case <-c.done:
		c.mu.Lock()
		err := c.err
		delete(c.pending, id)
		c.mu.Unlock()
		// A response may have raced the teardown.
		select {
		case resp := <-rc:
			return resp, nil
		default:
		}
		return nil, err
	}
}

// recvLoop matches batched responses back to pending calls.
func (c *Conn) recvLoop() {
	for {
		buf, err := c.ch.Recv()
		if err != nil {
			c.fail(err)
			return
		}
		if !wire.IsBatchFrame(buf) {
			c.fail(fmt.Errorf("rpc: peer sent a non-batch frame"))
			return
		}
		kind, entries, err := wire.DecodeBatch(buf)
		if err != nil {
			c.fail(fmt.Errorf("rpc: bad batch: %w", err))
			return
		}
		if kind != wire.BatchResponse {
			c.fail(fmt.Errorf("rpc: peer sent %v, want %v", kind, wire.BatchResponse))
			return
		}
		for _, e := range entries {
			resp, err := wire.DecodeResponse(e.Msg)
			if err != nil {
				c.fail(fmt.Errorf("rpc: bad response in batch: %w", err))
				return
			}
			c.mu.Lock()
			rc, ok := c.pending[e.ID]
			if ok {
				delete(c.pending, e.ID)
			}
			c.mu.Unlock()
			if ok {
				rc <- resp
			}
			// Responses to unknown ids are replies to canceled calls; drop.
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *Conn) fail(err error) {
	c.failOnce.Do(func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		c.out.close()
		close(c.done)
		_ = c.ch.Close()
	})
}

// Close tears the connection down; pending and future calls fail with
// ErrConnClosed.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	return nil
}

// Done is closed when the connection dies.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err reports why the connection died (nil while alive).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
