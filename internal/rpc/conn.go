package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Conn is the client side of one pipelined RPC connection. Any number of
// goroutines may Call concurrently; their requests share one transport
// channel, coalesce into batch frames under the flush policy, and complete
// out of order, matched by id.
type Conn struct {
	ch  transport.Conn
	pol Policy
	hb  time.Duration // heartbeat interval; 0 = disabled
	out *batcher

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*call
	err     error // terminal cause; nil while alive

	// lastSent/lastRecv are UnixNano stamps of the latest wire activity in
	// each direction. The heartbeat loop probes when either direction goes
	// quiet — send-idleness starves the peer's read deadline, receive-
	// idleness starves our proof the peer is alive — and declares the peer
	// dead on prolonged receive silence.
	lastSent atomic.Int64
	lastRecv atomic.Int64

	done     chan struct{}
	failOnce sync.Once
}

// call is one in-flight request: its parked response channel and whether
// its request frame reached the transport (the retry-safety distinction
// LinkError carries). Calls recycle through a pool — but only off the clean
// completion path, where the caller has taken the response and no late send
// into rc can ever happen; canceled and link-failed calls are dropped for
// the GC rather than risk a stale response crossing into a reused call.
type call struct {
	rc   chan *wire.Response
	sent atomic.Bool
	// sentAtNS is the UnixNano stamp of the frame carrying this call hitting
	// the wire, taken only for sampled requests — the batcher-linger half of
	// the rpc span. Written in markSent, read by the caller after the
	// response arrives (the transport round trip orders the two).
	sentAtNS int64
}

var callPool = sync.Pool{New: func() any {
	return &call{rc: make(chan *wire.Response, 1)}
}}

func getCall() *call {
	ca := callPool.Get().(*call)
	ca.sent.Store(false)
	ca.sentAtNS = 0
	return ca
}

// NewConn starts an RPC connection over ch (typically one transport.Mux
// channel) and its receive loop. The zero Policy means defaults;
// heartbeats run at DefaultHeartbeat, so every rpc client is safe against
// daemon-side idle timeouts out of the box — use NewConnResilient to tune
// the interval or disable probing.
func NewConn(ch transport.Conn, pol Policy) *Conn {
	return NewConnResilient(ch, pol, Resilience{Heartbeat: DefaultHeartbeat})
}

// NewConnResilient is NewConn with an explicit link-resilience
// configuration: when res.Heartbeat is positive the connection probes
// whenever its receive direction has been quiet for an interval (the
// server echoes), so transport idle timeouts never fire on a
// healthy-but-quiet link, and a peer silent for 2× the interval fails the
// connection — every pending call returns a *LinkError instead of blocking
// forever behind a dead wire. res.Heartbeat == 0 disables both.
func NewConnResilient(ch transport.Conn, pol Policy, res Resilience) *Conn {
	c := &Conn{
		ch:      ch,
		pol:     pol.withDefaults(),
		hb:      res.Heartbeat,
		pending: make(map[uint64]*call),
		done:    make(chan struct{}),
	}
	now := time.Now().UnixNano()
	c.lastSent.Store(now)
	c.lastRecv.Store(now)
	c.out = newBatcher(wire.BatchRequest, c.pol, ch, c.fail)
	c.out.preSend = c.markSent
	go c.recvLoop()
	if c.hb > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// markSent stamps outbound activity and flags each request entry's call as
// handed to the wire, just before the frame ships.
func (c *Conn) markSent(entries []wire.BatchEntry) {
	now := time.Now().UnixNano()
	c.lastSent.Store(now)
	c.mu.Lock()
	for _, e := range entries {
		if e.Cancel || e.Heartbeat {
			continue
		}
		if ca, ok := c.pending[e.ID]; ok {
			ca.sent.Store(true)
			if e.Sampled {
				ca.sentAtNS = now
			}
		}
	}
	c.mu.Unlock()
}

// Call sends one request and blocks for its response. Closing cancel
// abandons the call: a cancel entry tells the server to unblock and discard
// the request, and Call returns ErrCanceled without waiting for it. If the
// link dies, Call fails fast with a *LinkError (errors.Is ErrLinkDown).
func (c *Conn) Call(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	mCalls.Inc()
	mCallsInflight.Add(1)
	start := time.Now()
	resp, err := c.call(q, cancel)
	mCallNS.Observe(int64(time.Since(start)))
	mCallsInflight.Add(-1)
	if err == ErrCanceled {
		mCancels.Inc()
	}
	return resp, err
}

func (c *Conn) call(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	// Encode into a pooled buffer; the batcher owns it from add() on and
	// recycles it once the frame carrying it has shipped. RequestOverhead
	// bounds the whole message (keys and strings included), so the append
	// never outgrows the buffer.
	msg := wire.AppendRequest(pool.Get(wire.RequestOverhead(q)), q)
	ca := getCall()
	c.mu.Lock()
	if c.err != nil {
		err := c.callErr(c.err, false)
		c.mu.Unlock()
		pool.Put(msg)
		callPool.Put(ca)
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ca
	c.mu.Unlock()

	// The dedup token, trace, and sampled bit ride the batch entry, not the
	// request codec, so they re-attach at every forwarding hop without
	// touching the legacy single-frame protocol.
	var startNS int64
	if q.Sampled {
		startNS = time.Now().UnixNano()
	}
	c.out.add(wire.BatchEntry{ID: id, Token: q.Token, Trace: q.TraceID, Hop: q.TraceHop, Sampled: q.Sampled, Msg: msg})

	select {
	case resp := <-ca.rc:
		if q.Sampled && q.Spans != nil {
			// The rpc client span: full call round trip, with the time the
			// request lingered in the batcher before hitting the wire as its
			// wait component.
			endNS := time.Now().UnixNano()
			var linger int64
			if ca.sentAtNS > startNS {
				linger = ca.sentAtNS - startNS
			}
			q.Spans.Add(wire.Span{Layer: "rpc", Op: "send", Folder: q.FolderID,
				Hop: q.TraceHop, Start: startNS, Dur: endNS - startNS, Wait: linger})
		}
		callPool.Put(ca)
		return resp, nil
	case <-cancel:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Tell the server to abandon the in-flight request, which may be
		// pinning a server thread on a folder wait. Control enqueue: never
		// parks this already-canceled caller behind the backpressure wait.
		c.out.addControl(wire.BatchEntry{ID: id, Cancel: true})
		return nil, ErrCanceled
	case <-c.done:
		c.mu.Lock()
		err := c.callErr(c.err, ca.sent.Load())
		delete(c.pending, id)
		c.mu.Unlock()
		// A response may have raced the teardown.
		select {
		case resp := <-ca.rc:
			return resp, nil
		default:
		}
		return nil, err
	}
}

// callErr shapes the terminal cause into what a caller sees: an explicit
// Close stays ErrConnClosed; a dead link becomes a *LinkError carrying
// whether this call's request reached the wire.
func (c *Conn) callErr(cause error, sent bool) error {
	if cause == ErrConnClosed {
		return ErrConnClosed
	}
	return &LinkError{Sent: sent, Cause: cause}
}

// recvLoop matches batched responses back to pending calls. Each received
// frame lives in a pooled buffer the decoded responses alias; payloads that
// leave this loop (handed to callers, who own them indefinitely) take their
// Retain copy here — payload bytes are copied exactly once on the client,
// and value-less responses (put/ping acknowledgements) not at all — and the
// frame recycles at the bottom of each iteration.
func (c *Conn) recvLoop() {
	var entries []wire.BatchEntry
	for {
		buf, err := c.ch.Recv()
		if err != nil {
			c.fail(err)
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		if !wire.IsBatchFrame(buf) {
			c.fail(fmt.Errorf("rpc: peer sent a non-batch frame"))
			return
		}
		kind, es, err := wire.DecodeBatchInto(entries[:0], buf)
		if err != nil {
			c.fail(fmt.Errorf("rpc: bad batch: %w", err))
			return
		}
		entries = es
		if kind != wire.BatchResponse {
			c.fail(fmt.Errorf("rpc: peer sent %v, want %v", kind, wire.BatchResponse))
			return
		}
		for i := range entries {
			e := &entries[i]
			if e.Heartbeat {
				// The echo's whole job was advancing lastRecv.
				continue
			}
			resp, err := wire.DecodeResponse(e.Msg)
			if err != nil {
				c.fail(fmt.Errorf("rpc: bad response in batch: %w", err))
				return
			}
			resp.Retain()
			if len(e.Spans) > 0 {
				// DecodeSpans copies out of the pooled frame, so the spans
				// may outlive it; a malformed blob from a peer drops the
				// spans, never the connection.
				if spans, serr := wire.DecodeSpans(e.Spans); serr == nil {
					resp.Spans = spans
				}
			}
			c.mu.Lock()
			ca, ok := c.pending[e.ID]
			if ok {
				delete(c.pending, e.ID)
			}
			c.mu.Unlock()
			if ok {
				ca.rc <- resp
			}
			// Responses to unknown ids are replies to canceled calls; drop.
			*e = wire.BatchEntry{}
		}
		pool.Put(buf)
	}
}

// heartbeatLoop probes when either direction of the link goes quiet for an
// interval, and declares the peer dead when the receive direction stays
// silent for 2×. Both idle triggers matter: a link streaming blocking
// requests is send-busy yet legitimately receives nothing (only probe
// echoes prove the peer alive), while a link draining a backlog of
// responses is receive-busy yet sends nothing (only probes feed the peer's
// read deadline). Checking at a quarter of the interval keeps detection
// latency within ~2¼× the interval of the peer's last sign of life.
func (c *Conn) heartbeatLoop() {
	period := c.hb / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	var lastProbe time.Time
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		recvIdle := now.UnixNano() - c.lastRecv.Load()
		if recvIdle >= int64(2*c.hb) {
			c.fail(fmt.Errorf("rpc: peer silent beyond 2x heartbeat interval (%v)", c.hb))
			return
		}
		sendIdle := now.UnixNano() - c.lastSent.Load()
		if (recvIdle >= int64(c.hb) || sendIdle >= int64(c.hb)) && now.Sub(lastProbe) >= c.hb {
			// Control enqueue: never parks behind a wedged wire, and never
			// dropped at high water — a saturated healthy link still needs
			// its proof-of-life probe, or the deadman would kill it.
			if c.out.addControl(wire.BatchEntry{Heartbeat: true}) {
				lastProbe = now
				mProbes.Inc()
			}
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *Conn) fail(err error) {
	c.failOnce.Do(func() {
		if err != ErrConnClosed {
			mLinkDown.Inc()
		}
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		c.out.close()
		close(c.done)
		_ = c.ch.Close()
	})
}

// Close tears the connection down; pending and future calls fail with
// ErrConnClosed.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	return nil
}

// Done is closed when the connection dies.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err reports why the connection died (nil while alive).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
