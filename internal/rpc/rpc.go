// Package rpc is the pipelined, batching RPC layer between the wire codec
// and the transports.
//
// The paper's derived transport (§3.1.1) exists so that "communication cost
// [is] amortized over time"; this package is that amortization applied to
// request/response traffic. Before it, the stack round-tripped exactly one
// wire.Request per mux frame per virtual circuit, with one outstanding call
// per channel. Now:
//
//   - Conn (client side) assigns every request an id, keeps any number of
//     calls in flight on one transport.Channel, and coalesces concurrent
//     small requests into one wire batch frame under a flush policy
//     (Policy: max batch count, max batch bytes, max linger). Responses
//     return in completion order and are matched back to callers by id.
//
//   - Serve (server side) decodes each inbound batch frame, dispatches its
//     requests concurrently (through a thread-cache Submit), and coalesces
//     the responses into batched response frames under the same flush
//     policy. Blocking operations (get on an empty folder, watch) simply
//     leave their response for a later frame — they never stall the other
//     requests of their batch.
//
// Cancellation, which the one-channel-per-call design expressed by closing
// the call's virtual connection, becomes a batched control entry: a cancel
// entry names the in-flight request id, and the server closes that
// request's cancel channel.
//
// Single (non-batch) frames remain accepted by Serve, answered
// synchronously in arrival order exactly as the pre-batching servers did,
// so old peers and raw-wire debugging clients keep working.
package rpc

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
)

// Flush-policy defaults: linger long enough for concurrent callers to
// coalesce, short enough to be invisible next to a link round trip.
const (
	DefaultMaxCount = 64
	DefaultMaxBytes = 64 << 10
	DefaultLinger   = 100 * time.Microsecond
)

// DefaultHeartbeat is the probe interval client dial helpers use when the
// caller does not choose one — sized so the daemons' default idle timeout
// (15s, 3× this) never fires on a healthy-but-silent connection.
const DefaultHeartbeat = 5 * time.Second

// Policy tunes when a partially filled batch is flushed to the transport.
// The zero Policy means the defaults. MaxCount = 1 disables coalescing
// (every message travels in its own frame) and is the "unbatched" baseline
// in benchmarks.
type Policy struct {
	// MaxCount flushes a batch when it holds this many entries.
	MaxCount int
	// MaxBytes flushes a batch when its encoded payload reaches this size.
	MaxBytes int
	// Linger is the upper bound on how long a queued entry may wait for
	// companions. The batcher normally drains by backpressure — an entry
	// arriving on an idle wire is sent at once, and entries queued behind
	// an in-flight frame are shipped the moment it completes — so this
	// bound is only reached when a drain signal loses a race.
	Linger time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxCount <= 0 {
		p.MaxCount = DefaultMaxCount
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	if p.Linger <= 0 {
		p.Linger = DefaultLinger
	}
	return p
}

// Errors.
var (
	// ErrConnClosed reports a call on a closed or failed Conn.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrCanceled reports a call abandoned via its cancel channel.
	ErrCanceled = errors.New("rpc: call canceled")
	// ErrLinkDown reports a call failed because the underlying link died —
	// the transport errored, the mux tore down, or the heartbeat deadline
	// expired. Match with errors.Is; the concrete error is a *LinkError
	// carrying the cause and whether the request had reached the wire.
	ErrLinkDown = errors.New("rpc: link down")
)

// LinkError is the failure a Call returns when its connection dies. Sent
// distinguishes the two retry classes: a request that never left the local
// batcher queue (Sent == false) was certainly not executed and is safe to
// retry for any operation, while a request already handed to the transport
// (Sent == true) may or may not have executed — only idempotent operations
// may be retried blindly. errors.Is(err, ErrLinkDown) matches both.
type LinkError struct {
	// Sent reports whether the request was handed to the transport before
	// the link died. Marked conservatively (just before the frame ships),
	// so false is a guarantee and true is a maybe.
	Sent bool
	// Cause is the terminal link error (transport failure, mux teardown,
	// heartbeat expiry).
	Cause error
}

func (e *LinkError) Error() string {
	if e.Sent {
		return fmt.Sprintf("rpc: link down (request in flight): %v", e.Cause)
	}
	return fmt.Sprintf("rpc: link down (request not sent): %v", e.Cause)
}

func (e *LinkError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrLinkDown) true for every LinkError.
func (e *LinkError) Is(target error) bool { return target == ErrLinkDown }

// Resilience tunes the link-resilience layer: app-level heartbeats (so
// transport idle timeouts can be armed without killing legitimately-silent
// blocking folder waits), reconnect backoff for peer links, and the bounded
// transparent-retry budget for safely-retriable calls. The zero value
// disables all three (the pre-resilience behavior).
//
// The fields are consumed at different layers of the stack: Heartbeat by
// every Conn (NewConnResilient), Redial and Retries by the memo server's
// peer table only — a raw Conn has no dial function to retry with, so
// NewConnResilient ignores them.
type Resilience struct {
	// Heartbeat, when positive, makes the client side of a Conn emit a
	// heartbeat control entry whenever its receive direction has been
	// quiet for this long; the server echoes it. Any inbound traffic
	// re-arms the timer. A peer silent for 2× this interval is declared
	// dead: the Conn fails and
	// every pending call returns a *LinkError. Size transport idle
	// timeouts to at least 2–3× this interval.
	Heartbeat time.Duration
	// Redial is the backoff schedule the memo-server peer table uses to
	// re-dial dead peer links (zero = transport backoff defaults). Not
	// consumed by NewConnResilient.
	Redial transport.Backoff
	// Retries bounds how many times a failed call is transparently
	// re-dialed and re-issued by the memo server's peer table. Calls whose
	// request provably never reached the wire retry regardless of
	// operation; calls already in flight retry only for idempotent,
	// non-destructive operations. 0 disables transparent retries. Not
	// consumed by NewConnResilient.
	Retries int
}
