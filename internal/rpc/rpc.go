// Package rpc is the pipelined, batching RPC layer between the wire codec
// and the transports.
//
// The paper's derived transport (§3.1.1) exists so that "communication cost
// [is] amortized over time"; this package is that amortization applied to
// request/response traffic. Before it, the stack round-tripped exactly one
// wire.Request per mux frame per virtual circuit, with one outstanding call
// per channel. Now:
//
//   - Conn (client side) assigns every request an id, keeps any number of
//     calls in flight on one transport.Channel, and coalesces concurrent
//     small requests into one wire batch frame under a flush policy
//     (Policy: max batch count, max batch bytes, max linger). Responses
//     return in completion order and are matched back to callers by id.
//
//   - Serve (server side) decodes each inbound batch frame, dispatches its
//     requests concurrently (through a thread-cache Submit), and coalesces
//     the responses into batched response frames under the same flush
//     policy. Blocking operations (get on an empty folder, watch) simply
//     leave their response for a later frame — they never stall the other
//     requests of their batch.
//
// Cancellation, which the one-channel-per-call design expressed by closing
// the call's virtual connection, becomes a batched control entry: a cancel
// entry names the in-flight request id, and the server closes that
// request's cancel channel.
//
// Single (non-batch) frames remain accepted by Serve, answered
// synchronously in arrival order exactly as the pre-batching servers did,
// so old peers and raw-wire debugging clients keep working.
package rpc

import (
	"errors"
	"time"
)

// Flush-policy defaults: linger long enough for concurrent callers to
// coalesce, short enough to be invisible next to a link round trip.
const (
	DefaultMaxCount = 64
	DefaultMaxBytes = 64 << 10
	DefaultLinger   = 100 * time.Microsecond
)

// Policy tunes when a partially filled batch is flushed to the transport.
// The zero Policy means the defaults. MaxCount = 1 disables coalescing
// (every message travels in its own frame) and is the "unbatched" baseline
// in benchmarks.
type Policy struct {
	// MaxCount flushes a batch when it holds this many entries.
	MaxCount int
	// MaxBytes flushes a batch when its encoded payload reaches this size.
	MaxBytes int
	// Linger is the upper bound on how long a queued entry may wait for
	// companions. The batcher normally drains by backpressure — an entry
	// arriving on an idle wire is sent at once, and entries queued behind
	// an in-flight frame are shipped the moment it completes — so this
	// bound is only reached when a drain signal loses a race.
	Linger time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxCount <= 0 {
		p.MaxCount = DefaultMaxCount
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	if p.Linger <= 0 {
		p.Linger = DefaultLinger
	}
	return p
}

// Errors.
var (
	// ErrConnClosed reports a call on a closed or failed Conn.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrCanceled reports a call abandoned via its cancel channel.
	ErrCanceled = errors.New("rpc: call canceled")
)
