package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// serveMuxLoop accepts muxed connections on l and drives Serve(h) on every
// virtual channel — the shared server half of the resilience tests.
func serveMuxLoop(l transport.Listener, h Handler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(conn, 4096)
		go mux.Run()
		go func() {
			for {
				ch, err := mux.Accept()
				if err != nil {
					return
				}
				go Serve(ch, h, nil, Policy{})
			}
		}()
	}
}

// clientConn wraps a dialed transport conn in a mux and a resilient Conn,
// with cleanup registered.
func clientConn(t *testing.T, raw transport.Conn, res Resilience) *Conn {
	t.Helper()
	mux := transport.NewMux(raw, 4096)
	go mux.Run()
	t.Cleanup(func() { mux.Close() })
	c := NewConnResilient(mux.Channel(1), Policy{}, res)
	t.Cleanup(func() { c.Close() })
	return c
}

// serveTCPIdle listens on a loopback TCP socket with the given idle
// timeout, serves h, and returns the transport and bound address.
func serveTCPIdle(t *testing.T, idle time.Duration, h Handler) (*transport.TCP, string) {
	t.Helper()
	tcp := transport.NewTCPIdle(idle)
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go serveMuxLoop(l, h)
	return tcp, l.Addr()
}

// servedPair dials a raw in-process connection, serves h on the accept
// side, and returns the client Conn plus the underlying transport conn so
// tests can kill or intercept the wire.
func servedPair(t *testing.T, h Handler, res Resilience, wrapClient func(transport.Conn) transport.Conn) (*Conn, transport.Conn) {
	t.Helper()
	ip := transport.NewInProc()
	l, err := ip.Listen("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go serveMuxLoop(l, h)
	raw, err := ip.Dial("srv/rpc")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := raw
	if wrapClient != nil {
		wrapped = wrapClient(raw)
	}
	return clientConn(t, wrapped, res), raw
}

// blockForever parks every request on its cancel channel — the worst case
// for link death: responses that will never come.
func blockForever(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	<-cancel
	return wire.Errf("canceled")
}

// TestCallsFailFastWhenMuxDiesMidCall is the latent-bug regression: calls
// in flight when the underlying transport dies must all return promptly
// with ErrLinkDown, not hang until some outer timeout. The requests were
// handed to the wire, so each LinkError must report Sent.
func TestCallsFailFastWhenMuxDiesMidCall(t *testing.T) {
	c, raw := servedPair(t, blockForever, Resilience{}, nil)
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := c.Call(&wire.Request{Op: wire.OpGet}, nil)
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let every request reach the server
	raw.Close()                       // the link dies between send and response
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrLinkDown) {
				t.Fatalf("call %d: %v, want ErrLinkDown", i, err)
			}
			var le *LinkError
			if !errors.As(err, &le) || !le.Sent {
				t.Fatalf("call %d: %v, want *LinkError with Sent", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("call %d still blocked after the mux died", i)
		}
	}
	// New calls on the dead conn fail fast too — and report not-sent, so
	// any operation may be safely retried on a fresh link.
	_, err := c.Call(&wire.Request{Op: wire.OpPut}, nil)
	var le *LinkError
	if !errors.As(err, &le) || le.Sent {
		t.Fatalf("call on dead conn: %v, want *LinkError without Sent", err)
	}
}

// stuckConn lets a test wedge the wire: while stuck, Send blocks (like a
// zero-window TCP peer) until released.
type stuckConn struct {
	transport.Conn
	mu      sync.Mutex
	stuck   bool
	release chan struct{}
}

func (c *stuckConn) stick() {
	c.mu.Lock()
	c.stuck = true
	c.release = make(chan struct{})
	c.mu.Unlock()
}

func (c *stuckConn) Send(msg []byte) error {
	c.mu.Lock()
	stuck, release := c.stuck, c.release
	c.mu.Unlock()
	if stuck {
		<-release
		return transport.ErrClosed
	}
	return c.Conn.Send(msg)
}

// TestQueuedCallsReportNotSent: when the link dies while a request is still
// queued behind a wedged wire, its LinkError must NOT claim Sent — that
// guarantee is what makes blind retry of non-idempotent ops safe.
func TestQueuedCallsReportNotSent(t *testing.T) {
	var sc *stuckConn
	c, raw := servedPair(t, echoHandler, Resilience{}, func(inner transport.Conn) transport.Conn {
		sc = &stuckConn{Conn: inner}
		return sc
	})
	// Prove the wire works, then wedge it.
	if _, err := c.Call(&wire.Request{Op: wire.OpPing}, nil); err != nil {
		t.Fatal(err)
	}
	sc.stick()
	errs := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{Op: wire.OpPut}, nil)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // the frame is stuck in Send or queued
	raw.Close()                       // kill the transport under it
	close(sc.release)
	select {
	case err := <-errs:
		var le *LinkError
		if !errors.As(err, &le) {
			t.Fatalf("queued call: %v, want *LinkError", err)
		}
		// The entry may have reached the wedged Send (marked sent,
		// conservatively) or still sit queued (not sent); both are
		// ErrLinkDown. What matters is that it returned at all and that a
		// call queued after the death below is definitively not-sent.
	case <-time.After(2 * time.Second):
		t.Fatal("queued call hung after transport death")
	}
	_, err := c.Call(&wire.Request{Op: wire.OpPut}, nil)
	var le *LinkError
	if !errors.As(err, &le) || le.Sent {
		t.Fatalf("post-death call: %v, want *LinkError without Sent", err)
	}
}

// dropConn silently discards all traffic (both directions) while dropping
// is on — a blackholed link, invisible without heartbeats.
type dropConn struct {
	transport.Conn
	drop atomic.Bool
}

func (c *dropConn) Send(msg []byte) error {
	if c.drop.Load() {
		return nil
	}
	return c.Conn.Send(msg)
}

// TestHeartbeatDetectsBlackholedPeer: with heartbeats armed, a peer whose
// traffic silently vanishes is declared dead within ~2× the interval, and
// blocked calls return ErrLinkDown instead of waiting forever.
func TestHeartbeatDetectsBlackholedPeer(t *testing.T) {
	const hb = 60 * time.Millisecond
	var dc *dropConn
	c, _ := servedPair(t, blockForever, Resilience{Heartbeat: hb}, func(inner transport.Conn) transport.Conn {
		dc = &dropConn{Conn: inner}
		return dc
	})
	errs := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{Op: wire.OpGet}, nil)
		errs <- err
	}()
	time.Sleep(2 * hb) // healthy for a while: heartbeats keep it alive
	select {
	case err := <-errs:
		t.Fatalf("call failed on a healthy link: %v", err)
	default:
	}
	dc.drop.Store(true)
	start := time.Now()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("blocked call got %v, want ErrLinkDown", err)
		}
		// Threshold is 2×hb; allow scheduler slack but catch a broken
		// detector that needs an outer timeout.
		if elapsed := time.Since(start); elapsed > 6*hb {
			t.Fatalf("dead peer detected after %v, want ~2×%v", elapsed, hb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed peer never detected")
	}
}

// TestHeartbeatKeepsBlockedCallAliveUnderIdleTimeout is the §6 knob
// interaction: with app-level heartbeats, the TCP idle timeout can stay
// armed and a legitimately-silent blocking wait still survives many idle
// windows.
func TestHeartbeatKeepsBlockedCallAliveUnderIdleTimeout(t *testing.T) {
	const (
		idle = 150 * time.Millisecond
		hb   = 50 * time.Millisecond
		park = 10 * idle // survive ≥ 10× the idle timeout
	)
	release := make(chan struct{})
	h := func(q *wire.Request, cancel <-chan struct{}) *wire.Response {
		select {
		case <-release:
			return wire.OK()
		case <-cancel:
			return wire.Errf("canceled")
		}
	}
	tcp, addr := serveTCPIdle(t, idle, h)
	raw, err := tcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := clientConn(t, raw, Resilience{Heartbeat: hb})

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{Op: wire.OpGet}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blocked call died during the silent window: %v (idle timeout fired through the heartbeats?)", err)
	case <-time.After(park):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked call failed after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked call never completed")
	}
}

// TestHeartbeatFeedsPeerIdleTimerWhileReceiving covers the inverse silence:
// a client that pipelined its requests up front and now only receives — a
// backlog of blocking responses trickling in — sends nothing, so only
// probes keep the server's read deadline fed. Without send-idle probing
// the server kills the connection mid-stream.
func TestHeartbeatFeedsPeerIdleTimerWhileReceiving(t *testing.T) {
	const (
		idle  = 250 * time.Millisecond
		hb    = 80 * time.Millisecond
		calls = 6
	)
	releases := make(chan struct{})
	h := func(q *wire.Request, cancel <-chan struct{}) *wire.Response {
		select {
		case <-releases:
			return wire.OK()
		case <-cancel:
			return wire.Errf("canceled")
		}
	}
	tcp, addr := serveTCPIdle(t, idle, h)
	raw, err := tcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := clientConn(t, raw, Resilience{Heartbeat: hb})

	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := c.Call(&wire.Request{Op: wire.OpGet}, nil)
			errs <- err
		}()
	}
	// Release one response roughly every half idle window: the stream
	// spans ~3 idle windows with the client send-silent throughout.
	for i := 0; i < calls; i++ {
		time.Sleep(idle / 2)
		releases <- struct{}{}
	}
	for i := 0; i < calls; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("call %d failed mid-stream: %v (server idle timeout fired through the probes?)", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("calls never completed")
		}
	}
}
