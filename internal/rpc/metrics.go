package rpc

import "repro/internal/obs"

// Package-level rpc metrics, registered into obs.Default at init. These are
// process-wide aggregates over every connection — the per-connection view
// stays on the owning structs. Every hot-path touch is an atomic add
// (obs.Counter/Gauge/Histogram), so the instrumented call path keeps the
// PR 5 allocation budget.
var (
	mCalls = obs.Default.Counter("rpc_calls_total",
		"client calls issued")
	mCallsInflight = obs.Default.Gauge("rpc_calls_inflight",
		"client calls awaiting a response")
	mCallNS = obs.Default.Histogram("rpc_call_ns",
		"client call latency, nanoseconds")
	mCancels = obs.Default.Counter("rpc_cancels_total",
		"client calls abandoned via cancel")
	mProbes = obs.Default.Counter("rpc_probes_total",
		"heartbeat probes sent")
	mEchoes = obs.Default.Counter("rpc_heartbeat_echoes_total",
		"heartbeat probes echoed by the server side")
	mLinkDown = obs.Default.Counter("rpc_link_down_total",
		"connections failed by a link error (explicit Close excluded)")
	mFrames = obs.Default.Counter("rpc_frames_total",
		"batch frames shipped (both directions)")
	mBatchEntries = obs.Default.Histogram("rpc_batch_entries",
		"entries per shipped batch frame")
	mServerRequests = obs.Default.Counter("rpc_server_requests_total",
		"batched requests dispatched to handlers")
	mServerInflight = obs.Default.Gauge("rpc_server_inflight",
		"batched requests currently executing in handlers")
)
