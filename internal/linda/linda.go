// Package linda implements a classical Linda tuple space (Gelernter 1985),
// the system the paper positions D-Memo against (§7): "we believe that this
// tuple space is just 'a flat directory of unordered queues'".
//
// The baseline is faithful to generative communication: processes Out
// tuples into a shared space and In/Rd them back by associative matching —
// a template of actuals (exact values) and formals (typed wildcards) is
// matched against live tuples. Matching requires examining candidate tuples
// (here: all tuples of the same arity whose first-position actual matches,
// the standard first-field indexing optimization); its cost therefore grows
// with the number of co-resident tuples, which is exactly the asymmetry
// experiment E7 measures against D-Memo's hashed exact-name lookup.
package linda

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/transferable"
)

// ErrCanceled reports an abandoned blocking match.
var ErrCanceled = errors.New("linda: operation canceled")

// Tuple is an ordered sequence of transferable values.
type Tuple []transferable.Value

// String renders a tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprintf("%v", transferable.ToGo(v))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Field is one template position: an actual (exact value) or a formal
// (type wildcard).
type Field struct {
	// Actual, when non-nil, must equal the tuple's value at this position.
	Actual transferable.Value
	// Type, when Actual is nil, requires the tuple's value to carry this
	// tag. TagInvalid matches anything.
	Type transferable.Tag
}

// A returns an actual field.
func A(v transferable.Value) Field { return Field{Actual: v} }

// F returns a typed formal field.
func F(t transferable.Tag) Field { return Field{Type: t} }

// Any returns an untyped formal matching any value.
func Any() Field { return Field{} }

// Template is a match pattern.
type Template []Field

// Matches reports whether the tuple satisfies the template.
func (p Template) Matches(t Tuple) bool {
	if len(p) != len(t) {
		return false
	}
	for i, f := range p {
		switch {
		case f.Actual != nil:
			if !transferable.Equal(f.Actual, t[i]) {
				return false
			}
		case f.Type != transferable.TagInvalid:
			if t[i] == nil || t[i].Tag() != f.Type {
				return false
			}
		}
	}
	return true
}

// Stats counts space activity, including the matching work done — the
// quantity E7 compares against folder lookups.
type Stats struct {
	Outs, Ins, Rds int64
	// TuplesExamined counts candidate tuples inspected during matching.
	TuplesExamined int64
}

// Space is a tuple space. All methods are safe for concurrent use.
type Space struct {
	mu sync.Mutex
	// buckets index live tuples by (arity, first-actual canon) — the
	// classic Linda first-field optimization. Tuples whose first value is
	// unhashable (composite) land in the arity's catch-all bucket.
	buckets map[string][]Tuple
	waiters []chan struct{}

	outs     atomic.Int64
	ins      atomic.Int64
	rds      atomic.Int64
	examined atomic.Int64
}

// NewSpace returns an empty tuple space.
func NewSpace() *Space {
	return &Space{buckets: make(map[string][]Tuple)}
}

// bucketKeyTuple computes a tuple's bucket.
func bucketKeyTuple(t Tuple) string {
	return fmt.Sprintf("%d|%s", len(t), firstKey(t))
}

// firstKey derives an index key from a tuple's first value, or "*" when the
// value is composite (not usefully indexable).
func firstKey(t Tuple) string {
	if len(t) == 0 {
		return "*"
	}
	switch v := t[0].(type) {
	case transferable.String:
		return "s:" + string(v)
	case transferable.Int64:
		return fmt.Sprintf("i:%d", int64(v))
	case transferable.Int32:
		return fmt.Sprintf("i:%d", int32(v))
	case transferable.Bool:
		return fmt.Sprintf("b:%v", bool(v))
	}
	return "*"
}

// candidateBuckets lists buckets a template could match: if the first field
// is an indexable actual, its bucket plus the catch-all; otherwise all
// buckets of the right arity.
func (s *Space) candidateBuckets(p Template) []string {
	if len(p) > 0 && p[0].Actual != nil {
		probe := Tuple{p[0].Actual}
		fk := firstKey(probe)
		if fk != "*" {
			return []string{
				fmt.Sprintf("%d|%s", len(p), fk),
				fmt.Sprintf("%d|*", len(p)),
			}
		}
	}
	// Scan all buckets of this arity.
	prefix := fmt.Sprintf("%d|", len(p))
	var out []string
	for k := range s.buckets {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// Out deposits a tuple (generative communication: the tuple has independent
// existence once out).
func (s *Space) Out(t Tuple) {
	cp := make(Tuple, len(t))
	copy(cp, t)
	key := bucketKeyTuple(cp)
	s.mu.Lock()
	s.buckets[key] = append(s.buckets[key], cp)
	waiters := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	s.outs.Add(1)
	for _, w := range waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// matchLocked finds (and optionally removes) a matching tuple. Caller holds
// s.mu.
func (s *Space) matchLocked(p Template, take bool) (Tuple, bool) {
	for _, bk := range s.candidateBuckets(p) {
		tuples := s.buckets[bk]
		for i, t := range tuples {
			s.examined.Add(1)
			if p.Matches(t) {
				if take {
					last := len(tuples) - 1
					tuples[i] = tuples[last]
					tuples[last] = nil
					if last == 0 {
						delete(s.buckets, bk)
					} else {
						s.buckets[bk] = tuples[:last]
					}
				}
				return t, true
			}
		}
	}
	return nil, false
}

// blockingMatch retries a match until it succeeds or cancel fires.
func (s *Space) blockingMatch(p Template, take bool, cancel <-chan struct{}) (Tuple, error) {
	for {
		s.mu.Lock()
		if t, ok := s.matchLocked(p, take); ok {
			s.mu.Unlock()
			return t, nil
		}
		w := make(chan struct{}, 1)
		s.waiters = append(s.waiters, w)
		s.mu.Unlock()
		select {
		case <-w:
		case <-cancel:
			s.mu.Lock()
			for i, x := range s.waiters {
				if x == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return nil, ErrCanceled
		}
	}
}

// In takes a matching tuple, blocking until one exists.
func (s *Space) In(p Template) (Tuple, error) { return s.InCancel(p, nil) }

// InCancel is In with cancellation.
func (s *Space) InCancel(p Template, cancel <-chan struct{}) (Tuple, error) {
	t, err := s.blockingMatch(p, true, cancel)
	if err == nil {
		s.ins.Add(1)
	}
	return t, err
}

// Rd reads a matching tuple without removing it, blocking until one exists.
func (s *Space) Rd(p Template) (Tuple, error) { return s.RdCancel(p, nil) }

// RdCancel is Rd with cancellation.
func (s *Space) RdCancel(p Template, cancel <-chan struct{}) (Tuple, error) {
	t, err := s.blockingMatch(p, false, cancel)
	if err == nil {
		s.rds.Add(1)
	}
	return t, err
}

// Inp takes a matching tuple without blocking.
func (s *Space) Inp(p Template) (Tuple, bool) {
	s.mu.Lock()
	t, ok := s.matchLocked(p, true)
	s.mu.Unlock()
	if ok {
		s.ins.Add(1)
	}
	return t, ok
}

// Rdp reads a matching tuple without blocking.
func (s *Space) Rdp(p Template) (Tuple, bool) {
	s.mu.Lock()
	t, ok := s.matchLocked(p, false)
	s.mu.Unlock()
	if ok {
		s.rds.Add(1)
	}
	return t, ok
}

// Eval spawns f and Outs its result tuple when it returns — Linda's active
// tuple, realized as a goroutine.
func (s *Space) Eval(f func() Tuple) {
	go func() {
		if t := f(); t != nil {
			s.Out(t)
		}
	}()
}

// Size reports the number of live tuples.
func (s *Space) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.buckets {
		n += len(b)
	}
	return n
}

// Stats snapshots counters.
func (s *Space) Stats() Stats {
	return Stats{
		Outs:           s.outs.Load(),
		Ins:            s.ins.Load(),
		Rds:            s.rds.Load(),
		TuplesExamined: s.examined.Load(),
	}
}
