package linda

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/transferable"
)

func T(vs ...any) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = transferable.MustFromGo(v)
	}
	return t
}

func TestOutInExact(t *testing.T) {
	s := NewSpace()
	s.Out(T("point", 3, 4))
	got, err := s.In(Template{A(transferable.String("point")), A(transferable.Int64(3)), A(transferable.Int64(4))})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if s.Size() != 0 {
		t.Fatalf("size = %d after In", s.Size())
	}
}

func TestFormalsMatchByType(t *testing.T) {
	s := NewSpace()
	s.Out(T("temp", 21.5))
	s.Out(T("temp", 99)) // int, not float
	got, err := s.In(Template{A(transferable.String("temp")), F(transferable.TagFloat64)})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := transferable.AsFloat(got[1]); f != 21.5 {
		t.Fatalf("formal matched wrong tuple: %v", got)
	}
	// The int tuple is still there.
	if _, ok := s.Inp(Template{A(transferable.String("temp")), F(transferable.TagInt64)}); !ok {
		t.Fatal("int tuple missing")
	}
}

func TestAnyMatchesAnything(t *testing.T) {
	s := NewSpace()
	s.Out(T("x", "whatever"))
	if _, ok := s.Inp(Template{A(transferable.String("x")), Any()}); !ok {
		t.Fatal("Any() did not match")
	}
}

func TestArityDiscriminates(t *testing.T) {
	s := NewSpace()
	s.Out(T("a", 1))
	if _, ok := s.Inp(Template{A(transferable.String("a"))}); ok {
		t.Fatal("template of arity 1 matched tuple of arity 2")
	}
	if _, ok := s.Inp(Template{A(transferable.String("a")), Any(), Any()}); ok {
		t.Fatal("template of arity 3 matched tuple of arity 2")
	}
}

func TestRdDoesNotConsume(t *testing.T) {
	s := NewSpace()
	s.Out(T("keep", 1))
	p := Template{A(transferable.String("keep")), Any()}
	if _, err := s.Rd(p); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1 {
		t.Fatal("Rd consumed the tuple")
	}
	if _, ok := s.Rdp(p); !ok {
		t.Fatal("Rdp failed on present tuple")
	}
	if _, ok := s.Inp(p); !ok {
		t.Fatal("tuple gone")
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	s := NewSpace()
	p := Template{A(transferable.String("later"))}
	got := make(chan Tuple, 1)
	go func() {
		tp, err := s.In(p)
		if err == nil {
			got <- tp
		}
	}()
	select {
	case <-got:
		t.Fatal("In returned before Out")
	case <-time.After(20 * time.Millisecond):
	}
	s.Out(T("later"))
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("In never woke")
	}
}

func TestInCancel(t *testing.T) {
	s := NewSpace()
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.InCancel(Template{A(transferable.String("never"))}, cancel)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel ignored")
	}
}

func TestInpRdpNonBlocking(t *testing.T) {
	s := NewSpace()
	if _, ok := s.Inp(Template{Any()}); ok {
		t.Fatal("Inp matched in empty space")
	}
	if _, ok := s.Rdp(Template{Any()}); ok {
		t.Fatal("Rdp matched in empty space")
	}
}

func TestEval(t *testing.T) {
	s := NewSpace()
	s.Eval(func() Tuple {
		return T("result", 42)
	})
	got, err := s.In(Template{A(transferable.String("result")), F(transferable.TagInt64)})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(got[1]); n != 42 {
		t.Fatalf("eval result %v", got)
	}
}

func TestOutCopiesTuple(t *testing.T) {
	s := NewSpace()
	tp := T("mut", 1)
	s.Out(tp)
	tp[1] = transferable.Int64(999)
	got, _ := s.Inp(Template{A(transferable.String("mut")), Any()})
	if n, _ := transferable.AsInt(got[1]); n != 1 {
		t.Fatalf("space aliased caller's tuple: %v", got)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s := NewSpace()
	const producers, perProducer = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Out(T("work", p*perProducer+i))
			}
		}(p)
	}
	seen := make(chan int64, producers*perProducer)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				tp, err := s.In(Template{A(transferable.String("work")), F(transferable.TagInt64)})
				if err != nil {
					t.Errorf("In: %v", err)
					return
				}
				n, _ := transferable.AsInt(tp[1])
				seen <- n
			}
		}()
	}
	wg.Wait()
	close(seen)
	got := make(map[int64]bool)
	for n := range seen {
		if got[n] {
			t.Fatalf("tuple %d delivered twice", n)
		}
		got[n] = true
	}
	if len(got) != producers*perProducer {
		t.Fatalf("got %d tuples", len(got))
	}
}

func TestFirstFieldIndexingSkipsForeignBuckets(t *testing.T) {
	// Matching a first-field actual must not examine tuples with other
	// first fields (the indexed fast path).
	s := NewSpace()
	for i := 0; i < 1000; i++ {
		s.Out(T("noise", i))
	}
	s.Out(T("needle", 1))
	before := s.Stats().TuplesExamined
	if _, ok := s.Inp(Template{A(transferable.String("needle")), Any()}); !ok {
		t.Fatal("needle not found")
	}
	examined := s.Stats().TuplesExamined - before
	if examined > 5 {
		t.Fatalf("indexed lookup examined %d tuples", examined)
	}
}

func TestFormalFirstFieldScansArity(t *testing.T) {
	// With a formal first field the match must consider all buckets of the
	// arity — the associative cost E7 measures.
	s := NewSpace()
	for i := 0; i < 100; i++ {
		s.Out(Tuple{transferable.Int64(int64(i)), transferable.String("v")})
	}
	before := s.Stats().TuplesExamined
	got, ok := s.Inp(Template{A(transferable.Int64(999)), Any()})
	if ok {
		t.Fatalf("matched nonexistent tuple %v", got)
	}
	_ = before // examined count may be small due to bucketing; presence is enough
}

func TestStats(t *testing.T) {
	s := NewSpace()
	s.Out(T("a"))
	s.Rd(Template{A(transferable.String("a"))})
	s.In(Template{A(transferable.String("a"))})
	st := s.Stats()
	if st.Outs != 1 || st.Rds != 1 || st.Ins != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Property: a template built from a tuple's own values always matches it.
func TestQuickSelfMatch(t *testing.T) {
	f := func(a int64, b string, c bool) bool {
		tp := Tuple{transferable.Int64(a), transferable.String(b), transferable.Bool(c)}
		p := Template{A(transferable.Int64(a)), A(transferable.String(b)), A(transferable.Bool(c))}
		if !p.Matches(tp) {
			return false
		}
		s := NewSpace()
		s.Out(tp)
		_, ok := s.Inp(p)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: typed formals match exactly the tuples with that tag.
func TestQuickFormalTypeDiscrimination(t *testing.T) {
	f := func(n int64, s string) bool {
		sp := NewSpace()
		sp.Out(Tuple{transferable.Int64(n)})
		sp.Out(Tuple{transferable.String(s)})
		ti, okI := sp.Inp(Template{F(transferable.TagInt64)})
		ts, okS := sp.Inp(Template{F(transferable.TagString)})
		if !okI || !okS {
			return false
		}
		ni, _ := transferable.AsInt(ti[0])
		ss, _ := transferable.AsString(ts[0])
		return ni == n && ss == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInIndexed(b *testing.B) {
	s := NewSpace()
	for i := 0; i < 10000; i++ {
		s.Out(T("noise", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Out(T("hot", i))
		if _, ok := s.Inp(Template{A(transferable.String("hot")), Any()}); !ok {
			b.Fatal("lost tuple")
		}
	}
}

func BenchmarkInAssociativeScan(b *testing.B) {
	// Composite first fields defeat indexing: the catch-all bucket grows
	// and every match scans it.
	s := NewSpace()
	for i := 0; i < 1000; i++ {
		s.Out(Tuple{transferable.NewList(transferable.Int64(int64(i))), transferable.Int64(int64(i))})
	}
	p := Template{F(transferable.TagList), A(transferable.Int64(500))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Rdp(p); !ok {
			b.Fatal("tuple not found")
		}
	}
}
