// Package locking implements D-Memo's locking foundation (paper §3.1.4).
//
// Low-level locking mechanisms vary between platforms — the paper cites its
// experience with Encore and Sequent machines, where a plain semaphore is
// sometimes the wrong tool. The abstraction here is a small Locker interface
// with several derived implementations whose relative costs differ, plus a
// counting semaphore and a factory that selects a mechanism by name the way
// the original selected platform classes at run time.
package locking

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the abstract locking protocol. sync.Locker is embedded so any
// implementation interoperates with sync.Cond and friends; TryLock extends it
// for the polling idioms the folder servers use.
type Locker interface {
	sync.Locker
	// TryLock acquires the lock without blocking, reporting success.
	TryLock() bool
}

// Mechanism names a locking implementation, mirroring the per-platform
// derived classes of the original system.
type Mechanism string

// Supported mechanisms.
const (
	// MechMutex is the host's standard mutual exclusion primitive.
	MechMutex Mechanism = "mutex"
	// MechSpin is a test-and-set spin lock: cheap under low contention,
	// the "more efficient locking mechanism" §3.1.4 opts for over a
	// semaphore on multiprocessors.
	MechSpin Mechanism = "spin"
	// MechTicket is a fair FIFO spin lock (Sequent-style).
	MechTicket Mechanism = "ticket"
)

// New returns a Locker using the named mechanism.
func New(m Mechanism) (Locker, error) {
	switch m {
	case MechMutex:
		return &MutexLock{}, nil
	case MechSpin:
		return &SpinLock{}, nil
	case MechTicket:
		return &TicketLock{}, nil
	}
	return nil, fmt.Errorf("locking: unknown mechanism %q", m)
}

// MutexLock adapts sync.Mutex to Locker.
type MutexLock struct {
	mu sync.Mutex
}

// Lock acquires the lock.
func (l *MutexLock) Lock() { l.mu.Lock() }

// Unlock releases the lock.
func (l *MutexLock) Unlock() { l.mu.Unlock() }

// TryLock acquires the lock if it is free.
func (l *MutexLock) TryLock() bool { return l.mu.TryLock() }

// SpinLock is a test-and-test-and-set spin lock.
type SpinLock struct {
	state atomic.Int32
}

// Lock spins until the lock is acquired, yielding the processor between
// attempts so single-CPU schedules still make progress.
func (l *SpinLock) Lock() {
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// Unlock releases the lock. Unlocking a free SpinLock panics: it always
// indicates a programming error.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("locking: unlock of unlocked SpinLock")
	}
}

// TryLock acquires the lock if it is free.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// TicketLock is a fair spin lock: acquirers are served in arrival order.
type TicketLock struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and spins until it is served.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	for l.serving.Load() != t {
		runtime.Gosched()
	}
}

// Unlock serves the next ticket.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}

// TryLock acquires the lock only if nobody is waiting or holding it.
func (l *TicketLock) TryLock() bool {
	cur := l.serving.Load()
	return l.next.CompareAndSwap(cur, cur+1)
}

// Semaphore is a counting semaphore with blocking Acquire, as used for the
// §6.3.2 comparison and by the thread caches.
type Semaphore struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

// NewSemaphore returns a semaphore initialized to n permits. n must be >= 0.
func NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("locking: negative semaphore count")
	}
	s := &Semaphore{count: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire takes a permit, blocking until one is available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	s.mu.Unlock()
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.cond.Signal()
}

// Available reports the current permit count (racy; diagnostics only).
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
