package locking

import (
	"sync"
	"testing"
	"time"
)

func lockers(t *testing.T) map[string]Locker {
	t.Helper()
	out := make(map[string]Locker)
	for _, m := range []Mechanism{MechMutex, MechSpin, MechTicket} {
		l, err := New(m)
		if err != nil {
			t.Fatalf("New(%s): %v", m, err)
		}
		out[string(m)] = l
	}
	return out
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("futex9000"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestMutualExclusion(t *testing.T) {
	for name, l := range lockers(t) {
		t.Run(name, func(t *testing.T) {
			const workers = 16
			const iters = 2000
			counter := 0
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d want %d (lost updates)", counter, workers*iters)
			}
		})
	}
}

func TestTryLock(t *testing.T) {
	for name, l := range lockers(t) {
		t.Run(name, func(t *testing.T) {
			if !l.TryLock() {
				t.Fatal("TryLock on free lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			l.Unlock()
		})
	}
}

func TestSpinUnlockOfFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of free SpinLock did not panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestTicketFairness(t *testing.T) {
	// With a ticket lock, a queue of N waiters is served in FIFO order.
	var l TicketLock
	l.Lock()
	const n = 8
	order := make(chan int, n)
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		i := i
		go func() {
			started.Done()
			l.Lock()
			order <- i
			l.Unlock()
		}()
		started.Wait()
		// Give the goroutine time to take its ticket before the next starts.
		time.Sleep(2 * time.Millisecond)
		started = sync.WaitGroup{}
	}
	l.Unlock()
	for want := 0; want < n; want++ {
		got := <-order
		if got != want {
			t.Fatalf("service order: got %d want %d", got, want)
		}
	}
}

func TestSemaphoreCounting(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("third acquire of a 2-semaphore succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	s.Release()
	s.Release()
	if s.Available() != 2 {
		t.Fatalf("Available = %d want 2", s.Available())
	}
}

func TestSemaphoreBlocksUntilRelease(t *testing.T) {
	s := NewSemaphore(0)
	done := make(chan struct{})
	go func() {
		s.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire on empty semaphore returned immediately")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
}

func TestSemaphoreAsLockLimitsConcurrency(t *testing.T) {
	const permits = 3
	s := NewSemaphore(permits)
	var cur, max int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire()
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if max > permits {
		t.Fatalf("observed %d concurrent holders, permit limit %d", max, permits)
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative count did not panic")
		}
	}()
	NewSemaphore(-1)
}

func BenchmarkLockers(b *testing.B) {
	for _, m := range []Mechanism{MechMutex, MechSpin, MechTicket} {
		l, _ := New(m)
		b.Run(string(m), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock() //nolint:staticcheck // empty critical section is the benchmark
				}
			})
		})
	}
}
