// Package threadcache implements the servers' thread caching (paper §4.1).
//
// "Each request to a server will cause a thread to be created to handle the
// request... The system uses the idea of thread caching to avoid the
// overhead of creating processes un-necessarily. When a thread completes its
// transactions, it will set a timer and wait for additional requests. If a
// request comes in, the thread will handle it. If not, it will terminate."
//
// A Pool transliterates that into goroutines: Submit hands the task to an
// idle cached worker if one exists; otherwise it spawns a new worker. After
// finishing a task the worker waits IdleTimeout for more work, then retires.
// Disabling the cache (Config.Disable) spawns a fresh goroutine per request
// — the ablation measured by experiment E1. Spawn/reuse counters make the
// difference observable.
package threadcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a pool.
type Config struct {
	// IdleTimeout is how long a finished worker lingers for more work.
	// Zero means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxIdle bounds the number of lingering workers. Zero means
	// DefaultMaxIdle.
	MaxIdle int
	// Disable turns caching off: every task runs on a fresh goroutine.
	Disable bool
}

// Defaults.
const (
	DefaultIdleTimeout = 100 * time.Millisecond
	DefaultMaxIdle     = 64
)

// Stats counts pool activity.
type Stats struct {
	// Spawned is the number of worker goroutines created.
	Spawned int64
	// Reused is the number of tasks handled by an already-cached worker.
	Reused int64
	// Retired is the number of workers that idled out.
	Retired int64
}

// ErrClosed reports Submit on a closed pool.
var ErrClosed = errors.New("threadcache: pool closed")

// Task is one unit of work: a function plus its argument. Splitting the two
// lets steady-state callers submit a static function with a pooled argument
// struct instead of allocating a fresh closure per request — the rpc server
// dispatches every batched request this way. A zero Task (nil Fn) is the
// sentinel a closed worker channel yields and is never run.
type Task struct {
	Fn  func(any)
	Arg any
}

func (t Task) run() { t.Fn(t.Arg) }

// runFunc adapts a plain func() to the Task shape. Converting a func value
// into an interface does not allocate (func values are pointer-shaped), so
// Submit stays a single-word wrap of SubmitTask.
func runFunc(a any) { a.(func())() }

// Pool is a cache of worker goroutines.
type Pool struct {
	cfg Config

	mu     sync.Mutex
	idle   []chan Task // stack: most recently parked worker first
	closed bool
	live   sync.WaitGroup

	spawned atomic.Int64
	reused  atomic.Int64
	retired atomic.Int64
}

// New returns a pool with the given configuration.
func New(cfg Config) *Pool {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.MaxIdle == 0 {
		cfg.MaxIdle = DefaultMaxIdle
	}
	return &Pool{cfg: cfg}
}

// Submit runs task on a cached or fresh worker. It never blocks on the task.
func (p *Pool) Submit(task func()) error {
	return p.SubmitTask(Task{Fn: runFunc, Arg: task})
}

// SubmitArg runs fn(arg) on a cached or fresh worker — the allocation-free
// submission path: fn is typically a static function and arg a pooled
// struct, so nothing about the handoff itself hits the heap.
func (p *Pool) SubmitArg(fn func(any), arg any) error {
	return p.SubmitTask(Task{Fn: fn, Arg: arg})
}

// SubmitTask runs t on a cached or fresh worker. It never blocks on the task.
func (p *Pool) SubmitTask(t Task) error {
	if p.cfg.Disable {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return ErrClosed
		}
		p.live.Add(1)
		p.mu.Unlock()
		p.spawned.Add(1)
		go func() {
			defer p.live.Done()
			t.run()
		}()
		return nil
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.reused.Add(1)
		w <- t
		return nil
	}
	p.live.Add(1)
	p.mu.Unlock()
	p.spawned.Add(1)
	go p.worker(t)
	return nil
}

// worker runs its first task, then parks itself waiting for reuse until the
// idle timer fires. One handoff channel serves the worker's whole lifetime —
// parking is free of allocations until the idle timer arms.
func (p *Pool) worker(first Task) {
	defer p.live.Done()
	task := first
	ch := make(chan Task)
	for {
		task.run()
		p.mu.Lock()
		if p.closed || len(p.idle) >= p.cfg.MaxIdle {
			p.mu.Unlock()
			p.retired.Add(1)
			return
		}
		p.idle = append(p.idle, ch)
		p.mu.Unlock()

		timer := time.NewTimer(p.cfg.IdleTimeout)
		select {
		case task = <-ch:
			timer.Stop()
			if task.Fn == nil { // pool closed while parked
				p.retired.Add(1)
				return
			}
		case <-timer.C:
			// Retire — but a Submit may have popped us concurrently and
			// be about to send. Remove ourselves under the lock; if we
			// are already gone, we must take the task.
			p.mu.Lock()
			removed := false
			for i, c := range p.idle {
				if c == ch {
					p.idle = append(p.idle[:i], p.idle[i+1:]...)
					removed = true
					break
				}
			}
			p.mu.Unlock()
			if removed {
				p.retired.Add(1)
				return
			}
			task = <-ch // a Submit won the race; serve it
			if task.Fn == nil {
				p.retired.Add(1)
				return
			}
		}
	}
}

// Close retires all idle workers and rejects future Submits. It does not
// interrupt running tasks; use Wait to block for them.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, ch := range idle {
		close(ch)
	}
}

// Wait blocks until all running tasks complete. Call after Close.
func (p *Pool) Wait() { p.live.Wait() }

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Spawned: p.spawned.Load(),
		Reused:  p.reused.Load(),
		Retired: p.retired.Load(),
	}
}

// IdleCount reports the number of parked workers (diagnostics).
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}
