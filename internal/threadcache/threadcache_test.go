package threadcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsTasks(t *testing.T) {
	p := New(Config{})
	defer func() { p.Close(); p.Wait() }()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks", n.Load())
	}
}

func TestSequentialTasksReuseWorker(t *testing.T) {
	p := New(Config{IdleTimeout: time.Second})
	defer func() { p.Close(); p.Wait() }()
	done := make(chan struct{}, 1)
	p.Submit(func() { done <- struct{}{} })
	<-done
	// Give the worker a moment to park.
	waitIdle(t, p, 1)
	for i := 0; i < 10; i++ {
		p.Submit(func() { done <- struct{}{} })
		<-done
		waitIdle(t, p, 1)
	}
	s := p.Stats()
	if s.Spawned != 1 {
		t.Fatalf("spawned %d workers for sequential tasks, want 1", s.Spawned)
	}
	if s.Reused != 10 {
		t.Fatalf("reused = %d want 10", s.Reused)
	}
}

func waitIdle(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for p.IdleCount() < want {
		if time.Now().After(deadline) {
			t.Fatalf("worker never parked (idle=%d)", p.IdleCount())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestWorkerRetiresAfterIdleTimeout(t *testing.T) {
	p := New(Config{IdleTimeout: 10 * time.Millisecond})
	defer func() { p.Close(); p.Wait() }()
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Retired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never retired")
		}
		time.Sleep(time.Millisecond)
	}
	if p.IdleCount() != 0 {
		t.Fatalf("idle = %d after retirement", p.IdleCount())
	}
}

func TestDisableSpawnsPerTask(t *testing.T) {
	p := New(Config{Disable: true})
	defer func() { p.Close(); p.Wait() }()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	s := p.Stats()
	if s.Spawned != 20 || s.Reused != 0 {
		t.Fatalf("disable mode: spawned=%d reused=%d", s.Spawned, s.Reused)
	}
}

func TestMaxIdleBounded(t *testing.T) {
	p := New(Config{IdleTimeout: time.Second, MaxIdle: 2})
	defer func() { p.Close(); p.Wait() }()
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		p.Submit(func() { <-gate; wg.Done() })
	}
	close(gate)
	wg.Wait()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if n := p.IdleCount(); n > 2 {
			t.Fatalf("idle = %d exceeds MaxIdle 2", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	p := New(Config{})
	p.Close()
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Fatalf("got %v want ErrClosed", err)
	}
	pd := New(Config{Disable: true})
	pd.Close()
	if err := pd.Submit(func() {}); err != ErrClosed {
		t.Fatalf("disabled pool: got %v want ErrClosed", err)
	}
}

func TestCloseIdempotentAndWaits(t *testing.T) {
	p := New(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func() { close(started); <-release })
	<-started
	p.Close()
	p.Close() // idempotent
	waited := make(chan struct{})
	go func() { p.Wait(); close(waited) }()
	select {
	case <-waited:
		t.Fatal("Wait returned while task still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	p := New(Config{IdleTimeout: 5 * time.Millisecond, MaxIdle: 8})
	defer func() { p.Close(); p.Wait() }()
	var n atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var inner sync.WaitGroup
				inner.Add(1)
				if err := p.Submit(func() { n.Add(1); inner.Done() }); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				inner.Wait()
			}
		}()
	}
	wg.Wait()
	if n.Load() != 16*200 {
		t.Fatalf("ran %d want %d", n.Load(), 16*200)
	}
}

func TestCachingReducesSpawns(t *testing.T) {
	// The E1 claim at unit scale: with caching, far fewer spawns than tasks.
	run := func(disable bool) Stats {
		p := New(Config{IdleTimeout: 200 * time.Millisecond, Disable: disable, MaxIdle: 64})
		defer func() { p.Close(); p.Wait() }()
		var wg sync.WaitGroup
		for i := 0; i < 500; i++ {
			wg.Add(1)
			p.Submit(func() { wg.Done() })
			if i%10 == 9 {
				wg.Wait() // let workers park periodically
			}
		}
		wg.Wait()
		return p.Stats()
	}
	cached := run(false)
	uncached := run(true)
	if uncached.Spawned != 500 {
		t.Fatalf("uncached spawned = %d", uncached.Spawned)
	}
	if cached.Spawned >= uncached.Spawned/2 {
		t.Fatalf("caching barely helped: %d vs %d spawns", cached.Spawned, uncached.Spawned)
	}
}

func BenchmarkSubmitCached(b *testing.B) {
	p := New(Config{IdleTimeout: time.Second})
	defer func() { p.Close(); p.Wait() }()
	done := make(chan struct{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() { done <- struct{}{} })
		<-done
	}
}

func BenchmarkSubmitUncached(b *testing.B) {
	p := New(Config{Disable: true})
	defer func() { p.Close(); p.Wait() }()
	done := make(chan struct{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() { done <- struct{}{} })
		<-done
	}
}
