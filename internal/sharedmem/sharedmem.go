// Package sharedmem implements D-Memo's SharedMemory foundation (paper §3,
// §3.1.2).
//
// The paper's abstract SharedMemory class factors the commonality out of two
// concretely different protocols:
//
//   - Encore Multimax style: the application declares the maximum amount of
//     shared memory up front, then allocates and frees pieces of that fixed
//     pool, releasing the whole pool on termination.
//   - System V style (SPARC, i486 SVR4): segments are attached on demand and
//     the pool can grow, with subtly different primitives.
//
// Both derivations here manage a byte-slice arena with a first-fit free list,
// so folder servers can place memo payloads in "shared memory" that
// application processes on the same simulated host read directly (Fig. 1's
// shared-memory abstraction).
package sharedmem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	// ErrNoSpace reports pool exhaustion.
	ErrNoSpace = errors.New("sharedmem: out of shared memory")
	// ErrBadFree reports a Free of an unknown or already-freed segment.
	ErrBadFree = errors.New("sharedmem: bad free")
	// ErrReleased reports use after Release.
	ErrReleased = errors.New("sharedmem: pool released")
)

// Segment is an allocated piece of a shared pool. Bytes aliases the pool's
// arena: writes are visible to every process holding the segment.
type Segment struct {
	ID    uint64
	Bytes []byte
	off   int
}

// SharedMemory is the abstract protocol common to all platform derivations.
type SharedMemory interface {
	// Alloc carves size bytes out of the pool.
	Alloc(size int) (*Segment, error)
	// Free returns a segment to the pool.
	Free(*Segment) error
	// Release tears the whole pool down (the Encore end-of-run step).
	Release() error
	// InUse reports currently allocated bytes.
	InUse() int
	// Capacity reports the pool's current total size.
	Capacity() int
	// Kind names the platform derivation.
	Kind() string
}

// span is a free-list entry.
type span struct {
	off, len int
}

// pool is the shared arena machinery common to both derivations.
type pool struct {
	mu       sync.Mutex
	arena    []byte
	free     []span // sorted by offset, coalesced
	allocs   map[uint64]span
	nextID   uint64
	inUse    int
	released bool
	grow     bool // System V derivation may extend the arena
	kind     string
}

func newPool(capacity int, grow bool, kind string) *pool {
	return &pool{
		arena:  make([]byte, capacity),
		free:   []span{{0, capacity}},
		allocs: make(map[uint64]span),
		grow:   grow,
		kind:   kind,
	}
}

// Alloc implements SharedMemory with first-fit allocation.
func (p *pool) Alloc(size int) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sharedmem: invalid allocation size %d", size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.released {
		return nil, ErrReleased
	}
	for i, s := range p.free {
		if s.len >= size {
			seg := span{s.off, size}
			if s.len == size {
				p.free = append(p.free[:i], p.free[i+1:]...)
			} else {
				p.free[i] = span{s.off + size, s.len - size}
			}
			return p.finishAlloc(seg), nil
		}
	}
	if p.grow {
		// System V style: attach another segment, doubling until it fits.
		add := len(p.arena)
		if add < size {
			add = size
		}
		off := len(p.arena)
		p.arena = append(p.arena, make([]byte, add)...)
		seg := span{off, size}
		if add > size {
			p.insertFree(span{off + size, add - size})
		}
		return p.finishAlloc(seg), nil
	}
	return nil, ErrNoSpace
}

func (p *pool) finishAlloc(s span) *Segment {
	p.nextID++
	p.allocs[p.nextID] = s
	p.inUse += s.len
	return &Segment{ID: p.nextID, Bytes: p.arena[s.off : s.off+s.len : s.off+s.len], off: s.off}
}

// insertFree adds a span keeping the free list sorted and coalesced.
func (p *pool) insertFree(s span) {
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].off >= s.off })
	p.free = append(p.free, span{})
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(p.free) && p.free[i].off+p.free[i].len == p.free[i+1].off {
		p.free[i].len += p.free[i+1].len
		p.free = append(p.free[:i+1], p.free[i+2:]...)
	}
	if i > 0 && p.free[i-1].off+p.free[i-1].len == p.free[i].off {
		p.free[i-1].len += p.free[i].len
		p.free = append(p.free[:i], p.free[i+1:]...)
	}
}

// Free implements SharedMemory.
func (p *pool) Free(seg *Segment) error {
	if seg == nil {
		return ErrBadFree
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.released {
		return ErrReleased
	}
	s, ok := p.allocs[seg.ID]
	if !ok || s.off != seg.off {
		return ErrBadFree
	}
	delete(p.allocs, seg.ID)
	p.inUse -= s.len
	p.insertFree(s)
	return nil
}

// Release implements SharedMemory.
func (p *pool) Release() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.released {
		return ErrReleased
	}
	p.released = true
	p.arena = nil
	p.free = nil
	p.allocs = nil
	p.inUse = 0
	return nil
}

// InUse implements SharedMemory.
func (p *pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Capacity implements SharedMemory.
func (p *pool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.arena)
}

// Kind implements SharedMemory.
func (p *pool) Kind() string { return p.kind }

// NewEncore returns an Encore Multimax-style pool: the maximum size is fixed
// at creation and allocation beyond it fails with ErrNoSpace.
func NewEncore(maxBytes int) SharedMemory {
	return newPool(maxBytes, false, "encore")
}

// NewSystemV returns a System V-style pool: it starts at initialBytes and
// grows on demand.
func NewSystemV(initialBytes int) SharedMemory {
	return newPool(initialBytes, true, "sysv")
}

// New selects a derivation by platform architecture name, the run-time class
// selection of §3.1: known MPP/shared-bus architectures get the fixed pool,
// everything else the growable System V protocol.
func New(arch string, capacity int) SharedMemory {
	switch arch {
	case "multimax", "encore", "sequent":
		return NewEncore(capacity)
	default:
		return NewSystemV(capacity)
	}
}
