package sharedmem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestEncoreFixedCapacity(t *testing.T) {
	m := NewEncore(100)
	a, err := m.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(60); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-allocation: got %v want ErrNoSpace", err)
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(100); err != nil {
		t.Fatalf("full-pool alloc after free: %v", err)
	}
	if m.Capacity() != 100 {
		t.Fatalf("Capacity = %d", m.Capacity())
	}
}

func TestSystemVGrows(t *testing.T) {
	m := NewSystemV(64)
	if _, err := m.Alloc(256); err != nil {
		t.Fatalf("growable pool refused large alloc: %v", err)
	}
	if m.Capacity() < 256 {
		t.Fatalf("Capacity = %d, want >= 256", m.Capacity())
	}
}

func TestWritesVisibleThroughSegment(t *testing.T) {
	m := NewEncore(32)
	s, err := m.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Bytes, "memodata")
	if string(s.Bytes) != "memodata" {
		t.Fatal("segment did not retain write")
	}
}

func TestSegmentsDisjoint(t *testing.T) {
	m := NewEncore(64)
	a, _ := m.Alloc(16)
	b, _ := m.Alloc(16)
	for i := range a.Bytes {
		a.Bytes[i] = 0xAA
	}
	for _, bb := range b.Bytes {
		if bb == 0xAA {
			t.Fatal("allocations overlap")
		}
	}
}

func TestDoubleFree(t *testing.T) {
	m := NewEncore(32)
	s, _ := m.Alloc(8)
	if err := m.Free(s); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(s); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: got %v want ErrBadFree", err)
	}
	if err := m.Free(nil); !errors.Is(err, ErrBadFree) {
		t.Fatalf("nil free: got %v want ErrBadFree", err)
	}
}

func TestCoalescing(t *testing.T) {
	m := NewEncore(100)
	a, _ := m.Alloc(30)
	b, _ := m.Alloc(30)
	c, _ := m.Alloc(40)
	// Free in an order that requires both directions of coalescing.
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(100); err != nil {
		t.Fatalf("free list failed to coalesce: %v", err)
	}
}

func TestReleaseEndsPool(t *testing.T) {
	m := NewEncore(32)
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(1); !errors.Is(err, ErrReleased) {
		t.Fatalf("alloc after release: %v", err)
	}
	if err := m.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double release: %v", err)
	}
}

func TestInvalidSize(t *testing.T) {
	m := NewEncore(32)
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if _, err := m.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestInUseAccounting(t *testing.T) {
	m := NewSystemV(128)
	a, _ := m.Alloc(50)
	bseg, _ := m.Alloc(20)
	if m.InUse() != 70 {
		t.Fatalf("InUse = %d want 70", m.InUse())
	}
	m.Free(a)
	if m.InUse() != 20 {
		t.Fatalf("InUse = %d want 20", m.InUse())
	}
	m.Free(bseg)
	if m.InUse() != 0 {
		t.Fatalf("InUse = %d want 0", m.InUse())
	}
}

func TestNewSelectsDerivation(t *testing.T) {
	if k := New("multimax", 10).Kind(); k != "encore" {
		t.Fatalf("multimax → %s", k)
	}
	if k := New("sun4", 10).Kind(); k != "sysv" {
		t.Fatalf("sun4 → %s", k)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	m := NewSystemV(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s, err := m.Alloc(64)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				s.Bytes[0] = byte(i)
				if err := m.Free(s); err != nil {
					t.Errorf("free: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.InUse() != 0 {
		t.Fatalf("leak: InUse = %d", m.InUse())
	}
}

// Property: after any sequence of allocs followed by freeing them all, the
// pool can satisfy one allocation of its full original capacity (perfect
// coalescing, no fragmentation leaks).
func TestQuickCoalesceProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		const capacity = 1 << 12
		m := NewEncore(capacity)
		var segs []*Segment
		for _, sz := range sizes {
			s := int(sz%64) + 1
			seg, err := m.Alloc(s)
			if err != nil {
				break // pool full; fine
			}
			segs = append(segs, seg)
		}
		// Free odd indices first, then even, to stress coalescing in both
		// directions.
		for i := 1; i < len(segs); i += 2 {
			if m.Free(segs[i]) != nil {
				return false
			}
		}
		for i := 0; i < len(segs); i += 2 {
			if m.Free(segs[i]) != nil {
				return false
			}
		}
		_, err := m.Alloc(capacity)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
