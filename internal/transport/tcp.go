package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is the real-network transport: length-prefixed message framing over
// net.Conn. Addresses are standard "host:port" strings. Listen with port 0
// picks a free port (query it via Listener.Addr).
type TCP struct{}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// Dial implements Transport.
func (*TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

// Listen implements Transport.
func (*TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// tcpConn frames messages as 4-byte big-endian length + payload.
type tcpConn struct {
	nc      net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	readBuf [4]byte
}

func newTCPConn(nc net.Conn) *tcpConn {
	if t, ok := nc.(*net.TCPConn); ok {
		// Memos are small request/response messages; Nagle hurts.
		_ = t.SetNoDelay(true)
	}
	return &tcpConn{nc: nc}
}

func (c *tcpConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return ErrTooLarge
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.nc.Write(msg)
	return err
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if _, err := io.ReadFull(c.nc, c.readBuf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrClosed
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.readBuf[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.nc, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

func (c *tcpConn) Close() error       { return c.nc.Close() }
func (c *tcpConn) LocalAddr() string  { return c.nc.LocalAddr().String() }
func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
