package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/pool"
)

// TCP is the real-network transport: length-prefixed message framing over
// net.Conn. Addresses are standard "host:port" strings. Listen with port 0
// picks a free port (query it via Listener.Addr).
type TCP struct {
	// IdleTimeout, when positive, arms a read deadline on every Recv: a
	// connection that stays silent for the whole window fails with
	// ErrIdleTimeout instead of wedging its reader forever behind a dead
	// peer. The error propagates like any Recv failure — a Mux read pump
	// tears down and Mux.Run returns it. Zero keeps reads unbounded
	// (blocking folder waits can legitimately leave a connection quiet;
	// enable the timeout where traffic — or rpc pings — is guaranteed).
	IdleTimeout time.Duration
	// KeepAlivePeriod tunes TCP-level keep-alive probes on dialed and
	// accepted connections (0 = the kernel/runtime default).
	KeepAlivePeriod time.Duration
}

// ErrIdleTimeout reports a connection closed for exceeding TCP.IdleTimeout
// with no inbound traffic.
var ErrIdleTimeout = errors.New("transport: connection idle timeout")

// NewTCP returns the TCP transport with unbounded reads.
func NewTCP() *TCP { return &TCP{} }

// NewTCPIdle returns a TCP transport whose connections fail reads after
// idle silence — the hardened configuration for daemons.
func NewTCPIdle(idle time.Duration) *TCP { return &TCP{IdleTimeout: idle} }

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return t.newConn(nc), nil
}

// Listen implements Transport.
func (t *TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl, t: t}, nil
}

type tcpListener struct {
	nl net.Listener
	t  *TCP
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.newConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// tcpConn frames messages as 4-byte big-endian length + payload.
type tcpConn struct {
	nc      net.Conn
	idle    time.Duration
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	readBuf [4]byte
}

func (t *TCP) newConn(nc net.Conn) *tcpConn {
	if tc, ok := nc.(*net.TCPConn); ok {
		// Memos are small request/response messages; Nagle hurts.
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
		if t.KeepAlivePeriod > 0 {
			_ = tc.SetKeepAlivePeriod(t.KeepAlivePeriod)
		}
	}
	return &tcpConn{nc: nc, idle: t.IdleTimeout}
}

func (c *tcpConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return ErrTooLarge
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.nc.Write(msg)
	return err
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if err := c.readFullIdle(c.readBuf[:]); err != nil {
		return nil, c.recvErr(err)
	}
	n := binary.BigEndian.Uint32(c.readBuf[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	// Pooled, not a per-conn scratch buffer: the mux read pump delivers
	// received messages (aliased) to channels consumed asynchronously, so
	// the buffer's ownership must transfer out of the reader — the final
	// consumer recycles it with pool.Put.
	msg := pool.Get(int(n))[:n]
	if err := c.readFullIdle(msg); err != nil {
		pool.Put(msg)
		return nil, c.recvErr(err)
	}
	return msg, nil
}

// readFullIdle fills buf like io.ReadFull, but re-arms the idle deadline on
// every read that makes progress: the timeout measures silence, so a slow
// peer that keeps bytes trickling in is alive, while one that stalls for a
// whole window — mid-frame or between frames — trips the deadline.
func (c *tcpConn) readFullIdle(buf []byte) error {
	off := 0
	for off < len(buf) {
		if c.idle > 0 {
			if err := c.nc.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
				return err
			}
		}
		n, err := c.nc.Read(buf[off:])
		off += n
		if err != nil {
			if off == len(buf) {
				// The buffer filled; an EOF alongside the last bytes is
				// next Recv's problem (io.ReadFull semantics).
				return nil
			}
			if err == io.EOF && off > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// recvErr normalizes read failures: clean EOFs become ErrClosed, deadline
// expiries become ErrIdleTimeout (wrapped with the cause) so Mux.Run
// teardown reports why the connection died.
func (c *tcpConn) recvErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrClosed
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		_ = c.nc.Close()
		return fmt.Errorf("%w after %v: %v", ErrIdleTimeout, c.idle, err)
	}
	return err
}

func (c *tcpConn) Close() error       { return c.nc.Close() }
func (c *tcpConn) LocalAddr() string  { return c.nc.LocalAddr().String() }
func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
