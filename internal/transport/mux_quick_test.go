package transport

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: any sequence of messages of arbitrary sizes survives
// fragmentation at any MTU, in order, per channel.
func TestQuickMuxFragmentationRoundTrip(t *testing.T) {
	f := func(sizes []uint16, mtuSeed uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		mtu := int(mtuSeed)%512 + 1 // 1..512
		a, b := Pipe("a", "b")
		ma := NewMux(a, mtu)
		mb := NewMux(b, mtu)
		go ma.Run()
		go mb.Run()
		defer ma.Close()
		defer mb.Close()

		chA := ma.Channel(1)
		chB := mb.Channel(1)
		done := make(chan bool, 1)
		go func() {
			for i, sz := range sizes {
				msg, err := chB.Recv()
				if err != nil {
					done <- false
					return
				}
				want := pattern(int(sz)%4096, byte(i))
				if !bytes.Equal(msg, want) {
					done <- false
					return
				}
			}
			done <- true
		}()
		for i, sz := range sizes {
			if err := chA.Send(pattern(int(sz)%4096, byte(i))); err != nil {
				return false
			}
		}
		return <-done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// pattern builds a deterministic payload of length n seeded by s.
func pattern(n int, s byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*7 + s
	}
	return out
}

// Property: the sim network model's delay is monotone in link cost and in
// message size (with a bandwidth term).
func TestQuickNetModelMonotone(t *testing.T) {
	f := func(c1, c2 uint8, s1, s2 uint16) bool {
		lo, hi := float64(c1%50)+1, float64(c2%50)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		m := NewNetModel(1000) // 1µs base
		m.BytesPerLatency = 64
		m.SetLink("a", "b", lo)
		m.SetLink("a", "c", hi)
		small, big := int(s1)%1024, int(s2)%1024
		if small > big {
			small, big = big, small
		}
		if m.Delay("a", "b", small) > m.Delay("a", "c", small) {
			return false // cost monotonicity
		}
		if m.Delay("a", "b", small) > m.Delay("a", "b", big) {
			return false // size monotonicity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
