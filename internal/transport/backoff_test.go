package transport

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name    string
		bo      Backoff
		attempt int
		want    time.Duration
	}{
		{"defaults first", Backoff{}, 0, DefaultBackoffMin},
		{"defaults second", Backoff{}, 1, 2 * DefaultBackoffMin},
		{"defaults capped", Backoff{}, 100, DefaultBackoffMax},
		{"explicit first", Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 0, 10 * time.Millisecond},
		{"explicit doubles", Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 2, 40 * time.Millisecond},
		{"explicit reaches cap", Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 3, 80 * time.Millisecond},
		{"explicit stays capped", Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 50, 80 * time.Millisecond},
		{"factor 3", Backoff{Min: time.Millisecond, Max: time.Minute, Factor: 3}, 2, 9 * time.Millisecond},
		{"max below min", Backoff{Min: 50 * time.Millisecond, Max: time.Millisecond}, 5, 50 * time.Millisecond},
		{"negative attempt", Backoff{Min: 10 * time.Millisecond}, -3, 10 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.bo.Base(tc.attempt); got != tc.want {
				t.Fatalf("Base(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	cases := []struct {
		name string
		bo   Backoff
	}{
		{"default jitter", Backoff{Min: 40 * time.Millisecond, Max: time.Second}},
		{"half jitter", Backoff{Min: 40 * time.Millisecond, Max: time.Second, Jitter: 0.5}},
		{"full jitter", Backoff{Min: 40 * time.Millisecond, Max: time.Second, Jitter: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for attempt := 0; attempt < 6; attempt++ {
				base := tc.bo.Base(attempt)
				lo := time.Duration(float64(base) * (1 - tc.bo.withDefaults().Jitter))
				// The extremes of the rnd range stay within bounds...
				for _, r := range []float64{0, 0.5, 0.999999} {
					d := tc.bo.Delay(attempt, func() float64 { return r })
					if d < lo || d > base {
						t.Fatalf("attempt %d rnd %v: delay %v outside [%v, %v]", attempt, r, d, lo, base)
					}
				}
				// ...and so does the real randomness.
				for i := 0; i < 100; i++ {
					if d := tc.bo.Delay(attempt, nil); d < lo || d > base {
						t.Fatalf("attempt %d: random delay %v outside [%v, %v]", attempt, d, lo, base)
					}
				}
			}
		})
	}
}

// scriptedDial fails a scripted number of times before each success and
// records the time of every attempt.
type scriptedDial struct {
	failures int // fail this many dials, then succeed until reset
	times    []time.Time
}

func (s *scriptedDial) dial() (Conn, error) {
	s.times = append(s.times, time.Now())
	if s.failures > 0 {
		s.failures--
		return nil, errors.New("scripted dial failure")
	}
	a, _ := Pipe("a", "b")
	return a, nil
}

func TestRedialerBackoffPacingAndResetOnSuccess(t *testing.T) {
	const min = 30 * time.Millisecond
	sd := &scriptedDial{failures: 3}
	r := NewRedialer(sd.dial, Backoff{Min: min, Max: time.Second, Jitter: 0.01})
	defer r.Close()

	// Three failing Gets: the first dial is immediate, the next waits
	// ≥ Min·(1-j), the next ≥ 2·Min·(1-j).
	for i := 0; i < 3; i++ {
		if _, _, err := r.Get(nil); err == nil {
			t.Fatalf("Get %d succeeded with dial scripted to fail", i)
		}
		if got := r.Attempt(); got != i+1 {
			t.Fatalf("after failure %d: Attempt() = %d, want %d", i, got, i+1)
		}
	}
	c, epoch, err := r.Get(nil)
	if err != nil || c == nil {
		t.Fatalf("Get after failures: %v", err)
	}
	if r.Attempt() != 0 {
		t.Fatalf("Attempt() = %d after success, want 0 (reset-on-success)", r.Attempt())
	}
	if len(sd.times) != 4 {
		t.Fatalf("%d dial attempts, want 4", len(sd.times))
	}
	// Lower bounds only: upper bounds would flake under scheduler noise.
	for i, wantGap := range []time.Duration{min, 2 * min} {
		gap := sd.times[i+2].Sub(sd.times[i+1])
		if lo := time.Duration(float64(wantGap) * 0.99); gap < lo {
			t.Fatalf("gap %d = %v, want ≥ %v (backoff not applied)", i+1, gap, lo)
		}
	}

	// After a success, the schedule restarts from Min, not where it left
	// off: fault the conn, fail once, and check the next wait is ~Min.
	sd.failures = 1
	r.Fault(epoch)
	start := time.Now()
	if _, _, err := r.Get(nil); err == nil {
		t.Fatal("Get succeeded with dial scripted to fail")
	}
	if _, _, err := r.Get(nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed >= 4*min {
		t.Fatalf("post-success retry waited %v; schedule did not reset to Min=%v", elapsed, min)
	}
}

func TestRedialerSingleFlightAndFaultEpochs(t *testing.T) {
	dials := 0
	slow := make(chan struct{})
	dial := func() (Conn, error) {
		dials++
		<-slow
		a, _ := Pipe("a", "b")
		return a, nil
	}
	r := NewRedialer(dial, Backoff{Min: time.Millisecond})
	defer r.Close()

	type res struct {
		c     Conn
		epoch uint64
		err   error
	}
	results := make(chan res, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, ep, err := r.Get(nil)
			results <- res{c, ep, err}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let all four join the dial
	close(slow)
	first := <-results
	if first.err != nil {
		t.Fatal(first.err)
	}
	for i := 0; i < 3; i++ {
		got := <-results
		if got.err != nil || got.c != first.c || got.epoch != first.epoch {
			t.Fatalf("waiter got %+v, dialer got %+v", got, first)
		}
	}
	if dials != 1 {
		t.Fatalf("%d dials for 4 concurrent Gets, want 1 (single flight)", dials)
	}

	// A stale Fault (old epoch) must not kill the current conn.
	r.Fault(first.epoch - 1)
	if c, ep, err := r.Get(nil); err != nil || c != first.c || ep != first.epoch {
		t.Fatalf("stale Fault replaced the conn: %v %v %v", c, ep, err)
	}
	// A current Fault closes it and the next Get re-dials.
	r.Fault(first.epoch)
	if err := first.c.Send([]byte("x")); err == nil {
		t.Fatal("conn still usable after Fault")
	}
	c2, ep2, err := r.Get(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == first.c || ep2 != first.epoch+1 {
		t.Fatalf("Get after Fault: conn %v epoch %d, want fresh conn epoch %d", c2, ep2, first.epoch+1)
	}
	if dials != 2 {
		t.Fatalf("%d dials, want 2", dials)
	}
}

func TestRedialerGiveupDuringBackoff(t *testing.T) {
	sd := &scriptedDial{failures: 100}
	r := NewRedialer(sd.dial, Backoff{Min: 10 * time.Second}) // painful wait
	defer r.Close()
	if _, _, err := r.Get(nil); err == nil {
		t.Fatal("first Get succeeded")
	}
	giveup := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Get(giveup)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(giveup)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Get succeeded after giveup")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get ignored giveup and slept out the backoff")
	}
}

func TestRedialerClosedGetFails(t *testing.T) {
	sd := &scriptedDial{}
	r := NewRedialer(sd.dial, Backoff{})
	c, _, err := r.Get(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := c.Send([]byte("x")); err == nil {
		t.Fatal("conn usable after Redialer.Close")
	}
	if _, _, err := r.Get(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed redialer: %v, want ErrClosed", err)
	}
}
