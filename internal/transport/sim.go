package transport

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
)

// preciseSleep waits d with sub-millisecond accuracy. The kernel timer wheel
// rounds short sleeps up to ~1ms, which would multiply every simulated link
// delay; instead we sleep coarsely for the bulk and spin (yielding) for the
// tail. Link delays are the simulator's unit of realism, so accuracy is
// worth the spin.
func preciseSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if coarse := d - 1500*time.Microsecond; coarse > 0 {
		time.Sleep(coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// NetModel describes the simulated network: per-link latency multipliers
// keyed by (source host, destination host). Links are those declared in the
// ADF PPC section; cost scales the base latency. The model also counts
// per-link traffic so experiments can verify where messages actually flowed.
type NetModel struct {
	// BaseLatency is the one-way delay of a cost-1 link.
	BaseLatency time.Duration
	// BytesPerLatency models bandwidth: each full multiple of this size
	// adds one BaseLatency of serialization delay. Zero disables the term.
	BytesPerLatency int

	mu    sync.RWMutex
	costs map[linkKey]float64
	count map[linkKey]*linkCounter
}

type linkKey struct{ src, dst string }

type linkCounter struct {
	msgs  atomic.Int64
	bytes atomic.Int64
}

// NewNetModel returns a model with the given base one-way latency.
func NewNetModel(base time.Duration) *NetModel {
	return &NetModel{
		BaseLatency: base,
		costs:       make(map[linkKey]float64),
		count:       make(map[linkKey]*linkCounter),
	}
}

// SetLink declares a directed link with a cost multiplier. Declare both
// directions for the ADF's duplex ("<->") connections.
func (m *NetModel) SetLink(src, dst string, cost float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.costs[linkKey{src, dst}] = cost
	if _, ok := m.count[linkKey{src, dst}]; !ok {
		m.count[linkKey{src, dst}] = &linkCounter{}
	}
}

// LinkCost reports the cost of the directed link, and whether it exists.
// Local delivery (src == dst) always exists with cost 0.
func (m *NetModel) LinkCost(src, dst string) (float64, bool) {
	if src == dst {
		return 0, true
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.costs[linkKey{src, dst}]
	return c, ok
}

// Delay computes the one-way delay for size bytes over the directed link.
func (m *NetModel) Delay(src, dst string, size int) time.Duration {
	cost, ok := m.LinkCost(src, dst)
	if !ok || cost == 0 {
		return 0
	}
	d := time.Duration(float64(m.BaseLatency) * cost)
	if m.BytesPerLatency > 0 {
		d += time.Duration(size/m.BytesPerLatency) * time.Duration(float64(m.BaseLatency)*cost)
	}
	return d
}

// Record notes one message on the directed link.
func (m *NetModel) Record(src, dst string, size int) {
	m.mu.RLock()
	c := m.count[linkKey{src, dst}]
	m.mu.RUnlock()
	if c == nil {
		m.mu.Lock()
		c = m.count[linkKey{src, dst}]
		if c == nil {
			c = &linkCounter{}
			m.count[linkKey{src, dst}] = c
		}
		m.mu.Unlock()
	}
	c.msgs.Add(1)
	c.bytes.Add(int64(size))
}

// LinkTraffic reports messages and bytes recorded on the directed link.
func (m *NetModel) LinkTraffic(src, dst string) (msgs, bytes int64) {
	m.mu.RLock()
	c := m.count[linkKey{src, dst}]
	m.mu.RUnlock()
	if c == nil {
		return 0, 0
	}
	return c.msgs.Load(), c.bytes.Load()
}

// ResetTraffic zeroes all per-link counters.
func (m *NetModel) ResetTraffic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.count {
		c.msgs.Store(0)
		c.bytes.Store(0)
	}
}

// Sim decorates an in-process transport with the network model. Addresses
// must be of the form "host/service"; the host part selects the link. A dial
// from listener-less client code specifies its own host via DialFrom, or
// embeds it in the address as "host!target" (used by the cluster).
type Sim struct {
	inner *InProc
	model *NetModel
}

// NewSim returns a simulated transport over a fresh in-process namespace.
func NewSim(model *NetModel) *Sim {
	return &Sim{inner: NewInProc(), model: model}
}

// Model exposes the network model (for traffic assertions).
func (s *Sim) Model() *NetModel { return s.model }

// Name implements Transport.
func (s *Sim) Name() string { return "sim" }

// HostOf extracts the host part of a sim address ("host/service" → "host").
func HostOf(addr string) string {
	if i := strings.IndexByte(addr, '/'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Listen implements Transport.
func (s *Sim) Listen(addr string) (Listener, error) {
	l, err := s.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &simListener{Listener: l, sim: s}, nil
}

// Dial implements Transport. The caller's host is taken from the target
// address's host part, i.e. a same-host dial; use DialFrom for remote dials.
func (s *Sim) Dial(addr string) (Conn, error) {
	return s.DialFrom(HostOf(addr), addr)
}

// DialFrom connects to addr with the caller located on srcHost, so link
// delays apply in both directions.
func (s *Sim) DialFrom(srcHost, addr string) (Conn, error) {
	dstHost := HostOf(addr)
	if srcHost != dstHost {
		if _, ok := s.model.LinkCost(srcHost, dstHost); !ok {
			return nil, ErrNoRoute(srcHost + "->" + dstHost)
		}
	}
	c, err := s.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &simConn{Conn: c, sim: s, localHost: srcHost, remoteHost: dstHost}, nil
}

// ErrNoRoute reports a dial between hosts with no declared link. The paper's
// ADF "allows the user to define and restrict communication between hosts";
// dialing outside the logical topology is an error, not a fallback.
type ErrNoRoute string

func (e ErrNoRoute) Error() string { return "transport: no link " + string(e) }

type simListener struct {
	Listener
	sim *Sim
}

func (l *simListener) Accept() (Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	local := HostOf(l.Addr())
	// The remote host is embedded by simConn's handshake-free design: the
	// dialer applies delay on sends in both directions via its own wrapper,
	// so the accept side wraps with hosts reversed but unknown remote. We
	// recover the remote host lazily from the first message envelope.
	return &simServerConn{Conn: c, sim: l.sim, localHost: local}, nil
}

// envelope prefix: the dialer's host name, so the server side can model
// return-path delay. Format: length byte + host + payload.
//
// sendEnveloped builds the envelope in a pooled buffer and recycles it the
// moment the inner Send returns (the inproc substrate's handoff copy is
// synchronous), so stamping the host adds no per-message garbage.
func sendEnveloped(inner Conn, host string, msg []byte) error {
	buf := pool.Get(1 + len(host) + len(msg))
	buf = append(buf, byte(len(host)))
	buf = append(buf, host...)
	buf = append(buf, msg...)
	err := inner.Send(buf)
	pool.Put(buf)
	return err
}

func unpackEnvelope(buf []byte) (host string, msg []byte) {
	if len(buf) == 0 {
		return "", buf
	}
	n := int(buf[0])
	if 1+n > len(buf) {
		return "", buf
	}
	return string(buf[1 : 1+n]), buf[1+n:]
}

// simConn is the dialer-side endpoint.
type simConn struct {
	Conn
	sim        *Sim
	localHost  string
	remoteHost string
}

func (c *simConn) Send(msg []byte) error {
	preciseSleep(c.sim.model.Delay(c.localHost, c.remoteHost, len(msg)))
	c.sim.model.Record(c.localHost, c.remoteHost, len(msg))
	return sendEnveloped(c.Conn, c.localHost, msg)
}

func (c *simConn) Recv() ([]byte, error) {
	buf, err := c.Conn.Recv()
	if err != nil {
		return nil, err
	}
	_, msg := unpackEnvelope(buf)
	return msg, nil
}

func (c *simConn) LocalAddr() string  { return c.localHost }
func (c *simConn) RemoteAddr() string { return c.remoteHost }

// simServerConn is the accept-side endpoint; it learns the peer host from
// message envelopes and applies return-path delay on sends.
type simServerConn struct {
	Conn
	sim       *Sim
	localHost string
	mu        sync.Mutex
	peerHost  string
}

func (c *simServerConn) Recv() ([]byte, error) {
	buf, err := c.Conn.Recv()
	if err != nil {
		return nil, err
	}
	host, msg := unpackEnvelope(buf)
	if host != "" {
		c.mu.Lock()
		c.peerHost = host
		c.mu.Unlock()
	}
	return msg, nil
}

func (c *simServerConn) Send(msg []byte) error {
	c.mu.Lock()
	peer := c.peerHost
	c.mu.Unlock()
	if peer != "" {
		preciseSleep(c.sim.model.Delay(c.localHost, peer, len(msg)))
		c.sim.model.Record(c.localHost, peer, len(msg))
	}
	return sendEnveloped(c.Conn, c.localHost, msg)
}

func (c *simServerConn) LocalAddr() string { return c.localHost }

func (c *simServerConn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.peerHost != "" {
		return c.peerHost
	}
	return c.Conn.RemoteAddr()
}
