// Package transport implements D-Memo's network-communication foundation
// (paper §3.1.1).
//
// The abstraction is message-oriented: a Conn carries whole memos (framed
// byte slices), not byte streams. Three derivations are provided, selected at
// run time exactly as the paper's virtual functions select platform code:
//
//   - "inproc": goroutine/channel transport for processes in one OS process.
//   - "tcp": length-prefixed framing over net.Conn for real deployments.
//   - "sim": an in-process transport that imposes per-link latency and
//     bandwidth costs derived from the ADF topology, so a simulated cluster
//     exhibits the communication behaviour the paper's placement policy
//     reacts to.
//
// The package also supplies the paper's "derived transport layer" for hosts
// without one (the INMOS Transputer discussion): a Mux that provides virtual
// connections and packet fragmentation over any single Conn, letting a long
// message be amortized instead of blocking the channel (see mux.go).
package transport

import (
	"errors"
	"sync/atomic"
)

// Common errors.
var (
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrTooLarge reports a message exceeding the frame limit.
	ErrTooLarge = errors.New("transport: message exceeds frame limit")
	// ErrNoListener reports a dial to an address nobody listens on.
	ErrNoListener = errors.New("transport: no listener at address")
)

// MaxFrame is the largest single framed message accepted by any transport.
// The Mux fragments larger payloads.
const MaxFrame = 16 << 20

// Conn is a bidirectional message connection.
type Conn interface {
	// Send transmits one message. Safe for concurrent use. Implementations
	// must not retain msg after returning: senders on the hot path recycle
	// their buffers (internal/pool) the moment Send returns.
	Send(msg []byte) error
	// Recv blocks for the next message. Safe for one concurrent reader.
	// Ownership of the returned buffer transfers to the caller; the final
	// consumer may recycle it with pool.Put (buffers originate from
	// internal/pool on every built-in transport).
	Recv() ([]byte, error)
	// Close releases the connection; pending and future Recv calls fail
	// with ErrClosed.
	Close() error
	// LocalAddr and RemoteAddr report the endpoint addresses.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops listening.
	Close() error
	// Addr reports the bound address.
	Addr() string
}

// Transport is the abstract factory for connections — the paper's transport
// class, able to "simultaneously interact with different protocols in an
// application".
type Transport interface {
	// Dial connects to addr.
	Dial(addr string) (Conn, error)
	// Listen binds addr.
	Listen(addr string) (Listener, error)
	// Name identifies the protocol ("inproc", "tcp", "sim").
	Name() string
}

// Stats counts transport activity. The Broadcasts counter exists to prove
// the §5 claim "No broadcasting is done by the system": nothing in this
// repository increments it, and tests assert it stays zero.
type Stats struct {
	MessagesSent  atomic.Int64
	BytesSent     atomic.Int64
	MessagesRecvd atomic.Int64
	BytesRecvd    atomic.Int64
	Dials         atomic.Int64
	Accepts       atomic.Int64
	Broadcasts    atomic.Int64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	MessagesSent  int64
	BytesSent     int64
	MessagesRecvd int64
	BytesRecvd    int64
	Dials         int64
	Accepts       int64
	Broadcasts    int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		MessagesSent:  s.MessagesSent.Load(),
		BytesSent:     s.BytesSent.Load(),
		MessagesRecvd: s.MessagesRecvd.Load(),
		BytesRecvd:    s.BytesRecvd.Load(),
		Dials:         s.Dials.Load(),
		Accepts:       s.Accepts.Load(),
		Broadcasts:    s.Broadcasts.Load(),
	}
}

// statsConn decorates a Conn with counting.
type statsConn struct {
	Conn
	stats *Stats
}

func (c *statsConn) Send(msg []byte) error {
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	c.stats.MessagesSent.Add(1)
	c.stats.BytesSent.Add(int64(len(msg)))
	return nil
}

func (c *statsConn) Recv() ([]byte, error) {
	msg, err := c.Conn.Recv()
	if err != nil {
		return nil, err
	}
	c.stats.MessagesRecvd.Add(1)
	c.stats.BytesRecvd.Add(int64(len(msg)))
	return msg, nil
}

// WithStats decorates a transport so every connection updates stats.
func WithStats(t Transport, stats *Stats) Transport {
	return &statsTransport{inner: t, stats: stats}
}

type statsTransport struct {
	inner Transport
	stats *Stats
}

func (t *statsTransport) Name() string { return t.inner.Name() }

func (t *statsTransport) Dial(addr string) (Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	t.stats.Dials.Add(1)
	return &statsConn{Conn: c, stats: t.stats}, nil
}

func (t *statsTransport) Listen(addr string) (Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &statsListener{Listener: l, stats: t.stats}, nil
}

type statsListener struct {
	Listener
	stats *Stats
}

func (l *statsListener) Accept() (Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.stats.Accepts.Add(1)
	return &statsConn{Conn: c, stats: l.stats}, nil
}
