package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// exerciseTransport runs the generic Conn/Listener contract against any
// transport. addr must be dialable after Listen.
func exerciseTransport(t *testing.T, tr Transport, addr string) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	serverDone := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer c.Close()
		for {
			msg, err := c.Recv()
			if err != nil {
				serverDone <- nil
				return
			}
			if err := c.Send(append([]byte("echo:"), msg...)); err != nil {
				serverDone <- err
				return
			}
		}
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("msg-%d", i)
		if err := c.Send([]byte(want)); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(got) != "echo:"+want {
			t.Fatalf("got %q want %q", got, "echo:"+want)
		}
	}
	c.Close()
	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not observe close")
	}
}

func TestInProcContract(t *testing.T) {
	exerciseTransport(t, NewInProc(), "hostA/memo")
}

func TestTCPContract(t *testing.T) {
	exerciseTransport(t, NewTCP(), "127.0.0.1:0")
}

func TestSimContract(t *testing.T) {
	m := NewNetModel(0)
	exerciseTransport(t, NewSim(m), "hostA/memo")
}

func TestInProcDialNoListener(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Dial("nowhere/x"); !errors.Is(err, ErrNoListener) {
		t.Fatalf("got %v want ErrNoListener", err)
	}
}

func TestInProcAddrInUse(t *testing.T) {
	tr := NewInProc()
	l, err := tr.Listen("a/x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := tr.Listen("a/x"); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

func TestInProcListenerCloseFreesAddr(t *testing.T) {
	tr := NewInProc()
	l, _ := tr.Listen("a/x")
	l.Close()
	if _, err := tr.Listen("a/x"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestInProcSendAfterPeerClose(t *testing.T) {
	a, b := Pipe("a", "b")
	b.Close()
	if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed peer: %v", err)
	}
}

func TestInProcRecvDrainsAfterClose(t *testing.T) {
	a, b := Pipe("a", "b")
	if err := a.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv after peer close should drain: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("got %q", got)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Recv: %v", err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	a, b := Pipe("a", "b")
	buf := []byte("original")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	got, _ := b.Recv()
	if string(got) != "original" {
		t.Fatalf("message aliased sender buffer: %q", got)
	}
}

func TestMessageTooLarge(t *testing.T) {
	a, _ := Pipe("a", "b")
	if err := a.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized send: %v", err)
	}
}

func TestSimDelayScalesWithCost(t *testing.T) {
	model := NewNetModel(2 * time.Millisecond)
	model.SetLink("near", "svr", 1)
	model.SetLink("far", "svr", 5)
	dNear := model.Delay("near", "svr", 10)
	dFar := model.Delay("far", "svr", 10)
	if dFar <= dNear {
		t.Fatalf("far link not slower: near=%v far=%v", dNear, dFar)
	}
	if dNear != 2*time.Millisecond || dFar != 10*time.Millisecond {
		t.Fatalf("delays: near=%v far=%v", dNear, dFar)
	}
	if d := model.Delay("svr", "svr", 10); d != 0 {
		t.Fatalf("local delay = %v", d)
	}
}

func TestSimBandwidthTerm(t *testing.T) {
	model := NewNetModel(time.Millisecond)
	model.BytesPerLatency = 1000
	model.SetLink("a", "b", 1)
	small := model.Delay("a", "b", 10)
	big := model.Delay("a", "b", 5000)
	if big <= small {
		t.Fatalf("bandwidth term missing: small=%v big=%v", small, big)
	}
}

func TestSimRefusesOffTopologyDial(t *testing.T) {
	model := NewNetModel(0)
	model.SetLink("a", "b", 1)
	sim := NewSim(model)
	l, err := sim.Listen("b/memo")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := sim.DialFrom("a", "b/memo"); err != nil {
		t.Fatalf("on-topology dial failed: %v", err)
	}
	var noRoute ErrNoRoute
	if _, err := sim.DialFrom("c", "b/memo"); !errors.As(err, &noRoute) {
		t.Fatalf("off-topology dial: %v", err)
	}
}

func TestSimRecordsTraffic(t *testing.T) {
	model := NewNetModel(0)
	model.SetLink("a", "b", 1)
	model.SetLink("b", "a", 1)
	sim := NewSim(model)
	l, _ := sim.Listen("b/echo")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		msg, _ := c.Recv()
		c.Send(msg)
	}()
	c, err := sim.DialFrom("a", "b/echo")
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte("hello"))
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	fwd, _ := model.LinkTraffic("a", "b")
	rev, _ := model.LinkTraffic("b", "a")
	if fwd != 1 || rev != 1 {
		t.Fatalf("traffic fwd=%d rev=%d want 1/1", fwd, rev)
	}
	model.ResetTraffic()
	if fwd, _ := model.LinkTraffic("a", "b"); fwd != 0 {
		t.Fatalf("reset did not clear: %d", fwd)
	}
}

func TestSimRoundTripLatency(t *testing.T) {
	model := NewNetModel(5 * time.Millisecond)
	model.SetLink("a", "b", 1)
	model.SetLink("b", "a", 1)
	sim := NewSim(model)
	l, _ := sim.Listen("b/echo")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			c.Send(msg)
		}
	}()
	c, err := sim.DialFrom("a", "b/echo")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Send([]byte("ping"))
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 10*time.Millisecond {
		t.Fatalf("round trip %v, want >= 10ms (two 5ms links)", rtt)
	}
}

func TestStatsCounting(t *testing.T) {
	var stats Stats
	tr := WithStats(NewInProc(), &stats)
	l, _ := tr.Listen("a/x")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		msg, _ := c.Recv()
		c.Send(msg)
	}()
	c, err := tr.Dial("a/x")
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte("12345"))
	c.Recv()
	s := stats.Snapshot()
	if s.Dials != 1 || s.Accepts != 1 {
		t.Fatalf("dials=%d accepts=%d", s.Dials, s.Accepts)
	}
	if s.MessagesSent != 2 || s.BytesSent != 10 {
		t.Fatalf("sent=%d bytes=%d want 2/10", s.MessagesSent, s.BytesSent)
	}
	if s.Broadcasts != 0 {
		t.Fatalf("broadcasts=%d — the system must never broadcast", s.Broadcasts)
	}
}

func muxPair(t *testing.T, mtu int) (*Mux, *Mux) {
	t.Helper()
	a, b := Pipe("a", "b")
	ma := NewMux(a, mtu)
	mb := NewMux(b, mtu)
	go ma.Run()
	go mb.Run()
	return ma, mb
}

func TestMuxBasicExchange(t *testing.T) {
	ma, mb := muxPair(t, 4096)
	defer ma.Close()
	defer mb.Close()
	chA := ma.Channel(7)
	chB := mb.Channel(7)
	if err := chA.Send([]byte("over virtual connection 7")); err != nil {
		t.Fatal(err)
	}
	got, err := chB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over virtual connection 7" {
		t.Fatalf("got %q", got)
	}
}

func TestMuxFragmentation(t *testing.T) {
	ma, mb := muxPair(t, 16) // tiny MTU forces many fragments
	defer ma.Close()
	defer mb.Close()
	msg := bytes.Repeat([]byte("0123456789"), 100) // 1000 bytes, ~63 fragments
	chA := ma.Channel(1)
	chB := mb.Channel(1)
	if err := chA.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := chB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("fragmented message corrupted: len=%d want %d", len(got), len(msg))
	}
}

func TestMuxEmptyMessage(t *testing.T) {
	ma, mb := muxPair(t, 64)
	defer ma.Close()
	defer mb.Close()
	if err := ma.Channel(2).Send(nil); err != nil {
		t.Fatal(err)
	}
	got, err := mb.Channel(2).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestMuxChannelsIndependent(t *testing.T) {
	ma, mb := muxPair(t, 4096)
	defer ma.Close()
	defer mb.Close()
	const chans = 8
	const msgs = 50
	var wg sync.WaitGroup
	for i := 0; i < chans; i++ {
		wg.Add(2)
		id := uint64(i)
		go func() {
			defer wg.Done()
			ch := ma.Channel(id)
			for j := 0; j < msgs; j++ {
				if err := ch.Send([]byte(fmt.Sprintf("%d:%d", id, j))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			ch := mb.Channel(id)
			for j := 0; j < msgs; j++ {
				got, err := ch.Recv()
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				want := fmt.Sprintf("%d:%d", id, j)
				if string(got) != want {
					t.Errorf("channel %d: got %q want %q (cross-channel leak?)", id, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMuxInterleavingUnderFragmentation(t *testing.T) {
	// A huge message on channel 1 must not block channel 2's small message
	// from being sent between fragments (the Transputer complaint).
	ma, mb := muxPair(t, 8)
	defer ma.Close()
	defer mb.Close()
	big := bytes.Repeat([]byte("x"), 8*200)
	done := make(chan struct{})
	go func() {
		ma.Channel(1).Send(big)
		close(done)
	}()
	if err := ma.Channel(2).Send([]byte("quick")); err != nil {
		t.Fatal(err)
	}
	got, err := mb.Channel(2).Recv()
	if err != nil || string(got) != "quick" {
		t.Fatalf("small message: %q %v", got, err)
	}
	gotBig, err := mb.Channel(1).Recv()
	if err != nil || !bytes.Equal(gotBig, big) {
		t.Fatalf("big message corrupted")
	}
	<-done
}

func TestMuxAccept(t *testing.T) {
	ma, mb := muxPair(t, 4096)
	defer ma.Close()
	defer mb.Close()
	go ma.Channel(42).Send([]byte("hi"))
	ch, err := mb.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if ch.ID() != 42 {
		t.Fatalf("accepted channel %d want 42", ch.ID())
	}
	got, _ := ch.Recv()
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
}

func TestMuxChannelClose(t *testing.T) {
	ma, mb := muxPair(t, 4096)
	defer ma.Close()
	defer mb.Close()
	chA := ma.Channel(3)
	chB := mb.Channel(3)
	chA.Send([]byte("bye"))
	chA.Close()
	if got, err := chB.Recv(); err != nil || string(got) != "bye" {
		t.Fatalf("drain before close: %q %v", got, err)
	}
	if _, err := chB.Recv(); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("recv on closed channel: %v", err)
	}
	if err := chA.Send([]byte("after")); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("send on closed channel: %v", err)
	}
}

func TestMuxTeardownOnConnClose(t *testing.T) {
	a, b := Pipe("a", "b")
	ma := NewMux(a, 64)
	mb := NewMux(b, 64)
	go ma.Run()
	runDone := make(chan error, 1)
	go func() { runDone <- mb.Run() }()
	ch := mb.Channel(1)
	ma.Close()
	select {
	case <-runDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after peer close")
	}
	if _, err := ch.Recv(); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("channel recv after teardown: %v", err)
	}
}

func TestTCPRecvRejectsOversizedHeader(t *testing.T) {
	tr := NewTCP()
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Recv()
	}()
	// Raw dial, hostile frame length.
	nc, err := NewTCP().Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A frame claiming MaxFrame+1 bytes must be rejected by the reader; we
	// can only verify our client-side check here.
	if err := nc.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized tcp send: %v", err)
	}
}

func BenchmarkInProcRoundTrip(b *testing.B) {
	tr := NewInProc()
	l, _ := tr.Listen("a/bench")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			c.Send(msg)
		}
	}()
	c, _ := tr.Dial("a/bench")
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(msg)
		c.Recv()
	}
}

func BenchmarkMuxThroughput(b *testing.B) {
	x, y := Pipe("a", "b")
	ma := NewMux(x, 4096)
	mb := NewMux(y, 4096)
	go ma.Run()
	go mb.Run()
	defer ma.Close()
	defer mb.Close()
	chA := ma.Channel(1)
	chB := mb.Channel(1)
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chA.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := chB.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMuxMTU is the fragmentation ablation: the same 8 KiB message at
// different MTUs shows the per-packet overhead the derived transport layer
// trades for interleaving (§3.1.1's Transputer discussion).
func BenchmarkMuxMTU(b *testing.B) {
	for _, mtu := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("mtu-%d", mtu), func(b *testing.B) {
			x, y := Pipe("a", "b")
			ma := NewMux(x, mtu)
			mb := NewMux(y, mtu)
			go ma.Run()
			go mb.Run()
			defer ma.Close()
			defer mb.Close()
			chA := ma.Channel(1)
			chB := mb.Channel(1)
			msg := make([]byte, 8192)
			b.SetBytes(8192)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := chA.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := chB.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
