package transport

import (
	"errors"
	"testing"
	"time"
)

// flakyPair dials one conn through a Flaky-wrapped in-process transport and
// returns both wrapped endpoints.
func flakyPair(t *testing.T) (*Flaky, Conn, Conn) {
	t.Helper()
	f := NewFlaky(NewInProc())
	l, err := f.Listen("b/svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialed, err := f.DialFrom("a", "b/svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	return f, dialed, srv
}

func TestFlakyHealthyPassThrough(t *testing.T) {
	_, cl, srv := flakyPair(t)
	if err := cl.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := srv.Recv()
	if err != nil || string(msg) != "ping" {
		t.Fatalf("recv %q %v", msg, err)
	}
	if err := srv.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if msg, err := cl.Recv(); err != nil || string(msg) != "pong" {
		t.Fatalf("recv %q %v", msg, err)
	}
}

func TestFlakySeverKillsConnsAndDials(t *testing.T) {
	f, cl, srv := flakyPair(t)
	recvErr := make(chan error, 1)
	go func() {
		_, err := srv.Recv()
		recvErr <- err
	}()

	f.Sever("a", "b")
	if err := cl.Send([]byte("x")); err == nil {
		t.Fatal("send succeeded on a severed link")
	}
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("blocked Recv returned nil after sever")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Recv survived the sever")
	}
	if _, err := f.DialFrom("a", "b/svc"); !errors.Is(err, ErrSevered) {
		t.Fatalf("dial on severed link: %v, want ErrSevered", err)
	}
	// An unrelated pair still dials (sever is per-link).
	if _, err := f.DialFrom("c", "b/svc"); err != nil {
		t.Fatalf("dial on healthy pair failed: %v", err)
	}

	f.Restore("a", "b")
	c2, err := f.DialFrom("a", "b/svc")
	if err != nil {
		t.Fatalf("dial after Restore: %v", err)
	}
	if err := c2.Send([]byte("back")); err != nil {
		t.Fatalf("send after Restore: %v", err)
	}
}

func TestFlakyWildcardSever(t *testing.T) {
	f, cl, _ := flakyPair(t)
	f.Sever("", "")
	if err := cl.Send([]byte("x")); err == nil {
		t.Fatal("send succeeded under wildcard sever")
	}
	if _, err := f.DialFrom("c", "b/svc"); !errors.Is(err, ErrSevered) {
		t.Fatalf("dial under wildcard sever: %v, want ErrSevered", err)
	}
}

func TestFlakyBlackholeSilentlyDrops(t *testing.T) {
	f, cl, srv := flakyPair(t)
	f.Blackhole("a", "b", true)
	if err := cl.Send([]byte("void")); err != nil {
		t.Fatalf("blackholed send errored: %v", err)
	}
	got := make(chan []byte, 1)
	go func() {
		if msg, err := srv.Recv(); err == nil {
			got <- msg
		}
	}()
	select {
	case msg := <-got:
		t.Fatalf("blackholed message was delivered: %q", msg)
	case <-time.After(50 * time.Millisecond):
	}
	f.Blackhole("a", "b", false)
	if err := cl.Send([]byte("visible")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg) != "visible" {
			t.Fatalf("got %q after blackhole off", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message lost after blackhole off")
	}
}

func TestFlakyDropNext(t *testing.T) {
	f, cl, srv := flakyPair(t)
	f.DropNext("a", "b", 2)
	for _, m := range []string{"one", "two", "three"} {
		if err := cl.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "three" {
		t.Fatalf("first delivered message %q, want %q (two dropped)", msg, "three")
	}
}

func TestFlakyDelay(t *testing.T) {
	f, cl, srv := flakyPair(t)
	const d = 30 * time.Millisecond
	f.Delay("a", "b", d)
	start := time.Now()
	if err := cl.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("delivery took %v, want ≥ %v", elapsed, d)
	}
}

// sinkConn counts sends and records the identity of the last slice it was
// handed, so tests can prove a wrapper passes buffers through untouched.
type sinkConn struct {
	sends int
	last  []byte
}

func (c *sinkConn) Send(msg []byte) error { c.sends++; c.last = msg; return nil }
func (c *sinkConn) Recv() ([]byte, error) { select {} }
func (c *sinkConn) Close() error          { return nil }
func (c *sinkConn) LocalAddr() string     { return "a" }
func (c *sinkConn) RemoteAddr() string    { return "b" }

// TestFlakySendAddsNoCopy audits the hot-path claim that the fault-injection
// wrapper is free: on a healthy link, flakyConn.Send must hand the inner
// conn the very same slice (no envelope, no copy) and allocate nothing.
func TestFlakySendAddsNoCopy(t *testing.T) {
	f := NewFlaky(NewInProc())
	inner := &sinkConn{}
	fc := f.wrap(inner, "a", "b")
	msg := []byte("payload bytes")
	if err := fc.Send(msg); err != nil {
		t.Fatal(err)
	}
	if len(inner.last) != len(msg) || &inner.last[0] != &msg[0] {
		t.Fatal("flaky wrapper copied or re-framed the message")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := fc.Send(msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("healthy flaky Send allocates %.1f/op, want 0", allocs)
	}
}
