package transport

import (
	"sync"

	"repro/internal/pool"
)

// InProc is a process-local transport: addresses live in a private namespace
// and connections are paired in-memory queues. It is the substrate for the
// simulated cluster and for tests.
type InProc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInProc returns an empty in-process transport namespace.
func NewInProc() *InProc {
	return &InProc{listeners: make(map[string]*inprocListener)}
}

// Name implements Transport.
func (t *InProc) Name() string { return "inproc" }

// Listen implements Transport.
func (t *InProc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, taken := t.listeners[addr]; taken {
		return nil, errAddrInUse(addr)
	}
	l := &inprocListener{
		addr: addr,
		// Buffered: like a kernel accept backlog, a dial succeeds without a
		// concurrently pending Accept.
		incoming: make(chan *inprocConn, 128),
		done:     make(chan struct{}),
		owner:    t,
	}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport. The enqueue happens under the namespace lock so
// a concurrent listener Close either sees the pending connection (and resets
// it) or the dial sees the listener gone — a dialed connection is never
// silently orphaned.
func (t *InProc) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.listeners[addr]
	if !ok {
		return nil, ErrNoListener
	}
	select {
	case <-l.done:
		return nil, ErrNoListener
	default:
	}
	client, server := Pipe("dial:"+addr, addr)
	select {
	case l.incoming <- server.(*inprocConn):
		return client, nil
	default:
		return nil, errAddrInUse("accept backlog full: " + addr)
	}
}

type errAddrInUse string

func (e errAddrInUse) Error() string { return "transport: address in use: " + string(e) }

type inprocListener struct {
	addr     string
	incoming chan *inprocConn
	done     chan struct{}
	closeOne sync.Once
	owner    *InProc
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.incoming:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.closeOne.Do(func() {
		l.owner.mu.Lock()
		close(l.done)
		delete(l.owner.listeners, l.addr)
		l.owner.mu.Unlock()
		// Reset connections still waiting in the backlog, as a kernel
		// resets un-accepted connections when a socket closes.
		for {
			select {
			case c := <-l.incoming:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// inprocConn is one endpoint of an in-memory duplex message pipe.
type inprocConn struct {
	local, remote string
	out           chan []byte
	in            chan []byte
	closed        chan struct{} // our own close
	peerClosed    chan struct{} // the other side's close
	closeOne      sync.Once
}

// Pipe returns two connected in-memory endpoints. Exposed for tests and for
// the Mux's loopback use.
func Pipe(addrA, addrB string) (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	ca := &inprocConn{local: addrA, remote: addrB, out: ab, in: ba,
		closed: make(chan struct{}), peerClosed: make(chan struct{})}
	cb := &inprocConn{local: addrB, remote: addrA, out: ba, in: ab,
		closed: ca.peerClosed, peerClosed: ca.closed}
	return ca, cb
}

func (c *inprocConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return ErrTooLarge
	}
	// Closed endpoints refuse sends even when buffer space remains (select
	// alone would choose randomly between the ready cases).
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	default:
	}
	// Copy: the caller may reuse its buffer, and a real network would copy.
	// The copy lands in a pooled buffer — this is the handoff copy of the
	// send path, and ownership transfers to the receiver, which recycles it.
	buf := append(pool.Get(len(msg)), msg...)
	select {
	case <-c.closed:
		pool.Put(buf)
		return ErrClosed
	case <-c.peerClosed:
		pool.Put(buf)
		return ErrClosed
	case c.out <- buf:
		return nil
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.closed:
		return nil, ErrClosed
	case <-c.peerClosed:
		// Drain messages that raced with the peer's close.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.closeOne.Do(func() { close(c.closed) })
	return nil
}

func (c *inprocConn) LocalAddr() string  { return c.local }
func (c *inprocConn) RemoteAddr() string { return c.remote }
