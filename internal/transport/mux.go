package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/pool"
)

// Mux is the paper's derived transport layer (§3.1.1): it multiplexes many
// virtual connections over one physical Conn and fragments large messages
// into packets, so "the communication cost [is] amortized over time and
// some useful processing [can] be done" instead of one long transfer
// monopolizing the link — the INMOS Transputer remedy described in the paper.
//
// Packet layout: uvarint channel id, uvarint message id, one flag byte
// (bit 0: more fragments follow; bit 1: channel close), fragment payload.
// Fragments of one message are contiguous per channel because Send holds the
// channel's lock, and the underlying Conn preserves order.
type Mux struct {
	conn Conn
	mtu  int

	mu       sync.Mutex
	channels map[uint64]*Channel
	accepts  chan *Channel
	done     chan struct{}
	closed   bool
	err      error

	sendMu sync.Mutex
}

const (
	flagMore  = 1 << 0
	flagClose = 1 << 1
)

// MuxHeaderSpace is the worst-case size of a mux packet header (two uvarints
// plus the flag byte). Callers using SendReserved leave this many bytes of
// scratch at the front of their buffer; the channel stamps its header into
// that space and ships header+payload as one slice — no second allocation,
// no frame copy.
const MuxHeaderSpace = 2*binary.MaxVarintLen64 + 1

// ReservedSender is satisfied by conns able to stamp their framing into
// caller-reserved header space (satisfied by *Channel). The rpc batcher uses
// it to make the encode→wire path copy-free.
type ReservedSender interface {
	// SendReserved transmits buf[MuxHeaderSpace:] as one message;
	// buf[:MuxHeaderSpace] is scratch the sender may overwrite. The caller
	// keeps ownership of buf once SendReserved returns.
	SendReserved(buf []byte) error
}

// ErrMuxClosed reports use of a closed Mux or Channel.
var ErrMuxClosed = errors.New("transport: mux closed")

// DefaultMTU is the fragment payload the rpc stack muxes with: comfortably
// above a full default batch frame (rpc.DefaultMaxBytes plus framing), so
// the common frame ships as a single packet on the zero-copy SendReserved
// path; only outsized memos fragment.
const DefaultMTU = 128 << 10

// NewMux wraps conn with virtual connections. mtu is the maximum fragment
// payload; messages larger than mtu are fragmented. Start the read pump with
// Run (usually in a goroutine).
func NewMux(conn Conn, mtu int) *Mux {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	return &Mux{
		conn:     conn,
		mtu:      mtu,
		channels: make(map[uint64]*Channel),
		accepts:  make(chan *Channel, 16),
		done:     make(chan struct{}),
	}
}

// Channel returns the virtual connection with the given id, creating it if
// needed. Both endpoints address a virtual connection by the same id.
func (m *Mux) Channel(id uint64) *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.channelLocked(id)
}

func (m *Mux) channelLocked(id uint64) *Channel {
	if ch, ok := m.channels[id]; ok {
		return ch
	}
	ch := &Channel{
		id:   id,
		mux:  m,
		in:   make(chan []byte, 64),
		done: make(chan struct{}),
	}
	if m.closed {
		// The mux already tore down; hand back a dead channel rather
		// than one that would block forever.
		ch.closeRemote()
		return ch
	}
	m.channels[id] = ch
	return ch
}

// Accept blocks for the next channel first opened by the peer.
func (m *Mux) Accept() (*Channel, error) {
	select {
	case ch := <-m.accepts:
		return ch, nil
	case <-m.done:
		// Drain channels that raced with teardown.
		select {
		case ch := <-m.accepts:
			return ch, nil
		default:
			return nil, m.errOr(ErrMuxClosed)
		}
	}
}

func (m *Mux) errOr(def error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return def
}

// Run pumps inbound packets to channels until the connection fails or the
// Mux is closed. It returns the terminal error (ErrClosed on clean close).
func (m *Mux) Run() error {
	var assembling = make(map[uint64]*pendingMsg)
	for {
		pkt, err := m.conn.Recv()
		if err != nil {
			m.teardown(err)
			return err
		}
		chID, n1 := binary.Uvarint(pkt)
		if n1 <= 0 {
			m.teardown(fmt.Errorf("transport: mux: bad packet header"))
			return m.err
		}
		msgID, n2 := binary.Uvarint(pkt[n1:])
		if n2 <= 0 || n1+n2 >= len(pkt) {
			m.teardown(fmt.Errorf("transport: mux: truncated packet"))
			return m.err
		}
		flags := pkt[n1+n2]
		payload := pkt[n1+n2+1:]

		m.mu.Lock()
		_, existed := m.channels[chID]
		ch := m.channelLocked(chID)
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return ErrMuxClosed
		}
		if !existed {
			select {
			case m.accepts <- ch:
			default: // nobody accepting; channel still reachable by id
			}
		}

		if flags&flagClose != 0 {
			ch.closeRemote()
			continue
		}

		p := assembling[chID]
		if p == nil {
			if flags&flagMore == 0 {
				// Fast path: the whole message arrived in one packet.
				// Deliver the payload aliased into the received buffer —
				// ownership of pkt transfers to the channel's consumer (the
				// final consumer may pool.Put it).
				ch.deliver(payload)
				continue
			}
			p = &pendingMsg{id: msgID}
			assembling[chID] = p
		}
		if p.id != msgID {
			m.teardown(fmt.Errorf("transport: mux: interleaved fragments on channel %d", chID))
			return m.err
		}
		if p.buf == nil {
			p.buf = pool.Get(2 * len(payload))
		}
		p.buf = append(p.buf, payload...)
		// The fragment is copied out; its packet buffer can recycle now.
		pool.Put(pkt)
		if flags&flagMore == 0 {
			msg := p.buf
			delete(assembling, chID)
			ch.deliver(msg)
		}
	}
}

type pendingMsg struct {
	id  uint64
	buf []byte
}

func (m *Mux) teardown(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	chans := make([]*Channel, 0, len(m.channels))
	for _, ch := range m.channels {
		chans = append(chans, ch)
	}
	m.mu.Unlock()
	for _, ch := range chans {
		ch.closeRemote()
	}
	close(m.done)
	_ = m.conn.Close()
}

// Close shuts the Mux and the underlying connection down.
func (m *Mux) Close() error {
	m.teardown(ErrMuxClosed)
	return nil
}

// sendPacket writes one framed packet to the shared connection. The packet
// is assembled in a pooled buffer (header + payload copy) and recycled once
// the underlying Send returns — Conn.Send must not retain its argument.
func (m *Mux) sendPacket(chID, msgID uint64, flags byte, payload []byte) error {
	buf := pool.Get(MuxHeaderSpace + len(payload))
	buf = binary.AppendUvarint(buf, chID)
	buf = binary.AppendUvarint(buf, msgID)
	buf = append(buf, flags)
	buf = append(buf, payload...)
	m.sendMu.Lock()
	err := m.conn.Send(buf)
	m.sendMu.Unlock()
	pool.Put(buf)
	return err
}

// sendRaw writes one already-framed packet to the shared connection.
func (m *Mux) sendRaw(pkt []byte) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	return m.conn.Send(pkt)
}

// Channel is one virtual connection over a Mux. It satisfies Conn.
type Channel struct {
	id  uint64
	mux *Mux

	sendMu sync.Mutex
	nextID uint64

	in       chan []byte
	done     chan struct{}
	closeOne sync.Once
}

// Send fragments msg into MTU-sized packets and transmits them. Other
// channels' packets may interleave between fragments — that is the point.
func (c *Channel) Send(msg []byte) error {
	select {
	case <-c.done:
		return ErrMuxClosed
	default:
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	id := c.nextID
	c.nextID++
	mtu := c.mux.mtu
	if len(msg) == 0 {
		return c.mux.sendPacket(c.id, id, 0, nil)
	}
	for off := 0; off < len(msg); off += mtu {
		end := off + mtu
		flags := byte(flagMore)
		if end >= len(msg) {
			end = len(msg)
			flags = 0
		}
		if err := c.mux.sendPacket(c.id, id, flags, msg[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// SendReserved transmits buf[MuxHeaderSpace:] as one message, stamping the
// packet header into the reserved space when the message fits in one
// fragment — the same bytes reach the wire as Send would produce, without
// allocating or copying the frame. Larger messages fall back to the
// fragmenting path. The caller keeps ownership of buf after return.
func (c *Channel) SendReserved(buf []byte) error {
	msg := buf[MuxHeaderSpace:]
	if len(msg) == 0 || len(msg) > c.mux.mtu {
		return c.Send(msg)
	}
	select {
	case <-c.done:
		return ErrMuxClosed
	default:
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	id := c.nextID
	c.nextID++
	var hdr [MuxHeaderSpace]byte
	n := binary.PutUvarint(hdr[:], c.id)
	n += binary.PutUvarint(hdr[n:], id)
	hdr[n] = 0 // flags: single fragment
	n++
	start := MuxHeaderSpace - n
	copy(buf[start:], hdr[:n])
	return c.mux.sendRaw(buf[start:])
}

// Recv blocks for the next complete message.
func (c *Channel) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		// Drain delivered-but-unread messages.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, ErrMuxClosed
		}
	}
}

func (c *Channel) deliver(msg []byte) {
	select {
	case c.in <- msg:
	case <-c.done:
	}
}

func (c *Channel) closeRemote() {
	c.closeOne.Do(func() { close(c.done) })
}

// Close tells the peer the channel is finished and releases it locally.
func (c *Channel) Close() error {
	var err error
	c.closeOne.Do(func() {
		err = c.mux.sendPacket(c.id, 0, flagClose, nil)
		close(c.done)
	})
	return err
}

// ID reports the channel id.
func (c *Channel) ID() uint64 { return c.id }

// Done returns a channel closed when this virtual connection dies (either
// side closed it, or the Mux tore down). Servers use it to cancel blocking
// operations whose client has gone away.
func (c *Channel) Done() <-chan struct{} { return c.done }

// LocalAddr implements Conn.
func (c *Channel) LocalAddr() string {
	return fmt.Sprintf("%s#%d", c.mux.conn.LocalAddr(), c.id)
}

// RemoteAddr implements Conn.
func (c *Channel) RemoteAddr() string {
	return fmt.Sprintf("%s#%d", c.mux.conn.RemoteAddr(), c.id)
}
