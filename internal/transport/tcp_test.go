package transport

import (
	"errors"
	"testing"
	"time"
)

// TestTCPIdleTimeout verifies a silent peer trips the read deadline instead
// of wedging Recv forever.
func TestTCPIdleTimeout(t *testing.T) {
	srv := NewTCPIdle(50 * time.Millisecond)
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := NewTCP().Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sc := <-accepted
	defer sc.Close()

	// Traffic inside the window keeps the connection alive.
	for i := 0; i < 3; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := cli.Send([]byte("tick")); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	// Silence beyond the window fails the read with ErrIdleTimeout.
	start := time.Now()
	_, err = sc.Recv()
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("Recv on silent conn: %v, want ErrIdleTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("idle timeout took %v", elapsed)
	}
}

// TestTCPIdleTimeoutTearsDownMux verifies the idle error surfaces through
// Mux.Run — a dead peer can no longer wedge the mux read pump.
func TestTCPIdleTimeoutTearsDownMux(t *testing.T) {
	srv := NewTCPIdle(50 * time.Millisecond)
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := NewTCP().Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sc := <-accepted

	mux := NewMux(sc, 4096)
	runErr := make(chan error, 1)
	go func() { runErr <- mux.Run() }()

	// The dialer goes silent; the server mux must tear down by itself.
	select {
	case err := <-runErr:
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("Mux.Run returned %v, want ErrIdleTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mux read pump wedged on a silent peer")
	}
	// Channels observe the teardown.
	ch := mux.Channel(1)
	select {
	case <-ch.Done():
	case <-time.After(time.Second):
		t.Fatal("channel not torn down after idle timeout")
	}
}

// TestTCPNoIdleTimeoutByDefault: the default transport must keep blocking
// reads unbounded (folder waits can be arbitrarily long).
func TestTCPNoIdleTimeoutByDefault(t *testing.T) {
	l, err := NewTCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := NewTCP().Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sc := <-accepted
	defer sc.Close()

	got := make(chan error, 1)
	go func() {
		_, err := sc.Recv()
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Recv returned early: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	// A late message still arrives.
	if err := cli.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late message never received")
	}
}
