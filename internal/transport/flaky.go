package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrSevered reports a connection or dial refused because its link is
// administratively severed by a Flaky transport.
var ErrSevered = errors.New("transport: link severed (fault injection)")

// mInjections counts fault injections actually applied to traffic (a
// severed send or dial, a blackholed or dropped message, a delayed send) —
// so a chaos run's scrape shows how much damage the drill really did.
var mInjections = obs.Default.Counter("transport_flaky_injections_total",
	"fault injections applied to sends and dials")

// Flaky decorates a Transport with command-driven fault injection: tests
// (and chaos drills) can sever a link, silently blackhole it, drop the next
// N messages, or add delay — per host pair or across the whole transport.
// It is the backbone of the resilience tests: severing exercises
// reconnect-with-backoff and ErrLinkDown fail-fast, blackholing exercises
// heartbeat dead-peer detection (traffic vanishes but nothing errors, the
// exact signature of a peer dead behind a silent network).
//
// Link state is keyed by unordered host pairs (HostOf of the two conn
// endpoints), so it composes with the Sim transport's host-named addresses;
// the zero-key ("", "") state applies to every conn, which is the useful
// granularity over TCP where local addresses are ephemeral ports.
type Flaky struct {
	inner Transport
	// dialFrom is the source-host-aware dial when inner supports one (Sim).
	dialFrom func(src, addr string) (Conn, error)

	mu    sync.Mutex
	links map[[2]string]*linkState
	conns map[*flakyConn]struct{}
}

// linkState is the injected condition of one link (or of all links, under
// the wildcard key).
type linkState struct {
	severed   bool
	blackhole bool
	dropNext  int
	delay     time.Duration
}

// NewFlaky wraps inner with fault injection. All links start healthy. If
// inner is a *Sim, source-host-aware dials (DialFrom) route through it so
// simulated link delays still apply.
func NewFlaky(inner Transport) *Flaky {
	f := &Flaky{
		inner: inner,
		links: make(map[[2]string]*linkState),
		conns: make(map[*flakyConn]struct{}),
	}
	if sim, ok := inner.(*Sim); ok {
		f.dialFrom = sim.DialFrom
	} else {
		f.dialFrom = func(_, addr string) (Conn, error) { return inner.Dial(addr) }
	}
	return f
}

// pairKey normalizes an unordered host pair. Empty-both is the wildcard.
func pairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// link returns (creating if needed) the state for a host pair; call with
// ("", "") for the all-links wildcard.
func (f *Flaky) link(a, b string) *linkState {
	k := pairKey(a, b)
	st, ok := f.links[k]
	if !ok {
		st = &linkState{}
		f.links[k] = st
	}
	return st
}

// Sever cuts the link between hosts a and b: every live connection between
// them is closed (both ends fail with ErrClosed / read errors, exactly like
// a reset), and new dials on the pair fail with ErrSevered until Restore.
// Sever("", "") severs everything.
func (f *Flaky) Sever(a, b string) {
	f.mu.Lock()
	f.link(a, b).severed = true
	var victims []*flakyConn
	for c := range f.conns {
		if c.matches(a, b) {
			victims = append(victims, c)
			delete(f.conns, c)
		}
	}
	f.mu.Unlock()
	for _, c := range victims {
		_ = c.Conn.Close()
	}
}

// Restore clears every injected condition on the pair (severed, blackhole,
// drops, delay). Connections killed by Sever stay dead — recovery is the
// redialer's job, which is the point.
func (f *Flaky) Restore(a, b string) {
	f.mu.Lock()
	*f.link(a, b) = linkState{}
	f.mu.Unlock()
}

// Blackhole silently discards all traffic between a and b (both directions)
// while on: sends succeed but deliver nothing, and no error ever surfaces —
// the failure mode only heartbeats can detect.
func (f *Flaky) Blackhole(a, b string, on bool) {
	f.mu.Lock()
	f.link(a, b).blackhole = on
	f.mu.Unlock()
}

// DropNext silently discards the next n messages sent between a and b.
func (f *Flaky) DropNext(a, b string, n int) {
	f.mu.Lock()
	f.link(a, b).dropNext = n
	f.mu.Unlock()
}

// Delay adds d to every message sent between a and b.
func (f *Flaky) Delay(a, b string, d time.Duration) {
	f.mu.Lock()
	f.link(a, b).delay = d
	f.mu.Unlock()
}

// Name implements Transport.
func (f *Flaky) Name() string { return "flaky+" + f.inner.Name() }

// Dial implements Transport.
func (f *Flaky) Dial(addr string) (Conn, error) {
	return f.DialFrom(HostOf(addr), addr)
}

// DialFrom dials with an explicit source host (Sim-compatible), refusing
// severed links.
func (f *Flaky) DialFrom(srcHost, addr string) (Conn, error) {
	dst := HostOf(addr)
	if f.isSevered(srcHost, dst) {
		mInjections.Inc()
		return nil, ErrSevered
	}
	c, err := f.dialFrom(srcHost, addr)
	if err != nil {
		return nil, err
	}
	return f.wrap(c, srcHost, dst), nil
}

// Listen implements Transport; accepted connections are wrapped so faults
// apply to the server side of each link too.
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{Listener: l, f: f}, nil
}

func (f *Flaky) isSevered(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range [][2]string{pairKey(a, b), pairKey("", "")} {
		if st, ok := f.links[k]; ok && st.severed {
			return true
		}
	}
	return false
}

// wrap registers a conn under its host pair. Dialed conns know both ends;
// accepted conns leave the peer empty and resolve it from the conn's
// learned remote address at evaluation time.
func (f *Flaky) wrap(c Conn, local, remote string) *flakyConn {
	fc := &flakyConn{Conn: c, f: f, local: local, remote: remote}
	f.mu.Lock()
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

type flakyListener struct {
	Listener
	f *Flaky
}

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c, HostOf(l.Addr()), ""), nil
}

// flakyConn applies its transport's injected link conditions to each Send.
// Faults are evaluated at send time, so flipping a condition affects live
// connections immediately.
type flakyConn struct {
	Conn
	f *Flaky
	// local and remote are the link's host endpoints. A dialed conn knows
	// both; an accepted conn learns remote from traffic (Sim stamps its
	// peer host on the first message), so a just-accepted idle conn may
	// not yet match its host pair — by the time a test severs
	// mid-workload, it does.
	local, remote string
}

func (c *flakyConn) pair() [2]string {
	remote := c.remote
	if remote == "" {
		remote = HostOf(c.RemoteAddr())
	}
	return pairKey(c.local, remote)
}

// matches reports whether this conn runs between hosts a and b (order
// irrelevant), or unconditionally for the wildcard pair.
func (c *flakyConn) matches(a, b string) bool {
	if a == "" && b == "" {
		return true
	}
	return c.pair() == pairKey(a, b)
}

// condition snapshots the effective link state for this conn, merging the
// wildcard state with the host-pair state (any severed/blackhole wins,
// delay accumulates). A severed link consumes no drop credits, and one
// message burns at most one credit — pair state first, wildcard second —
// so DropNext(a, b, n) drops exactly n deliverable messages.
func (c *flakyConn) condition() linkState {
	pk := c.pair()
	var out linkState
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	states := make([]*linkState, 0, 2)
	for _, k := range [][2]string{pk, pairKey("", "")} {
		if st, ok := c.f.links[k]; ok {
			states = append(states, st)
			out.severed = out.severed || st.severed
			out.blackhole = out.blackhole || st.blackhole
			out.delay += st.delay
		}
	}
	if out.severed || out.blackhole {
		// The message dies anyway; keep drop credits for messages that
		// would otherwise be delivered.
		return out
	}
	for _, st := range states {
		if st.dropNext > 0 {
			st.dropNext--
			out.dropNext = 1
			break
		}
	}
	return out
}

func (c *flakyConn) Send(msg []byte) error {
	st := c.condition()
	if st.severed {
		mInjections.Inc()
		_ = c.Conn.Close()
		return ErrSevered
	}
	if st.delay > 0 {
		mInjections.Inc()
		time.Sleep(st.delay)
	}
	if st.blackhole || st.dropNext > 0 {
		mInjections.Inc()
		return nil // swallowed: the caller believes it was sent
	}
	return c.Conn.Send(msg)
}

func (c *flakyConn) Close() error {
	c.f.mu.Lock()
	delete(c.f.conns, c)
	c.f.mu.Unlock()
	return c.Conn.Close()
}
