package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Process-wide link-health aggregates over every Redialer (the per-link view
// stays on Redialer.Stats). A backoff reset is a successful dial that healed
// a link after at least one failure — the "outage ended" event.
var (
	mDials = obs.Default.Counter("transport_dials_total",
		"successful dials across all redialers")
	mFailedDials = obs.Default.Counter("transport_failed_dials_total",
		"dial attempts that errored")
	mFaults = obs.Default.Counter("transport_faults_total",
		"live conns reported dead")
	mBackoffResets = obs.Default.Counter("transport_backoff_resets_total",
		"successful dials that ended a failure streak")
)

// Backoff is an exponential reconnect schedule with jitter: attempt n waits
// Min·Factorⁿ, capped at Max, with the wait drawn uniformly from
// [d·(1-Jitter), d] so a partitioned cluster's redials decorrelate instead
// of stampeding the recovering peer. The zero value means the defaults.
type Backoff struct {
	// Min is the first retry delay (default 20ms).
	Min time.Duration
	// Max caps the delay (default 3s).
	Max time.Duration
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized away (default 0.2;
	// 0 < Jitter ≤ 1 yields delays in [d·(1-Jitter), d]).
	Jitter float64
}

// Backoff defaults.
const (
	DefaultBackoffMin    = 20 * time.Millisecond
	DefaultBackoffMax    = 3 * time.Second
	DefaultBackoffFactor = 2.0
	DefaultBackoffJitter = 0.2
)

func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = DefaultBackoffMin
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoffMax
	}
	if b.Max < b.Min {
		b.Max = b.Min
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoffFactor
	}
	if b.Jitter <= 0 || b.Jitter > 1 {
		b.Jitter = DefaultBackoffJitter
	}
	return b
}

// Base returns the un-jittered delay before retry attempt n (0-based):
// Min·Factorⁿ capped at Max. Negative attempts count as 0.
func (b Backoff) Base(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Min)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	if d > float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// Delay returns the jittered delay before retry attempt n. rnd supplies the
// randomness in [0,1); nil uses the global source. The result always lies in
// [Base(n)·(1-Jitter), Base(n)].
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	base := b.Base(attempt)
	j := b.withDefaults().Jitter
	if rnd == nil {
		rnd = rand.Float64
	}
	lo := float64(base) * (1 - j)
	return time.Duration(lo + rnd()*(float64(base)-lo))
}

// Redialer manages one logical peer link over an unreliable network: it
// hands out the current Conn, and when the caller reports the conn dead
// (Fault) the next Get re-dials under the Backoff schedule. Dials are
// single-flight — concurrent Gets during an outage share one dial attempt —
// and the schedule resets on every successful dial, so a peer that was up
// for a while gets a fast first retry when it next fails.
type Redialer struct {
	dial func() (Conn, error)
	bo   Backoff

	mu      sync.Mutex
	cur     Conn
	epoch   uint64 // increments per successful dial
	attempt int    // consecutive failed dials since the last success
	nextTry time.Time
	lastErr error
	dialing chan struct{} // non-nil while a dial is in flight
	closed  bool

	// Health counters (surfaced per link by dmemo-bench E12 and summed
	// into the transport_* aggregates in obs.Default).
	dials       obs.Counter
	failedDials obs.Counter
	faults      obs.Counter
}

// RedialerStats is a snapshot of one link's health counters.
type RedialerStats struct {
	// Dials counts successful dials: the first connect plus every re-dial
	// that healed the link.
	Dials int64
	// FailedDials counts dial attempts that errored.
	FailedDials int64
	// Faults counts reports of a live conn dying (stale-epoch reports are
	// not counted — only ones that actually tore a conn down).
	Faults int64
	// LastErr is the most recent dial error, empty while the link is healthy
	// (cleared by a successful dial) — the human-readable why behind a
	// failing link in /statusz.
	LastErr string `json:",omitempty"`
}

// Stats snapshots the link's health counters.
func (r *Redialer) Stats() RedialerStats {
	st := RedialerStats{
		Dials:       r.dials.Load(),
		FailedDials: r.failedDials.Load(),
		Faults:      r.faults.Load(),
	}
	r.mu.Lock()
	if r.lastErr != nil {
		st.LastErr = r.lastErr.Error()
	}
	r.mu.Unlock()
	return st
}

// NewRedialer wraps dial with reconnect state. The zero Backoff means the
// defaults.
func NewRedialer(dial func() (Conn, error), bo Backoff) *Redialer {
	return &Redialer{dial: dial, bo: bo.withDefaults()}
}

// Get returns the live conn and its epoch, dialing if the link is down. At
// most one dial cycle runs per call: if the backoff window from the previous
// failure has not elapsed, Get sleeps it out first (abandoned if giveup
// fires); if another goroutine is already dialing, Get waits for that
// attempt's outcome instead of dialing itself. On failure the backoff
// advances and the dial error is returned — the caller decides whether to
// retry, so a bounded-retry policy composes naturally on top.
func (r *Redialer) Get(giveup <-chan struct{}) (Conn, uint64, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, 0, ErrClosed
		}
		if r.cur != nil {
			c, ep := r.cur, r.epoch
			r.mu.Unlock()
			return c, ep, nil
		}
		if d := r.dialing; d != nil {
			// Join the in-flight dial.
			r.mu.Unlock()
			select {
			case <-d:
			case <-giveup:
				return nil, 0, ErrClosed
			}
			r.mu.Lock()
			c, ep, err := r.cur, r.epoch, r.lastErr
			r.mu.Unlock()
			if c != nil {
				return c, ep, nil
			}
			if err == nil {
				// The joined dial succeeded but a Fault (or an abandoned
				// dial) beat us to the result; go around again.
				continue
			}
			return nil, 0, err
		}
		// Become the dialer.
		done := make(chan struct{})
		r.dialing = done
		wait := time.Until(r.nextTry)
		r.mu.Unlock()

		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-giveup:
				t.Stop()
				r.finishDial(nil, nil, done, false)
				return nil, 0, ErrClosed
			}
		}
		c, err := r.dial()
		r.finishDial(c, err, done, true)
		r.mu.Lock()
		cur, ep, lastErr, closed := r.cur, r.epoch, r.lastErr, r.closed
		r.mu.Unlock()
		if closed {
			return nil, 0, ErrClosed
		}
		if cur != nil {
			return cur, ep, nil
		}
		if err == nil {
			// Our successful dial raced Fault; loop and try again.
			continue
		}
		return nil, 0, lastErr
	}
}

// finishDial installs a dial outcome and releases waiters. attempted is
// false when the dial was abandoned before running (giveup during backoff).
func (r *Redialer) finishDial(c Conn, err error, done chan struct{}, attempted bool) {
	r.mu.Lock()
	r.dialing = nil
	switch {
	case !attempted:
		// Leave the schedule as it was.
	case err != nil:
		r.failedDials.Inc()
		mFailedDials.Inc()
		r.lastErr = err
		r.nextTry = time.Now().Add(r.bo.Delay(r.attempt, nil))
		r.attempt++
	case r.closed:
		if c != nil {
			c.Close()
		}
	default:
		r.dials.Inc()
		mDials.Inc()
		if r.attempt > 0 {
			mBackoffResets.Inc()
		}
		r.cur = c
		r.epoch++
		r.attempt = 0 // reset-on-success: the next outage backs off from Min
		r.lastErr = nil
		r.nextTry = time.Time{}
	}
	r.mu.Unlock()
	close(done)
}

// Fault reports that the conn handed out under epoch is dead. The conn is
// closed and the next Get re-dials. Stale epochs (a concurrent Fault already
// replaced the conn) are ignored, so every caller of a shared link may
// Fault freely.
func (r *Redialer) Fault(epoch uint64) {
	r.mu.Lock()
	var dead Conn
	if r.cur != nil && r.epoch == epoch {
		dead = r.cur
		r.cur = nil
	}
	r.mu.Unlock()
	if dead != nil {
		r.faults.Inc()
		mFaults.Inc()
		dead.Close()
	}
}

// Attempt reports the consecutive failed dials since the last success.
func (r *Redialer) Attempt() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempt
}

// Close retires the link; subsequent Gets fail with ErrClosed.
func (r *Redialer) Close() {
	r.mu.Lock()
	r.closed = true
	dead := r.cur
	r.cur = nil
	r.mu.Unlock()
	if dead != nil {
		dead.Close()
	}
}
