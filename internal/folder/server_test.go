package folder

import (
	"sync"
	"testing"
	"time"

	"repro/internal/symbol"
	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

func newTestServer(t *testing.T, cache threadcache.Config) *Server {
	t.Helper()
	s := NewServer(0, "testhost", NewStore(), cache)
	t.Cleanup(s.Close)
	return s
}

func TestHandleOps(t *testing.T) {
	s := newTestServer(t, threadcache.Config{})
	k := symbol.K(1)
	k2 := symbol.K(2)

	if r := s.Handle(&wire.Request{Op: wire.OpPing}, never); r.Status != wire.StatusOK {
		t.Fatalf("ping: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpPut, Key: k, Payload: []byte("v")}, never); r.Status != wire.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpGetCopy, Key: k}, never); r.Status != wire.StatusOK || string(r.Payload) != "v" {
		t.Fatalf("get_copy: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpGet, Key: k}, never); r.Status != wire.StatusOK || string(r.Payload) != "v" {
		t.Fatalf("get: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpGetSkip, Key: k}, never); r.Status != wire.StatusEmpty {
		t.Fatalf("get_skip on empty: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpPutDelayed, Key: k, Key2: k2, Payload: []byte("d")}, never); r.Status != wire.StatusOK {
		t.Fatalf("put_delayed: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpPut, Key: k, Payload: nil}, never); r.Status != wire.StatusOK {
		t.Fatalf("trigger put: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpGetSkip, Key: k2}, never); r.Status != wire.StatusOK || string(r.Payload) != "d" {
		t.Fatalf("released value: %+v", r)
	}
	// Alt and watch argument validation.
	if r := s.Handle(&wire.Request{Op: wire.OpAltTake}, never); r.Status != wire.StatusErr {
		t.Fatalf("alt with no keys: %+v", r)
	}
	if r := s.Handle(&wire.Request{Op: wire.OpWatch}, never); r.Status != wire.StatusErr {
		t.Fatalf("watch with no keys: %+v", r)
	}
	// Register is a memo-server op, not a folder-server op.
	if r := s.Handle(&wire.Request{Op: wire.OpRegister}, never); r.Status != wire.StatusErr {
		t.Fatalf("register: %+v", r)
	}
}

func TestHandleCanceledGetReportsError(t *testing.T) {
	s := newTestServer(t, threadcache.Config{})
	cancel := make(chan struct{})
	got := make(chan *wire.Response, 1)
	go func() {
		got <- s.Handle(&wire.Request{Op: wire.OpGet, Key: symbol.K(5)}, cancel)
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case r := <-got:
		if r.Status != wire.StatusErr {
			t.Fatalf("canceled get: %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel ignored")
	}
}

// TestServeOverTCP drives the standalone wire-protocol server (the
// cmd/folderserverd deployment) over a real TCP socket.
func TestServeOverTCP(t *testing.T) {
	s := newTestServer(t, threadcache.Config{})
	l, err := transport.NewTCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go s.Serve(l)

	conn, err := transport.NewTCP().Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	t.Cleanup(func() { mux.Close() })

	do := func(ch *transport.Channel, q *wire.Request) *wire.Response {
		t.Helper()
		if err := ch.Send(wire.EncodeRequest(q)); err != nil {
			t.Fatal(err)
		}
		buf, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.DecodeResponse(buf)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	ch := mux.Channel(1)
	k := symbol.K(3, 1)
	if r := do(ch, &wire.Request{Op: wire.OpPut, Key: k, Payload: []byte("tcp")}); r.Status != wire.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	if r := do(ch, &wire.Request{Op: wire.OpGet, Key: k}); r.Status != wire.StatusOK || string(r.Payload) != "tcp" {
		t.Fatalf("get: %+v", r)
	}

	// A malformed request gets an error response, not a dropped channel.
	if err := ch.Send([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	buf, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(buf)
	if err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("malformed request response: %+v %v", resp, err)
	}

	// Concurrent channels against one server.
	var wg sync.WaitGroup
	for i := 2; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := mux.Channel(uint64(i))
			key := symbol.K(symbol.Symbol(i))
			for j := 0; j < 20; j++ {
				if err := ch.Send(wire.EncodeRequest(&wire.Request{Op: wire.OpPut, Key: key, Payload: []byte{byte(j)}})); err != nil {
					t.Error(err)
					return
				}
				if _, err := ch.Recv(); err != nil {
					t.Error(err)
					return
				}
				if err := ch.Send(wire.EncodeRequest(&wire.Request{Op: wire.OpGet, Key: key})); err != nil {
					t.Error(err)
					return
				}
				if _, err := ch.Recv(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if s.Store().MemoCount() != 0 {
		t.Fatalf("memos left: %d", s.Store().MemoCount())
	}
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
