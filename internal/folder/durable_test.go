package folder

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/symbol"
)

func openStore(t testing.TB, dir string, dcfg durable.Config, opts ...Option) *Store {
	t.Helper()
	s, err := OpenStore(dir, dcfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPut(t testing.TB, s *Store, k symbol.Key, v string) {
	t.Helper()
	if err := s.Put(k, []byte(v)); err != nil {
		t.Fatalf("put %v: %v", k, err)
	}
}

// TestStoreRecoverState: a clean close + reopen reconstructs the directory
// — visible memos (multisets per folder), still-hidden put_delayed values,
// and their release behaviour.
func TestStoreRecoverState(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	jobs := symbol.K(1)
	other := symbol.K(2, 7, 9)
	trig := symbol.K(3)
	dest := symbol.K(4)
	mustPut(t, s, jobs, "a")
	mustPut(t, s, jobs, "b")
	mustPut(t, s, jobs, "b") // duplicates are distinct memos
	mustPut(t, s, other, "x")
	if err := s.PutDelayed(trig, dest, []byte("hidden")); err != nil {
		t.Fatal(err)
	}
	// A take must recover as removed.
	if v, ok, _ := s.GetSkip(jobs); !ok {
		t.Fatal("get_skip found nothing")
	} else if string(v) != "a" && string(v) != "b" {
		t.Fatalf("get_skip: %q", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, durable.Config{})
	defer r.Close()
	if got, want := r.MemoCount(), 3; got != want {
		t.Fatalf("recovered MemoCount = %d, want %d", got, want)
	}
	if got := r.DelayedCount(); got != 1 {
		t.Fatalf("recovered DelayedCount = %d, want 1", got)
	}
	if got := r.FolderCount(); got != 3 {
		t.Fatalf("recovered FolderCount = %d, want 3", got)
	}
	if v, ok, _ := r.GetSkip(other); !ok || string(v) != "x" {
		t.Fatalf("recovered other folder: %q %v", v, ok)
	}
	// The recovered hidden value must still release on a trigger put.
	mustPut(t, r, trig, "go")
	if v, ok, _ := r.GetSkip(dest); !ok || string(v) != "hidden" {
		t.Fatalf("recovered delayed value: %q %v", v, ok)
	}
}

// TestStoreRecoverAfterCrash: every acknowledged operation survives a hard
// crash (no flush); the store reopens from exactly the committed state.
func TestStoreRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	k := symbol.K(5)
	for i := 0; i < 10; i++ {
		mustPut(t, s, k, fmt.Sprintf("memo-%d", i))
	}
	if _, ok, _ := s.GetSkip(k); !ok {
		t.Fatal("take failed")
	}
	s.Crash()

	r := openStore(t, dir, durable.Config{})
	defer r.Close()
	if got := r.MemoCount(); got != 9 {
		t.Fatalf("recovered %d memos after crash, want 9", got)
	}
	// The store keeps full multiset semantics: draining yields 9 distinct
	// payloads out of the 10 put minus the 1 taken.
	seen := map[string]bool{}
	for {
		v, ok, _ := r.GetSkip(k)
		if !ok {
			break
		}
		if seen[string(v)] {
			t.Fatalf("duplicate memo %q after recovery", v)
		}
		seen[string(v)] = true
	}
	if len(seen) != 9 {
		t.Fatalf("drained %d memos, want 9", len(seen))
	}
}

// TestSnapshotTruncateRecover: with a tiny snapshot threshold the log
// compacts in the background — old generations disappear — and a crash
// after heavy churn still recovers the exact surviving state.
func TestSnapshotTruncateRecover(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{SnapshotEvery: 16}, WithShards(4))
	k := symbol.K(1)
	keep := symbol.K(2)
	mustPut(t, s, keep, "keeper")
	for i := 0; i < 200; i++ {
		mustPut(t, s, k, "churn")
		if _, ok, _ := s.GetSkip(k); !ok {
			t.Fatal("churn take failed")
		}
	}
	// Wait for a background snapshot to land (generation advances).
	deadline := time.Now().Add(10 * time.Second)
	for s.Log().Gen() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitNotSnapshotting(t, s)
	s.Crash()

	// The directory must hold a snapshot and only recent generations.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var haveSnap bool
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "snap-") && !strings.HasSuffix(e.Name(), ".tmp") {
			haveSnap = true
		}
	}
	if !haveSnap {
		t.Fatalf("no snapshot file in %v", names(ents))
	}

	r := openStore(t, dir, durable.Config{SnapshotEvery: 16}, WithShards(4))
	defer r.Close()
	if got := r.MemoCount(); got != 1 {
		t.Fatalf("recovered %d memos, want 1", got)
	}
	if v, ok, _ := r.GetSkip(keep); !ok || string(v) != "keeper" {
		t.Fatalf("keeper: %q %v", v, ok)
	}
}

// waitNotSnapshotting lets an in-flight background snapshot finish so Crash
// cannot race its file operations.
func waitNotSnapshotting(t *testing.T, s *Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.snapshotting.Load() {
		if time.Now().After(deadline) {
			t.Fatal("snapshot never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

func names(ents []os.DirEntry) []string {
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

// TestShardCountChangeAcrossReopen: recovery is shard-count independent —
// a store written with 8 stripes reopens correctly with 2, and vice versa.
func TestShardCountChangeAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{}, WithShards(8))
	for i := 0; i < 32; i++ {
		mustPut(t, s, symbol.K(symbol.Symbol(i+1), uint32(i)), fmt.Sprintf("v%d", i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, durable.Config{}, WithShards(2))
	if got := r.MemoCount(); got != 32 {
		t.Fatalf("recovered %d memos with fewer shards, want 32", got)
	}
	for i := 0; i < 16; i++ { // churn so both shard mappings are in the log
		if _, ok, _ := r.GetSkip(symbol.K(symbol.Symbol(i+1), uint32(i))); !ok {
			t.Fatalf("take %d failed", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openStore(t, dir, durable.Config{}, WithShards(8))
	defer r2.Close()
	if got := r2.MemoCount(); got != 16 {
		t.Fatalf("recovered %d memos after regrow, want 16", got)
	}
}

// TestTokenDedup: the at-most-once token table — in memory, across a clean
// reopen, and across a crash.
func TestTokenDedup(t *testing.T) {
	t.Run("memory-only", func(t *testing.T) {
		s := NewStore()
		k := symbol.K(1)
		if err := s.PutToken(k, []byte("v"), 42); err != nil {
			t.Fatal(err)
		}
		if err := s.PutToken(k, []byte("v"), 42); err != nil {
			t.Fatal(err)
		}
		if got := s.MemoCount(); got != 1 {
			t.Fatalf("MemoCount = %d after duplicate tokened put, want 1", got)
		}
		if st := s.Stats(); st.DupPuts != 1 || st.Puts != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("across-crash", func(t *testing.T) {
		dir := t.TempDir()
		s := openStore(t, dir, durable.Config{})
		k := symbol.K(1)
		if err := s.PutToken(k, []byte("v"), 99); err != nil {
			t.Fatal(err)
		}
		s.Crash()
		r := openStore(t, dir, durable.Config{})
		defer r.Close()
		// The retry of a maybe-delivered put arrives after the crash: the
		// recovered token table must swallow it.
		if err := r.PutToken(k, []byte("v"), 99); err != nil {
			t.Fatal(err)
		}
		if got := r.MemoCount(); got != 1 {
			t.Fatalf("MemoCount = %d after post-crash retry, want 1", got)
		}
		if st := r.Stats(); st.DupPuts != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("delayed", func(t *testing.T) {
		s := NewStore()
		if err := s.PutDelayedToken(symbol.K(1), symbol.K(2), []byte("h"), 7); err != nil {
			t.Fatal(err)
		}
		if err := s.PutDelayedToken(symbol.K(1), symbol.K(2), []byte("h"), 7); err != nil {
			t.Fatal(err)
		}
		if got := s.DelayedCount(); got != 1 {
			t.Fatalf("DelayedCount = %d, want 1", got)
		}
	})
}

// TestTokenDedupSurvivesSnapshot: tokens carry across snapshot truncation.
func TestTokenDedupSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{SnapshotEvery: 8}, WithShards(2))
	k := symbol.K(1)
	if err := s.PutToken(k, []byte("v"), 1234); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustPut(t, s, k, "churn")
		s.GetSkip(k)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Log().Gen() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitNotSnapshotting(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, durable.Config{SnapshotEvery: 8}, WithShards(2))
	defer r.Close()
	if err := r.PutToken(k, []byte("v"), 1234); err != nil {
		t.Fatal(err)
	}
	if got := r.MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d (token lost across snapshot?)", got)
	}
}

// TestTokenEviction: the table is bounded FIFO.
func TestTokenEviction(t *testing.T) {
	s := NewStore(WithTokenCap(4))
	k := symbol.K(1)
	for tok := uint64(1); tok <= 6; tok++ {
		if err := s.PutToken(k, []byte("v"), tok); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Tokens(); got != 4 {
		t.Fatalf("Tokens = %d, want 4", got)
	}
	// Oldest evicted: token 1 no longer dedups; newest still does.
	if err := s.PutToken(k, []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutToken(k, []byte("v"), 6); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Puts != 7 || st.DupPuts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRecoveryBlockedGetWakes: a Get parked on a recovered-empty folder
// wakes when a new put lands (waiters are rebuilt state, not recovered
// state — this guards the replay path leaving folds consistent).
func TestRecoveryBlockedGetWakes(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	mustPut(t, s, symbol.K(1), "x")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, durable.Config{})
	defer r.Close()
	got := make(chan []byte, 1)
	go func() {
		v, err := r.Get(symbol.K(2), nil)
		if err == nil {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	mustPut(t, r, symbol.K(2), "wake")
	select {
	case v := <-got:
		if string(v) != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovered store never woke the getter")
	}
}

// BenchmarkWALGroupCommit quantifies the durability tax and how group
// commit amortizes it: puts against a memory-only store, a group-committed
// WAL (SyncBatch), and an fsync-per-record WAL (SyncAlways), at 1 and 16
// concurrent putters. All putters hit one folder — one stripe — because
// that is the unit of group commit: the sync-always column pays one fsync
// per record no matter the concurrency, while the batch column's fsync
// covers every record that accumulated during the previous sync cycle.
// Recorded in DESIGN.md §7.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, mode := range []struct {
		name string
		open func(b *testing.B) *Store
	}{
		{"off", func(b *testing.B) *Store { return NewStore() }},
		{"batch", func(b *testing.B) *Store {
			return openStore(b, b.TempDir(), durable.Config{Sync: durable.SyncBatch, SnapshotEvery: -1})
		}},
		{"always", func(b *testing.B) *Store {
			return openStore(b, b.TempDir(), durable.Config{Sync: durable.SyncAlways, SnapshotEvery: -1})
		}},
	} {
		for _, procs := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/putters=%d", mode.name, procs), func(b *testing.B) {
				s := mode.open(b)
				defer s.Close()
				payload := []byte("sixteen-byte-pay")
				// RunParallel spawns parallelism × GOMAXPROCS goroutines;
				// group commit's win is concurrent committers sharing one
				// fsync, which needs goroutines, not cores.
				b.SetParallelism(max(procs/runtime.GOMAXPROCS(0), 1))
				b.SetBytes(int64(len(payload)))
				k := symbol.K(1)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if err := s.Put(k, payload); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// TestReleaseRedeliveredAfterCrashExactlyOnce guards the release protocol:
// a hidden value whose delivery was handed out but never confirmed
// (committed never called — the crash window between the trigger put and
// the re-deposit becoming safe) must survive recovery and be re-released
// by the next trigger — carrying the SAME release token, so the
// destination deduplicates if the first delivery actually landed.
func TestReleaseRedeliveredAfterCrashExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	type delivery struct {
		dest  string
		token uint64
	}
	var mu sync.Mutex
	var deliveries []delivery
	hook := func(confirm bool) Option {
		return WithForward(func(dest symbol.Key, payload []byte, relToken uint64, committed func()) {
			mu.Lock()
			deliveries = append(deliveries, delivery{dest.Canon(), relToken})
			mu.Unlock()
			if confirm && committed != nil {
				committed()
			}
		})
	}

	trig, dest := symbol.K(1), symbol.K(2)
	s := openStore(t, dir, durable.Config{}, hook(false)) // delivery never confirmed
	if err := s.PutDelayed(trig, dest, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, trig, "go") // releases; forward hook swallows, no confirm
	s.Crash()

	mu.Lock()
	if len(deliveries) != 1 {
		t.Fatalf("deliveries before crash: %v", deliveries)
	}
	first := deliveries[0]
	mu.Unlock()

	r := openStore(t, dir, durable.Config{}, hook(true))
	if got := r.DelayedCount(); got != 1 {
		t.Fatalf("unconfirmed release lost across crash: DelayedCount = %d, want 1", got)
	}
	mustPut(t, r, trig, "go-again") // re-releases the recovered entry
	mu.Lock()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries after recovery: %v", deliveries)
	}
	second := deliveries[1]
	mu.Unlock()
	if second.token != first.token || second.token == 0 {
		t.Fatalf("re-release token %d != original %d: destination cannot deduplicate", second.token, first.token)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A CONFIRMED release, by contrast, must not resurface.
	r2 := openStore(t, dir, durable.Config{}, hook(true))
	defer r2.Close()
	if got := r2.DelayedCount(); got != 0 {
		t.Fatalf("confirmed release resurfaced: DelayedCount = %d, want 0", got)
	}
}

// TestReleaseTokenDedupAtDestination: the same release delivered twice (the
// crash-retry path) lands once, because the re-deposit carries the release
// token as its dedup token. Exercised through a real local delivery.
func TestReleaseTokenDedupAtDestination(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	trig, dest := symbol.K(1), symbol.K(2)
	if err := s.PutDelayed(trig, dest, []byte("once")); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, trig, "go")
	if got := s.MemoCount(); got != 2 { // trigger memo + released value
		t.Fatalf("MemoCount = %d, want 2", got)
	}
	if got := s.Stats().DupPuts; got != 0 {
		t.Fatalf("DupPuts = %d before any retry", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGetSkipSurfacesDeadLog: a durable store whose log has died must
// report the failure from GetSkip — not a forever-empty folder — and roll
// the take back.
func TestGetSkipSurfacesDeadLog(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	k := symbol.K(1)
	mustPut(t, s, k, "v")
	s.Crash()
	if _, ok, err := s.GetSkip(k); ok || err == nil {
		t.Fatalf("GetSkip on dead log: ok=%v err=%v, want rolled-back take with an error", ok, err)
	}
	if got := s.MemoCount(); got != 1 {
		t.Fatalf("take not rolled back: MemoCount = %d", got)
	}
	if _, _, _, err := s.AltSkip([]symbol.Key{k}); err == nil {
		t.Fatal("AltSkip on dead log returned no error")
	}
}

// TestCloseJoinsBackgroundSnapshot: Close must not return while the
// background snapshot goroutine is still writing into the data directory.
// Replay re-arms the snapshot counter, so reopening a log with more
// recovered records than SnapshotEvery means the first take's commit fires
// a cycle moments before Close — the shutdown path used to race it
// (observed as TempDir cleanup failures in TestSnapshotTruncateRecover).
func TestCloseJoinsBackgroundSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{SnapshotEvery: 16}, WithShards(2))
	keep := symbol.K(2)
	mustPut(t, s, keep, "keeper")
	k := symbol.K(1)
	for i := 0; i < 64; i++ {
		mustPut(t, s, k, "churn")
		if _, ok, err := s.GetSkip(k); err != nil || !ok {
			t.Fatalf("churn take: ok=%v err=%v", ok, err)
		}
	}
	waitNotSnapshotting(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, durable.Config{SnapshotEvery: 16}, WithShards(2))
	if _, ok, err := r.GetSkip(keep); err != nil || !ok {
		t.Fatalf("keeper take: ok=%v err=%v", ok, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.snapshotting.Load() {
		t.Fatal("Close returned with a snapshot cycle still in flight")
	}
}
