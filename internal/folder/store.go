// Package folder implements D-Memo folder servers (paper §4.1): each server
// maintains a directory of unordered queues with exclusive access to its
// folders.
//
// Store is the data plane: folders spring into existence when first touched
// ("If a folder does not exist, it is created"), hold memos in no promised
// order, block getters until memos arrive, hold put_delayed values invisibly
// until a trigger memo lands, and vanish when they empty out. Server wraps a
// Store with the wire protocol and a thread cache.
package folder

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/sharedmem"
	"repro/internal/symbol"
)

// ErrCanceled reports a blocking operation abandoned by the caller.
var ErrCanceled = errors.New("folder: operation canceled")

// ForwardFunc delivers a put_delayed release whose destination folder may
// live on a different folder server. The Store calls it outside its lock.
type ForwardFunc func(dest symbol.Key, payload []byte)

// Store is one folder server's directory of unordered queues. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	folders map[string]*fold
	rng     uint64 // xorshift state for unordered extraction

	// Forward handles cross-server put_delayed releases. When nil,
	// releases are delivered locally.
	forward ForwardFunc

	// arena optionally holds memo payloads in the host's shared memory
	// (Fig. 1's shared-memory abstraction). Nil keeps payloads on the
	// Go heap.
	arena sharedmem.SharedMemory

	puts      atomic.Int64
	takes     atomic.Int64
	copies    atomic.Int64
	delayedIn atomic.Int64
	released  atomic.Int64
}

// fold is a single folder.
type fold struct {
	items   []item
	delayed []delayedEntry
	// waiters are signalled (and cleared) whenever an item arrives.
	waiters []chan struct{}
}

type item struct {
	data []byte
	seg  *sharedmem.Segment
}

type delayedEntry struct {
	val  item
	dest symbol.Key
}

// Option configures a Store.
type Option func(*Store)

// WithForward installs the cross-server release handler.
func WithForward(f ForwardFunc) Option {
	return func(s *Store) { s.forward = f }
}

// WithArena stores memo payloads in shared memory.
func WithArena(a sharedmem.SharedMemory) Option {
	return func(s *Store) { s.arena = a }
}

// NewStore returns an empty directory.
func NewStore(opts ...Option) *Store {
	s := &Store{
		folders: make(map[string]*fold),
		rng:     0x9E3779B97F4A7C15, // fixed seed: deterministic, still unordered
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// xorshift64 advances the extraction sequence. Caller holds s.mu.
func (s *Store) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// getFold returns the folder, creating it on demand. Caller holds s.mu.
func (s *Store) getFold(canon string) *fold {
	f, ok := s.folders[canon]
	if !ok {
		f = &fold{}
		s.folders[canon] = f
	}
	return f
}

// gcFold removes the folder if it is completely inert: no memos, no hidden
// delayed values, no waiters ("The folder will vanish once the memo is
// removed"). Caller holds s.mu.
func (s *Store) gcFold(canon string, f *fold) {
	if len(f.items) == 0 && len(f.delayed) == 0 && len(f.waiters) == 0 {
		delete(s.folders, canon)
	}
}

// wrap copies payload into the arena when configured.
func (s *Store) wrap(payload []byte) item {
	if s.arena != nil {
		if seg, err := s.arena.Alloc(max(len(payload), 1)); err == nil {
			copy(seg.Bytes, payload)
			return item{data: seg.Bytes[:len(payload)], seg: seg}
		}
		// Arena full: fall back to the heap rather than fail the put.
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return item{data: buf}
}

// unwrapTake copies the payload out and releases any arena segment.
func (s *Store) unwrapTake(it item) []byte {
	out := make([]byte, len(it.data))
	copy(out, it.data)
	if it.seg != nil && s.arena != nil {
		_ = s.arena.Free(it.seg)
	}
	return out
}

// unwrapCopy copies the payload without consuming the item.
func unwrapCopy(it item) []byte {
	out := make([]byte, len(it.data))
	copy(out, it.data)
	return out
}

// Put deposits a memo and releases any delayed values hidden in the folder.
func (s *Store) Put(key symbol.Key, payload []byte) {
	canon := key.Canon()
	s.mu.Lock()
	f := s.getFold(canon)
	f.items = append(f.items, s.wrap(payload))
	released := f.delayed
	f.delayed = nil
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()

	s.puts.Add(1)
	for _, w := range waiters {
		// Non-blocking send: a waiter may be registered on several folders
		// (alt/watch) and signalled by more than one Put.
		select {
		case w <- struct{}{}:
		default:
		}
	}
	// Deliver released delayed values after dropping the lock: their
	// destinations may be remote, or even folders on this same store.
	for _, d := range released {
		s.released.Add(1)
		payload := s.unwrapTake(d.val)
		if s.forward != nil {
			s.forward(d.dest, payload)
		} else {
			s.Put(d.dest, payload)
		}
	}
}

// PutDelayed hides payload in trigger's folder; the next memo arriving in
// trigger releases it into dest (§6.1.2). The hidden value is not gettable
// from trigger.
func (s *Store) PutDelayed(trigger, dest symbol.Key, payload []byte) {
	canon := trigger.Canon()
	s.mu.Lock()
	f := s.getFold(canon)
	f.delayed = append(f.delayed, delayedEntry{val: s.wrap(payload), dest: dest.Clone()})
	s.mu.Unlock()
	s.delayedIn.Add(1)
}

// takeLocked removes a pseudo-random item from f. Caller holds s.mu and
// guarantees f has items.
func (s *Store) takeLocked(f *fold) item {
	i := int(s.nextRand() % uint64(len(f.items)))
	it := f.items[i]
	last := len(f.items) - 1
	f.items[i] = f.items[last]
	f.items[last] = item{}
	f.items = f.items[:last]
	return it
}

// Get removes and returns a memo, blocking until one is available or cancel
// is closed.
func (s *Store) Get(key symbol.Key, cancel <-chan struct{}) ([]byte, error) {
	canon := key.Canon()
	for {
		s.mu.Lock()
		f := s.getFold(canon)
		if len(f.items) > 0 {
			it := s.takeLocked(f)
			s.gcFold(canon, f)
			s.mu.Unlock()
			s.takes.Add(1)
			return s.unwrapTake(it), nil
		}
		w := make(chan struct{}, 1)
		f.waiters = append(f.waiters, w)
		s.mu.Unlock()
		select {
		case <-w:
			// Signalled; loop and race for the item.
		case <-cancel:
			s.dropWaiter(canon, w)
			return nil, ErrCanceled
		}
	}
}

// GetCopy returns a copy of a memo without removing it, blocking until one
// is available.
func (s *Store) GetCopy(key symbol.Key, cancel <-chan struct{}) ([]byte, error) {
	canon := key.Canon()
	for {
		s.mu.Lock()
		f := s.getFold(canon)
		if len(f.items) > 0 {
			i := int(s.nextRand() % uint64(len(f.items)))
			out := unwrapCopy(f.items[i])
			s.mu.Unlock()
			s.copies.Add(1)
			return out, nil
		}
		w := make(chan struct{}, 1)
		f.waiters = append(f.waiters, w)
		s.mu.Unlock()
		select {
		case <-w:
		case <-cancel:
			s.dropWaiter(canon, w)
			return nil, ErrCanceled
		}
	}
}

// GetSkip removes and returns a memo if one is present.
func (s *Store) GetSkip(key symbol.Key) ([]byte, bool) {
	canon := key.Canon()
	s.mu.Lock()
	f, ok := s.folders[canon]
	if !ok || len(f.items) == 0 {
		s.mu.Unlock()
		return nil, false
	}
	it := s.takeLocked(f)
	s.gcFold(canon, f)
	s.mu.Unlock()
	s.takes.Add(1)
	return s.unwrapTake(it), true
}

// AltTake removes a memo from any of the given folders, blocking until one
// is available. Among simultaneously eligible folders the choice is
// nondeterministic (§6.1.2 get_alt). Returns the satisfied key.
func (s *Store) AltTake(keys []symbol.Key, cancel <-chan struct{}) (symbol.Key, []byte, error) {
	canons := make([]string, len(keys))
	for i, k := range keys {
		canons[i] = k.Canon()
	}
	for {
		s.mu.Lock()
		// Start the scan at a pseudo-random offset so no folder is
		// systematically favoured.
		off := int(s.nextRand() % uint64(len(keys)))
		for j := range keys {
			idx := (off + j) % len(keys)
			f, ok := s.folders[canons[idx]]
			if ok && len(f.items) > 0 {
				it := s.takeLocked(f)
				s.gcFold(canons[idx], f)
				s.mu.Unlock()
				s.takes.Add(1)
				return keys[idx], s.unwrapTake(it), nil
			}
		}
		w := make(chan struct{}, 1)
		for _, c := range canons {
			f := s.getFold(c)
			f.waiters = append(f.waiters, w)
		}
		s.mu.Unlock()
		select {
		case <-w:
			s.dropWaiterAll(canons, w)
		case <-cancel:
			s.dropWaiterAll(canons, w)
			return symbol.Key{}, nil, ErrCanceled
		}
	}
}

// AltSkip removes a memo from any of the folders without blocking.
func (s *Store) AltSkip(keys []symbol.Key) (symbol.Key, []byte, bool) {
	s.mu.Lock()
	off := 0
	if len(keys) > 0 {
		off = int(s.nextRand() % uint64(len(keys)))
	}
	for j := range keys {
		idx := (off + j) % len(keys)
		canon := keys[idx].Canon()
		f, ok := s.folders[canon]
		if ok && len(f.items) > 0 {
			it := s.takeLocked(f)
			s.gcFold(canon, f)
			s.mu.Unlock()
			s.takes.Add(1)
			return keys[idx], s.unwrapTake(it), true
		}
	}
	s.mu.Unlock()
	return symbol.Key{}, nil, false
}

// Watch blocks until any of the folders is non-empty, without consuming.
// It returns the key observed non-empty. Cross-server get_alt is built from
// per-server Watches plus retry (see the core package).
func (s *Store) Watch(keys []symbol.Key, cancel <-chan struct{}) (symbol.Key, error) {
	canons := make([]string, len(keys))
	for i, k := range keys {
		canons[i] = k.Canon()
	}
	for {
		s.mu.Lock()
		for i, c := range canons {
			if f, ok := s.folders[c]; ok && len(f.items) > 0 {
				s.mu.Unlock()
				return keys[i], nil
			}
		}
		w := make(chan struct{}, 1)
		for _, c := range canons {
			f := s.getFold(c)
			f.waiters = append(f.waiters, w)
		}
		s.mu.Unlock()
		select {
		case <-w:
			s.dropWaiterAll(canons, w)
		case <-cancel:
			s.dropWaiterAll(canons, w)
			return symbol.Key{}, ErrCanceled
		}
	}
}

// dropWaiter removes w from one folder's waiter list (after cancel).
func (s *Store) dropWaiter(canon string, w chan struct{}) {
	s.mu.Lock()
	if f, ok := s.folders[canon]; ok {
		for i, x := range f.waiters {
			if x == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		s.gcFold(canon, f)
	}
	s.mu.Unlock()
}

func (s *Store) dropWaiterAll(canons []string, w chan struct{}) {
	s.mu.Lock()
	for _, c := range canons {
		if f, ok := s.folders[c]; ok {
			for i, x := range f.waiters {
				if x == w {
					f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
					break
				}
			}
			s.gcFold(c, f)
		}
	}
	s.mu.Unlock()
}

// MemoCount reports the number of visible memos across all folders.
func (s *Store) MemoCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.folders {
		n += len(f.items)
	}
	return n
}

// FolderCount reports the number of existing (non-vanished) folders.
func (s *Store) FolderCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.folders)
}

// DelayedCount reports hidden values awaiting triggers.
func (s *Store) DelayedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.folders {
		n += len(f.delayed)
	}
	return n
}

// Stats is a snapshot of operation counters.
type Stats struct {
	Puts, Takes, Copies, DelayedIn, Released int64
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:      s.puts.Load(),
		Takes:     s.takes.Load(),
		Copies:    s.copies.Load(),
		DelayedIn: s.delayedIn.Load(),
		Released:  s.released.Load(),
	}
}
