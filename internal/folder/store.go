// Package folder implements D-Memo folder servers (paper §4.1): each server
// maintains a directory of unordered queues with exclusive access to its
// folders.
//
// Store is the data plane: folders spring into existence when first touched
// ("If a folder does not exist, it is created"), hold memos in no promised
// order, block getters until memos arrive, hold put_delayed values invisibly
// until a trigger memo lands, and vanish when they empty out. Server wraps a
// Store with the wire protocol and a thread cache.
//
// The directory is lock-striped: folders are hashed onto a fixed set of
// shards, each with its own mutex and extraction rng, so operations on
// distinct folders proceed in parallel. Multi-folder operations (AltTake,
// AltSkip, Watch) visit the shards one at a time — never holding two shard
// locks at once — registering a single shared waiter channel per shard so a
// Put on any involved folder wakes the blocked caller.
package folder

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/sharedmem"
	"repro/internal/symbol"
)

// ErrCanceled reports a blocking operation abandoned by the caller.
var ErrCanceled = errors.New("folder: operation canceled")

// ErrNoKeys reports a multi-folder operation (AltTake, Watch) invoked with
// an empty key set: there is no folder that could ever satisfy it.
var ErrNoKeys = errors.New("folder: empty key set")

// ForwardFunc delivers a put_delayed release whose destination folder may
// live on a different folder server. The Store calls it outside its locks.
// relToken is the entry's release token: the delivery must carry it as the
// deposit's dedup token, so a crash-recovered re-release deduplicates
// instead of duplicating. committed, when non-nil, must be called once the
// delivery has been handed off safely (destination acknowledged, or queued
// on the remote dispatcher); the store then logs the release as done so
// recovery stops re-delivering it.
type ForwardFunc func(dest symbol.Key, payload []byte, relToken uint64, committed func())

// DefaultShards is the shard count used when WithShards is not given. A
// power of two comfortably above typical core counts: striping is cheap and
// more stripes only help under contention.
const DefaultShards = 32

// Store is one folder server's directory of unordered queues. All methods
// are safe for concurrent use.
type Store struct {
	shards []shard
	mask   uint64 // len(shards)-1; len is a power of two

	// altSeq seeds the scan rotation of multi-shard operations so no
	// shard or folder is systematically favoured. Advanced atomically;
	// shared state on a path that is otherwise lock-striped.
	altSeq atomic.Uint64

	// forward handles cross-server put_delayed releases. When nil,
	// releases are delivered locally.
	forward ForwardFunc

	// arena optionally holds memo payloads in the host's shared memory
	// (Fig. 1's shared-memory abstraction). Nil keeps payloads on the
	// Go heap. The arena carries its own lock.
	arena sharedmem.SharedMemory

	// wal, when non-nil, is the durability engine: every mutating op
	// appends its record under the shard lock and waits for group commit
	// before acknowledging. Nil (the default) keeps the historical
	// memory-only store. See OpenStore.
	wal *durable.Log
	// snapshotting single-flights the background snapshot cycle.
	snapshotting atomic.Bool

	// tokens is the at-most-once dedup table: applied put tokens, checked
	// and recorded inside the target shard's critical section (shard lock
	// ordered before the table's own lock). It works with or without the
	// wal — link-failure retries need it in memory, crash recovery
	// additionally restores it from the log.
	tokens   tokenTable
	tokenCap int

	// Operation counters (obs.Counter so the same instances back both
	// Stats snapshots and the registry's folder_* series — one source of
	// truth, no double bookkeeping). altScans counts shard-group visits by
	// the multi-folder scans (AltTake/AltSkip/Watch): scans per satisfied
	// take is the §6.1.2 get_alt selection cost.
	puts      obs.Counter
	takes     obs.Counter
	copies    obs.Counter
	delayedIn obs.Counter
	released  obs.Counter
	dupPuts   obs.Counter
	dupTakes  obs.Counter
	altScans  obs.Counter
}

// shard is one stripe of the directory: a mutex, the folders hashed onto
// this stripe, and an extraction rng (per-shard so nextRand never contends
// across stripes). Padded so adjacent shards do not share a cache line.
type shard struct {
	mu      sync.Mutex //memolint:shard-lock
	folders map[string]*fold
	rng     uint64 // xorshift state for unordered extraction
	_       [104]byte
}

// fold is a single folder.
type fold struct {
	items   []item
	delayed []delayedEntry
	// waiters are signalled (and cleared) whenever an item arrives.
	waiters []chan struct{}
}

type item struct {
	data []byte
	seg  *sharedmem.Segment
}

type delayedEntry struct {
	val  item
	dest symbol.Key
	// rel is the release token: minted when the value is hidden, carried
	// by its eventual re-deposit as a dedup token, and named by the
	// RecRelease record once that re-deposit is safe.
	rel uint64
}

// Option configures a Store.
type Option func(*Store)

// WithForward installs the cross-server release handler.
func WithForward(f ForwardFunc) Option {
	return func(s *Store) { s.forward = f }
}

// WithArena stores memo payloads in shared memory.
func WithArena(a sharedmem.SharedMemory) Option {
	return func(s *Store) { s.arena = a }
}

// MaxShards caps the stripe count: far beyond any useful striping, and it
// keeps the power-of-two rounding below from overflowing on absurd input.
const MaxShards = 1 << 16

// DefaultTokenCap bounds the dedup-token table. Evicted-oldest-first; a
// retry delayed past this many newer tokened puts can no longer be
// deduplicated, so the cap is sized far beyond any sane retry window.
const DefaultTokenCap = 1 << 17

// WithTokenCap overrides the dedup-token table bound (n <= 0 keeps the
// default).
func WithTokenCap(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.tokenCap = n
		}
	}
}

// WithShards sets the stripe count, rounded up to a power of two and
// clamped to [1, MaxShards]. One shard reproduces the historical
// single-mutex store (useful as a contention baseline).
func WithShards(n int) Option {
	return func(s *Store) {
		if n < 1 {
			n = 1
		}
		if n > MaxShards {
			n = MaxShards
		}
		p := 1
		for p < n {
			p <<= 1
		}
		s.shards = make([]shard, p)
		s.mask = uint64(p - 1)
	}
}

// NewStore returns an empty directory.
func NewStore(opts ...Option) *Store {
	s := &Store{tokenCap: DefaultTokenCap}
	WithShards(DefaultShards)(s)
	for _, o := range opts {
		o(s)
	}
	s.tokens.cap = s.tokenCap
	for i := range s.shards {
		s.shards[i].folders = make(map[string]*fold)
		// Fixed per-shard seeds: deterministic, still unordered, never
		// zero (xorshift sticks at zero).
		s.shards[i].rng = mix64(0x9E3779B97F4A7C15 * uint64(i+1))
	}
	return s
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed scrambler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// shardIndex maps a key onto a stripe. Key.Hash is a pure function of the
// same (S, X) content that Canon renders, so keys naming the same folder
// always land on the same shard.
func (s *Store) shardIndex(key symbol.Key) uint64 {
	return key.Hash() & s.mask
}

func (s *Store) shardFor(key symbol.Key) *shard {
	return &s.shards[s.shardIndex(key)]
}

// nextSeq advances the rotation used to pick a starting shard for
// multi-folder scans.
func (s *Store) nextSeq() uint64 {
	return mix64(s.altSeq.Add(0x9E3779B97F4A7C15))
}

// nextRand advances the shard's extraction sequence. Caller holds sh.mu.
func (sh *shard) nextRand() uint64 {
	x := sh.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sh.rng = x
	return x
}

// getFold returns the folder, creating it on demand. Caller holds sh.mu.
func (sh *shard) getFold(canon string) *fold {
	f, ok := sh.folders[canon]
	if !ok {
		f = &fold{}
		sh.folders[canon] = f
	}
	return f
}

// gcFold removes the folder if it is completely inert: no memos, no hidden
// delayed values, no waiters ("The folder will vanish once the memo is
// removed"). Caller holds sh.mu.
func (sh *shard) gcFold(canon string, f *fold) {
	if len(f.items) == 0 && len(f.delayed) == 0 && len(f.waiters) == 0 {
		delete(sh.folders, canon)
	}
}

// takeLocked removes a pseudo-random item from f. Caller holds sh.mu and
// guarantees f has items.
func (sh *shard) takeLocked(f *fold) item {
	i := int(sh.nextRand() % uint64(len(f.items)))
	it := f.items[i]
	last := len(f.items) - 1
	f.items[i] = f.items[last]
	f.items[last] = item{}
	f.items = f.items[:last]
	return it
}

// wrap copies payload into the arena when configured. The arena has its own
// lock; wrap is called outside any shard lock.
func (s *Store) wrap(payload []byte) item {
	if s.arena != nil {
		if seg, err := s.arena.Alloc(max(len(payload), 1)); err == nil {
			copy(seg.Bytes, payload)
			return item{data: seg.Bytes[:len(payload)], seg: seg}
		}
		// Arena full: fall back to the heap rather than fail the put.
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return item{data: buf}
}

// unwrapTake copies the payload out and releases any arena segment.
func (s *Store) unwrapTake(it item) []byte {
	out := make([]byte, len(it.data))
	copy(out, it.data)
	if it.seg != nil && s.arena != nil {
		_ = s.arena.Free(it.seg)
	}
	return out
}

// unwrapCopy copies the payload without consuming the item.
func unwrapCopy(it item) []byte {
	out := make([]byte, len(it.data))
	copy(out, it.data)
	return out
}

// opTrace accumulates the wait components of one sampled folder operation:
// time spent acquiring shard locks, time parked waiting for a memo, and time
// blocked on WAL group commit. The server's Handle wrapper turns the totals
// into folder/durable spans. A nil *opTrace (every public entry point, and
// every unsampled request) is fully inert: the helpers branch on nil before
// touching the clock, so the untraced path takes no timestamps and allocates
// nothing.
type opTrace struct {
	lockWaitNS int64
	parkNS     int64
	commitNS   int64
}

// clock returns a start stamp for one timed section (0 when untraced).
func (ot *opTrace) clock() int64 {
	if ot == nil {
		return 0
	}
	return time.Now().UnixNano()
}

func (ot *opTrace) lockAcquired(t0 int64) {
	if ot != nil {
		ot.lockWaitNS += time.Now().UnixNano() - t0
	}
}

func (ot *opTrace) parked(t0 int64) {
	if ot != nil {
		ot.parkNS += time.Now().UnixNano() - t0
	}
}

func (ot *opTrace) committed(t0 int64) {
	if ot != nil {
		ot.commitNS += time.Now().UnixNano() - t0
	}
}

// Put deposits a memo and releases any delayed values hidden in the folder.
// The returned error is always nil on a memory-only store; on a durable
// store it reports a failed commit (the deposit is then not acknowledged
// durable).
//
//memolint:must-check-error
func (s *Store) Put(key symbol.Key, payload []byte) error {
	return s.PutToken(key, payload, 0)
}

// PutToken is Put carrying an at-most-once dedup token (0 = none). A put
// whose token was already applied is acknowledged without depositing again
// — the retry path for a maybe-delivered put. The acknowledgement of a
// deduplicated put still waits for the original record's durability, so a
// crash can never have acknowledged the retry and lost the original.
//
//memolint:must-check-error
func (s *Store) PutToken(key symbol.Key, payload []byte, token uint64) error {
	return s.putToken(key, payload, token, nil)
}

// putToken is PutToken with an optional trace accumulator (nil = untraced).
//
//memolint:must-check-error
func (s *Store) putToken(key symbol.Key, payload []byte, token uint64, ot *opTrace) error {
	canon := key.Canon()
	it := s.wrap(payload)
	si := int(s.shardIndex(key))
	sh := &s.shards[si]
	t0 := ot.clock()
	sh.mu.Lock()
	ot.lockAcquired(t0)
	if token != 0 && !s.tokens.noteIfNew(token) {
		sh.mu.Unlock()
		s.dupPuts.Inc()
		if s.wal != nil {
			tc := ot.clock()
			if err := s.wal.Barrier(si); err != nil {
				return err
			}
			ot.committed(tc)
		}
		return nil
	}
	f := sh.getFold(canon)
	f.items = append(f.items, it)
	released := f.delayed
	f.delayed = nil
	waiters := f.waiters
	f.waiters = nil
	var seq uint64
	if s.wal != nil {
		seq = s.wal.Append(si, &durable.Record{
			Type: durable.RecPut, Key: key, Payload: payload, Token: token,
		})
	}
	sh.mu.Unlock()

	s.puts.Inc()
	for _, w := range waiters {
		// Non-blocking send: a waiter may be registered on several folders
		// (alt/watch) and signalled by more than one Put.
		select {
		case w <- struct{}{}:
		default:
		}
	}
	// Deliver released delayed values after dropping the lock: their
	// destinations may be remote, or even folders on this same store.
	// Each delivery carries the entry's release token as its dedup token,
	// and only once the delivery is safe is the release logged done
	// (releaseDone). Replay therefore keeps any entry whose RecRelease
	// never landed, and the next trigger re-delivers it — deduplicated, so
	// an acknowledged hidden value survives a crash at any instant without
	// ever landing twice.
	for _, d := range released {
		s.released.Inc()
		payload := s.unwrapTake(d.val)
		if s.forward != nil {
			rel := d.rel
			s.forward(d.dest, payload, rel, func() { s.releaseDone(key, rel) })
		} else if err := s.PutToken(d.dest, payload, d.rel); err == nil {
			s.releaseDone(key, d.rel)
		}
	}
	if s.wal != nil {
		tc := ot.clock()
		if err := s.wal.Commit(si, seq); err != nil {
			return err
		}
		ot.committed(tc)
		s.maybeSnapshot()
	}
	return nil
}

// releaseDone logs that the delayed entry with release token rel has left
// trigger's folder durably-enough: its re-deposit committed locally or was
// handed to the remote dispatcher. No commit wait — if the record is lost
// to a crash, recovery re-releases the entry and the release token
// deduplicates the second delivery.
func (s *Store) releaseDone(trigger symbol.Key, rel uint64) {
	if s.wal == nil || rel == 0 {
		return
	}
	si := int(s.shardIndex(trigger))
	sh := &s.shards[si]
	sh.mu.Lock()
	s.wal.Append(si, &durable.Record{Type: durable.RecRelease, Key: trigger, Token: rel})
	sh.mu.Unlock()
}

// PutDelayed hides payload in trigger's folder; the next memo arriving in
// trigger releases it into dest (§6.1.2). The hidden value is not gettable
// from trigger.
//
//memolint:must-check-error
func (s *Store) PutDelayed(trigger, dest symbol.Key, payload []byte) error {
	return s.PutDelayedToken(trigger, dest, payload, 0)
}

// PutDelayedToken is PutDelayed with an at-most-once dedup token (0 = none),
// with the same semantics as PutToken.
//
//memolint:must-check-error
func (s *Store) PutDelayedToken(trigger, dest symbol.Key, payload []byte, token uint64) error {
	return s.putDelayedToken(trigger, dest, payload, token, nil)
}

// putDelayedToken is PutDelayedToken with an optional trace accumulator.
//
//memolint:must-check-error
func (s *Store) putDelayedToken(trigger, dest symbol.Key, payload []byte, token uint64, ot *opTrace) error {
	canon := trigger.Canon()
	it := s.wrap(payload)
	si := int(s.shardIndex(trigger))
	sh := &s.shards[si]
	t0 := ot.clock()
	sh.mu.Lock()
	ot.lockAcquired(t0)
	if token != 0 && !s.tokens.noteIfNew(token) {
		sh.mu.Unlock()
		s.dupPuts.Inc()
		if s.wal != nil {
			tc := ot.clock()
			if err := s.wal.Barrier(si); err != nil {
				return err
			}
			ot.committed(tc)
		}
		return nil
	}
	f := sh.getFold(canon)
	// Every hidden value gets a release token up front: its eventual
	// re-deposit (possibly re-driven by crash recovery, possibly retried
	// across a link failure) dedups on it.
	rel := newRelToken()
	f.delayed = append(f.delayed, delayedEntry{val: it, dest: dest.Clone(), rel: rel})
	var seq uint64
	if s.wal != nil {
		seq = s.wal.Append(si, &durable.Record{
			Type: durable.RecPutDelayed, Key: trigger, Dest: dest, Payload: payload,
			Token: token, Rel: rel,
		})
	}
	sh.mu.Unlock()
	s.delayedIn.Inc()
	if s.wal != nil {
		tc := ot.clock()
		if err := s.wal.Commit(si, seq); err != nil {
			return err
		}
		ot.committed(tc)
		s.maybeSnapshot()
	}
	return nil
}

// Get removes and returns a memo, blocking until one is available or cancel
// is closed.
//
//memolint:must-check-error
func (s *Store) Get(key symbol.Key, cancel <-chan struct{}) ([]byte, error) {
	return s.get(key, cancel, nil)
}

// get is Get with an optional trace accumulator (nil = untraced).
//
//memolint:must-check-error
func (s *Store) get(key symbol.Key, cancel <-chan struct{}, ot *opTrace) ([]byte, error) {
	canon := key.Canon()
	si := int(s.shardIndex(key))
	sh := &s.shards[si]
	for {
		t0 := ot.clock()
		sh.mu.Lock()
		ot.lockAcquired(t0)
		f := sh.getFold(canon)
		if len(f.items) > 0 {
			it := sh.takeLocked(f)
			seq := s.logTake(si, key, it, 0)
			sh.gcFold(canon, f)
			sh.mu.Unlock()
			if err := s.commitTake(si, seq, key, it, ot); err != nil {
				return nil, err
			}
			s.takes.Inc()
			return s.unwrapTake(it), nil
		}
		w := make(chan struct{}, 1)
		f.waiters = append(f.waiters, w)
		sh.mu.Unlock()
		tp := ot.clock()
		select {
		case <-w:
			// Signalled; loop and race for the item.
			ot.parked(tp)
		case <-cancel:
			dropWaiter(sh, canon, w)
			return nil, ErrCanceled
		}
	}
}

// GetCopy returns a copy of a memo without removing it, blocking until one
// is available.
func (s *Store) GetCopy(key symbol.Key, cancel <-chan struct{}) ([]byte, error) {
	return s.getCopy(key, cancel, nil)
}

// getCopy is GetCopy with an optional trace accumulator (nil = untraced).
func (s *Store) getCopy(key symbol.Key, cancel <-chan struct{}, ot *opTrace) ([]byte, error) {
	canon := key.Canon()
	sh := s.shardFor(key)
	for {
		t0 := ot.clock()
		sh.mu.Lock()
		ot.lockAcquired(t0)
		f := sh.getFold(canon)
		if len(f.items) > 0 {
			i := int(sh.nextRand() % uint64(len(f.items)))
			out := unwrapCopy(f.items[i])
			sh.mu.Unlock()
			s.copies.Inc()
			return out, nil
		}
		w := make(chan struct{}, 1)
		f.waiters = append(f.waiters, w)
		sh.mu.Unlock()
		tp := ot.clock()
		select {
		case <-w:
			ot.parked(tp)
		case <-cancel:
			dropWaiter(sh, canon, w)
			return nil, ErrCanceled
		}
	}
}

// GetSkip removes and returns a memo if one is present. A non-nil error
// reports a durable store whose log has died: the take is rolled back — a
// payload never leaves the store unless its removal is on disk — and the
// caller sees the failure instead of a forever-empty folder.
//
//memolint:must-check-error
func (s *Store) GetSkip(key symbol.Key) ([]byte, bool, error) {
	return s.getSkip(key, nil)
}

// getSkip is GetSkip with an optional trace accumulator (nil = untraced).
//
//memolint:must-check-error
func (s *Store) getSkip(key symbol.Key, ot *opTrace) ([]byte, bool, error) {
	canon := key.Canon()
	si := int(s.shardIndex(key))
	sh := &s.shards[si]
	t0 := ot.clock()
	sh.mu.Lock()
	ot.lockAcquired(t0)
	f, ok := sh.folders[canon]
	if !ok || len(f.items) == 0 {
		sh.mu.Unlock()
		return nil, false, nil
	}
	it := sh.takeLocked(f)
	seq := s.logTake(si, key, it, 0)
	sh.gcFold(canon, f)
	sh.mu.Unlock()
	if err := s.commitTake(si, seq, key, it, ot); err != nil {
		return nil, false, err
	}
	s.takes.Inc()
	return s.unwrapTake(it), true, nil
}

// awaitTakeToken is the claim step every tokened destructive read runs
// before touching a folder. The first caller for a token becomes the owner
// (owner == true) and must execute the take, then resolve or abandon e. Any
// other caller parks until the owner finishes and is answered from the
// cached result — a retry can therefore never consume a second memo, even
// racing its own original. An abandoned claim (owner canceled, or its log
// died) wakes the parked retries to race for a fresh claim.
func (s *Store) awaitTakeToken(token uint64, cancel <-chan struct{}, ot *opTrace) (*takeResult, *tokEntry, bool, error) {
	for {
		e, owner := s.tokens.claimTake(token)
		if owner {
			return nil, e, true, nil
		}
		if e.done != nil {
			tp := ot.clock()
			select {
			case <-e.done:
				ot.parked(tp)
			case <-cancel:
				return nil, nil, false, ErrCanceled
			}
		}
		if res := s.tokens.result(e); res != nil {
			return res, nil, false, nil
		}
		if e.done == nil {
			// The token is in the table with no take result: a deposit used
			// it. Tokens are minted per operation from 64 random bits, so
			// this is a collision or a protocol error; refuse rather than
			// guess at an answer.
			return nil, nil, false, fmt.Errorf("folder: take token %#x already applied by a deposit", token)
		}
		// Claim abandoned: loop and race to re-claim.
	}
}

// takeFromCache answers a deduplicated take from its token's cached result:
// waits out the original take record's durability (a cache hit must never
// be acknowledged ahead of the removal it repeats), bumps the dup counter,
// and hands back a private copy of the payload. ok is false for a cached
// observed-empty miss.
func (s *Store) takeFromCache(res *takeResult, ot *opTrace) (symbol.Key, []byte, bool, error) {
	s.dupTakes.Inc()
	if res.empty {
		return symbol.Key{}, nil, false, nil
	}
	if s.wal != nil {
		tc := ot.clock()
		if err := s.wal.Barrier(res.shard); err != nil {
			return symbol.Key{}, nil, false, err
		}
		ot.committed(tc)
	}
	out := make([]byte, len(res.data))
	copy(out, res.data)
	return res.key, out, true, nil
}

// GetToken is Get carrying an at-most-once dedup token (0 = none): the
// retry path for a maybe-executed destructive read. The first attempt to
// claim the token executes the take and caches the payload; every retry is
// answered from the cache, so the caller receives the same memo exactly
// once no matter how many attempts raced.
//
//memolint:must-check-error
func (s *Store) GetToken(key symbol.Key, token uint64, cancel <-chan struct{}) ([]byte, error) {
	return s.getToken(key, token, cancel, nil)
}

// getToken is GetToken with an optional trace accumulator (nil = untraced).
//
//memolint:must-check-error
func (s *Store) getToken(key symbol.Key, token uint64, cancel <-chan struct{}, ot *opTrace) ([]byte, error) {
	if token == 0 {
		return s.get(key, cancel, ot)
	}
	res, e, owner, err := s.awaitTakeToken(token, cancel, ot)
	if err != nil {
		return nil, err
	}
	if !owner {
		_, out, ok, err := s.takeFromCache(res, ot)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Only a skip caches an empty answer, and tokens are minted per
			// operation — reaching here is a token-space violation.
			return nil, fmt.Errorf("folder: take token %#x cached an empty result", token)
		}
		return out, nil
	}
	canon := key.Canon()
	si := int(s.shardIndex(key))
	sh := &s.shards[si]
	resolved := false
	defer func() {
		if !resolved {
			s.tokens.abandonTake(token, e)
		}
	}()
	for {
		t0 := ot.clock()
		sh.mu.Lock()
		ot.lockAcquired(t0)
		f := sh.getFold(canon)
		if len(f.items) > 0 {
			it := sh.takeLocked(f)
			seq := s.logTake(si, key, it, token)
			// Resolve inside the critical section that removed the item:
			// snapshot cuts order against it (see the token dump in
			// snapshot), and a parked retry still waits out the commit via
			// the durability barrier in takeFromCache.
			s.tokens.resolveTake(e, &takeResult{
				key: key.Clone(), data: append([]byte(nil), it.data...), shard: si,
			})
			resolved = true
			sh.gcFold(canon, f)
			sh.mu.Unlock()
			if err := s.commitTake(si, seq, key, it, ot); err != nil {
				s.tokens.forget(token)
				return nil, err
			}
			s.takes.Inc()
			return s.unwrapTake(it), nil
		}
		w := make(chan struct{}, 1)
		f.waiters = append(f.waiters, w)
		sh.mu.Unlock()
		tp := ot.clock()
		select {
		case <-w:
			ot.parked(tp)
		case <-cancel:
			dropWaiter(sh, canon, w)
			return nil, ErrCanceled
		}
	}
}

// GetSkipToken is GetSkip with an at-most-once dedup token (0 = none). The
// observed-empty miss is cached too — in memory only, an empty answer needs
// no durability — so a retried skip repeats its original's answer instead
// of sampling the folder again. The claim wait is bounded: a token is only
// ever shared by attempts of the same non-blocking skip.
//
//memolint:must-check-error
func (s *Store) GetSkipToken(key symbol.Key, token uint64) ([]byte, bool, error) {
	return s.getSkipToken(key, token, nil)
}

// getSkipToken is GetSkipToken with an optional trace accumulator.
//
//memolint:must-check-error
func (s *Store) getSkipToken(key symbol.Key, token uint64, ot *opTrace) ([]byte, bool, error) {
	if token == 0 {
		return s.getSkip(key, ot)
	}
	res, e, owner, err := s.awaitTakeToken(token, nil, ot)
	if err != nil {
		return nil, false, err
	}
	if !owner {
		_, out, ok, err := s.takeFromCache(res, ot)
		return out, ok, err
	}
	canon := key.Canon()
	si := int(s.shardIndex(key))
	sh := &s.shards[si]
	t0 := ot.clock()
	sh.mu.Lock()
	ot.lockAcquired(t0)
	f, ok := sh.folders[canon]
	if !ok || len(f.items) == 0 {
		s.tokens.resolveTake(e, &takeResult{empty: true, shard: si})
		sh.mu.Unlock()
		return nil, false, nil
	}
	it := sh.takeLocked(f)
	seq := s.logTake(si, key, it, token)
	s.tokens.resolveTake(e, &takeResult{
		key: key.Clone(), data: append([]byte(nil), it.data...), shard: si,
	})
	sh.gcFold(canon, f)
	sh.mu.Unlock()
	if err := s.commitTake(si, seq, key, it, ot); err != nil {
		s.tokens.forget(token)
		return nil, false, err
	}
	s.takes.Inc()
	return s.unwrapTake(it), true, nil
}

// AltTakeToken is AltTake with an at-most-once dedup token (0 = none): the
// cached result remembers which key satisfied the original, so a retry
// returns the same (key, payload) pair.
//
//memolint:must-check-error
func (s *Store) AltTakeToken(keys []symbol.Key, token uint64, cancel <-chan struct{}) (symbol.Key, []byte, error) {
	return s.altTakeToken(keys, token, cancel, nil)
}

// altTakeToken is AltTakeToken with an optional trace accumulator.
//
//memolint:must-check-error
func (s *Store) altTakeToken(keys []symbol.Key, token uint64, cancel <-chan struct{}, ot *opTrace) (symbol.Key, []byte, error) {
	if token == 0 {
		return s.altTake(keys, cancel, ot)
	}
	if len(keys) == 0 {
		return symbol.Key{}, nil, ErrNoKeys
	}
	res, e, owner, err := s.awaitTakeToken(token, cancel, ot)
	if err != nil {
		return symbol.Key{}, nil, err
	}
	if !owner {
		k, out, ok, err := s.takeFromCache(res, ot)
		if err != nil {
			return symbol.Key{}, nil, err
		}
		if !ok {
			return symbol.Key{}, nil, fmt.Errorf("folder: take token %#x cached an empty result", token)
		}
		return k, out, nil
	}
	resolved := false
	defer func() {
		if !resolved {
			s.tokens.abandonTake(token, e)
		}
	}()
	canons := canonsOf(keys)
	groups := s.groupByShard(keys)
	var it item
	var seq uint64
	var seqShard int
	found, err := s.awaitGroups(groups, canons, cancel, ot, func(g altGroup) int {
		off := int(g.sh.nextRand() % uint64(len(g.idxs)))
		for j := range g.idxs {
			idx := g.idxs[(off+j)%len(g.idxs)]
			if f, ok := g.sh.folders[canons[idx]]; ok && len(f.items) > 0 {
				it = g.sh.takeLocked(f)
				seqShard = int(s.shardIndex(keys[idx]))
				seq = s.logTake(seqShard, keys[idx], it, token)
				s.tokens.resolveTake(e, &takeResult{
					key: keys[idx].Clone(), data: append([]byte(nil), it.data...), shard: seqShard,
				})
				resolved = true
				g.sh.gcFold(canons[idx], f)
				return idx
			}
		}
		return -1
	})
	if err != nil {
		return symbol.Key{}, nil, err
	}
	if err := s.commitTake(seqShard, seq, keys[found], it, ot); err != nil {
		s.tokens.forget(token)
		return symbol.Key{}, nil, err
	}
	s.takes.Inc()
	return keys[found], s.unwrapTake(it), nil
}

// logTake appends a take record for it (caller holds the shard lock).
// token, when non-zero, is the take's dedup token — recorded so replay can
// re-cache the result for retries. Returns 0 when the store is memory-only.
//
//memolint:requires-shard-lock
func (s *Store) logTake(si int, key symbol.Key, it item, token uint64) uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Append(si, &durable.Record{Type: durable.RecTake, Key: key, Payload: it.data, Token: token})
}

// commitTake waits for a take record's durability. If the commit fails —
// only possible once the log is terminally dead — the item is restored, so
// a payload never leaves the store without its removal being durable.
//
//memolint:forbids-shard-lock
//memolint:must-check-error
func (s *Store) commitTake(si int, seq uint64, key symbol.Key, it item, ot *opTrace) error {
	if s.wal == nil {
		return nil
	}
	tc := ot.clock()
	if err := s.wal.Commit(si, seq); err != nil {
		s.untake(key, it)
		return err
	}
	ot.committed(tc)
	s.maybeSnapshot()
	return nil
}

// untake puts a taken item back after a failed take commit. No record is
// logged: commits only fail on a dead log, which accepts no records.
func (s *Store) untake(key symbol.Key, it item) {
	canon := key.Canon()
	sh := s.shardFor(key)
	sh.mu.Lock()
	f := sh.getFold(canon)
	f.items = append(f.items, it)
	waiters := f.waiters
	f.waiters = nil
	sh.mu.Unlock()
	for _, w := range waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// altGroup is the slice of a multi-folder key set that lives on one shard:
// the shard plus indices into the caller's keys/canons.
type altGroup struct {
	sh   *shard
	idxs []int
}

// groupByShard buckets keys by shard, in ascending shard order (a
// deterministic scan order; locks are only ever taken one at a time).
// Groups share one sorted index slice instead of a map to keep the
// get_alt/watch hot path light on allocations.
func (s *Store) groupByShard(keys []symbol.Key) []altGroup {
	shardOf := make([]uint64, len(keys))
	idxs := make([]int, len(keys))
	for i, k := range keys {
		shardOf[i] = s.shardIndex(k)
		idxs[i] = i
	}
	slices.SortFunc(idxs, func(a, b int) int {
		return cmp.Compare(shardOf[a], shardOf[b])
	})
	var groups []altGroup
	for start := 0; start < len(idxs); {
		si := shardOf[idxs[start]]
		end := start + 1
		for end < len(idxs) && shardOf[idxs[end]] == si {
			end++
		}
		groups = append(groups, altGroup{sh: &s.shards[si], idxs: idxs[start:end]})
		start = end
	}
	return groups
}

func canonsOf(keys []symbol.Key) []string {
	canons := make([]string, len(keys))
	for i, k := range keys {
		canons[i] = k.Canon()
	}
	return canons
}

// awaitGroups is the blocking skeleton shared by AltTake and Watch: one
// pass over the shards, one lock at a time, calling visit with the shard
// lock held. If visit returns a key index the pass stops; otherwise the
// shared waiter w is left behind on every folder of the shard before
// moving on, so a Put that lands on an already-visited shard finds w
// registered there and no wakeup is lost. Blocks until visit succeeds or
// cancel closes.
func (s *Store) awaitGroups(groups []altGroup, canons []string, cancel <-chan struct{}, ot *opTrace, visit func(g altGroup) int) (int, error) {
	for {
		w := make(chan struct{}, 1)
		start := int(s.nextSeq() % uint64(len(groups)))
		found := -1
		registered := false
		for gi := range groups {
			g := groups[(start+gi)%len(groups)]
			s.altScans.Inc()
			t0 := ot.clock()
			g.sh.mu.Lock()
			ot.lockAcquired(t0)
			found = visit(g)
			if found < 0 {
				for _, idx := range g.idxs {
					f := g.sh.getFold(canons[idx])
					f.waiters = append(f.waiters, w)
				}
			}
			g.sh.mu.Unlock()
			if found >= 0 {
				break
			}
			registered = true
		}
		if found >= 0 {
			if registered {
				s.dropWaiterGroups(groups, canons, w)
			}
			return found, nil
		}
		tp := ot.clock()
		select {
		case <-w:
			ot.parked(tp)
			s.dropWaiterGroups(groups, canons, w)
		case <-cancel:
			s.dropWaiterGroups(groups, canons, w)
			return -1, ErrCanceled
		}
	}
}

// AltTake removes a memo from any of the given folders, blocking until one
// is available. Among simultaneously eligible folders the choice is
// nondeterministic (§6.1.2 get_alt). Returns the satisfied key. An empty
// key set fails immediately with ErrNoKeys.
//
//memolint:must-check-error
func (s *Store) AltTake(keys []symbol.Key, cancel <-chan struct{}) (symbol.Key, []byte, error) {
	return s.altTake(keys, cancel, nil)
}

// altTake is AltTake with an optional trace accumulator (nil = untraced).
//
//memolint:must-check-error
func (s *Store) altTake(keys []symbol.Key, cancel <-chan struct{}, ot *opTrace) (symbol.Key, []byte, error) {
	if len(keys) == 0 {
		return symbol.Key{}, nil, ErrNoKeys
	}
	canons := canonsOf(keys)
	groups := s.groupByShard(keys)
	var it item
	var seq uint64
	var seqShard int
	found, err := s.awaitGroups(groups, canons, cancel, ot, func(g altGroup) int {
		off := int(g.sh.nextRand() % uint64(len(g.idxs)))
		for j := range g.idxs {
			idx := g.idxs[(off+j)%len(g.idxs)]
			if f, ok := g.sh.folders[canons[idx]]; ok && len(f.items) > 0 {
				it = g.sh.takeLocked(f)
				seqShard = int(s.shardIndex(keys[idx]))
				seq = s.logTake(seqShard, keys[idx], it, 0)
				g.sh.gcFold(canons[idx], f)
				return idx
			}
		}
		return -1
	})
	if err != nil {
		return symbol.Key{}, nil, err
	}
	if err := s.commitTake(seqShard, seq, keys[found], it, ot); err != nil {
		return symbol.Key{}, nil, err
	}
	s.takes.Inc()
	return keys[found], s.unwrapTake(it), nil
}

// AltSkip removes a memo from any of the folders without blocking. The scan
// visits shards one at a time, so concurrent mutation between shards may be
// observed — same as the cross-server get_alt_skip built above this. A
// non-nil error reports a dead durable log (the take is rolled back).
//
//memolint:must-check-error
func (s *Store) AltSkip(keys []symbol.Key) (symbol.Key, []byte, bool, error) {
	if len(keys) == 0 {
		return symbol.Key{}, nil, false, nil
	}
	canons := canonsOf(keys)
	groups := s.groupByShard(keys)
	start := int(s.nextSeq() % uint64(len(groups)))
	for gi := range groups {
		g := groups[(start+gi)%len(groups)]
		s.altScans.Inc()
		g.sh.mu.Lock()
		off := int(g.sh.nextRand() % uint64(len(g.idxs)))
		for j := range g.idxs {
			idx := g.idxs[(off+j)%len(g.idxs)]
			if f, ok := g.sh.folders[canons[idx]]; ok && len(f.items) > 0 {
				it := g.sh.takeLocked(f)
				si := int(s.shardIndex(keys[idx]))
				seq := s.logTake(si, keys[idx], it, 0)
				g.sh.gcFold(canons[idx], f)
				g.sh.mu.Unlock()
				if err := s.commitTake(si, seq, keys[idx], it, nil); err != nil {
					return symbol.Key{}, nil, false, err
				}
				s.takes.Inc()
				return keys[idx], s.unwrapTake(it), true, nil
			}
		}
		g.sh.mu.Unlock()
	}
	return symbol.Key{}, nil, false, nil
}

// Watch blocks until any of the folders is non-empty, without consuming.
// It returns the key observed non-empty. Cross-server get_alt is built from
// per-server Watches plus retry (see the core package). An empty key set
// fails immediately with ErrNoKeys.
func (s *Store) Watch(keys []symbol.Key, cancel <-chan struct{}) (symbol.Key, error) {
	return s.watch(keys, cancel, nil)
}

// watch is Watch with an optional trace accumulator (nil = untraced).
func (s *Store) watch(keys []symbol.Key, cancel <-chan struct{}, ot *opTrace) (symbol.Key, error) {
	if len(keys) == 0 {
		return symbol.Key{}, ErrNoKeys
	}
	canons := canonsOf(keys)
	groups := s.groupByShard(keys)
	found, err := s.awaitGroups(groups, canons, cancel, ot, func(g altGroup) int {
		for _, idx := range g.idxs {
			if f, ok := g.sh.folders[canons[idx]]; ok && len(f.items) > 0 {
				return idx
			}
		}
		return -1
	})
	if err != nil {
		return symbol.Key{}, err
	}
	return keys[found], nil
}

// dropWaiter removes w from one folder's waiter list (after cancel).
func dropWaiter(sh *shard, canon string, w chan struct{}) {
	sh.mu.Lock()
	if f, ok := sh.folders[canon]; ok {
		dropWaiterFrom(f, w)
		sh.gcFold(canon, f)
	}
	sh.mu.Unlock()
}

// dropWaiterGroups removes w wherever it is still registered, one shard at
// a time. Groups that never saw a registration are scanned harmlessly.
func (s *Store) dropWaiterGroups(groups []altGroup, canons []string, w chan struct{}) {
	for _, g := range groups {
		g.sh.mu.Lock()
		for _, idx := range g.idxs {
			if f, ok := g.sh.folders[canons[idx]]; ok {
				dropWaiterFrom(f, w)
				g.sh.gcFold(canons[idx], f)
			}
		}
		g.sh.mu.Unlock()
	}
}

// dropWaiterFrom removes w from f's waiter list if present. Caller holds
// the shard lock.
func dropWaiterFrom(f *fold, w chan struct{}) {
	for i, x := range f.waiters {
		if x == w {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// ShardCount reports the number of stripes (for diagnostics and tests).
func (s *Store) ShardCount() int { return len(s.shards) }

// MemoCount reports the number of visible memos across all folders.
func (s *Store) MemoCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, f := range sh.folders {
			n += len(f.items)
		}
		sh.mu.Unlock()
	}
	return n
}

// FolderCount reports the number of existing (non-vanished) folders.
func (s *Store) FolderCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.folders)
		sh.mu.Unlock()
	}
	return n
}

// DelayedCount reports hidden values awaiting triggers.
func (s *Store) DelayedCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, f := range sh.folders {
			n += len(f.delayed)
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of operation counters.
type Stats struct {
	Puts, Takes, Copies, DelayedIn, Released int64
	// DupPuts counts tokened puts acknowledged without applying — retries
	// of an already-applied put, deduplicated by their token.
	DupPuts int64
	// DupTakes counts tokened destructive reads answered from a token's
	// cached result instead of consuming again — retries of a
	// maybe-executed get/get_skip/alt_take.
	DupTakes int64
	// AltScans counts shard-group visits by the multi-folder scans
	// (AltTake, AltSkip, Watch); scans per take is the get_alt selection
	// cost.
	AltScans int64
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:      s.puts.Load(),
		Takes:     s.takes.Load(),
		Copies:    s.copies.Load(),
		DelayedIn: s.delayedIn.Load(),
		Released:  s.released.Load(),
		DupPuts:   s.dupPuts.Load(),
		DupTakes:  s.dupTakes.Load(),
		AltScans:  s.altScans.Load(),
	}
}

// ShardStats is a snapshot of one stripe's occupancy.
type ShardStats struct {
	// Folders is the stripe's live (non-vanished) folder count.
	Folders int
	// Memos is the stripe's visible memo count.
	Memos int
	// Delayed is the stripe's hidden put_delayed value count.
	Delayed int
	// Waiters is the number of waiter registrations parked on the stripe's
	// folders (one blocked multi-folder scan may register on several).
	Waiters int
}

// ShardStats snapshots stripe i's occupancy under its lock.
func (s *Store) ShardStats(i int) ShardStats {
	sh := &s.shards[i]
	var st ShardStats
	sh.mu.Lock()
	st.Folders = len(sh.folders)
	for _, f := range sh.folders {
		st.Memos += len(f.items)
		st.Delayed += len(f.delayed)
		st.Waiters += len(f.waiters)
	}
	sh.mu.Unlock()
	return st
}
