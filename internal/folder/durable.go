package folder

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/symbol"
)

// OpenStore opens a durable Store backed by the write-ahead log in dir,
// replaying any recovered state (visible memos, still-hidden put_delayed
// values, and applied dedup tokens) before the first operation is accepted.
// The directory is created on first use. Every mutating operation on the
// returned store is acknowledged only after its record is committed per
// dcfg's sync mode, and the store snapshots + truncates the log in the
// background as records accumulate.
func OpenStore(dir string, dcfg durable.Config, opts ...Option) (*Store, error) {
	s := NewStore(opts...)
	lg, err := durable.Open(dir, s.ShardCount(), dcfg, s.applyRecord)
	if err != nil {
		return nil, fmt.Errorf("folder: open store %s: %w", dir, err)
	}
	s.wal = lg
	return s, nil
}

// Durable reports whether the store is backed by a write-ahead log.
func (s *Store) Durable() bool { return s.wal != nil }

// Log exposes the durability engine (diagnostics and tests); nil on a
// memory-only store.
func (s *Store) Log() *durable.Log { return s.wal }

// Close flushes and closes the write-ahead log. Pending operation commits
// complete durable first. A memory-only store closes trivially.
//
// Close joins an in-flight background snapshot cycle before closing the
// log: the orderly-shutdown contract is that no goroutine is still writing
// into the data directory when Close returns. (Replay re-arms the snapshot
// counter, so a freshly reopened store's first commit can fire a cycle
// moments before Close — exactly the race this wait closes.) Concurrent
// mutating operations during Close remain the caller's responsibility;
// Crash deliberately does not wait, matching its SIGKILL semantics.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	for s.snapshotting.Load() {
		time.Sleep(time.Millisecond)
	}
	return s.wal.Close()
}

// Crash abandons buffered-but-uncommitted log records and slams the log
// shut — the in-process stand-in for SIGKILL, used by the crash-recovery
// harness. Acknowledged operations survive in the log; unacknowledged ones
// fail their commit and are rolled back or reported to the caller.
func (s *Store) Crash() {
	if s.wal != nil {
		s.wal.Crash()
	}
}

// applyRecord replays one recovered record. Replay runs before the store is
// published, but it takes the shard locks anyway — they are uncontended and
// keep the mutation paths uniform. Replay rebuilds state only: the
// operation counters (Stats) stay zero, so a restarted store reports what
// happened in this incarnation, not its entire logged history.
func (s *Store) applyRecord(rec *durable.Record) error {
	switch rec.Type {
	case durable.RecPut:
		canon := rec.Key.Canon()
		it := s.wrap(rec.Payload)
		sh := s.shardFor(rec.Key)
		sh.mu.Lock()
		f := sh.getFold(canon)
		f.items = append(f.items, it)
		// Deliberately NOT clearing f.delayed, although the live put
		// released those entries: each entry is removed only by its own
		// RecRelease record, logged once its re-deposit was safe. An entry
		// that survives here is re-released by the next trigger put, and
		// its release token deduplicates the delivery if the first one
		// actually landed.
		if rec.Token != 0 {
			s.tokens.note(rec.Token)
		}
		sh.mu.Unlock()
	case durable.RecPutDelayed:
		canon := rec.Key.Canon()
		it := s.wrap(rec.Payload)
		sh := s.shardFor(rec.Key)
		sh.mu.Lock()
		f := sh.getFold(canon)
		f.delayed = append(f.delayed, delayedEntry{val: it, dest: rec.Dest.Clone(), rel: rec.Rel})
		if rec.Token != 0 {
			s.tokens.note(rec.Token)
		}
		sh.mu.Unlock()
	case durable.RecRelease:
		canon := rec.Key.Canon()
		sh := s.shardFor(rec.Key)
		sh.mu.Lock()
		if f, ok := sh.folders[canon]; ok {
			for i := range f.delayed {
				if f.delayed[i].rel == rec.Token {
					if f.delayed[i].val.seg != nil && s.arena != nil {
						_ = s.arena.Free(f.delayed[i].val.seg)
					}
					f.delayed = append(f.delayed[:i], f.delayed[i+1:]...)
					break
				}
			}
			// A missing entry is legal: a snapshot cut between the
			// in-memory release and the RecRelease append dumps the folder
			// without the entry, and the release record lands in the next
			// generation.
			sh.gcFold(canon, f)
		}
		sh.mu.Unlock()
	case durable.RecTake:
		canon := rec.Key.Canon()
		sh := s.shardFor(rec.Key)
		sh.mu.Lock()
		f, ok := sh.folders[canon]
		found := false
		if ok {
			for i := range f.items {
				if bytes.Equal(f.items[i].data, rec.Payload) {
					it := f.items[i]
					last := len(f.items) - 1
					f.items[i] = f.items[last]
					f.items[last] = item{}
					f.items = f.items[:last]
					if it.seg != nil && s.arena != nil {
						_ = s.arena.Free(it.seg)
					}
					found = true
					break
				}
			}
			sh.gcFold(canon, f)
		}
		if found && rec.Token != 0 {
			// A tokened take: re-cache its result so a post-crash retry is
			// answered from the cache instead of consuming a second memo.
			s.tokens.noteTakeCache(rec.Token, &takeResult{
				key:   rec.Key.Clone(),
				data:  append([]byte(nil), rec.Payload...),
				shard: int(s.shardIndex(rec.Key)),
			})
		}
		sh.mu.Unlock()
		if !found {
			// Per-folder record order guarantees the put replays before its
			// take; a miss is corruption, not a tolerable anomaly.
			return fmt.Errorf("%w: take of %v finds no matching memo", durable.ErrCorrupt, rec.Key)
		}
	case durable.RecToken:
		s.tokens.note(rec.Token)
	case durable.RecTakeCache:
		res := &takeResult{key: rec.Key.Clone(), empty: rec.Empty, shard: int(s.shardIndex(rec.Key))}
		if !rec.Empty {
			res.data = append([]byte(nil), rec.Payload...)
		}
		s.tokens.noteTakeCache(rec.Token, res)
	default:
		return fmt.Errorf("%w: unexpected record type %v", durable.ErrCorrupt, rec.Type)
	}
	return nil
}

// maybeSnapshot starts a background snapshot + truncation cycle when enough
// records have accumulated. Single-flight; failures leave the log serving
// (the rotated stripes simply carry more history until the next attempt).
func (s *Store) maybeSnapshot() {
	if s.wal == nil || !s.wal.ShouldSnapshot() {
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.snapshotting.Store(false)
		_ = s.snapshot()
	}()
}

// snapshot cuts every shard under its own lock — the store pauses one shard
// at a time, never globally — then commits the snapshot, truncating all
// superseded log generations.
func (s *Store) snapshot() error {
	snap, err := s.wal.StartSnapshot()
	if err != nil {
		return err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := snap.CutShard(i, func(emit func(*durable.Record) error) error {
			return dumpShard(sh, emit)
		})
		sh.mu.Unlock()
		if err != nil {
			snap.Abort()
			return err
		}
	}
	// The token table is global, not per-shard; dump it after every cut so
	// a token noted before its shard's cut is never lost (one noted after
	// rides in the new generation's records, and double-noting is
	// idempotent). Take results resolve under their shard's lock, so the
	// same cut/dump ordering covers them: a result published before its
	// shard's cut is visible here; one published after rides in the new
	// generation's tokened RecTake. In-progress take claims have applied
	// nothing yet and are deliberately not dumped.
	for _, d := range s.tokens.dump() {
		rec := &durable.Record{Type: durable.RecToken, Token: d.tok}
		if d.res != nil {
			rec = &durable.Record{
				Type: durable.RecTakeCache, Token: d.tok,
				Key: d.res.key, Payload: d.res.data, Empty: d.res.empty,
			}
		}
		if err := snap.AppendRecord(rec); err != nil {
			snap.Abort()
			return err
		}
	}
	return snap.Commit()
}

// dumpShard emits one shard's state as compacted records: per folder the
// visible items then the hidden delayed values (replay order matters — a
// put record clears the folder's delayed list). Caller holds the shard lock.
func dumpShard(sh *shard, emit func(*durable.Record) error) error {
	for canon, f := range sh.folders {
		key, err := symbol.ParseCanon(canon)
		if err != nil {
			return fmt.Errorf("%w: unparseable folder key %q", durable.ErrCorrupt, canon)
		}
		for _, it := range f.items {
			if err := emit(&durable.Record{Type: durable.RecPut, Key: key, Payload: it.data}); err != nil {
				return err
			}
		}
		for _, d := range f.delayed {
			if err := emit(&durable.Record{
				Type: durable.RecPutDelayed, Key: key, Dest: d.dest, Payload: d.val.data,
				Rel: d.rel,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// takeResult is a consumed take's cached outcome: the satisfied key and a
// private payload copy (or an observed-empty miss). shard names the stripe
// whose log carries the take record, so a cache hit can wait on that
// stripe's durability barrier before acknowledging.
type takeResult struct {
	key   symbol.Key
	data  []byte
	empty bool
	shard int
}

// tokEntry is one applied (or in-flight) dedup token. Three states:
//   - put token: done == nil, res == nil — presence alone is the answer.
//   - in-progress take claim: done != nil, res == nil — the claiming take
//     is still executing; retries park on done instead of taking again.
//   - resolved take: res != nil (done closed, or nil after replay) — the
//     cached result answers retries.
type tokEntry struct {
	// done, when non-nil, is closed exactly once: when the claiming take
	// resolves (res published first) or abandons (entry removed first).
	done chan struct{}
	// res is the take's cached outcome; guarded by the table lock.
	res *takeResult
}

// tokenTable is the at-most-once dedup table: applied put tokens and
// consumed-take results, bounded by FIFO eviction. Its lock nests strictly
// inside a Store shard lock: noteIfNew and resolveTake are only called
// while the tokened op's target shard is locked, which serializes a retry
// against its original and orders results against snapshot cuts.
type tokenTable struct {
	mu   sync.Mutex
	cap  int
	set  map[uint64]*tokEntry
	fifo []uint64
	head int
}

// noteIfNew records tok and reports whether it was new — one acquisition
// for the check-and-note a tokened put performs, keeping the global table
// a single short critical section nested inside the shard lock.
func (t *tokenTable) noteIfNew(tok uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.noteLocked(tok)
}

func (t *tokenTable) note(tok uint64) {
	if tok == 0 {
		return
	}
	t.mu.Lock()
	t.noteLocked(tok)
	t.mu.Unlock()
}

func (t *tokenTable) noteLocked(tok uint64) bool {
	if _, ok := t.lookupLocked(tok); ok {
		return false
	}
	t.insertLocked(tok, &tokEntry{})
	return true
}

func (t *tokenTable) lookupLocked(tok uint64) (*tokEntry, bool) {
	if t.set == nil {
		t.set = make(map[uint64]*tokEntry)
	}
	e, ok := t.set[tok]
	return e, ok
}

// insertLocked adds a new entry, evicting oldest-first past the cap. An
// evicted in-progress claim still resolves through its own entry pointer —
// eviction only forgets the token for future retries.
func (t *tokenTable) insertLocked(tok uint64, e *tokEntry) {
	t.set[tok] = e
	t.fifo = append(t.fifo, tok)
	if len(t.set) > t.cap && t.cap > 0 {
		delete(t.set, t.fifo[t.head])
		t.fifo[t.head] = 0
		t.head++
		if t.head > len(t.fifo)/2 && t.head > 1024 {
			t.fifo = append([]uint64(nil), t.fifo[t.head:]...)
			t.head = 0
		}
	}
}

// claimTake installs an in-progress claim for tok if it is unseen and
// reports whether the caller became the owner (and must later resolve or
// abandon the claim). A false return hands back whatever entry already
// holds the token.
func (t *tokenTable) claimTake(tok uint64) (*tokEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.lookupLocked(tok); ok {
		return e, false
	}
	e := &tokEntry{done: make(chan struct{})}
	t.insertLocked(tok, e)
	return e, true
}

// resolveTake publishes the claimed take's result and wakes parked retries.
// Called under the taken shard's lock — the same critical section that
// removed the item and appended its RecTake — so a snapshot cut of that
// shard either sees the result (dumped as RecTakeCache) or precedes the
// take entirely (its record rides in the new generation).
func (t *tokenTable) resolveTake(e *tokEntry, res *takeResult) {
	t.mu.Lock()
	e.res = res
	t.mu.Unlock()
	close(e.done)
}

// abandonTake drops an unresolved claim (canceled, or its commit failed and
// the take was rolled back) so a later retry re-executes instead of caching
// a non-answer. Parked retries wake and race to re-claim.
func (t *tokenTable) abandonTake(tok uint64, e *tokEntry) {
	t.mu.Lock()
	if cur, ok := t.set[tok]; ok && cur == e {
		delete(t.set, tok)
	}
	t.mu.Unlock()
	close(e.done)
}

// forget removes tok outright — the failed-commit path, where the take was
// already resolved but then rolled back by untake. Only a terminally dead
// log gets here; stale holders of the entry fail their durability barrier.
func (t *tokenTable) forget(tok uint64) {
	t.mu.Lock()
	delete(t.set, tok)
	t.mu.Unlock()
}

// result reads e's published outcome (nil for put tokens and abandoned
// claims).
func (t *tokenTable) result(e *tokEntry) *takeResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	return e.res
}

// noteTakeCache records a recovered take result (replay path — no waiters
// exist yet). A bare RecToken note for the same token is upgraded in place.
func (t *tokenTable) noteTakeCache(tok uint64, res *takeResult) {
	if tok == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.lookupLocked(tok); ok {
		if e.res == nil && e.done == nil {
			e.res = res
		}
		return
	}
	t.insertLocked(tok, &tokEntry{res: res})
}

// newRelToken mints a non-zero release token for a hidden delayed value.
func newRelToken() uint64 {
	for {
		if t := rand.Uint64(); t != 0 {
			return t
		}
	}
}

// tokenDump is one live token for a snapshot: res is nil for a plain put
// token, the cached outcome for a resolved take.
type tokenDump struct {
	tok uint64
	res *takeResult
}

// dump lists live tokens oldest-first (for snapshots). In-progress take
// claims are skipped: they have applied nothing yet, and their eventual
// RecTake lands in the post-cut generation.
func (t *tokenTable) dump() []tokenDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]tokenDump, 0, len(t.set))
	for _, tok := range t.fifo[t.head:] {
		e, ok := t.set[tok]
		if !ok {
			continue
		}
		if e.done != nil && e.res == nil {
			continue // in-progress claim
		}
		out = append(out, tokenDump{tok: tok, res: e.res})
	}
	return out
}

// Tokens reports the live dedup-token count (diagnostics and tests).
func (s *Store) Tokens() int {
	s.tokens.mu.Lock()
	defer s.tokens.mu.Unlock()
	return len(s.tokens.set)
}
