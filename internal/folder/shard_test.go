// Tests for the lock-striped Store: empty-key-set regressions, cross-shard
// multi-folder operations, a -race stress workload, and the parallel
// throughput benchmark comparing the sharded store with the historical
// single-mutex layout (WithShards(1)).
package folder

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/symbol"
)

func TestWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {32, 32}, {33, 64},
		// Absurd values clamp instead of overflowing the rounding loop.
		{MaxShards + 1, MaxShards}, {int(^uint(0) >> 1), MaxShards},
	} {
		s := NewStore(WithShards(tc.in))
		if got := s.ShardCount(); got != tc.want {
			t.Errorf("WithShards(%d): ShardCount = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewStore().ShardCount(); got != DefaultShards {
		t.Errorf("default ShardCount = %d, want %d", got, DefaultShards)
	}
}

// The empty key set can never be satisfied; it must fail immediately rather
// than panic (AltTake used to divide by zero) or block forever (Watch used
// to wait on no folders, ignoring everything but cancel).
func TestAltTakeEmptyKeySet(t *testing.T) {
	s := NewStore()
	done := make(chan error, 1)
	go func() {
		_, _, err := s.AltTake(nil, never)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoKeys) {
			t.Fatalf("AltTake(nil) err = %v, want ErrNoKeys", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AltTake(nil) blocked")
	}
}

func TestWatchEmptyKeySet(t *testing.T) {
	s := NewStore()
	done := make(chan error, 1)
	go func() {
		_, err := s.Watch(nil, never)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoKeys) {
			t.Fatalf("Watch(nil) err = %v, want ErrNoKeys", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Watch(nil) blocked")
	}
}

func TestAltSkipEmptyKeySet(t *testing.T) {
	s := NewStore()
	if _, _, ok, _ := s.AltSkip(nil); ok {
		t.Fatal("AltSkip(nil) claimed a memo")
	}
}

// crossShardKeys returns n keys guaranteed to live on n distinct shards.
func crossShardKeys(t *testing.T, s *Store, n int) []symbol.Key {
	t.Helper()
	if s.ShardCount() < n {
		t.Fatalf("store has %d shards, need %d", s.ShardCount(), n)
	}
	keys := make([]symbol.Key, 0, n)
	seen := make(map[uint64]bool)
	for sym := symbol.Symbol(1); len(keys) < n; sym++ {
		k := symbol.K(sym)
		si := s.shardIndex(k)
		if !seen[si] {
			seen[si] = true
			keys = append(keys, k)
		}
		if sym > 1<<16 {
			t.Fatal("could not scatter keys across shards")
		}
	}
	return keys
}

func TestAltTakeAcrossShards(t *testing.T) {
	s := NewStore(WithShards(8))
	keys := crossShardKeys(t, s, 4)
	// Immediate hit on each shard in turn.
	for i, k := range keys {
		s.Put(k, []byte{byte(i)})
		got, v, err := s.AltTake(keys, never)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(k) || v[0] != byte(i) {
			t.Fatalf("AltTake = %v %v, want %v %d", got, v, k, i)
		}
	}
	if s.FolderCount() != 0 {
		t.Fatalf("folders leaked: %d", s.FolderCount())
	}
}

func TestAltTakeBlocksAcrossShardsThenWakes(t *testing.T) {
	s := NewStore(WithShards(8))
	keys := crossShardKeys(t, s, 4)
	for target := range keys {
		got := make(chan symbol.Key, 1)
		go func() {
			k, _, err := s.AltTake(keys, never)
			if err == nil {
				got <- k
			}
		}()
		select {
		case <-got:
			t.Fatal("AltTake returned with all folders empty")
		case <-time.After(10 * time.Millisecond):
		}
		// Wake via a folder on an arbitrary shard; the shared waiter must
		// be registered on every shard the key set touches.
		s.Put(keys[target], []byte("x"))
		select {
		case k := <-got:
			if !k.Equal(keys[target]) {
				t.Fatalf("woke with %v, want %v", k, keys[target])
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("AltTake never woke for shard of key %d", target)
		}
	}
	if n := s.FolderCount(); n != 0 {
		t.Fatalf("waiter registration leaked %d folders", n)
	}
}

func TestWatchAcrossShards(t *testing.T) {
	s := NewStore(WithShards(8))
	keys := crossShardKeys(t, s, 4)
	woke := make(chan symbol.Key, 1)
	go func() {
		k, err := s.Watch(keys, never)
		if err == nil {
			woke <- k
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.Put(keys[3], []byte("observed"))
	select {
	case k := <-woke:
		if !k.Equal(keys[3]) {
			t.Fatalf("Watch woke with %v", k)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Watch never fired across shards")
	}
	if s.MemoCount() != 1 {
		t.Fatalf("Watch consumed the memo: count=%d", s.MemoCount())
	}
}

func TestAltTakeCancelAcrossShardsCleansWaiters(t *testing.T) {
	s := NewStore(WithShards(8))
	keys := crossShardKeys(t, s, 4)
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.AltTake(keys, cancel)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel ignored")
	}
	deadline := time.Now().Add(time.Second)
	for s.FolderCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled cross-shard waiter leaked folders (count=%d)", s.FolderCount())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSingleShardStoreStillWorks(t *testing.T) {
	// WithShards(1) is the historical single-mutex layout; everything must
	// behave identically.
	s := NewStore(WithShards(1))
	a, b := symbol.K(1), symbol.K(2)
	s.Put(a, []byte("A"))
	s.PutDelayed(b, a, []byte("D"))
	s.Put(b, []byte("B"))
	got := map[string]bool{}
	for i := 0; i < 3; i++ {
		k, v, err := s.AltTake([]symbol.Key{a, b}, never)
		if err != nil {
			t.Fatal(err)
		}
		got[k.Canon()+"="+string(v)] = true
	}
	for _, want := range []string{"1=A", "1=D", "2=B"} {
		if !got[want] {
			t.Fatalf("missing %q in %v", want, got)
		}
	}
	if s.MemoCount() != 0 || s.FolderCount() != 0 {
		t.Fatalf("residue: memos=%d folders=%d", s.MemoCount(), s.FolderCount())
	}
}

// TestStoreStressCrossShard hammers a sharded store with concurrent Put,
// PutDelayed, Get, AltTake, and Watch over overlapping folder sets with
// random cancellation, then checks that every memo was consumed exactly
// once and the counters balance. Run with -race.
func TestStoreStressCrossShard(t *testing.T) {
	s := NewStore(WithShards(8))
	const (
		nFolders    = 12
		producers   = 6
		consumers   = 6
		perProducer = 300
	)
	keys := make([]symbol.Key, nFolders)
	for i := range keys {
		keys[i] = symbol.K(symbol.Symbol(i+1), uint32(i))
	}
	enc := func(id uint32) []byte {
		return []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)}
	}
	dec := func(v []byte) uint32 {
		return uint32(v[0]) | uint32(v[1])<<8 | uint32(v[2])<<16 | uint32(v[3])<<24
	}

	var nextID atomic.Uint32
	var consumed atomic.Int64
	var seen sync.Map // id -> true, for duplicate detection
	stop := make(chan struct{})

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < perProducer; i++ {
				k := keys[rng.Intn(nFolders)]
				if i%5 == 0 {
					// Hide a value behind a trigger on a (likely) different
					// shard, then fire the trigger. Both payloads are
					// accountable ids.
					trig := keys[rng.Intn(nFolders)]
					s.PutDelayed(trig, k, enc(nextID.Add(1)))
					s.Put(trig, enc(nextID.Add(1)))
				} else {
					s.Put(k, enc(nextID.Add(1)))
				}
			}
		}(p)
	}

	var consWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1000))
			record := func(v []byte) {
				id := dec(v)
				if _, dup := seen.LoadOrStore(id, true); dup {
					t.Errorf("memo %d consumed twice", id)
				}
				consumed.Add(1)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Overlapping random subset of the folder set.
				lo := rng.Intn(nFolders)
				hi := lo + 1 + rng.Intn(nFolders-lo)
				sub := keys[lo:hi]
				// Cancel at a random short deadline so blocked operations
				// retry and eventually observe stop.
				cancel := make(chan struct{})
				tm := time.AfterFunc(time.Duration(1+rng.Intn(3))*time.Millisecond,
					func() { close(cancel) })
				switch rng.Intn(8) {
				case 0: // single-folder blocking get
					if v, err := s.Get(sub[0], cancel); err == nil {
						record(v)
					}
				case 1: // watch (does not consume), then non-blocking sweep
					if _, err := s.Watch(sub, cancel); err == nil {
						if _, v, ok, _ := s.AltSkip(sub); ok {
							record(v)
						}
					}
				default:
					if _, v, err := s.AltTake(sub, cancel); err == nil {
						record(v)
					}
				}
				tm.Stop()
			}
		}(c)
	}

	prodWG.Wait()
	total := int64(nextID.Load())
	deadline := time.Now().Add(30 * time.Second)
	for consumed.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d of %d memos before deadline (lost memos?)",
				consumed.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	consWG.Wait()

	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d memos, produced %d", got, total)
	}
	st := s.Stats()
	if st.Puts != total {
		t.Errorf("Stats.Puts = %d, want %d (every id delivered by exactly one Put)", st.Puts, total)
	}
	if st.Takes != total {
		t.Errorf("Stats.Takes = %d, want %d", st.Takes, total)
	}
	if st.DelayedIn != st.Released {
		t.Errorf("DelayedIn = %d, Released = %d: hidden values stranded", st.DelayedIn, st.Released)
	}
	if n := s.MemoCount(); n != 0 {
		t.Errorf("MemoCount = %d after drain", n)
	}
	if n := s.DelayedCount(); n != 0 {
		t.Errorf("DelayedCount = %d after drain", n)
	}
	if n := s.FolderCount(); n != 0 {
		t.Errorf("FolderCount = %d after all workers joined", n)
	}
}

// BenchmarkStoreParallelPutGet measures put+get round trips with G
// goroutines over disjoint folders, on the sharded store and on the
// single-mutex baseline (WithShards(1)). Disjoint folders are the paper's
// scaling case: a folder server should serve independent folders on
// independent cores.
func BenchmarkStoreParallelPutGet(b *testing.B) {
	payload := make([]byte, 64)
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"baseline-1shard", 1},
		{"sharded", DefaultShards},
	} {
		for _, g := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				s := NewStore(WithShards(cfg.shards))
				per := b.N/g + 1
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < g; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						k := symbol.K(symbol.Symbol(i+1), uint32(i))
						for j := 0; j < per; j++ {
							s.Put(k, payload)
							if _, err := s.Get(k, never); err != nil {
								b.Error(err)
								return
							}
						}
					}(i)
				}
				wg.Wait()
			})
		}
	}
}
