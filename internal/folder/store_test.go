package folder

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/sharedmem"
	"repro/internal/symbol"
)

var never = make(chan struct{}) // a cancel channel that never fires

func TestPutGetSingle(t *testing.T) {
	s := NewStore()
	k := symbol.K(1)
	s.Put(k, []byte("hello"))
	got, err := s.Get(k, never)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestFolderCreatedOnDemandAndVanishes(t *testing.T) {
	s := NewStore()
	k := symbol.K(1)
	if s.FolderCount() != 0 {
		t.Fatal("folders exist before use")
	}
	s.Put(k, []byte("x"))
	if s.FolderCount() != 1 {
		t.Fatalf("FolderCount = %d", s.FolderCount())
	}
	s.Get(k, never)
	if s.FolderCount() != 0 {
		t.Fatalf("folder did not vanish after last memo removed: %d", s.FolderCount())
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	s := NewStore()
	k := symbol.K(2)
	got := make(chan []byte, 1)
	go func() {
		v, err := s.Get(k, never)
		if err == nil {
			got <- v
		}
	}()
	select {
	case <-got:
		t.Fatal("Get returned before Put")
	case <-time.After(20 * time.Millisecond):
	}
	s.Put(k, []byte("late"))
	select {
	case v := <-got:
		if string(v) != "late" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never woke")
	}
}

func TestGetCancel(t *testing.T) {
	s := NewStore()
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.Get(symbol.K(3), cancel)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel ignored")
	}
	// The canceled waiter must not leak a folder.
	deadline := time.Now().Add(time.Second)
	for s.FolderCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled waiter leaked folder (count=%d)", s.FolderCount())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGetCopyDoesNotConsume(t *testing.T) {
	s := NewStore()
	k := symbol.K(4)
	s.Put(k, []byte("keep"))
	a, err := s.GetCopy(k, never)
	if err != nil || string(a) != "keep" {
		t.Fatalf("copy 1: %q %v", a, err)
	}
	b, err := s.GetCopy(k, never)
	if err != nil || string(b) != "keep" {
		t.Fatalf("copy 2: %q %v", b, err)
	}
	if s.MemoCount() != 1 {
		t.Fatalf("MemoCount = %d", s.MemoCount())
	}
	// The original is still gettable.
	if v, err := s.Get(k, never); err != nil || string(v) != "keep" {
		t.Fatalf("final get: %q %v", v, err)
	}
}

func TestGetCopyReturnsIndependentCopy(t *testing.T) {
	s := NewStore()
	k := symbol.K(4)
	s.Put(k, []byte("orig"))
	c, _ := s.GetCopy(k, never)
	c[0] = 'X'
	v, _ := s.Get(k, never)
	if string(v) != "orig" {
		t.Fatalf("stored memo mutated through copy: %q", v)
	}
}

func TestGetSkip(t *testing.T) {
	s := NewStore()
	k := symbol.K(5)
	if _, ok, _ := s.GetSkip(k); ok {
		t.Fatal("GetSkip found a memo in an empty folder")
	}
	if s.FolderCount() != 0 {
		t.Fatal("GetSkip on missing folder created it")
	}
	s.Put(k, []byte("x"))
	v, ok, _ := s.GetSkip(k)
	if !ok || string(v) != "x" {
		t.Fatalf("GetSkip = %q,%v", v, ok)
	}
	if _, ok, _ := s.GetSkip(k); ok {
		t.Fatal("GetSkip found a consumed memo")
	}
}

func TestUnorderedExtraction(t *testing.T) {
	// Put 0..63; extraction order must be a permutation but NOT the
	// insertion order (the queues are explicitly unordered).
	s := NewStore()
	k := symbol.K(6)
	const n = 64
	for i := 0; i < n; i++ {
		s.Put(k, []byte{byte(i)})
	}
	var order []int
	for i := 0; i < n; i++ {
		v, err := s.Get(k, never)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, int(v[0]))
	}
	sorted := append([]int(nil), order...)
	sort.Ints(sorted)
	for i := 0; i < n; i++ {
		if sorted[i] != i {
			t.Fatalf("extraction lost/duplicated items: %v", sorted)
		}
	}
	fifo := true
	for i, v := range order {
		if v != i {
			fifo = false
			break
		}
	}
	if fifo {
		t.Fatal("extraction was exactly FIFO; unordered queue should shuffle")
	}
}

func TestPutDelayedHiddenUntilTrigger(t *testing.T) {
	s := NewStore()
	trigger, dest := symbol.K(7), symbol.K(8)
	s.PutDelayed(trigger, dest, []byte("payload"))
	if s.DelayedCount() != 1 {
		t.Fatalf("DelayedCount = %d", s.DelayedCount())
	}
	// Hidden: not gettable from trigger or dest.
	if _, ok, _ := s.GetSkip(trigger); ok {
		t.Fatal("delayed value visible in trigger folder")
	}
	if _, ok, _ := s.GetSkip(dest); ok {
		t.Fatal("delayed value visible in dest folder before trigger")
	}
	// Trigger arrives.
	s.Put(trigger, []byte("the trigger"))
	v, ok, _ := s.GetSkip(dest)
	if !ok || string(v) != "payload" {
		t.Fatalf("released value = %q,%v", v, ok)
	}
	// The trigger memo itself stays in the trigger folder.
	tv, ok, _ := s.GetSkip(trigger)
	if !ok || string(tv) != "the trigger" {
		t.Fatalf("trigger memo = %q,%v", tv, ok)
	}
	if s.DelayedCount() != 0 {
		t.Fatalf("DelayedCount after release = %d", s.DelayedCount())
	}
}

func TestPutDelayedMultipleReleasedByOneTrigger(t *testing.T) {
	s := NewStore()
	trigger := symbol.K(9)
	d1, d2 := symbol.K(10), symbol.K(11)
	s.PutDelayed(trigger, d1, []byte("a"))
	s.PutDelayed(trigger, d2, []byte("b"))
	s.Put(trigger, []byte("go"))
	if _, ok, _ := s.GetSkip(d1); !ok {
		t.Fatal("first delayed value not released")
	}
	if _, ok, _ := s.GetSkip(d2); !ok {
		t.Fatal("second delayed value not released")
	}
}

func TestPutDelayedChain(t *testing.T) {
	// Release into a folder that itself holds a delayed value: the release
	// acts as an arriving memo and must trigger the next stage (dataflow).
	s := NewStore()
	a, b, c := symbol.K(12), symbol.K(13), symbol.K(14)
	s.PutDelayed(b, c, []byte("stage2"))
	s.PutDelayed(a, b, []byte("stage1"))
	s.Put(a, []byte("spark"))
	if v, ok, _ := s.GetSkip(c); !ok || string(v) != "stage2" {
		t.Fatalf("chain did not propagate: %q %v", v, ok)
	}
	if v, ok, _ := s.GetSkip(b); !ok || string(v) != "stage1" {
		t.Fatalf("intermediate stage lost: %q %v", v, ok)
	}
}

func TestPutDelayedForwardHook(t *testing.T) {
	var forwarded []string
	var tokens []uint64
	var mu sync.Mutex
	s := NewStore(WithForward(func(dest symbol.Key, payload []byte, relToken uint64, committed func()) {
		mu.Lock()
		forwarded = append(forwarded, dest.Canon()+"="+string(payload))
		tokens = append(tokens, relToken)
		mu.Unlock()
		if committed != nil {
			committed()
		}
	}))
	s.PutDelayed(symbol.K(1), symbol.K(2, 3), []byte("x"))
	s.Put(symbol.K(1), nil)
	mu.Lock()
	defer mu.Unlock()
	if len(forwarded) != 1 || forwarded[0] != "2/3=x" {
		t.Fatalf("forwarded = %v", forwarded)
	}
	if len(tokens) != 1 || tokens[0] == 0 {
		t.Fatalf("release token = %v, want one non-zero token", tokens)
	}
}

func TestPutDelayedReleaseWakesBlockedGetter(t *testing.T) {
	s := NewStore()
	trigger, dest := symbol.K(15), symbol.K(16)
	got := make(chan []byte, 1)
	go func() {
		v, err := s.Get(dest, never)
		if err == nil {
			got <- v
		}
	}()
	time.Sleep(5 * time.Millisecond)
	s.PutDelayed(trigger, dest, []byte("wake"))
	s.Put(trigger, nil)
	select {
	case v := <-got:
		if string(v) != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked getter not woken by delayed release")
	}
}

func TestAltTakeImmediate(t *testing.T) {
	s := NewStore()
	ks := []symbol.Key{symbol.K(20), symbol.K(21), symbol.K(22)}
	s.Put(ks[1], []byte("middle"))
	k, v, err := s.AltTake(ks, never)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(ks[1]) || string(v) != "middle" {
		t.Fatalf("AltTake = %v %q", k, v)
	}
}

func TestAltTakeBlocksThenWakes(t *testing.T) {
	s := NewStore()
	ks := []symbol.Key{symbol.K(23), symbol.K(24)}
	type result struct {
		k symbol.Key
		v []byte
	}
	got := make(chan result, 1)
	go func() {
		k, v, err := s.AltTake(ks, never)
		if err == nil {
			got <- result{k, v}
		}
	}()
	select {
	case <-got:
		t.Fatal("AltTake returned with all folders empty")
	case <-time.After(20 * time.Millisecond):
	}
	s.Put(ks[0], []byte("first"))
	select {
	case r := <-got:
		if !r.k.Equal(ks[0]) || string(r.v) != "first" {
			t.Fatalf("AltTake = %v %q", r.k, r.v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AltTake never woke")
	}
}

func TestAltTakeEventuallyDrainsAllFolders(t *testing.T) {
	// Nondeterministic choice must still be able to reach every folder.
	s := NewStore()
	ks := []symbol.Key{symbol.K(25), symbol.K(26), symbol.K(27)}
	for i, k := range ks {
		s.Put(k, []byte{byte(i)})
	}
	seen := make(map[byte]bool)
	for range ks {
		_, v, err := s.AltTake(ks, never)
		if err != nil {
			t.Fatal(err)
		}
		seen[v[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("AltTake drained %d distinct folders, want 3", len(seen))
	}
	if s.MemoCount() != 0 {
		t.Fatalf("memos left: %d", s.MemoCount())
	}
}

func TestAltSkip(t *testing.T) {
	s := NewStore()
	ks := []symbol.Key{symbol.K(28), symbol.K(29)}
	if _, _, ok, _ := s.AltSkip(ks); ok {
		t.Fatal("AltSkip found memo in empty folders")
	}
	s.Put(ks[1], []byte("z"))
	k, v, ok, _ := s.AltSkip(ks)
	if !ok || !k.Equal(ks[1]) || string(v) != "z" {
		t.Fatalf("AltSkip = %v %q %v", k, v, ok)
	}
}

func TestWatchDoesNotConsume(t *testing.T) {
	s := NewStore()
	k := symbol.K(30)
	woke := make(chan symbol.Key, 1)
	go func() {
		got, err := s.Watch([]symbol.Key{k}, never)
		if err == nil {
			woke <- got
		}
	}()
	time.Sleep(5 * time.Millisecond)
	s.Put(k, []byte("observed"))
	select {
	case got := <-woke:
		if !got.Equal(k) {
			t.Fatalf("Watch woke with %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Watch never fired")
	}
	if s.MemoCount() != 1 {
		t.Fatalf("Watch consumed the memo: count=%d", s.MemoCount())
	}
}

func TestWatchImmediateWhenNonEmpty(t *testing.T) {
	s := NewStore()
	k := symbol.K(31)
	s.Put(k, []byte("x"))
	got, err := s.Watch([]symbol.Key{symbol.K(99), k}, never)
	if err != nil || !got.Equal(k) {
		t.Fatalf("Watch = %v %v", got, err)
	}
}

func TestWatchCancel(t *testing.T) {
	s := NewStore()
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.Watch([]symbol.Key{symbol.K(32)}, cancel)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Watch cancel ignored")
	}
}

func TestManyProducersManyConsumers(t *testing.T) {
	s := NewStore()
	k := symbol.K(40)
	const producers, consumers = 8, 8
	const perProducer = 200
	var wg sync.WaitGroup
	sum := make(chan int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for {
				v, err := s.Get(k, never)
				if err != nil {
					return
				}
				n := int(v[0]) | int(v[1])<<8
				if n == 0xFFFF {
					sum <- local
					return
				}
				local += n
			}
		}()
	}
	want := 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				n := p*perProducer + i
				want := n % 1000
				s.Put(k, []byte{byte(want), byte(want >> 8)})
			}
		}(p)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			want += (p*perProducer + i) % 1000
		}
	}
	// Poison pills after producers finish.
	done := make(chan struct{})
	go func() {
		wg.Wait() // consumers still running; wait only for producers via count
		close(done)
	}()
	// Wait for all real memos to be consumed, then poison.
	deadline := time.Now().Add(10 * time.Second)
	for s.MemoCount() > 0 || s.Stats().Puts < producers*perProducer {
		if time.Now().After(deadline) {
			t.Fatal("memos not drained")
		}
		time.Sleep(time.Millisecond)
	}
	for c := 0; c < consumers; c++ {
		s.Put(k, []byte{0xFF, 0xFF})
	}
	total := 0
	for c := 0; c < consumers; c++ {
		select {
		case v := <-sum:
			total += v
		case <-time.After(5 * time.Second):
			t.Fatal("consumer never finished")
		}
	}
	if total != want {
		t.Fatalf("sum = %d want %d (lost or duplicated memos)", total, want)
	}
}

func TestArenaBackedPayloads(t *testing.T) {
	arena := sharedmem.NewSystemV(1 << 12)
	s := NewStore(WithArena(arena))
	k := symbol.K(50)
	s.Put(k, []byte("in shared memory"))
	if arena.InUse() == 0 {
		t.Fatal("payload not placed in arena")
	}
	v, err := s.Get(k, never)
	if err != nil || string(v) != "in shared memory" {
		t.Fatalf("get = %q %v", v, err)
	}
	if arena.InUse() != 0 {
		t.Fatalf("arena leak: %d bytes in use", arena.InUse())
	}
}

func TestArenaExhaustionFallsBackToHeap(t *testing.T) {
	arena := sharedmem.NewEncore(16)
	s := NewStore(WithArena(arena))
	k := symbol.K(51)
	big := make([]byte, 1024)
	big[0] = 7
	s.Put(k, big) // cannot fit; must still work
	v, err := s.Get(k, never)
	if err != nil || len(v) != 1024 || v[0] != 7 {
		t.Fatalf("fallback get = len %d, %v", len(v), err)
	}
}

func TestEmptyPayloadMemo(t *testing.T) {
	// Zero-length memos are legal (pure synchronization tokens).
	s := NewStore()
	k := symbol.K(52)
	s.Put(k, nil)
	v, err := s.Get(k, never)
	if err != nil || len(v) != 0 {
		t.Fatalf("empty memo: %v %v", v, err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore()
	k := symbol.K(53)
	s.Put(k, []byte("a"))
	s.GetCopy(k, never)
	s.Get(k, never)
	s.PutDelayed(symbol.K(54), symbol.K(55), []byte("d"))
	s.Put(symbol.K(54), nil)
	s.Get(symbol.K(55), never)
	st := s.Stats()
	// Puts: 2 explicit + 1 delayed release (released via local Put).
	if st.Puts != 3 || st.Takes != 2 || st.Copies != 1 || st.DelayedIn != 1 || st.Released != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistinctKeysDistinctFolders(t *testing.T) {
	s := NewStore()
	a := symbol.K(60, 1, 2)
	b := symbol.K(60, 1, 3)
	s.Put(a, []byte("A"))
	s.Put(b, []byte("B"))
	v, _, _ := s.GetSkip(b)
	if string(v) != "B" {
		t.Fatalf("key separation broken: %q", v)
	}
}

func BenchmarkPutGet(b *testing.B) {
	s := NewStore()
	k := symbol.K(1)
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(k, payload)
		if _, err := s.Get(k, never); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutGetParallel(b *testing.B) {
	s := NewStore()
	payload := make([]byte, 64)
	b.RunParallel(func(pb *testing.PB) {
		k := symbol.K(symbol.Symbol(1), uint32(time.Now().UnixNano()%1024))
		for pb.Next() {
			s.Put(k, payload)
			if _, err := s.Get(k, never); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ExampleStore_PutDelayed() {
	s := NewStore()
	reg := symbol.NewRegistry()
	operand := symbol.K(reg.Intern("operand"))
	jobJar := symbol.K(reg.Intern("jobjar"))
	// Arrange for an operation to drop into the job jar when the operand
	// arrives (§6.3.3 dataflow).
	s.PutDelayed(operand, jobJar, []byte("add-step"))
	s.Put(operand, []byte("42"))
	op, _, _ := s.GetSkip(jobJar)
	fmt.Println(string(op))
	// Output: add-step
}
