package folder

import (
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/symbol"
)

// TestGetTokenDedup: a retried tokened Get is answered from the
// consumed-take cache — same payload, no second memo consumed.
func TestGetTokenDedup(t *testing.T) {
	s := NewStore()
	k := symbol.K(1)
	mustPut(t, s, k, "p0")
	mustPut(t, s, k, "p1")

	const tok = 42
	first, err := s.GetToken(k, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	retry, err := s.GetToken(k, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(retry) != string(first) {
		t.Fatalf("retry payload %q, want the original's %q", retry, first)
	}
	if got := s.MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d, want 1 (retry consumed a second memo)", got)
	}
	st := s.Stats()
	if st.Takes != 1 || st.DupTakes != 1 {
		t.Fatalf("stats = %+v, want Takes 1 DupTakes 1", st)
	}
	// The cached copy is private: scribbling on a returned payload must not
	// poison later retries.
	for i := range retry {
		retry[i] = 'X'
	}
	again, err := s.GetToken(k, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(first) {
		t.Fatalf("cache poisoned: %q, want %q", again, first)
	}
}

// TestGetSkipTokenCachesEmpty: a tokened skip that observed an empty folder
// repeats that answer on retry, even if a memo has arrived in between —
// exactly-once means the retry reports what its original saw.
func TestGetSkipTokenCachesEmpty(t *testing.T) {
	s := NewStore()
	k := symbol.K(2)
	const tok = 43
	if _, ok, err := s.GetSkipToken(k, tok); err != nil || ok {
		t.Fatalf("skip on empty folder: ok=%v err=%v", ok, err)
	}
	mustPut(t, s, k, "late")
	if _, ok, err := s.GetSkipToken(k, tok); err != nil || ok {
		t.Fatalf("retried skip resampled the folder: ok=%v err=%v", ok, err)
	}
	// A fresh token takes normally.
	if v, ok, err := s.GetSkipToken(k, tok+1); err != nil || !ok || string(v) != "late" {
		t.Fatalf("fresh-token skip: %q ok=%v err=%v", v, ok, err)
	}
}

// TestAltTakeTokenDedup: the cached result remembers which key satisfied
// the original alt_take, so the retry returns the same (key, payload) pair.
func TestAltTakeTokenDedup(t *testing.T) {
	s := NewStore(WithShards(4))
	keys := []symbol.Key{symbol.K(3), symbol.K(4, 7), symbol.K(5)}
	mustPut(t, s, keys[1], "only")

	const tok = 44
	k1, v1, err := s.AltTakeToken(keys, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, keys[0], "decoy")
	k2, v2, err := s.AltTakeToken(keys, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !k2.Equal(k1) || string(v2) != string(v1) {
		t.Fatalf("retry = (%v, %q), want the original's (%v, %q)", k2, v2, k1, v1)
	}
	if got := s.MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d, want 1", got)
	}
}

// TestGetTokenConcurrentRetry is the race the claim step exists for: an
// original and its retry executing simultaneously against a folder holding
// one memo must both report that one memo — the loser attaches to the
// winner's claim instead of blocking for a second memo forever (or, worse,
// consuming one).
func TestGetTokenConcurrentRetry(t *testing.T) {
	s := NewStore()
	k := symbol.K(6)
	const tok = 45
	results := make(chan string, 2)
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.GetToken(k, tok, nil)
			if err != nil {
				errs <- err
				return
			}
			results <- string(v)
		}()
	}
	time.Sleep(20 * time.Millisecond) // let both attempts block
	mustPut(t, s, k, "single")
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n := 0
	for v := range results {
		n++
		if v != "single" {
			t.Fatalf("got %q, want %q", v, "single")
		}
	}
	if n != 2 {
		t.Fatalf("%d callers returned, want both", n)
	}
	if got := s.MemoCount(); got != 0 {
		t.Fatalf("MemoCount = %d, want 0", got)
	}
	if st := s.Stats(); st.Takes != 1 || st.DupTakes != 1 {
		t.Fatalf("stats = %+v, want exactly one take + one dedup", st)
	}
}

// TestGetTokenAbandonedClaimRetries: a canceled owner abandons its claim,
// and a later retry with the same token re-executes the take instead of
// waiting on a corpse.
func TestGetTokenAbandonedClaimRetries(t *testing.T) {
	s := NewStore()
	k := symbol.K(7)
	const tok = 46
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := s.GetToken(k, tok, cancel)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	if err := <-done; err != ErrCanceled {
		t.Fatalf("canceled owner: %v, want ErrCanceled", err)
	}
	mustPut(t, s, k, "after")
	v, err := s.GetToken(k, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "after" {
		t.Fatalf("retry after abandon: %q", v)
	}
}

// TestTakeTokenCrashRecovery: the consumed-take cache survives restart via
// the tokened RecTake — a post-crash retry of a maybe-acknowledged take
// receives the original's payload and consumes nothing.
func TestTakeTokenCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	k := symbol.K(8)
	mustPut(t, s, k, "aa")
	mustPut(t, s, k, "bb")
	const tok = 47
	taken, ok, err := s.GetSkipToken(k, tok)
	if err != nil || !ok {
		t.Fatalf("tokened skip: ok=%v err=%v", ok, err)
	}
	s.Crash() // the take was acknowledged, so it is committed

	r := openStore(t, dir, durable.Config{})
	defer r.Close()
	if got := r.MemoCount(); got != 1 {
		t.Fatalf("recovered MemoCount = %d, want 1", got)
	}
	v, ok, err := r.GetSkipToken(k, tok)
	if err != nil || !ok {
		t.Fatalf("post-crash retry: ok=%v err=%v", ok, err)
	}
	if string(v) != string(taken) {
		t.Fatalf("post-crash retry payload %q, want %q", v, taken)
	}
	if got := r.MemoCount(); got != 1 {
		t.Fatalf("post-crash retry consumed a memo: MemoCount = %d, want 1", got)
	}
}

// TestTakeTokenSurvivesSnapshot: after a snapshot truncates the tokened
// RecTake away, the RecTakeCache record it was compacted into still answers
// a retry across a reopen.
func TestTakeTokenSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, durable.Config{})
	k := symbol.K(9)
	mustPut(t, s, k, "keep")
	mustPut(t, s, k, "take-me")
	const tok = 48
	taken, ok, err := s.GetSkipToken(k, tok)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Also park an observed-empty miss in the cache: snapshots must carry
	// both result shapes.
	const emptyTok = 49
	if _, ok, err := s.GetSkipToken(symbol.K(10), emptyTok); err != nil || ok {
		t.Fatalf("skip on empty: ok=%v err=%v", ok, err)
	}
	if err := s.snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, durable.Config{})
	defer r.Close()
	v, ok, err := r.GetSkipToken(k, tok)
	if err != nil || !ok {
		t.Fatalf("post-snapshot retry: ok=%v err=%v", ok, err)
	}
	if string(v) != string(taken) {
		t.Fatalf("post-snapshot retry payload %q, want %q", v, taken)
	}
	if _, ok, err := r.GetSkipToken(symbol.K(10), emptyTok); err != nil || ok {
		t.Fatalf("post-snapshot empty-miss retry: ok=%v err=%v", ok, err)
	}
	if got := r.MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d, want 1", got)
	}
}
