package folder

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/symbol"
)

// modelStore is a reference implementation: multiset semantics per folder,
// delayed entries released by arrival. It ignores ordering (the real store
// promises none) and blocking (we only drive non-blocking ops here).
type modelStore struct {
	items   map[string]map[string]int // canon -> payload -> count
	delayed map[string][]modelDelayed
}

type modelDelayed struct {
	dest    symbol.Key
	payload string
}

func newModel() *modelStore {
	return &modelStore{
		items:   make(map[string]map[string]int),
		delayed: make(map[string][]modelDelayed),
	}
}

func (m *modelStore) put(k symbol.Key, payload string) {
	canon := k.Canon()
	if m.items[canon] == nil {
		m.items[canon] = make(map[string]int)
	}
	m.items[canon][payload]++
	released := m.delayed[canon]
	delete(m.delayed, canon)
	for _, d := range released {
		m.put(d.dest, d.payload)
	}
}

func (m *modelStore) putDelayed(trigger, dest symbol.Key, payload string) {
	canon := trigger.Canon()
	m.delayed[canon] = append(m.delayed[canon], modelDelayed{dest: dest, payload: payload})
}

// take removes payload from the folder, reporting whether the model held it.
func (m *modelStore) take(k symbol.Key, payload string) bool {
	canon := k.Canon()
	if m.items[canon] == nil || m.items[canon][payload] == 0 {
		return false
	}
	m.items[canon][payload]--
	if m.items[canon][payload] == 0 {
		delete(m.items[canon], payload)
	}
	if len(m.items[canon]) == 0 {
		delete(m.items, canon)
	}
	return true
}

func (m *modelStore) count(k symbol.Key) int {
	n := 0
	for _, c := range m.items[k.Canon()] {
		n += c
	}
	return n
}

func (m *modelStore) total() int {
	n := 0
	for _, folder := range m.items {
		for _, c := range folder {
			n += c
		}
	}
	return n
}

// op is one scripted operation derived from random bytes.
type op struct {
	kind    byte // 0 put, 1 putDelayed, 2 getSkip, 3 altSkip
	a, b    uint8
	payload uint8
}

// TestQuickStoreMatchesModel drives random op sequences against the real
// store and the reference model simultaneously. Invariants: GetSkip returns
// a payload the model holds in that folder (and removes the same one);
// visible memo counts agree after every step; delayed counts agree.
func TestQuickStoreMatchesModel(t *testing.T) {
	const nKeys = 6
	key := func(i uint8) symbol.Key { return symbol.K(symbol.Symbol(1), uint32(i%nKeys)) }
	f := func(raw []byte) bool {
		s := NewStore()
		m := newModel()
		for i := 0; i+3 < len(raw); i += 4 {
			o := op{kind: raw[i] % 4, a: raw[i+1], b: raw[i+2], payload: raw[i+3]}
			ka, kb := key(o.a), key(o.b)
			pay := fmt.Sprintf("p%d", o.payload%8)
			switch o.kind {
			case 0:
				s.Put(ka, []byte(pay))
				m.put(ka, pay)
			case 1:
				if ka.Equal(kb) {
					// A self-delayed entry would release into its own
					// trigger; allowed, but keep the model simple by
					// offsetting the destination.
					kb = key(o.b + 1)
				}
				s.PutDelayed(ka, kb, []byte(pay))
				m.putDelayed(ka, kb, pay)
			case 2:
				got, ok, _ := s.GetSkip(ka)
				if ok {
					if !m.take(ka, string(got)) {
						t.Logf("store returned %q from %v which model does not hold", got, ka)
						return false
					}
				} else if m.count(ka) != 0 {
					t.Logf("store empty at %v but model holds %d", ka, m.count(ka))
					return false
				}
			case 3:
				keys := []symbol.Key{ka, kb}
				gotKey, got, ok, _ := s.AltSkip(keys)
				if ok {
					if !m.take(gotKey, string(got)) {
						t.Logf("alt returned %q from %v not in model", got, gotKey)
						return false
					}
				} else if m.count(ka)+m.count(kb) != 0 {
					return false
				}
			}
			if s.MemoCount() != m.total() {
				t.Logf("memo counts diverge: store %d model %d", s.MemoCount(), m.total())
				return false
			}
		}
		// Drain everything and confirm exact multiset equality.
		for i := uint8(0); i < nKeys; i++ {
			k := key(i)
			for {
				got, ok, _ := s.GetSkip(k)
				if !ok {
					break
				}
				if !m.take(k, string(got)) {
					return false
				}
			}
			if m.count(k) != 0 {
				return false
			}
		}
		return s.DelayedCount() == len(flatten(m.delayed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func flatten(d map[string][]modelDelayed) []modelDelayed {
	var out []modelDelayed
	for _, v := range d {
		out = append(out, v...)
	}
	return out
}
