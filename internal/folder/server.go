package folder

import (
	"fmt"

	"repro/internal/durable"
	"repro/internal/rpc"
	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is one folder server: a Store, a thread cache, and the wire
// protocol. A Server is driven either directly (Handle, used by the local
// memo server — the Fig. 1 same-host path) or by Serve over a transport
// listener (the standalone folderserverd deployment).
type Server struct {
	// ID is the ADF folder-server number.
	ID int
	// Host is the machine this server runs on.
	Host string

	store *Store
	pool  *threadcache.Pool
	batch rpc.Policy
	// ownsStore marks a store this server opened itself (OpenServer): Close
	// then flushes and closes its write-ahead log too.
	ownsStore bool
}

// ServerOption tunes a Server.
type ServerOption func(*Server)

// WithBatchPolicy sets the rpc flush policy for connections this server
// answers (zero = rpc defaults).
func WithBatchPolicy(p rpc.Policy) ServerOption {
	return func(s *Server) { s.batch = p }
}

// NewServer wraps a store. cache configures the thread cache (§4.1); the
// zero Config gives defaults, Config{Disable: true} is the E1 ablation.
func NewServer(id int, host string, store *Store, cache threadcache.Config, opts ...ServerOption) *Server {
	s := &Server{
		ID:    id,
		Host:  host,
		store: store,
		pool:  threadcache.New(cache),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// OpenServer is the open-from-dir path: it opens (recovering if necessary)
// a durable store from dir and wraps it in a Server that owns it — Close
// flushes and closes the write-ahead log. storeOpts configure the store
// (shards, arena, forward hook); opts configure the server.
func OpenServer(id int, host, dir string, dcfg durable.Config, cache threadcache.Config,
	storeOpts []Option, opts ...ServerOption) (*Server, error) {
	store, err := OpenStore(dir, dcfg, storeOpts...)
	if err != nil {
		return nil, err
	}
	s := NewServer(id, host, store, cache, opts...)
	s.ownsStore = true
	return s, nil
}

// Store exposes the underlying directory (for stats and direct tests).
func (s *Server) Store() *Store { return s.store }

// CacheStats reports thread-cache counters (experiment E1).
func (s *Server) CacheStats() threadcache.Stats { return s.pool.Stats() }

// Close retires the thread cache and, for a server that owns its store
// (OpenServer), flushes and closes the write-ahead log.
func (s *Server) Close() {
	s.pool.Close()
	if s.ownsStore {
		_ = s.store.Close()
	}
}

// Crash hard-stops an owned durable store without flushing — the SIGKILL
// stand-in for the crash-recovery harness — and retires the thread cache.
func (s *Server) Crash() {
	if s.ownsStore {
		s.store.Crash()
	}
	s.pool.Close()
}

// Handle executes one request against this folder server. Blocking
// operations respect cancel. The caller provides its own concurrency: the
// memo server submits Handle calls through this server's thread cache via
// Submit.
func (s *Server) Handle(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	switch q.Op {
	case wire.OpPut:
		if err := s.store.PutToken(q.Key, q.Payload, q.Token); err != nil {
			return wire.Errf("put: %v", err)
		}
		return wire.OK()
	case wire.OpPutDelayed:
		if err := s.store.PutDelayedToken(q.Key, q.Key2, q.Payload, q.Token); err != nil {
			return wire.Errf("put_delayed: %v", err)
		}
		return wire.OK()
	case wire.OpGet:
		payload, err := s.store.Get(q.Key, cancel)
		if err != nil {
			return wire.Errf("get: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpGetCopy:
		payload, err := s.store.GetCopy(q.Key, cancel)
		if err != nil {
			return wire.Errf("get_copy: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpGetSkip:
		payload, ok, err := s.store.GetSkip(q.Key)
		if err != nil {
			return wire.Errf("get_skip: %v", err)
		}
		if !ok {
			return &wire.Response{Status: wire.StatusEmpty}
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpAltTake:
		// Empty key sets fail fast inside the store (ErrNoKeys).
		k, payload, err := s.store.AltTake(q.Keys, cancel)
		if err != nil {
			return wire.Errf("alt_take: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: k, Payload: payload}
	case wire.OpWatch:
		k, err := s.store.Watch(q.Keys, cancel)
		if err != nil {
			return wire.Errf("watch: %v", err)
		}
		return &wire.Response{Status: wire.StatusWake, Key: k}
	case wire.OpPing:
		return wire.OK()
	}
	return wire.Errf("folder server: unsupported op %s", q.Op)
}

// Submit runs task on the server's thread cache ("each request to a server
// will cause a thread to be created ... thread caching to avoid the
// overhead").
func (s *Server) Submit(task func()) error { return s.pool.Submit(task) }

// SubmitArg runs fn(arg) on the server's thread cache — the allocation-free
// submission path the rpc server dispatches batched requests through.
func (s *Server) SubmitArg(fn func(any), arg any) error { return s.pool.SubmitArg(fn, arg) }

// Serve accepts connections on l and answers requests until the listener
// closes. Used by cmd/folderserverd; in the simulated cluster the memo
// server calls Handle directly. Each virtual connection is driven by the
// batching rpc server: batched requests dispatch concurrently through the
// thread cache and responses coalesce into batched frames, while
// single-frame (pre-batching) peers are still answered in order.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		mux := transport.NewMux(conn, transport.DefaultMTU)
		go mux.Run()
		go s.serveMux(mux)
	}
}

func (s *Server) serveMux(mux *transport.Mux) {
	for {
		ch, err := mux.Accept()
		if err != nil {
			return
		}
		if err := s.Submit(func() {
			_ = rpc.Serve(ch, s.Handle, s.SubmitArg, s.batch)
			ch.Close()
		}); err != nil {
			// Shutting down. Closing the channel is the whole message: an
			// rpc peer has no request id to match an unsolicited response
			// to, and would treat a bare single frame as a protocol error.
			ch.Close()
			return
		}
	}
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("folder-server %d @ %s", s.ID, s.Host)
}
