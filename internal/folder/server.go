package folder

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is one folder server: a Store, a thread cache, and the wire
// protocol. A Server is driven either directly (Handle, used by the local
// memo server — the Fig. 1 same-host path) or by Serve over a transport
// listener (the standalone folderserverd deployment).
type Server struct {
	// ID is the ADF folder-server number.
	ID int
	// Host is the machine this server runs on.
	Host string

	store *Store
	pool  *threadcache.Pool
	batch rpc.Policy
	// slow, when non-nil, records request spans at or over its threshold.
	// Shared with the owning daemon (memoserverd hands every folder server
	// its node-wide log), so one /slowz shows a request's spans across
	// layers. Nil-safe throughout.
	slow *obs.SlowLog
	// tracer, when non-nil, owns span sets for requests that reach Handle
	// without an enclosing dispatch wrapper — the standalone folderserverd
	// deployment, where this server is the whole node. Under a memo server
	// the node's own tracer owns the set and Begin here returns nil.
	tracer *obs.Tracer
	// where names this server in slow-log spans, e.g. "folder-3@bonnie".
	where string
	// ownsStore marks a store this server opened itself (OpenServer): Close
	// then flushes and closes its write-ahead log too.
	ownsStore bool
}

// ServerOption tunes a Server.
type ServerOption func(*Server)

// WithBatchPolicy sets the rpc flush policy for connections this server
// answers (zero = rpc defaults).
func WithBatchPolicy(p rpc.Policy) ServerOption {
	return func(s *Server) { s.batch = p }
}

// WithSlowLog attaches a slow-request log: Handle records per-request spans
// (trace ID, hop, op, duration) for requests at or over the log's threshold.
func WithSlowLog(sl *obs.SlowLog) ServerOption {
	return func(s *Server) { s.slow = sl }
}

// WithTracer attaches a span tracer for the standalone deployment: Handle
// begins and finishes span sets itself (sampling entry requests at the
// tracer's rate, always collecting wire-sampled ones) and records them into
// the tracer's ring for /tracez. Servers embedded in a memo server do not
// need this — the node's dispatch wrapper owns the set.
func WithTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// NewServer wraps a store. cache configures the thread cache (§4.1); the
// zero Config gives defaults, Config{Disable: true} is the E1 ablation.
func NewServer(id int, host string, store *Store, cache threadcache.Config, opts ...ServerOption) *Server {
	s := &Server{
		ID:    id,
		Host:  host,
		store: store,
		pool:  threadcache.New(cache),
	}
	for _, o := range opts {
		o(s)
	}
	s.where = "folder-" + strconv.Itoa(id) + "@" + host
	return s
}

// OpenServer is the open-from-dir path: it opens (recovering if necessary)
// a durable store from dir and wraps it in a Server that owns it — Close
// flushes and closes the write-ahead log. storeOpts configure the store
// (shards, arena, forward hook); opts configure the server.
func OpenServer(id int, host, dir string, dcfg durable.Config, cache threadcache.Config,
	storeOpts []Option, opts ...ServerOption) (*Server, error) {
	store, err := OpenStore(dir, dcfg, storeOpts...)
	if err != nil {
		return nil, err
	}
	s := NewServer(id, host, store, cache, opts...)
	s.ownsStore = true
	return s, nil
}

// Store exposes the underlying directory (for stats and direct tests).
func (s *Server) Store() *Store { return s.store }

// CacheStats reports thread-cache counters (experiment E1).
func (s *Server) CacheStats() threadcache.Stats { return s.pool.Stats() }

// Close retires the thread cache and, for a server that owns its store
// (OpenServer), flushes and closes the write-ahead log.
func (s *Server) Close() {
	s.pool.Close()
	if s.ownsStore {
		_ = s.store.Close()
	}
}

// Crash hard-stops an owned durable store without flushing — the SIGKILL
// stand-in for the crash-recovery harness — and retires the thread cache.
func (s *Server) Crash() {
	if s.ownsStore {
		s.store.Crash()
	}
	s.pool.Close()
}

// Handle executes one request against this folder server. Blocking
// operations respect cancel. The caller provides its own concurrency: the
// memo server submits Handle calls through this server's thread cache via
// Submit. With a slow log attached and enabled, each request is timed as
// one span (the Enabled check is a single atomic load, so a disabled log
// costs no time.Now on the hot path). A sampled request (one whose dispatch
// wrapper attached a SpanSet) additionally threads an opTrace through the
// store and emits folder and durable spans with the shard-lock wait, park
// time, and group-commit wait it accumulated. With a tracer attached
// (standalone folderserverd) Handle owns the set itself: it begins one for
// sampled or sampler-admitted entry requests and finishes it into the
// tracer's ring, returning the spans on the response for the rpc layer.
func (s *Server) Handle(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	if set := s.tracer.Begin(q); set != nil {
		return s.tracer.Finish(q, set, s.handleSpans(q, cancel))
	}
	return s.handleSpans(q, cancel)
}

// handleSpans times one request into the slow log and, when an enclosing
// wrapper attached a SpanSet, emits this layer's spans into it.
func (s *Server) handleSpans(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	traced := q.Sampled && q.Spans != nil
	if !traced && !s.slow.Enabled() {
		return s.handle(q, cancel, nil)
	}
	var ot *opTrace
	if traced {
		ot = new(opTrace)
	}
	start := time.Now()
	resp := s.handle(q, cancel, ot)
	dur := time.Since(start)
	if s.slow.Enabled() {
		s.slow.Observe(q.TraceID, q.TraceHop, q.Op.String(), s.ID, s.where, dur)
	}
	if traced {
		startNS := start.UnixNano()
		q.Spans.Add(wire.Span{Node: s.where, Layer: "folder", Op: q.Op.String(),
			Folder: s.ID, Hop: q.TraceHop, Start: startNS, Dur: int64(dur), Wait: ot.lockWaitNS})
		if ot.parkNS > 0 {
			// Aggregate time parked waiting for a memo; anchored at the op
			// start (the store does not track individual park intervals).
			q.Spans.Add(wire.Span{Node: s.where, Layer: "folder", Op: "park",
				Folder: s.ID, Hop: q.TraceHop, Start: startNS, Dur: ot.parkNS})
		}
		if ot.commitNS > 0 {
			q.Spans.Add(wire.Span{Node: s.where, Layer: "durable", Op: "commit",
				Folder: s.ID, Hop: q.TraceHop, Start: startNS, Dur: ot.commitNS})
		}
	}
	return resp
}

func (s *Server) handle(q *wire.Request, cancel <-chan struct{}, ot *opTrace) *wire.Response {
	switch q.Op {
	case wire.OpPut:
		if err := s.store.putToken(q.Key, q.Payload, q.Token, ot); err != nil {
			return wire.Errf("put: %v", err)
		}
		return wire.OK()
	case wire.OpPutDelayed:
		if err := s.store.putDelayedToken(q.Key, q.Key2, q.Payload, q.Token, ot); err != nil {
			return wire.Errf("put_delayed: %v", err)
		}
		return wire.OK()
	case wire.OpGet:
		payload, err := s.store.getToken(q.Key, q.Token, cancel, ot)
		if err != nil {
			return wire.Errf("get: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpGetCopy:
		payload, err := s.store.getCopy(q.Key, cancel, ot)
		if err != nil {
			return wire.Errf("get_copy: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpGetSkip:
		payload, ok, err := s.store.getSkipToken(q.Key, q.Token, ot)
		if err != nil {
			return wire.Errf("get_skip: %v", err)
		}
		if !ok {
			return &wire.Response{Status: wire.StatusEmpty}
		}
		return &wire.Response{Status: wire.StatusOK, Key: q.Key, Payload: payload}
	case wire.OpAltTake:
		// Empty key sets fail fast inside the store (ErrNoKeys).
		k, payload, err := s.store.altTakeToken(q.Keys, q.Token, cancel, ot)
		if err != nil {
			return wire.Errf("alt_take: %v", err)
		}
		return &wire.Response{Status: wire.StatusOK, Key: k, Payload: payload}
	case wire.OpWatch:
		k, err := s.store.watch(q.Keys, cancel, ot)
		if err != nil {
			return wire.Errf("watch: %v", err)
		}
		return &wire.Response{Status: wire.StatusWake, Key: k}
	case wire.OpPing:
		return wire.OK()
	}
	return wire.Errf("folder server: unsupported op %s", q.Op)
}

// Submit runs task on the server's thread cache ("each request to a server
// will cause a thread to be created ... thread caching to avoid the
// overhead").
func (s *Server) Submit(task func()) error { return s.pool.Submit(task) }

// SubmitArg runs fn(arg) on the server's thread cache — the allocation-free
// submission path the rpc server dispatches batched requests through.
func (s *Server) SubmitArg(fn func(any), arg any) error { return s.pool.SubmitArg(fn, arg) }

// Serve accepts connections on l and answers requests until the listener
// closes. Used by cmd/folderserverd; in the simulated cluster the memo
// server calls Handle directly. Each virtual connection is driven by the
// batching rpc server: batched requests dispatch concurrently through the
// thread cache and responses coalesce into batched frames, while
// single-frame (pre-batching) peers are still answered in order.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		mux := transport.NewMux(conn, transport.DefaultMTU)
		go mux.Run()
		go s.serveMux(mux)
	}
}

func (s *Server) serveMux(mux *transport.Mux) {
	for {
		ch, err := mux.Accept()
		if err != nil {
			return
		}
		if err := s.Submit(func() {
			_ = rpc.Serve(ch, s.Handle, s.SubmitArg, s.batch)
			ch.Close()
		}); err != nil {
			// Shutting down. Closing the channel is the whole message: an
			// rpc peer has no request id to match an unsolicited response
			// to, and would treat a bare single frame as a protocol error.
			ch.Close()
			return
		}
	}
}

// Collect emits this server's folder_* series, labeled by folder-server id:
// the store's op counters, directory occupancy gauges, and per-shard
// occupancy/waiter gauges. Runs at scrape time (gauges walk the shards under
// their locks), so it belongs in an obs.Collector, not on a hot path.
func (s *Server) Collect(e *obs.Emitter) {
	id := strconv.Itoa(s.ID)
	labels := map[string]string{"folder_server": id}
	st := s.store.Stats()
	e.Counter("folder_puts_total", "puts applied", labels, st.Puts)
	e.Counter("folder_takes_total", "memos taken (get/alt_take/alt_skip)", labels, st.Takes)
	e.Counter("folder_copies_total", "non-consuming reads (get_copy)", labels, st.Copies)
	e.Counter("folder_delayed_total", "put_delayed values hidden", labels, st.DelayedIn)
	e.Counter("folder_released_total", "delayed values released by triggers", labels, st.Released)
	e.Counter("folder_dup_puts_total", "tokened puts deduplicated (acknowledged without applying)", labels, st.DupPuts)
	e.Counter("folder_dup_takes_total", "tokened takes answered from the consumed-take cache", labels, st.DupTakes)
	e.Counter("folder_alt_scans_total", "shard-group visits by multi-folder scans", labels, st.AltScans)

	var folders, memos, delayed, waiters int
	for i := 0; i < s.store.ShardCount(); i++ {
		sh := s.store.ShardStats(i)
		folders += sh.Folders
		memos += sh.Memos
		delayed += sh.Delayed
		waiters += sh.Waiters
		shLabels := map[string]string{"folder_server": id, "shard": strconv.Itoa(i)}
		e.Gauge("folder_shard_memos", "visible memos per stripe", shLabels, int64(sh.Memos))
		e.Gauge("folder_shard_waiters", "waiter registrations per stripe", shLabels, int64(sh.Waiters))
	}
	e.Gauge("folder_folders", "live folders", labels, int64(folders))
	e.Gauge("folder_memos", "visible memos", labels, int64(memos))
	e.Gauge("folder_delayed_hidden", "hidden put_delayed values", labels, int64(delayed))
	e.Gauge("folder_waiters", "waiter registrations (blocked scans park several)", labels, int64(waiters))
}

// RegisterMetrics attaches this server's series to reg via a scrape-time
// collector. Standalone folderserverd calls it with obs.Default; under a
// memo server the node's own collector walks its folder servers instead.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(s.Collect)
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("folder-server %d @ %s", s.ID, s.Host)
}
