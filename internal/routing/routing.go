// Package routing implements D-Memo's Routing class (paper §3.1.1, §5).
//
// Each application defines a logical point-to-point topology in its ADF; the
// routing table derived from it drives every inter-host message. A Table
// computes all-pairs shortest paths (Dijkstra per source) over the weighted
// logical links and answers two questions:
//
//   - NextHop(src, dst): which neighbour a memo server forwards a request to
//     ("a path is established ... via one or more memo server threads").
//   - Cost(src, dst): the total link cost, which the placement policy folds
//     into folder-name hashing (§5).
//
// Simplex ("->") links are directed; duplex ("<->") links contribute an edge
// in each direction. Ties between equal-cost paths break toward the
// lexicographically smaller neighbour so every host computes identical
// tables — a requirement for consistent placement.
package routing

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Link is one logical point-to-point connection from the ADF PPC section.
type Link struct {
	From, To string
	Cost     float64
	Duplex   bool
}

// Graph is the application's logical topology.
type Graph struct {
	hosts map[string]bool
	adj   map[string][]edge
}

type edge struct {
	to   string
	cost float64
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{hosts: make(map[string]bool), adj: make(map[string][]edge)}
}

// AddHost declares a host with no links yet.
func (g *Graph) AddHost(h string) {
	g.hosts[h] = true
}

// AddLink declares a logical connection. Cost must be positive.
func (g *Graph) AddLink(l Link) error {
	if l.Cost <= 0 {
		return fmt.Errorf("routing: link %s->%s has non-positive cost %g", l.From, l.To, l.Cost)
	}
	if l.From == l.To {
		return fmt.Errorf("routing: self link on %s", l.From)
	}
	g.hosts[l.From] = true
	g.hosts[l.To] = true
	g.adj[l.From] = append(g.adj[l.From], edge{l.To, l.Cost})
	if l.Duplex {
		g.adj[l.To] = append(g.adj[l.To], edge{l.From, l.Cost})
	}
	return nil
}

// Hosts returns all hosts in sorted order.
func (g *Graph) Hosts() []string {
	out := make([]string, 0, len(g.hosts))
	for h := range g.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// HasLink reports whether a direct edge from src to dst exists and, when
// parallel links were declared, the cheapest one's cost (which is the cost
// shortest-path computation uses).
func (g *Graph) HasLink(src, dst string) (float64, bool) {
	best, found := 0.0, false
	for _, e := range g.adj[src] {
		if e.to == dst && (!found || e.cost < best) {
			best, found = e.cost, true
		}
	}
	return best, found
}

// Table is the per-application routing table stored in every memo server.
type Table struct {
	graph   *Graph
	nextHop map[string]map[string]string
	cost    map[string]map[string]float64
}

// Unreachable is the cost reported between disconnected hosts.
const Unreachable = math.MaxFloat64

// Build computes the all-pairs table. It runs Dijkstra once per host:
// O(H · E log H), at application-registration time only.
func Build(g *Graph) *Table {
	t := &Table{
		graph:   g,
		nextHop: make(map[string]map[string]string),
		cost:    make(map[string]map[string]float64),
	}
	for _, src := range g.Hosts() {
		dist, first := dijkstra(g, src)
		t.nextHop[src] = first
		t.cost[src] = dist
	}
	return t
}

// pqItem is a priority-queue entry.
type pqItem struct {
	host string
	dist float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

// dijkstra returns distances from src and, for each destination, the first
// hop on the chosen shortest path.
func dijkstra(g *Graph, src string) (dist map[string]float64, first map[string]string) {
	dist = map[string]float64{src: 0}
	first = map[string]string{}
	// prev[h] is the predecessor on the chosen path.
	prev := map[string]string{}
	done := map[string]bool{}
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.host] {
			continue
		}
		done[cur.host] = true
		// Deterministic edge order for tie-breaking.
		edges := append([]edge(nil), g.adj[cur.host]...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
		for _, e := range edges {
			nd := cur.dist + e.cost
			old, seen := dist[e.to]
			better := !seen || nd < old
			// Equal-cost tie: prefer the path whose predecessor is
			// lexicographically smaller, for cross-host determinism.
			if seen && nd == old && !done[e.to] && cur.host < prev[e.to] {
				better = true
			}
			if better {
				dist[e.to] = nd
				prev[e.to] = cur.host
				heap.Push(q, pqItem{e.to, nd})
			}
		}
	}
	// Derive first hops by walking predecessors back to src.
	for h := range dist {
		if h == src {
			continue
		}
		hop := h
		for prev[hop] != src {
			hop = prev[hop]
		}
		first[h] = hop
	}
	return dist, first
}

// Cost reports the shortest-path cost from src to dst, or Unreachable.
func (t *Table) Cost(src, dst string) float64 {
	if src == dst {
		return 0
	}
	if m, ok := t.cost[src]; ok {
		if c, ok := m[dst]; ok {
			return c
		}
	}
	return Unreachable
}

// Reachable reports whether dst can be reached from src.
func (t *Table) Reachable(src, dst string) bool {
	return t.Cost(src, dst) != Unreachable
}

// NextHop reports the neighbour src forwards to on the way to dst. For
// src == dst it returns src. ok is false when dst is unreachable.
func (t *Table) NextHop(src, dst string) (hop string, ok bool) {
	if src == dst {
		return src, true
	}
	m, have := t.nextHop[src]
	if !have {
		return "", false
	}
	hop, ok = m[dst]
	return hop, ok
}

// Path expands the full hop sequence from src to dst, inclusive of both.
func (t *Table) Path(src, dst string) ([]string, bool) {
	if src == dst {
		return []string{src}, true
	}
	path := []string{src}
	cur := src
	for cur != dst {
		hop, ok := t.NextHop(cur, dst)
		if !ok {
			return nil, false
		}
		path = append(path, hop)
		cur = hop
		if len(path) > len(t.graph.hosts)+1 {
			return nil, false // defensive: cycle in next-hop table
		}
	}
	return path, true
}

// Hops reports the number of links on the path from src to dst, or -1.
func (t *Table) Hops(src, dst string) int {
	p, ok := t.Path(src, dst)
	if !ok {
		return -1
	}
	return len(p) - 1
}

// Centrality reports the mean shortest-path cost from every host to dst.
// The placement policy uses it to discount servers that are far from the
// cluster as a whole while keeping the weight identical on every host.
func (t *Table) Centrality(dst string) float64 {
	hosts := t.graph.Hosts()
	if len(hosts) <= 1 {
		return 0
	}
	var sum float64
	var n int
	for _, src := range hosts {
		if src == dst {
			continue
		}
		c := t.Cost(src, dst)
		if c == Unreachable {
			return Unreachable
		}
		sum += c
		n++
	}
	return sum / float64(n)
}

// Hosts returns the table's host set in sorted order.
func (t *Table) Hosts() []string { return t.graph.Hosts() }
