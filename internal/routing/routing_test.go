package routing

import (
	"testing"
	"testing/quick"
)

// lineGraph builds a -- b -- c -- d with unit duplex links.
func lineGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, l := range []Link{
		{From: "a", To: "b", Cost: 1, Duplex: true},
		{From: "b", To: "c", Cost: 1, Duplex: true},
		{From: "c", To: "d", Cost: 1, Duplex: true},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddLink(Link{From: "a", To: "b", Cost: 0}); err == nil {
		t.Fatal("zero cost accepted")
	}
	if err := g.AddLink(Link{From: "a", To: "b", Cost: -2}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := g.AddLink(Link{From: "a", To: "a", Cost: 1}); err == nil {
		t.Fatal("self link accepted")
	}
}

func TestLineTopologyCostsAndHops(t *testing.T) {
	tbl := Build(lineGraph(t))
	if c := tbl.Cost("a", "d"); c != 3 {
		t.Fatalf("Cost(a,d) = %g want 3", c)
	}
	if c := tbl.Cost("a", "a"); c != 0 {
		t.Fatalf("Cost(a,a) = %g", c)
	}
	if h := tbl.Hops("a", "d"); h != 3 {
		t.Fatalf("Hops(a,d) = %d", h)
	}
	hop, ok := tbl.NextHop("a", "d")
	if !ok || hop != "b" {
		t.Fatalf("NextHop(a,d) = %q,%v", hop, ok)
	}
	path, ok := tbl.Path("a", "d")
	if !ok || len(path) != 4 || path[0] != "a" || path[1] != "b" || path[2] != "c" || path[3] != "d" {
		t.Fatalf("Path(a,d) = %v", path)
	}
}

func TestSimplexIsDirected(t *testing.T) {
	g := NewGraph()
	g.AddLink(Link{From: "a", To: "b", Cost: 1, Duplex: false})
	tbl := Build(g)
	if !tbl.Reachable("a", "b") {
		t.Fatal("a->b should be reachable")
	}
	if tbl.Reachable("b", "a") {
		t.Fatal("simplex link traversed backwards")
	}
}

func TestCheaperLongPathWins(t *testing.T) {
	// a->d direct cost 10; a->b->c->d cost 3.
	g := NewGraph()
	g.AddLink(Link{From: "a", To: "d", Cost: 10, Duplex: true})
	g.AddLink(Link{From: "a", To: "b", Cost: 1, Duplex: true})
	g.AddLink(Link{From: "b", To: "c", Cost: 1, Duplex: true})
	g.AddLink(Link{From: "c", To: "d", Cost: 1, Duplex: true})
	tbl := Build(g)
	if c := tbl.Cost("a", "d"); c != 3 {
		t.Fatalf("Cost(a,d) = %g want 3", c)
	}
	if hop, _ := tbl.NextHop("a", "d"); hop != "b" {
		t.Fatalf("NextHop(a,d) = %q want b", hop)
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddLink(Link{From: "a", To: "b", Cost: 1, Duplex: true})
	g.AddHost("island")
	tbl := Build(g)
	if tbl.Reachable("a", "island") {
		t.Fatal("island reachable")
	}
	if c := tbl.Cost("a", "island"); c != Unreachable {
		t.Fatalf("Cost = %g", c)
	}
	if _, ok := tbl.NextHop("a", "island"); ok {
		t.Fatal("NextHop to island")
	}
	if _, ok := tbl.Path("a", "island"); ok {
		t.Fatal("Path to island")
	}
	if h := tbl.Hops("a", "island"); h != -1 {
		t.Fatalf("Hops = %d", h)
	}
}

func TestStarTopology(t *testing.T) {
	// The paper's Fig. 3: glen-ellyn is the hub; SP-1 link is cost 2.
	g := NewGraph()
	g.AddLink(Link{From: "glen-ellyn", To: "aurora", Cost: 1, Duplex: true})
	g.AddLink(Link{From: "glen-ellyn", To: "joliet", Cost: 1, Duplex: true})
	g.AddLink(Link{From: "glen-ellyn", To: "bonnie", Cost: 2, Duplex: true})
	tbl := Build(g)
	// Leaf-to-leaf traffic must transit the hub.
	if hop, _ := tbl.NextHop("aurora", "bonnie"); hop != "glen-ellyn" {
		t.Fatalf("NextHop(aurora,bonnie) = %q", hop)
	}
	if c := tbl.Cost("aurora", "bonnie"); c != 3 {
		t.Fatalf("Cost(aurora,bonnie) = %g want 3", c)
	}
	if h := tbl.Hops("joliet", "aurora"); h != 2 {
		t.Fatalf("Hops(joliet,aurora) = %d want 2", h)
	}
}

func TestRingTopology(t *testing.T) {
	// 5-ring: shortest way round chosen.
	g := NewGraph()
	hosts := []string{"h0", "h1", "h2", "h3", "h4"}
	for i := range hosts {
		g.AddLink(Link{From: hosts[i], To: hosts[(i+1)%5], Cost: 1, Duplex: true})
	}
	tbl := Build(g)
	if c := tbl.Cost("h0", "h2"); c != 2 {
		t.Fatalf("Cost(h0,h2) = %g", c)
	}
	if c := tbl.Cost("h0", "h3"); c != 2 { // round the back
		t.Fatalf("Cost(h0,h3) = %g", c)
	}
	if hop, _ := tbl.NextHop("h0", "h3"); hop != "h4" {
		t.Fatalf("NextHop(h0,h3) = %q want h4", hop)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths a->b->d and a->c->d: every Build must choose the
	// same one (via "b", the lexicographically smaller intermediate).
	mk := func() *Table {
		g := NewGraph()
		g.AddLink(Link{From: "a", To: "c", Cost: 1, Duplex: true})
		g.AddLink(Link{From: "a", To: "b", Cost: 1, Duplex: true})
		g.AddLink(Link{From: "c", To: "d", Cost: 1, Duplex: true})
		g.AddLink(Link{From: "b", To: "d", Cost: 1, Duplex: true})
		return Build(g)
	}
	first, _ := mk().NextHop("a", "d")
	for i := 0; i < 10; i++ {
		hop, _ := mk().NextHop("a", "d")
		if hop != first {
			t.Fatalf("tie-break nondeterministic: %q vs %q", hop, first)
		}
	}
	if first != "b" {
		t.Fatalf("tie-break chose %q want b", first)
	}
}

func TestCentrality(t *testing.T) {
	tbl := Build(lineGraph(t))
	// b: costs from a=1, c=1, d=2 → 4/3. a: from b=1,c=2,d=3 → 2.
	cb := tbl.Centrality("b")
	ca := tbl.Centrality("a")
	if cb >= ca {
		t.Fatalf("centrality: middle host b (%g) should beat end host a (%g)", cb, ca)
	}
	g := NewGraph()
	g.AddHost("solo")
	if c := Build(g).Centrality("solo"); c != 0 {
		t.Fatalf("single-host centrality = %g", c)
	}
	g2 := NewGraph()
	g2.AddLink(Link{From: "a", To: "b", Cost: 1, Duplex: true})
	g2.AddHost("island")
	if c := Build(g2).Centrality("island"); c != Unreachable {
		t.Fatalf("unreachable centrality = %g", c)
	}
}

// Property: next-hop forwarding always converges to the destination with
// total cost equal to Cost(src,dst), on random connected graphs.
func TestQuickForwardingConverges(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a deterministic pseudo-random connected graph of 8 hosts.
		hosts := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
		g := NewGraph()
		s := seed
		next := func() uint32 {
			s = s*1664525 + 1013904223
			return s
		}
		// Spanning chain keeps it connected.
		for i := 1; i < len(hosts); i++ {
			cost := float64(next()%9 + 1)
			g.AddLink(Link{From: hosts[i-1], To: hosts[i], Cost: cost, Duplex: true})
		}
		// Random extra links.
		for i := 0; i < 6; i++ {
			a := int(next() % 8)
			b := int(next() % 8)
			if a == b {
				continue
			}
			g.AddLink(Link{From: hosts[a], To: hosts[b], Cost: float64(next()%9 + 1), Duplex: true})
		}
		tbl := Build(g)
		for _, src := range hosts {
			for _, dst := range hosts {
				path, ok := tbl.Path(src, dst)
				if !ok {
					return false
				}
				var sum float64
				for i := 1; i < len(path); i++ {
					c, ok := g.HasLink(path[i-1], path[i])
					if !ok {
						return false // path used a non-existent link
					}
					sum += c
				}
				if sum != tbl.Cost(src, dst) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild64Hosts(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j += 7 {
			g.AddLink(Link{
				From: "h" + string(rune('A'+i%26)) + string(rune('a'+i/26)),
				To:   "h" + string(rune('A'+j%26)) + string(rune('a'+j/26)),
				Cost: float64(1 + (i+j)%5), Duplex: true,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g)
	}
}
