package memoserver

import (
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/durable"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestDedupTokenForwardedTwiceAppliesOnce drives the whole token path
// deterministically: a tokened put dispatched twice from a (simulating the
// retry of a maybe-delivered forward) crosses the a→b peer link, the rpc
// batch-entry extension, and the folder server — and lands exactly once.
func TestDedupTokenForwardedTwiceAppliesOnce(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")

	k := symbol.K(21)
	q := req(wire.OpPut, 1, k, []byte("once")) // folder 1 lives on b
	q.Token = 777
	for i := 0; i < 2; i++ {
		if resp, err := c.Do(q, nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("tokened put %d: %+v %v", i, resp, err)
		}
	}
	fs, ok := tn.nodes["b"].LocalFolderServer(tn.file.App, 1)
	if !ok {
		t.Fatal("no folder server 1 on b")
	}
	st := fs.Store().Stats()
	if st.Puts != 1 || st.DupPuts != 1 {
		t.Fatalf("store stats after duplicate tokened put: %+v", st)
	}
	if got := fs.Store().MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d, want 1", got)
	}
}

// TestClientStampsTokensOnPuts: with retries armed, the client generates a
// dedup token for puts (visible as the request's Token after Do), and
// re-issuing the same request object cannot double-deposit.
func TestClientStampsTokensOnPuts(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c, err := DialClientResilient(tn.sim.DialFrom, "a", tn.file.App, rpc.Policy{},
		rpc.Resilience{Heartbeat: rpc.DefaultHeartbeat, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	q := req(wire.OpPut, 0, symbol.K(5), []byte("v"))
	if resp, err := c.Do(q, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	if q.Token == 0 {
		t.Fatal("client did not stamp a dedup token on the put")
	}
	// The same request re-sent (what a retry does) is deduplicated.
	if resp, err := c.Do(q, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("re-put: %+v %v", resp, err)
	}
	fs, _ := tn.nodes["a"].LocalFolderServer(tn.file.App, 0)
	if got := fs.Store().MemoCount(); got != 1 {
		t.Fatalf("MemoCount = %d, want 1 (token dedup failed)", got)
	}
	// Destructive reads get tokens too: a re-sent get_skip (what a retry
	// does) is answered from the consumed-take cache with the original's
	// payload instead of sampling the folder again.
	g := req(wire.OpGetSkip, 0, symbol.K(5), nil)
	resp, err := c.Do(g, nil)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("get_skip: %+v %v", resp, err)
	}
	if g.Token == 0 {
		t.Fatal("client did not stamp a dedup token on the get_skip")
	}
	resp2, err := c.Do(g, nil)
	if err != nil || resp2.Status != wire.StatusOK {
		t.Fatalf("re-get_skip: %+v %v", resp2, err)
	}
	if string(resp2.Payload) != "v" {
		t.Fatalf("re-get_skip payload = %q, want the original's %q", resp2.Payload, "v")
	}
	st := fs.Store().Stats()
	if st.Takes != 1 || st.DupTakes != 1 {
		t.Fatalf("store stats after duplicate tokened take: %+v", st)
	}
	// Non-destructive reads still never get tokens.
	w := req(wire.OpGetCopy, 0, symbol.K(5), nil)
	w.Key = symbol.K(5)
	go func() {
		// GetCopy blocks on the now-empty folder; refill it.
		time.Sleep(10 * time.Millisecond)
		_, _ = c.Do(req(wire.OpPut, 0, symbol.K(5), []byte("again")), nil)
	}()
	if _, err := c.Do(w, nil); err != nil {
		t.Fatal(err)
	}
	if w.Token != 0 {
		t.Fatal("client stamped a token on a get_copy")
	}
}

// TestClientRedialsAcrossServerRestart: the application↔memo-server link
// rides the Redialer now — when the local memo server dies and comes back,
// the same Client heals without being re-dialed by hand.
func TestClientRedialsAcrossServerRestart(t *testing.T) {
	f, err := adf.Parse(twoHostADF)
	if err != nil {
		t.Fatal(err)
	}
	model := transport.NewNetModel(0)
	for _, l := range f.Links {
		model.SetLink(l.From, l.To, l.Cost)
		if l.Duplex {
			model.SetLink(l.To, l.From, l.Cost)
		}
	}
	sim := transport.NewSim(model)
	start := func() *Node {
		n := New("a", sim, Config{})
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterApp(f); err != nil {
			t.Fatal(err)
		}
		return n
	}
	nb := New("b", sim, Config{})
	if err := nb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := nb.RegisterApp(f); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nb.Close)

	na := start()
	c, err := DialClientResilient(sim.DialFrom, "a", f.App, rpc.Policy{},
		rpc.Resilience{
			Heartbeat: 100 * time.Millisecond,
			Redial:    transport.Backoff{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond},
			Retries:   2,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	k := symbol.K(9)
	if resp, err := c.Do(req(wire.OpPut, 0, k, []byte("before")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put before restart: %+v %v", resp, err)
	}
	na.Close()

	// Down: requests fail fast (dial errors after bounded retries), never
	// hang.
	if _, err := c.Do(req(wire.OpPing, 0, symbol.Key{}, nil), nil); err == nil {
		t.Fatal("ping succeeded against a dead memo server")
	}

	na = start()
	t.Cleanup(na.Close)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Do(req(wire.OpPut, 0, k, []byte("after")), nil)
		if err == nil && resp.Status == wire.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never healed after restart: %+v %v", resp, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); st.Dials < 2 {
		t.Fatalf("client link stats %+v, want >= 2 dials (initial + redial)", st)
	}
}

// TestNodeDurableFolderRecovery: a memo server with DataDir set persists
// its folder servers; a crashed node reopened over the same directory
// serves every acknowledged memo back.
func TestNodeDurableFolderRecovery(t *testing.T) {
	dir := t.TempDir()
	f, err := adf.Parse(twoHostADF)
	if err != nil {
		t.Fatal(err)
	}
	model := transport.NewNetModel(0)
	for _, l := range f.Links {
		model.SetLink(l.From, l.To, l.Cost)
		if l.Duplex {
			model.SetLink(l.To, l.From, l.Cost)
		}
	}
	sim := transport.NewSim(model)
	cfg := Config{DataDir: dir, Durable: durable.Config{}}
	start := func() *Node {
		n := New("a", sim, cfg)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterApp(f); err != nil {
			t.Fatal(err)
		}
		return n
	}

	na := start()
	c, err := DialClient(sim.DialFrom, "a", f.App)
	if err != nil {
		t.Fatal(err)
	}
	k := symbol.K(31)
	for i := 0; i < 5; i++ {
		if resp, err := c.Do(req(wire.OpPut, 0, k, []byte{byte('a' + i)}), nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("put %d: %+v %v", i, resp, err)
		}
	}
	c.Close()
	na.Crash()

	na = start()
	t.Cleanup(na.Close)
	c2, err := DialClient(sim.DialFrom, "a", f.App)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	seen := map[string]bool{}
	for {
		resp, err := c2.Do(req(wire.OpGetSkip, 0, k, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == wire.StatusEmpty {
			break
		}
		seen[string(resp.Payload)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("recovered %d memos through the restarted node, want 5", len(seen))
	}
}
