package memoserver

import (
	"testing"

	"repro/internal/symbol"
	"repro/internal/wire"
)

// TestCrossNodeTracedPutSpanTree is the PR's acceptance path: with sampling
// on and durability armed, a put that enters at a and forwards a hop to b's
// folder server leaves one merged span tree in a's trace ring, with rpc,
// link, folder, and durable spans contributed by at least two nodes.
func TestCrossNodeTracedPutSpanTree(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{TraceSample: 1, DataDir: t.TempDir()})
	c := tn.client(t, "a")

	q := req(wire.OpPut, 1, symbol.K(33), []byte("traced")) // folder 1 lives on b
	resp, err := c.Do(q, nil)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}

	samples := tn.nodes["a"].Tracer().Ring().Recent()
	if len(samples) != 1 {
		t.Fatalf("entry ring holds %d samples, want 1", len(samples))
	}
	ts := samples[0]
	if ts.Trace == 0 {
		t.Fatal("sample recorded with trace ID 0")
	}

	layers := map[string]int{}
	nodes := map[string]bool{}
	hops := map[int]bool{}
	for _, sp := range ts.Spans {
		layers[sp.Layer]++
		if sp.Node == "" {
			t.Errorf("span %+v recorded without a node name", sp)
		}
		nodes[sp.Node] = true
		if sp.Layer == "memo" {
			hops[sp.Hop] = true
		}
		if sp.Start == 0 {
			t.Errorf("span %+v recorded without a start time", sp)
		}
	}
	for _, want := range []string{"memo", "rpc", "link", "folder", "durable"} {
		if layers[want] == 0 {
			t.Errorf("span tree missing layer %q: %+v", want, ts.Spans)
		}
	}
	if layers["memo"] < 2 || !hops[0] || !hops[1] {
		t.Errorf("want memo spans from hop 0 and hop 1, got hops %v in %+v", hops, ts.Spans)
	}
	if len(nodes) < 2 {
		t.Errorf("span tree names %d distinct nodes, want >= 2: %+v", len(nodes), ts.Spans)
	}
}

// TestClientForcedSampling: EnableSampling marks every request sampled at
// the source, so even relay-only servers (-trace-sample 0) collect and
// record its spans — how `memo trace` guarantees itself a trace to fetch.
func TestClientForcedSampling(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{}) // no server-side sampling
	c := tn.client(t, "a")
	c.EnableSampling()

	q := req(wire.OpPut, 1, symbol.K(7), []byte("forced"))
	resp, err := c.Do(q, nil)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	id := c.LastTraceID()
	if id == 0 {
		t.Fatal("LastTraceID = 0 after a sampled request")
	}
	got := tn.nodes["a"].Tracer().Ring().Get(id)
	if len(got) != 1 {
		t.Fatalf("entry ring has %d samples for trace %#x, want 1", len(got), id)
	}
	layers := map[string]bool{}
	for _, sp := range got[0].Spans {
		layers[sp.Layer] = true
	}
	for _, want := range []string{"memo", "rpc", "link", "folder"} {
		if !layers[want] {
			t.Errorf("forced-sample span tree missing layer %q: %+v", want, got[0].Spans)
		}
	}
	// Relay node b collected its half too.
	if rb := tn.nodes["b"].Tracer().Ring().Get(id); len(rb) == 0 {
		t.Error("relay node recorded no sample for the forced trace")
	}
}

// TestUnsampledRequestsLeaveNoTrace: with sampling off everywhere and no
// client forcing, the rings stay empty and requests carry no span state.
func TestUnsampledRequestsLeaveNoTrace(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	q := req(wire.OpPut, 1, symbol.K(9), []byte("plain"))
	if resp, err := c.Do(q, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	for name, n := range tn.nodes {
		if got := n.Tracer().Ring().Recorded(); got != 0 {
			t.Errorf("node %s recorded %d samples with tracing off", name, got)
		}
	}
}
