package memoserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// tcpMapped adapts the TCP transport to logical host addresses, as
// cmd/memoserverd does: "host/memo" resolves through a peer table. The
// table is filled as listeners come up with kernel-assigned ports.
type tcpMapped struct {
	inner *transport.TCP
	mu    sync.Mutex
	addrs map[string]string // logical host -> tcp addr
}

func newTCPMapped() *tcpMapped {
	return newTCPMappedWith(transport.NewTCP())
}

// newTCPMappedWith maps logical hosts over an explicit TCP transport (the
// resilience tests pass one with IdleTimeout armed).
func newTCPMappedWith(tcp *transport.TCP) *tcpMapped {
	return &tcpMapped{inner: tcp, addrs: make(map[string]string)}
}

// DialFrom makes tcpMapped a Network; TCP dials ignore the source host.
func (t *tcpMapped) DialFrom(_, addr string) (transport.Conn, error) { return t.Dial(addr) }

func (t *tcpMapped) Listen(addr string) (transport.Listener, error) {
	l, err := t.inner.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.addrs[transport.HostOf(addr)] = l.Addr()
	t.mu.Unlock()
	return l, nil
}

func (t *tcpMapped) Dial(addr string) (transport.Conn, error) {
	host := transport.HostOf(addr)
	t.mu.Lock()
	real, ok := t.addrs[host]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no mapping for %q", host)
	}
	return t.inner.Dial(real)
}

func (t *tcpMapped) Name() string { return "tcp-mapped" }

// TestRealTCPDeployment runs two memo servers over genuine TCP sockets —
// the cmd/memoserverd deployment — and exercises registration, local and
// forwarded operations, blocking gets, and watches across the real network
// stack.
func TestRealTCPDeployment(t *testing.T) {
	net := newTCPMapped()
	f, err := adf.Parse(twoHostADF)
	if err != nil {
		t.Fatal(err)
	}

	var nodes []*Node
	for _, h := range f.Hosts {
		n := NewWithDialer(h.Name, net, Config{})
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})

	// Register over the wire, as a remote launcher would (§4.4).
	dial := func(_, addr string) (transport.Conn, error) { return net.Dial(addr) }
	clients := make([]*Client, len(f.Hosts))
	for i, h := range f.Hosts {
		c, err := DialClient(dial, h.Name, f.App)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.Register(adf.Format(f)); err != nil {
			t.Fatalf("register on %s: %v", h.Name, err)
		}
		clients[i] = c
	}

	k := symbol.K(42, 7)
	// Local put on a (folder 0), remote get from b's client: the request
	// forwards b→a over TCP.
	if resp, err := clients[0].Do(req(wire.OpPut, 0, k, []byte("over tcp")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	resp, err := clients[1].Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || resp.Status != wire.StatusOK || string(resp.Payload) != "over tcp" {
		t.Fatalf("remote get: %+v %v", resp, err)
	}

	// Blocking get across real sockets.
	woke := make(chan *wire.Response, 1)
	go func() {
		r, err := clients[1].Do(req(wire.OpGet, 1, symbol.K(9), nil), nil)
		if err == nil {
			woke <- r
		}
	}()
	select {
	case <-woke:
		t.Fatal("blocking get returned early")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := clients[0].Do(req(wire.OpPut, 1, symbol.K(9), []byte("wake")), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-woke:
		if string(r.Payload) != "wake" {
			t.Fatalf("payload %q", r.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking get over TCP never woke")
	}

	// Concurrency over real sockets.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i%2]
			key := symbol.K(symbol.Symbol(100 + i))
			for j := 0; j < 25; j++ {
				if resp, err := c.Do(req(wire.OpPut, i%2, key, []byte{byte(j)}), nil); err != nil || resp.Status != wire.StatusOK {
					t.Errorf("put: %+v %v", resp, err)
					return
				}
				if resp, err := c.Do(req(wire.OpGet, i%2, key, nil), nil); err != nil || resp.Status != wire.StatusOK {
					t.Errorf("get: %+v %v", resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
