package memoserver

import (
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// bootFlakyNet is bootNet with a transport.Flaky interposed, so tests can
// sever and restore the simulated links.
func bootFlakyNet(t testing.TB, adfText string, cfg Config) (*testNet, *transport.Flaky) {
	t.Helper()
	f, err := adf.Parse(adfText)
	if err != nil {
		t.Fatal(err)
	}
	model := transport.NewNetModel(0)
	for _, l := range f.Links {
		model.SetLink(l.From, l.To, l.Cost)
		if l.Duplex {
			model.SetLink(l.To, l.From, l.Cost)
		}
	}
	flaky := transport.NewFlaky(transport.NewSim(model))
	tn := &testNet{nodes: make(map[string]*Node), file: f}
	for _, h := range f.Hosts {
		n := NewWithNetwork(h.Name, flaky, cfg)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterApp(f); err != nil {
			t.Fatal(err)
		}
		tn.nodes[h.Name] = n
	}
	t.Cleanup(func() {
		for _, n := range tn.nodes {
			n.Close()
		}
	})
	return tn, flaky
}

// flakyClient dials through the Flaky layer (so client links are severable
// too) with resilience armed.
func flakyClient(t testing.TB, tn *testNet, flaky *transport.Flaky, host string, res rpc.Resilience) *Client {
	t.Helper()
	c, err := DialClientResilient(flaky.DialFrom, host, tn.file.App, rpc.Policy{}, res)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestForwardFailsFastAndRedialsAfterSever: severing the a—b link makes
// forwarded calls fail with an error response (not hang), and once the link
// is restored the peer table transparently re-dials — no restart, no manual
// intervention.
func TestForwardFailsFastAndRedialsAfterSever(t *testing.T) {
	res := rpc.Resilience{
		Heartbeat: 100 * time.Millisecond,
		Redial:    transport.Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Retries:   2,
	}
	tn, flaky := bootFlakyNet(t, twoHostADF, Config{Resilience: res})
	c := flakyClient(t, tn, flaky, "a", res)

	k := symbol.K(7)
	// Folder 1 lives on b: this put forwards a→b.
	if resp, err := c.Do(req(wire.OpPut, 1, k, []byte("before")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put before sever: %+v %v", resp, err)
	}

	// Park a blocking get on an empty folder across the link, then sever:
	// the call must fail fast with a link error, not block forever.
	parked := make(chan *wire.Response, 1)
	go func() {
		resp, err := c.Do(req(wire.OpGet, 1, symbol.K(99), nil), nil)
		if err == nil {
			parked <- resp
		}
	}()
	time.Sleep(20 * time.Millisecond) // let it reach b and block
	flaky.Sever("a", "b")
	select {
	case resp := <-parked:
		if resp.Status != wire.StatusErr {
			t.Fatalf("parked get across severed link: %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked get hung after its link was severed")
	}

	// While severed, forwards fail (after their bounded retries).
	if resp, err := c.Do(req(wire.OpPut, 1, k, []byte("during")), nil); err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("put during sever: %+v %v", resp, err)
	}

	flaky.Restore("a", "b")
	// The next forward re-dials under backoff and succeeds. Allow a few
	// tries: the redial schedule may still be backing off.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Do(req(wire.OpPut, 1, k, []byte("after")), nil)
		if err == nil && resp.Status == wire.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forward never recovered after restore: %+v %v", resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := tn.nodes["a"].Stats(); got.Retried == 0 {
		t.Fatalf("stats: %+v, want Retried > 0 (transparent retries never fired)", got)
	}
}

// TestWatchSurvivesIdleTimeoutOverTCP is the acceptance criterion for the
// heartbeat layer: with TCP.IdleTimeout armed on every link and heartbeats
// on, a Watch parked across hosts — client link and peer link both
// legitimately silent — survives ≥ 10× the idle timeout and still fires.
func TestWatchSurvivesIdleTimeoutOverTCP(t *testing.T) {
	const (
		idle = 150 * time.Millisecond
		hb   = 50 * time.Millisecond
		park = 10 * idle
	)
	net := newTCPMappedWith(transport.NewTCPIdle(idle))
	f, err := adf.Parse(twoHostADF)
	if err != nil {
		t.Fatal(err)
	}
	res := rpc.Resilience{Heartbeat: hb}
	var nodes []*Node
	for _, h := range f.Hosts {
		n := NewWithNetwork(h.Name, net, Config{Resilience: res})
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterApp(f); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	ca, err := DialClientResilient(net.DialFrom, "a", f.App, rpc.Policy{}, res)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ca.Close() })
	cb, err := DialClientResilient(net.DialFrom, "b", f.App, rpc.Policy{}, res)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cb.Close() })

	// Watch folder 0 (on a) from b: the wait parks on a, with the b→a peer
	// link and the client→b link both silent for the duration.
	k := symbol.K(31)
	woke := make(chan *wire.Response, 1)
	watchErr := make(chan error, 1)
	go func() {
		resp, err := cb.Do(&wire.Request{Op: wire.OpWatch, FolderID: 0, Keys: []symbol.Key{k}}, nil)
		if err != nil {
			watchErr <- err
			return
		}
		if resp.Status == wire.StatusErr {
			watchErr <- &clientStatusErr{msg: resp.Err}
			return
		}
		woke <- resp
	}()
	select {
	case err := <-watchErr:
		t.Fatalf("watch died during the silent window: %v (idle timeout fired through the heartbeats?)", err)
	case resp := <-woke:
		t.Fatalf("watch fired early: %+v", resp)
	case <-time.After(park):
	}
	if resp, err := ca.Do(req(wire.OpPut, 0, k, []byte("wake")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("waking put: %+v %v", resp, err)
	}
	select {
	case resp := <-woke:
		if resp.Status != wire.StatusWake {
			t.Fatalf("watch response: %+v", resp)
		}
	case err := <-watchErr:
		t.Fatalf("watch failed at wake time: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("watch never fired after the put")
	}
}

type clientStatusErr struct{ msg string }

func (e *clientStatusErr) Error() string { return e.msg }

// TestLocalFastPathSkipsSubmit: local non-blocking ops run inline on the
// dispatching thread — the folder server's thread cache sees no traffic —
// while blocking ops still go through it, and NoLocalInline restores the
// old handoff for every op.
func TestLocalFastPathSkipsSubmit(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	k := symbol.K(5)
	const n = 16
	for i := 0; i < n; i++ {
		if resp, err := c.Do(req(wire.OpPut, 0, k, []byte{byte(i)}), nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("put %d: %+v %v", i, resp, err)
		}
		if resp, err := c.Do(req(wire.OpGetSkip, 0, k, nil), nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("get_skip %d: %+v %v", i, resp, err)
		}
	}
	node := tn.nodes["a"]
	fs, ok := node.LocalFolderServer(tn.file.App, 0)
	if !ok {
		t.Fatal("no local folder server 0 on a")
	}
	if st := fs.CacheStats(); st.Spawned+st.Reused != 0 {
		t.Fatalf("folder-server thread cache saw %+v; non-blocking locals were not inlined", st)
	}
	if st := node.Stats(); st.Inlined != 2*n {
		t.Fatalf("Inlined = %d, want %d", st.Inlined, 2*n)
	}

	// A blocking op still takes the thread-cache handoff (it may park).
	if _, err := c.Do(req(wire.OpPut, 0, k, []byte("x")), nil); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Do(req(wire.OpGet, 0, k, nil), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("blocking get: %+v %v", resp, err)
	}
	if st := fs.CacheStats(); st.Spawned+st.Reused == 0 {
		t.Fatal("blocking get bypassed the folder-server thread cache")
	}
}

func TestNoLocalInlineRestoresHandoff(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{NoLocalInline: true})
	c := tn.client(t, "a")
	k := symbol.K(5)
	if resp, err := c.Do(req(wire.OpPut, 0, k, []byte("v")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	node := tn.nodes["a"]
	fs, _ := node.LocalFolderServer(tn.file.App, 0)
	if st := fs.CacheStats(); st.Spawned+st.Reused == 0 {
		t.Fatal("NoLocalInline put bypassed the thread cache")
	}
	if st := node.Stats(); st.Inlined != 0 {
		t.Fatalf("Inlined = %d with NoLocalInline", st.Inlined)
	}
}

// BenchmarkNodeLocalFastPath quantifies the inlined local path against the
// thread-cache handoff baseline, and guards the remote path against
// regression (remote ops are identical under both configurations).
func BenchmarkNodeLocalFastPath(b *testing.B) {
	run := func(b *testing.B, cfg Config, folderID int) {
		tn := bootNet(b, twoHostADF, cfg)
		c, err := DialClient(tn.sim.DialFrom, "a", tn.file.App)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		k := symbol.K(9)
		payload := []byte("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp, err := c.Do(req(wire.OpPut, folderID, k, payload), nil); err != nil || resp.Status != wire.StatusOK {
				b.Fatalf("put: %+v %v", resp, err)
			}
			if resp, err := c.Do(req(wire.OpGetSkip, folderID, k, nil), nil); err != nil || resp.Status != wire.StatusOK {
				b.Fatalf("get_skip: %+v %v", resp, err)
			}
		}
	}
	// Folder 0 is local to a; folder 1 forwards to b.
	b.Run("local/inline", func(b *testing.B) { run(b, Config{}, 0) })
	b.Run("local/handoff", func(b *testing.B) { run(b, Config{NoLocalInline: true}, 0) })
	b.Run("remote/inline", func(b *testing.B) { run(b, Config{}, 1) })
	b.Run("remote/handoff", func(b *testing.B) { run(b, Config{NoLocalInline: true}, 1) })
}
