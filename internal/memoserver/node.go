// Package memoserver implements D-Memo memo servers (paper §4.1, §4.4).
//
// One memo server runs per machine. It listens for connection requests from
// application processes and from other memo servers, carries per-application
// routing tables and placement maps installed at registration time, and
// routes every folder request either to a folder server on its own host or
// onward to the next-hop memo server along the application's logical
// topology — "a path is established between an application program and a
// folder server via one or more memo server threads".
package memoserver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adf"
	"repro/internal/folder"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sharedmem"
	"repro/internal/symbol"
	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Network is the transport view a memo server needs: listening on its own
// address and dialing out from its host (so simulated link delays apply).
type Network interface {
	Listen(addr string) (transport.Listener, error)
	DialFrom(srcHost, addr string) (transport.Conn, error)
}

// MemoAddr is the canonical memo-server address for a host.
func MemoAddr(host string) string { return host + "/memo" }

// App is one registered application's state on this memo server: its
// description, routing table, placement map, and the folder servers that
// live on this host ("each memo server is loaded with unique routing tables
// for each application").
type App struct {
	File  *adf.File
	Table *routing.Table
	Place *placement.Map
	// folderHost maps folder-server id to its host.
	folderHost map[int]string
	// local holds this host's folder servers for the app.
	local map[int]*folder.Server
	// programs holds pumped program images by source-directory name
	// (§4.4's executable distribution without NFS).
	progMu   sync.Mutex
	programs map[string][]byte
}

// StoreProgram saves a pumped program image.
func (a *App) StoreProgram(dir string, blob []byte) {
	a.progMu.Lock()
	defer a.progMu.Unlock()
	if a.programs == nil {
		a.programs = make(map[string][]byte)
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	a.programs[dir] = cp
}

// Program retrieves a pumped program image.
func (a *App) Program(dir string) ([]byte, bool) {
	a.progMu.Lock()
	defer a.progMu.Unlock()
	blob, ok := a.programs[dir]
	return blob, ok
}

// Config tunes a Node.
type Config struct {
	// Cache configures the memo server's own thread cache.
	Cache threadcache.Config
	// FolderCache configures the thread caches of folder servers this
	// node creates at registration.
	FolderCache threadcache.Config
	// Lambda is the placement topology attenuation (see placement).
	Lambda float64
	// Arena, when positive, allocates a shared-memory arena of that many
	// bytes per folder server for memo payloads.
	Arena int
	// FolderShards overrides the lock-stripe count of folder-server
	// stores this node creates at registration (0 = folder.DefaultShards).
	FolderShards int
}

// Node is one host's memo server.
type Node struct {
	Host string

	net transport.Transport // for Listen
	cfg Config
	// dialFrom abstracts DialFrom for non-sim transports.
	dialFrom func(src, addr string) (transport.Conn, error)

	pool *threadcache.Pool

	mu       sync.Mutex
	apps     map[string]*App
	peers    map[string]*peerLink
	inbound  []*transport.Mux
	listener transport.Listener
	closed   bool

	chanID atomic.Uint64

	// Counters for experiments.
	localOps   atomic.Int64
	forwards   atomic.Int64
	registered atomic.Int64
}

// peerLink is a cached connection to a neighbouring memo server.
type peerLink struct {
	mux *transport.Mux
}

// New creates a memo server for host over the given network. For the
// simulated transport pass the *transport.Sim itself; for plain transports
// use NewWithDialer.
func New(host string, sim *transport.Sim, cfg Config) *Node {
	return newNode(host, sim, sim.DialFrom, cfg)
}

// NewWithDialer creates a memo server over any transport; dials ignore the
// source host.
func NewWithDialer(host string, t transport.Transport, cfg Config) *Node {
	return newNode(host, t, func(_, addr string) (transport.Conn, error) {
		return t.Dial(addr)
	}, cfg)
}

func newNode(host string, t transport.Transport, dial func(string, string) (transport.Conn, error), cfg Config) *Node {
	return &Node{
		Host:     host,
		net:      t,
		cfg:      cfg,
		dialFrom: dial,
		pool:     threadcache.New(cfg.Cache),
		apps:     make(map[string]*App),
		peers:    make(map[string]*peerLink),
	}
}

// Start binds the memo-server address and begins serving.
func (n *Node) Start() error {
	l, err := n.net.Listen(MemoAddr(n.Host))
	if err != nil {
		return fmt.Errorf("memoserver %s: %w", n.Host, err)
	}
	n.mu.Lock()
	n.listener = l
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// Close stops the server, its folder servers, and peer links.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	l := n.listener
	peers := n.peers
	n.peers = map[string]*peerLink{}
	apps := n.apps
	inbound := n.inbound
	n.inbound = nil
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, p := range peers {
		p.mux.Close()
	}
	for _, m := range inbound {
		m.Close()
	}
	for _, a := range apps {
		for _, fs := range a.local {
			fs.Close()
		}
	}
	n.pool.Close()
}

func (n *Node) acceptLoop(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(conn, 4096)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			mux.Close()
			return
		}
		n.inbound = append(n.inbound, mux)
		n.mu.Unlock()
		go mux.Run()
		go n.serveMux(mux)
	}
}

func (n *Node) serveMux(mux *transport.Mux) {
	for {
		ch, err := mux.Accept()
		if err != nil {
			return
		}
		if err := n.pool.Submit(func() { n.serveChannel(ch) }); err != nil {
			_ = ch.Send(wire.EncodeResponse(wire.Errf("memo server %s shutting down", n.Host)))
			ch.Close()
			return
		}
	}
}

// serveChannel answers requests on one virtual connection. One channel may
// carry a sequence of requests (clients reuse channels between operations).
func (n *Node) serveChannel(ch *transport.Channel) {
	defer ch.Close()
	for {
		buf, err := ch.Recv()
		if err != nil {
			return
		}
		q, err := wire.DecodeRequest(buf)
		var resp *wire.Response
		if err != nil {
			resp = wire.Errf("bad request: %v", err)
		} else {
			resp = n.Dispatch(q, ch.Done())
		}
		if err := ch.Send(wire.EncodeResponse(resp)); err != nil {
			return
		}
	}
}

// RegisterApp installs an application: builds its routing table and
// placement map and creates the folder servers assigned to this host
// (§4.4). Idempotent for the same application name.
func (n *Node) RegisterApp(f *adf.File) error {
	if err := adf.Validate(f); err != nil {
		return err
	}
	g, err := f.Graph()
	if err != nil {
		return err
	}
	tbl := routing.Build(g)
	place, err := placement.New(f, tbl, placement.Options{Lambda: n.cfg.Lambda})
	if err != nil {
		return err
	}
	app := &App{
		File:       f,
		Table:      tbl,
		Place:      place,
		folderHost: make(map[int]string),
		local:      make(map[int]*folder.Server),
	}
	for _, fs := range f.Folders {
		app.folderHost[fs.ID] = fs.Host
	}

	n.mu.Lock()
	if _, ok := n.apps[f.App]; ok {
		// Same app re-registered (every process registers on start-up;
		// "multiple memo applications run concurrently using the same
		// servers"). Keep the existing instance.
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()

	// Create local folder servers outside the lock; Forward may dispatch.
	appName := f.App
	for _, fs := range f.Folders {
		if fs.Host != n.Host {
			continue
		}
		opts := []folder.Option{
			folder.WithForward(func(dest symbol.Key, payload []byte) {
				n.forwardRelease(appName, dest, payload)
			}),
		}
		if n.cfg.Arena > 0 {
			host, _ := f.HostByName(n.Host)
			opts = append(opts, folder.WithArena(sharedmem.New(host.Arch, n.cfg.Arena)))
		}
		if n.cfg.FolderShards > 0 {
			opts = append(opts, folder.WithShards(n.cfg.FolderShards))
		}
		store := folder.NewStore(opts...)
		app.local[fs.ID] = folder.NewServer(fs.ID, n.Host, store, n.cfg.FolderCache)
	}

	n.mu.Lock()
	if _, ok := n.apps[f.App]; ok { // lost a race; drop ours
		n.mu.Unlock()
		for _, fs := range app.local {
			fs.Close()
		}
		return nil
	}
	n.apps[f.App] = app
	n.mu.Unlock()
	n.registered.Add(1)
	return nil
}

// AppNames lists registered applications.
func (n *Node) AppNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.apps))
	for name := range n.apps {
		out = append(out, name)
	}
	return out
}

// LocalFolderServer returns this host's folder server with the given id.
func (n *Node) LocalFolderServer(app string, id int) (*folder.Server, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.apps[app]
	if !ok {
		return nil, false
	}
	fs, ok := a.local[id]
	return fs, ok
}

// lookupApp fetches registered state.
func (n *Node) lookupApp(name string) (*App, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.apps[name]
	return a, ok
}

// Dispatch routes one request: to a local folder server, or toward the
// target host via the next-hop memo server. It blocks for the response
// (which may wait on a folder), honouring cancel.
func (n *Node) Dispatch(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	switch q.Op {
	case wire.OpPing:
		return wire.OK()
	case wire.OpRegister:
		f, err := adf.Parse(q.ADF)
		if err != nil {
			return wire.Errf("register: %v", err)
		}
		if err := n.RegisterApp(f); err != nil {
			return wire.Errf("register: %v", err)
		}
		return wire.OK()
	}

	app, ok := n.lookupApp(q.App)
	if !ok {
		return wire.Errf("memo server %s: application %q not registered", n.Host, q.App)
	}
	// Host-addressed operations (§4.4 program pumping).
	if q.Op == wire.OpPump || q.Op == wire.OpFetch {
		if q.TargetHost == "" || q.TargetHost == n.Host {
			switch q.Op {
			case wire.OpPump:
				if q.Dir == "" {
					return wire.Errf("pump: empty program name")
				}
				app.StoreProgram(q.Dir, q.Payload)
				return wire.OK()
			case wire.OpFetch:
				blob, ok := app.Program(q.Dir)
				if !ok {
					return wire.Errf("fetch: no program %q pumped to %s", q.Dir, n.Host)
				}
				return &wire.Response{Status: wire.StatusOK, Payload: blob}
			}
		}
		if _, known := app.Table.NextHop(n.Host, q.TargetHost); !known {
			return wire.Errf("memo server %s: unknown host %q", n.Host, q.TargetHost)
		}
		return n.forward(app, q, q.TargetHost, cancel)
	}
	targetHost, ok := app.folderHost[q.FolderID]
	if !ok {
		return wire.Errf("memo server %s: app %q has no folder server %d", n.Host, q.App, q.FolderID)
	}
	if targetHost == n.Host {
		fs, ok := app.local[q.FolderID]
		if !ok {
			return wire.Errf("memo server %s: folder server %d not local", n.Host, q.FolderID)
		}
		n.localOps.Add(1)
		// Hand the request to the folder server's thread cache: "each
		// request to a server will cause a thread to be created to handle
		// the request".
		respCh := make(chan *wire.Response, 1)
		if err := fs.Submit(func() { respCh <- fs.Handle(q, cancel) }); err != nil {
			return wire.Errf("folder server %d: %v", q.FolderID, err)
		}
		select {
		case resp := <-respCh:
			return resp
		case <-cancel:
			// The folder server observes the same cancel and will
			// unblock; don't wait for it.
			return wire.Errf("canceled")
		}
	}
	return n.forward(app, q, targetHost, cancel)
}

// forward relays the request one hop along the routing table.
func (n *Node) forward(app *App, q *wire.Request, targetHost string, cancel <-chan struct{}) *wire.Response {
	hop, ok := app.Table.NextHop(n.Host, targetHost)
	if !ok {
		return wire.Errf("memo server %s: no route to %s", n.Host, targetHost)
	}
	link, err := n.peer(hop)
	if err != nil {
		return wire.Errf("memo server %s: dial %s: %v", n.Host, hop, err)
	}
	fq := *q
	fq.Hops = q.Hops + 1
	ch := link.mux.Channel(n.chanID.Add(1))
	defer ch.Close()
	if err := ch.Send(wire.EncodeRequest(&fq)); err != nil {
		n.dropPeer(hop)
		return wire.Errf("memo server %s: forward to %s: %v", n.Host, hop, err)
	}
	n.forwards.Add(1)
	type recvResult struct {
		buf []byte
		err error
	}
	rc := make(chan recvResult, 1)
	go func() {
		buf, err := ch.Recv()
		rc <- recvResult{buf, err}
	}()
	select {
	case r := <-rc:
		if r.err != nil {
			n.dropPeer(hop)
			return wire.Errf("memo server %s: reply from %s: %v", n.Host, hop, r.err)
		}
		resp, err := wire.DecodeResponse(r.buf)
		if err != nil {
			return wire.Errf("memo server %s: bad reply from %s: %v", n.Host, hop, err)
		}
		return resp
	case <-cancel:
		return wire.Errf("canceled")
	}
}

// peer returns the cached mux to a neighbouring memo server, dialing on
// first use.
func (n *Node) peer(host string) (*peerLink, error) {
	n.mu.Lock()
	if p, ok := n.peers[host]; ok {
		n.mu.Unlock()
		return p, nil
	}
	n.mu.Unlock()
	conn, err := n.dialFrom(n.Host, MemoAddr(host))
	if err != nil {
		return nil, err
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	p := &peerLink{mux: mux}
	n.mu.Lock()
	if exist, ok := n.peers[host]; ok {
		n.mu.Unlock()
		mux.Close()
		return exist, nil
	}
	n.peers[host] = p
	n.mu.Unlock()
	return p, nil
}

func (n *Node) dropPeer(host string) {
	n.mu.Lock()
	p, ok := n.peers[host]
	if ok {
		delete(n.peers, host)
	}
	n.mu.Unlock()
	if ok {
		p.mux.Close()
	}
}

// never is a cancel channel that never fires, for background deliveries.
var never = make(chan struct{})

// forwardRelease delivers a put_delayed release to wherever the destination
// folder lives. It runs asynchronously: the releasing Put must not block on
// remote delivery, and the destination may even be a folder on the same
// store (which would deadlock a synchronous call through the thread cache).
func (n *Node) forwardRelease(appName string, dest symbol.Key, payload []byte) {
	app, ok := n.lookupApp(appName)
	if !ok {
		return
	}
	target := app.Place.Place(dest)
	q := &wire.Request{
		Op:       wire.OpPut,
		App:      appName,
		FolderID: target.ID,
		Key:      dest,
		Payload:  payload,
	}
	go n.Dispatch(q, never)
}

// Stats reports memo-server counters.
type Stats struct {
	LocalOps   int64
	Forwards   int64
	Registered int64
}

// Stats snapshots counters.
func (n *Node) Stats() Stats {
	return Stats{
		LocalOps:   n.localOps.Load(),
		Forwards:   n.forwards.Load(),
		Registered: n.registered.Load(),
	}
}

// CacheStats reports the node's thread-cache counters (experiment E1).
func (n *Node) CacheStats() threadcache.Stats { return n.pool.Stats() }
