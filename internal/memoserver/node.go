// Package memoserver implements D-Memo memo servers (paper §4.1, §4.4).
//
// One memo server runs per machine. It listens for connection requests from
// application processes and from other memo servers, carries per-application
// routing tables and placement maps installed at registration time, and
// routes every folder request either to a folder server on its own host or
// onward to the next-hop memo server along the application's logical
// topology — "a path is established between an application program and a
// folder server via one or more memo server threads".
//
// All request traffic — inbound from applications and peers, outbound to
// peers — travels over the batching rpc layer: many requests pipeline on
// one virtual connection and coalesce into batch frames, so a burst of
// small memo operations costs the link one frame, not one frame each.
package memoserver

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/adf"
	"repro/internal/durable"
	"repro/internal/folder"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/sharedmem"
	"repro/internal/symbol"
	"repro/internal/threadcache"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Network is the transport view a memo server needs: listening on its own
// address and dialing out from its host (so simulated link delays apply).
type Network interface {
	Listen(addr string) (transport.Listener, error)
	DialFrom(srcHost, addr string) (transport.Conn, error)
}

// MemoAddr is the canonical memo-server address for a host.
func MemoAddr(host string) string { return host + "/memo" }

// App is one registered application's state on this memo server: its
// description, routing table, placement map, and the folder servers that
// live on this host ("each memo server is loaded with unique routing tables
// for each application").
type App struct {
	File  *adf.File
	Table *routing.Table
	Place *placement.Map
	// folderHost maps folder-server id to its host.
	folderHost map[int]string
	// local holds this host's folder servers for the app.
	local map[int]*folder.Server
	// programs holds pumped program images by source-directory name
	// (§4.4's executable distribution without NFS).
	progMu   sync.Mutex
	programs map[string][]byte
}

// StoreProgram saves a pumped program image.
func (a *App) StoreProgram(dir string, blob []byte) {
	a.progMu.Lock()
	defer a.progMu.Unlock()
	if a.programs == nil {
		a.programs = make(map[string][]byte)
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	a.programs[dir] = cp
}

// Program retrieves a pumped program image.
func (a *App) Program(dir string) ([]byte, bool) {
	a.progMu.Lock()
	defer a.progMu.Unlock()
	blob, ok := a.programs[dir]
	return blob, ok
}

// Config tunes a Node.
type Config struct {
	// Cache configures the memo server's own thread cache.
	Cache threadcache.Config
	// FolderCache configures the thread caches of folder servers this
	// node creates at registration.
	FolderCache threadcache.Config
	// Lambda is the placement topology attenuation (see placement).
	Lambda float64
	// Arena, when positive, allocates a shared-memory arena of that many
	// bytes per folder server for memo payloads.
	Arena int
	// FolderShards overrides the lock-stripe count of folder-server
	// stores this node creates at registration (0 = folder.DefaultShards).
	FolderShards int
	// Batch is the rpc flush policy for served connections and peer
	// links (zero = rpc defaults).
	Batch rpc.Policy
	// Resilience arms the link-resilience layer on peer links: heartbeats
	// (so transport idle timeouts can stay on), reconnect with backoff
	// when a link dies, and bounded transparent retries of safely-
	// retriable forwarded calls. Zero disables all three.
	Resilience rpc.Resilience
	// NoLocalInline disables the local fast path: every local request goes
	// through the folder server's thread cache, as all requests did before
	// non-blocking ops were inlined (the benchmark baseline, and the E1
	// thread-cache-fidelity configuration).
	NoLocalInline bool
	// DataDir, when non-empty, makes every folder server this node creates
	// at registration durable: its store opens from
	// DataDir/<app>/folder-<id> (recovering whatever a previous incarnation
	// committed) and write-ahead-logs every mutation. Empty (the default)
	// keeps the historical in-memory folder servers.
	DataDir string
	// Durable tunes the write-ahead log when DataDir is set (zero = durable
	// defaults: group commit, snapshot every durable.DefaultSnapshotEvery
	// records).
	Durable durable.Config
	// SlowRequestThreshold arms the slow-request log: requests whose
	// dispatch (or folder-server handling) takes at least this long are
	// recorded with their wire-propagated trace ID. Zero disables span
	// timing entirely.
	SlowRequestThreshold time.Duration
	// TraceSample is the span-sampling rate for requests that enter the
	// cluster at this node: 1 samples every entry request, 1/n every nth,
	// 0 (the default) samples none locally. Requests another node sampled
	// are always traced through regardless — the sampled bit rides the wire.
	TraceSample float64
	// TraceRingSize bounds the per-node sampled-trace ring served at
	// /tracez (0 = the obs default).
	TraceRingSize int
}

// listenNet is the slice of a transport a Node drives directly; both
// transport.Transport and Network satisfy it.
type listenNet interface {
	Listen(addr string) (transport.Listener, error)
}

// Node is one host's memo server.
type Node struct {
	Host string

	net listenNet
	cfg Config
	// dialFrom abstracts DialFrom for non-sim transports.
	dialFrom func(src, addr string) (transport.Conn, error)

	pool *threadcache.Pool

	// apps and peers are sync.Maps: lookupApp and peer sit on every
	// request's path, and a single node mutex was the remaining global
	// lock on the memo-server fan-out. Registration and peer dials are
	// rare writes; request routing is all reads.
	apps  sync.Map // app name -> *App
	peers sync.Map // host -> *peerLink

	mu       sync.Mutex
	inbound  []*transport.Mux
	listener transport.Listener
	closed   bool

	// slow is the node-wide slow-request log, shared with every folder
	// server this node creates so one log shows a request's spans across
	// layers. Nil-safe; disabled unless Config.SlowRequestThreshold > 0.
	slow *obs.SlowLog
	// tracer is the node's span-tracing front end: entry sampling at
	// Config.TraceSample, span-set ownership around dispatch, and the
	// /tracez ring. Always non-nil — a rate-0 node still collects spans for
	// requests other nodes sampled.
	tracer *obs.Tracer
	// where names this node in slow-log spans, e.g. "memo@glen-ellyn".
	where string

	// Counters for experiments and the node_* metric series (the same
	// obs.Counter instances back both Stats and the registry).
	localOps   obs.Counter
	forwards   obs.Counter
	inlined    obs.Counter
	retried    obs.Counter
	registered obs.Counter
}

// peerLink is the resilient rpc connection to a neighbouring memo server;
// every forwarded request to that neighbour shares it, so concurrent
// forwards pipeline and batch. When the link dies the embedded rlink
// reconnects with exponential backoff + jitter, and forward retries
// safely-retriable calls on the fresh connection. The same rlink machinery
// backs the application↔local-memo-server Client.
type peerLink struct {
	host string
	*rlink
}

func (n *Node) newPeerLink(host string) *peerLink {
	dial := func() (transport.Conn, error) {
		if n.isClosed() {
			return nil, fmt.Errorf("memo server %s closed", n.Host)
		}
		raw, err := n.dialFrom(n.Host, MemoAddr(host))
		if err != nil {
			return nil, err
		}
		return dialMux(raw), nil
	}
	return &peerLink{host: host, rlink: newRlink(dial, n.cfg.Batch, n.cfg.Resilience)}
}

// New creates a memo server for host over the given network. For the
// simulated transport pass the *transport.Sim itself; for plain transports
// use NewWithDialer.
func New(host string, sim *transport.Sim, cfg Config) *Node {
	return newNode(host, sim, sim.DialFrom, cfg)
}

// NewWithNetwork creates a memo server over any Network — a listener
// namespace with source-host-aware dialing (transport.Sim, a
// transport.Flaky wrapping one, or a peer-mapped TCP view).
func NewWithNetwork(host string, nw Network, cfg Config) *Node {
	return newNode(host, nw, nw.DialFrom, cfg)
}

// NewWithDialer creates a memo server over any transport; dials ignore the
// source host.
func NewWithDialer(host string, t transport.Transport, cfg Config) *Node {
	return newNode(host, t, func(_, addr string) (transport.Conn, error) {
		return t.Dial(addr)
	}, cfg)
}

func newNode(host string, t listenNet, dial func(string, string) (transport.Conn, error), cfg Config) *Node {
	n := &Node{
		Host:     host,
		net:      t,
		cfg:      cfg,
		dialFrom: dial,
		pool:     threadcache.New(cfg.Cache),
		where:    "memo@" + host,
	}
	if cfg.SlowRequestThreshold > 0 {
		n.slow = obs.NewSlowLog(cfg.SlowRequestThreshold, 0)
	}
	n.tracer = obs.NewTracer(n.where, cfg.TraceSample, cfg.TraceRingSize)
	return n
}

// SlowLog exposes the node's slow-request log (nil when disabled); the
// daemon wires its emit callback and /slowz endpoint to it.
func (n *Node) SlowLog() *obs.SlowLog { return n.slow }

// Tracer exposes the node's span tracer; the daemon serves its ring at
// /tracez.
func (n *Node) Tracer() *obs.Tracer { return n.tracer }

// Start binds the memo-server address and begins serving.
func (n *Node) Start() error {
	l, err := n.net.Listen(MemoAddr(n.Host))
	if err != nil {
		return fmt.Errorf("memoserver %s: %w", n.Host, err)
	}
	n.mu.Lock()
	n.listener = l
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// Close stops the server, its folder servers, and peer links. Durable
// folder stores flush their write-ahead logs, so every acknowledged
// operation is on disk when Close returns.
func (n *Node) Close() { n.shutdown(false) }

// Crash hard-stops the node the way SIGKILL would: the listener and every
// link die immediately and durable folder stores abandon their
// buffered-but-uncommitted records instead of flushing. Only what was
// acknowledged before the crash survives in the data directory — which is
// exactly the guarantee the crash-recovery harness audits. Reopen by
// building a new Node with the same Config.DataDir.
func (n *Node) Crash() { n.shutdown(true) }

func (n *Node) shutdown(crash bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	l := n.listener
	inbound := n.inbound
	n.inbound = nil
	n.mu.Unlock()
	if crash {
		// Crash the stores first: an in-flight operation that has not yet
		// committed must fail its commit rather than slip in after the
		// "kill" point.
		n.apps.Range(func(_, v any) bool {
			for _, fs := range v.(*App).local {
				fs.Store().Crash()
			}
			return true
		})
	}
	if l != nil {
		l.Close()
	}
	n.peers.Range(func(host, v any) bool {
		n.peers.Delete(host)
		v.(*peerLink).close()
		return true
	})
	for _, m := range inbound {
		m.Close()
	}
	n.apps.Range(func(_, v any) bool {
		for _, fs := range v.(*App).local {
			if crash {
				fs.Crash()
			} else {
				fs.Close()
			}
		}
		return true
	})
	n.pool.Close()
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *Node) acceptLoop(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		mux := transport.NewMux(conn, transport.DefaultMTU)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			mux.Close()
			return
		}
		n.inbound = append(n.inbound, mux)
		n.mu.Unlock()
		go mux.Run()
		go n.serveMux(mux)
	}
}

// serveMux answers each accepted virtual connection with the batching rpc
// server: batched requests dispatch concurrently through the node's thread
// cache, and responses coalesce into batched frames. Single-frame peers
// (pre-batching clients, raw wire debugging) are still served.
func (n *Node) serveMux(mux *transport.Mux) {
	for {
		ch, err := mux.Accept()
		if err != nil {
			return
		}
		if err := n.pool.Submit(func() {
			_ = rpc.Serve(ch, n.Dispatch, n.pool.SubmitArg, n.cfg.Batch)
			ch.Close()
		}); err != nil {
			// Shutting down. Closing the channel is the whole message: an
			// rpc peer has no request id to match an unsolicited response
			// to, and would treat a bare single frame as a protocol error.
			ch.Close()
			return
		}
	}
}

// RegisterApp installs an application: builds its routing table and
// placement map and creates the folder servers assigned to this host
// (§4.4). Idempotent for the same application name.
func (n *Node) RegisterApp(f *adf.File) error {
	if err := adf.Validate(f); err != nil {
		return err
	}
	g, err := f.Graph()
	if err != nil {
		return err
	}
	tbl := routing.Build(g)
	place, err := placement.New(f, tbl, placement.Options{Lambda: n.cfg.Lambda})
	if err != nil {
		return err
	}
	app := &App{
		File:       f,
		Table:      tbl,
		Place:      place,
		folderHost: make(map[int]string),
		local:      make(map[int]*folder.Server),
	}
	for _, fs := range f.Folders {
		app.folderHost[fs.ID] = fs.Host
	}

	if _, ok := n.apps.Load(f.App); ok {
		// Same app re-registered (every process registers on start-up;
		// "multiple memo applications run concurrently using the same
		// servers"). Keep the existing instance.
		return nil
	}

	// Create local folder servers before publishing; Forward may dispatch.
	appName := f.App
	for _, fs := range f.Folders {
		if fs.Host != n.Host {
			continue
		}
		opts := []folder.Option{
			folder.WithForward(func(dest symbol.Key, payload []byte, relToken uint64, committed func()) {
				n.forwardRelease(appName, dest, payload, relToken, committed)
			}),
		}
		if n.cfg.Arena > 0 {
			host, _ := f.HostByName(n.Host)
			opts = append(opts, folder.WithArena(sharedmem.New(host.Arch, n.cfg.Arena)))
		}
		if n.cfg.FolderShards > 0 {
			opts = append(opts, folder.WithShards(n.cfg.FolderShards))
		}
		if n.cfg.DataDir != "" {
			// Durable: open (recovering) the folder server's store from its
			// own directory; the server owns the store and flushes its log
			// on Close.
			dir := filepath.Join(n.cfg.DataDir, f.App, fmt.Sprintf("folder-%d", fs.ID))
			srv, err := folder.OpenServer(fs.ID, n.Host, dir, n.cfg.Durable, n.cfg.FolderCache,
				opts, folder.WithBatchPolicy(n.cfg.Batch), folder.WithSlowLog(n.slow))
			if err != nil {
				for _, s := range app.local {
					s.Close()
				}
				return fmt.Errorf("memoserver %s: %w", n.Host, err)
			}
			app.local[fs.ID] = srv
			continue
		}
		store := folder.NewStore(opts...)
		app.local[fs.ID] = folder.NewServer(fs.ID, n.Host, store, n.cfg.FolderCache,
			folder.WithBatchPolicy(n.cfg.Batch), folder.WithSlowLog(n.slow))
	}

	if _, loaded := n.apps.LoadOrStore(f.App, app); loaded {
		// Lost a race; drop ours.
		for _, fs := range app.local {
			fs.Close()
		}
		return nil
	}
	n.registered.Inc()
	return nil
}

// AppNames lists registered applications.
func (n *Node) AppNames() []string {
	var out []string
	n.apps.Range(func(name, _ any) bool {
		out = append(out, name.(string))
		return true
	})
	return out
}

// LocalFolderServer returns this host's folder server with the given id.
func (n *Node) LocalFolderServer(app string, id int) (*folder.Server, bool) {
	a, ok := n.lookupApp(app)
	if !ok {
		return nil, false
	}
	fs, ok := a.local[id]
	return fs, ok
}

// lookupApp fetches registered state. Lock-free: it runs on every request.
func (n *Node) lookupApp(name string) (*App, bool) {
	v, ok := n.apps.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*App), true
}

// Dispatch routes one request: to a local folder server, or toward the
// target host via the next-hop memo server. It blocks for the response
// (which may wait on a folder), honouring cancel. With the slow-request log
// armed, each dispatch is timed as one span under this node's name (the
// disabled check is one atomic load — no time.Now on an uninstrumented
// daemon). Sampled requests — entry requests the tracer admits, or requests
// that arrived with the sampled bit set — additionally own a span set for
// the duration of the dispatch: every layer below appends into it, and
// Finish records the completed set into the /tracez ring and ships it back
// toward the entry node on the response.
func (n *Node) Dispatch(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	set := n.tracer.Begin(q)
	if set == nil && !n.slow.Enabled() {
		return n.dispatch(q, cancel)
	}
	start := time.Now()
	resp := n.dispatch(q, cancel)
	dur := time.Since(start)
	if n.slow.Enabled() {
		n.slow.Observe(q.TraceID, q.TraceHop, q.Op.String(), q.FolderID, n.where, dur)
	}
	if set != nil {
		startNS := start.UnixNano()
		var wait int64
		if q.EnqueueNS > 0 && startNS > q.EnqueueNS {
			// Time spent in the rpc dispatch queue before a thread picked the
			// request up (stamped by the rpc server only on sampled entries).
			wait = startNS - q.EnqueueNS
		}
		set.Add(wire.Span{Layer: "memo", Op: q.Op.String(), Folder: q.FolderID,
			Hop: q.TraceHop, Start: startNS, Dur: int64(dur), Wait: wait})
		resp = n.tracer.Finish(q, set, resp)
	} else if n.slow.Enabled() && dur >= n.slow.Threshold() {
		// Slow but unsampled: record a single-span sample so /tracez always
		// has the requests /slowz complains about, even at -trace-sample 0.
		n.tracer.RecordSlow(q, "memo", q.Op.String(), start, dur)
	}
	return resp
}

func (n *Node) dispatch(q *wire.Request, cancel <-chan struct{}) *wire.Response {
	switch q.Op {
	case wire.OpPing:
		return wire.OK()
	case wire.OpRegister:
		f, err := adf.Parse(q.ADF)
		if err != nil {
			return wire.Errf("register: %v", err)
		}
		if err := n.RegisterApp(f); err != nil {
			return wire.Errf("register: %v", err)
		}
		return wire.OK()
	}

	app, ok := n.lookupApp(q.App)
	if !ok {
		return wire.Errf("memo server %s: application %q not registered", n.Host, q.App)
	}
	// Host-addressed operations (§4.4 program pumping).
	if q.Op == wire.OpPump || q.Op == wire.OpFetch {
		if q.TargetHost == "" || q.TargetHost == n.Host {
			switch q.Op {
			case wire.OpPump:
				if q.Dir == "" {
					return wire.Errf("pump: empty program name")
				}
				app.StoreProgram(q.Dir, q.Payload)
				return wire.OK()
			case wire.OpFetch:
				blob, ok := app.Program(q.Dir)
				if !ok {
					return wire.Errf("fetch: no program %q pumped to %s", q.Dir, n.Host)
				}
				return &wire.Response{Status: wire.StatusOK, Payload: blob}
			}
		}
		if _, known := app.Table.NextHop(n.Host, q.TargetHost); !known {
			return wire.Errf("memo server %s: unknown host %q", n.Host, q.TargetHost)
		}
		return n.forward(app, q, q.TargetHost, cancel)
	}
	targetHost, ok := app.folderHost[q.FolderID]
	if !ok {
		return wire.Errf("memo server %s: app %q has no folder server %d", n.Host, q.App, q.FolderID)
	}
	if targetHost == n.Host {
		fs, ok := app.local[q.FolderID]
		if !ok {
			return wire.Errf("memo server %s: folder server %d not local", n.Host, q.FolderID)
		}
		n.localOps.Inc()
		if !n.cfg.NoLocalInline && nonBlockingOp(q.Op) {
			// Fast path: an op that cannot wait on a folder completes on
			// the dispatching thread itself, skipping the goroutine
			// handoff (and reply-channel round trip) through the folder
			// server's thread cache. The dispatching thread is already a
			// cached thread of this node, so the paper's thread-per-
			// request discipline is preserved one layer up.
			n.inlined.Inc()
			return fs.Handle(q, cancel)
		}
		// Hand the request to the folder server's thread cache: "each
		// request to a server will cause a thread to be created to handle
		// the request". The handoff goroutine may outlive this dispatch —
		// the cancel arm below returns without waiting — while q.Payload
		// still aliases the rpc layer's read frame, which recycles as soon
		// as we return; detach the payload first so an abandoned handler
		// never reads a reused buffer. Blocking ops carry no payload, so
		// this copies only on the NoLocalInline put path.
		q.Retain()
		// The handler goroutine appends spans through the same q.Spans
		// pointer; pin the set so an abandoned handler (cancel below) can
		// never race the dispatch wrapper's Finish returning it to the pool.
		// Nil-safe when the request is unsampled.
		spans := q.Spans
		spans.Retain()
		respCh := make(chan *wire.Response, 1)
		if err := fs.Submit(func() {
			resp := fs.Handle(q, cancel)
			spans.Release()
			respCh <- resp
		}); err != nil {
			spans.Release()
			return wire.Errf("folder server %d: %v", q.FolderID, err)
		}
		select {
		case resp := <-respCh:
			return resp
		case <-cancel:
			// The folder server observes the same cancel and will
			// unblock; don't wait for it.
			return wire.Errf("canceled")
		}
	}
	return n.forward(app, q, targetHost, cancel)
}

// nonBlockingOp reports ops that always complete without waiting on a
// folder, and are therefore safe to run inline on the dispatching thread.
func nonBlockingOp(op wire.Op) bool {
	switch op {
	case wire.OpPut, wire.OpPutDelayed, wire.OpGetSkip, wire.OpPing:
		return true
	}
	return false
}

// retriableInFlight reports requests safe to re-issue even when the first
// attempt may have executed: reads that take nothing (get_copy, watch,
// fetch), idempotent control ops, and — now that folder servers deduplicate
// by token — any op carrying a dedup token. A tokened put's retry re-sends
// the same token and a folder server that already applied it acknowledges
// without depositing twice; a tokened destructive read (get, get_skip,
// alt_take) is answered from the folder server's consumed-take cache, so
// the retry receives the original's memo instead of consuming a second
// one. Untokened deposits and takes still retry only when the link died
// before the request reached the wire (rpc.LinkError.Sent == false).
func retriableInFlight(q *wire.Request) bool {
	switch q.Op {
	case wire.OpGetCopy, wire.OpWatch, wire.OpPing, wire.OpFetch, wire.OpRegister:
		return true
	case wire.OpPut, wire.OpPutDelayed, wire.OpGet, wire.OpGetSkip, wire.OpAltTake:
		return q.Token != 0
	}
	return false
}

// forward relays the request one hop along the routing table over the
// cached peer rpc connection; concurrent forwards to one neighbour
// pipeline and batch on it. If the link dies mid-call the peer link is
// faulted (triggering a backoff re-dial) and the call is retried up to
// Resilience.Retries times — always when the request provably never
// reached the wire, and only for idempotent ops once it may have.
func (n *Node) forward(app *App, q *wire.Request, targetHost string, cancel <-chan struct{}) *wire.Response {
	hop, ok := app.Table.NextHop(n.Host, targetHost)
	if !ok {
		return wire.Errf("memo server %s: no route to %s", n.Host, targetHost)
	}
	link, err := n.peer(hop)
	if err != nil {
		return wire.Errf("memo server %s: dial %s: %v", n.Host, hop, err)
	}
	fq := *q
	fq.Hops = q.Hops + 1
	fq.TraceHop = q.TraceHop + 1
	retries := n.cfg.Resilience.Retries
	if retries > 0 && fq.Token == 0 && tokenizableOp(fq.Op) {
		// Stamp a dedup token on the first hop that may ever retry this
		// deposit, so a maybe-delivered attempt can be re-sent safely. A
		// token already present (stamped by the application's client or an
		// earlier hop) is preserved — dedup is end-to-end.
		fq.Token = newToken()
	}
	n.forwards.Inc()
	var linkStartNS int64
	if q.Sampled && q.Spans != nil {
		linkStartNS = time.Now().UnixNano()
	}
	for attempt := 0; ; attempt++ {
		conn, epoch, err := link.get(cancel)
		if err != nil {
			select {
			case <-cancel:
				return wire.Errf("canceled")
			default:
			}
			if attempt < retries { // a failed dial sent nothing; any op may retry
				n.retried.Inc()
				continue
			}
			return wire.Errf("memo server %s: dial %s: %v", n.Host, hop, err)
		}
		resp, err := conn.Call(&fq, cancel)
		if err == nil {
			if linkStartNS != 0 {
				// Merge the remote hop's spans into this node's set now (and
				// strip them from resp so Finish doesn't add them twice), then
				// record the whole forward — dial, linger, retries, remote
				// work — as one link span named after the next-hop peer.
				if len(resp.Spans) > 0 {
					q.Spans.AddMany(resp.Spans)
					resp.Spans = nil
				}
				q.Spans.Add(wire.Span{Layer: "link", Op: hop, Folder: q.FolderID,
					Hop: q.TraceHop, Start: linkStartNS, Dur: time.Now().UnixNano() - linkStartNS})
			}
			return resp
		}
		if err == rpc.ErrCanceled {
			return wire.Errf("canceled")
		}
		var le *rpc.LinkError
		if errors.As(err, &le) {
			link.fault(epoch)
			if attempt < retries && (!le.Sent || retriableInFlight(&fq)) {
				n.retried.Inc()
				continue
			}
		}
		return wire.Errf("memo server %s: forward to %s: %v", n.Host, hop, err)
	}
}

// peer returns the resilient link to a neighbouring memo server, creating
// it on first use. Creation does not dial: the link's Redialer connects
// lazily, so a down neighbour costs its callers dial errors, never a
// missing table entry.
func (n *Node) peer(host string) (*peerLink, error) {
	if v, ok := n.peers.Load(host); ok {
		return v.(*peerLink), nil
	}
	if n.isClosed() {
		return nil, fmt.Errorf("memo server %s closed", n.Host)
	}
	p := n.newPeerLink(host)
	if exist, loaded := n.peers.LoadOrStore(host, p); loaded {
		p.close()
		return exist.(*peerLink), nil
	}
	if n.isClosed() { // raced Close; don't leak the link
		n.dropPeer(host)
		return nil, fmt.Errorf("memo server %s closed", n.Host)
	}
	return p, nil
}

func (n *Node) dropPeer(host string) {
	if v, ok := n.peers.LoadAndDelete(host); ok {
		v.(*peerLink).close()
	}
}

// never is a cancel channel that never fires, for background deliveries.
var never = make(chan struct{})

// forwardRelease delivers a put_delayed release to wherever the destination
// folder lives. It runs asynchronously: the releasing Put must not block on
// remote delivery, and the destination may even be a folder on the same
// store (which would deadlock a synchronous call through the thread cache).
// The release token rides as the deposit's dedup token, and committed fires
// only on an acknowledged delivery — so the releasing store logs the
// release done, and a crash-recovered re-delivery deduplicates.
func (n *Node) forwardRelease(appName string, dest symbol.Key, payload []byte, relToken uint64, committed func()) {
	app, ok := n.lookupApp(appName)
	if !ok {
		return
	}
	target := app.Place.Place(dest)
	q := &wire.Request{
		Op:       wire.OpPut,
		App:      appName,
		FolderID: target.ID,
		Key:      dest,
		Payload:  payload,
		Token:    relToken,
	}
	go func() {
		if resp := n.Dispatch(q, never); resp.Status == wire.StatusOK && committed != nil {
			committed()
		}
	}()
}

// Stats reports memo-server counters.
type Stats struct {
	LocalOps int64
	Forwards int64
	// Inlined counts local non-blocking ops that took the fast path,
	// skipping the folder-server thread-cache handoff.
	Inlined int64
	// Retried counts forwarded calls transparently re-issued after a link
	// failure.
	Retried    int64
	Registered int64
}

// Stats snapshots counters.
func (n *Node) Stats() Stats {
	return Stats{
		LocalOps:   n.localOps.Load(),
		Forwards:   n.forwards.Load(),
		Inlined:    n.inlined.Load(),
		Retried:    n.retried.Load(),
		Registered: n.registered.Load(),
	}
}

// LinkStat is one peer link's health: the neighbour host plus the link's
// redial counters (surfaced by dmemo-bench experiment E12).
type LinkStat struct {
	Peer string
	transport.RedialerStats
}

// LinkStats snapshots the health counters of every peer link this node has
// opened, sorted by peer host.
func (n *Node) LinkStats() []LinkStat {
	var out []LinkStat
	n.peers.Range(func(host, v any) bool {
		out = append(out, LinkStat{Peer: host.(string), RedialerStats: v.(*peerLink).stats()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// CacheStats reports the node's thread-cache counters (experiment E1).
func (n *Node) CacheStats() threadcache.Stats { return n.pool.Stats() }

// RegisterMetrics attaches this node's series to reg: the node_* routing
// counters (same obs.Counter instances Stats reads), plus a scrape-time
// collector that walks the node's folder servers (their folder_* series)
// and sums peer-link health into the node_link_* series — the registry view
// of LinkStats.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("node_local_ops_total", "requests resolved on this host", nil, &n.localOps)
	reg.RegisterCounter("node_forwards_total", "requests forwarded to a peer memo server", nil, &n.forwards)
	reg.RegisterCounter("node_inlined_total", "local non-blocking ops inlined past the thread cache", nil, &n.inlined)
	reg.RegisterCounter("node_retried_total", "forwarded calls re-issued after a link failure", nil, &n.retried)
	reg.RegisterCounter("node_apps_registered_total", "application registrations", nil, &n.registered)
	reg.RegisterCollector(func(e *obs.Emitter) {
		n.apps.Range(func(_, v any) bool {
			app := v.(*App)
			for _, fs := range app.local {
				fs.Collect(e)
			}
			return true
		})
		var links, dials, failed, faults int64
		n.peers.Range(func(_, v any) bool {
			st := v.(*peerLink).stats()
			links++
			dials += st.Dials
			failed += st.FailedDials
			faults += st.Faults
			return true
		})
		e.Gauge("node_peer_links", "open peer links", nil, links)
		e.Counter("node_link_dials_total", "successful peer-link dials", nil, dials)
		e.Counter("node_link_failed_dials_total", "failed peer-link dial attempts", nil, failed)
		e.Counter("node_link_faults_total", "peer-link faults (link declared dead)", nil, faults)
	})
}
