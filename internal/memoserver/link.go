package memoserver

import (
	"math/rand/v2"
	"sync"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// rlink is one resilient rpc link: a transport.Redialer managing the raw
// connection plus the rpc.Conn built on whatever the redialer currently
// holds. Memo-server peer links and the application↔local-memo-server
// client link both ride on it, so a dead link anywhere in Fig. 1's path
// heals the same way: fail fast, back off, re-dial, retry what is safe.
type rlink struct {
	rd  *transport.Redialer
	pol rpc.Policy
	res rpc.Resilience

	mu    sync.Mutex
	epoch uint64
	conn  *rpc.Conn
}

// muxChannel is the conn an rlink's Redialer manages: one rpc virtual
// circuit whose Close also retires the mux carrying it, so a faulted link
// leaks neither.
type muxChannel struct {
	*transport.Channel
	mux *transport.Mux
}

func (m *muxChannel) Close() error {
	_ = m.Channel.Close()
	return m.mux.Close()
}

// dialMux wraps a raw transport conn into the mux-backed channel an rlink
// manages.
func dialMux(raw transport.Conn) transport.Conn {
	mux := transport.NewMux(raw, transport.DefaultMTU)
	go mux.Run()
	return &muxChannel{Channel: mux.Channel(1), mux: mux}
}

func newRlink(dial func() (transport.Conn, error), pol rpc.Policy, res rpc.Resilience) *rlink {
	return &rlink{rd: transport.NewRedialer(dial, res.Redial), pol: pol, res: res}
}

// get returns the live rpc connection (dialing or re-dialing under backoff
// if the link is down) and the epoch to report to fault on failure.
func (l *rlink) get(giveup <-chan struct{}) (*rpc.Conn, uint64, error) {
	ch, ep, err := l.rd.Get(giveup)
	if err != nil {
		return nil, 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Only a strictly newer epoch replaces the conn: a goroutine that slept
	// on an old Get result must not tear down the link a concurrent fault
	// cycle already rebuilt. Whatever is current is what we hand back (a
	// stale ch is dead anyway), with the matching epoch for fault.
	if l.conn == nil || ep > l.epoch {
		if l.conn != nil {
			l.conn.Close()
		}
		l.conn = rpc.NewConnResilient(ch, l.pol, l.res)
		l.epoch = ep
	}
	return l.conn, l.epoch, nil
}

// fault reports the connection handed out under epoch dead; the next get
// re-dials. Stale epochs are ignored, so concurrent callers may all fault.
func (l *rlink) fault(epoch uint64) { l.rd.Fault(epoch) }

func (l *rlink) close() {
	l.rd.Close()
	l.mu.Lock()
	c := l.conn
	l.conn = nil
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// stats exposes the underlying redialer's health counters.
func (l *rlink) stats() transport.RedialerStats { return l.rd.Stats() }

// newToken mints a non-zero at-most-once dedup token. 64 random bits
// against a bounded dedup window (folder.DefaultTokenCap live tokens per
// store) puts the collision probability per put far below the failure
// rates the token exists to mask.
func newToken() uint64 {
	for {
		if t := rand.Uint64(); t != 0 {
			return t
		}
	}
}

// tokenizableOp reports ops that may carry a dedup token: the deposits
// whose blind retry would otherwise duplicate a memo, and the destructive
// reads whose blind retry would otherwise consume a second one (the folder
// server answers a retried tokened take from its consumed-take cache).
func tokenizableOp(op wire.Op) bool {
	switch op {
	case wire.OpPut, wire.OpPutDelayed, wire.OpGet, wire.OpGetSkip, wire.OpAltTake:
		return true
	}
	return false
}
