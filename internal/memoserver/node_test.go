package memoserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// testNet boots memo servers for every host in the ADF over a simulated
// network and registers the app on each.
type testNet struct {
	sim   *transport.Sim
	nodes map[string]*Node
	file  *adf.File
}

func bootNet(t testing.TB, adfText string, cfg Config) *testNet {
	t.Helper()
	f, err := adf.Parse(adfText)
	if err != nil {
		t.Fatal(err)
	}
	if err := adf.Validate(f); err != nil {
		t.Fatal(err)
	}
	model := transport.NewNetModel(0)
	for _, l := range f.Links {
		model.SetLink(l.From, l.To, l.Cost)
		if l.Duplex {
			model.SetLink(l.To, l.From, l.Cost)
		}
	}
	sim := transport.NewSim(model)
	tn := &testNet{sim: sim, nodes: make(map[string]*Node), file: f}
	for _, h := range f.Hosts {
		n := New(h.Name, sim, cfg)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterApp(f); err != nil {
			t.Fatal(err)
		}
		tn.nodes[h.Name] = n
	}
	t.Cleanup(func() {
		for _, n := range tn.nodes {
			n.Close()
		}
	})
	return tn
}

func (tn *testNet) client(t testing.TB, host string) *Client {
	t.Helper()
	c, err := DialClient(tn.sim.DialFrom, host, tn.file.App)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// twoHost: a and b, one folder server on each.
const twoHostADF = `APP t2
HOSTS
a 1 sun4 1
b 1 sun4 1
FOLDERS
0 a
1 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

// lineADF: a-b-c-d line, folder server only on d: requests from a traverse
// three memo servers.
const lineADF = `APP line
HOSTS
a 1 sun4 1
b 1 sun4 1
c 1 sun4 1
d 1 sun4 1
FOLDERS
0 d
PROCESSES
0 boss a
PPC
a <-> b 1
b <-> c 1
c <-> d 1
`

func req(op wire.Op, folderID int, key symbol.Key, payload []byte) *wire.Request {
	return &wire.Request{Op: op, FolderID: folderID, Key: key, Payload: payload}
}

func TestPingAndRegister(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Wire-level registration of a second app.
	other := strings.Replace(twoHostADF, "APP t2", "APP other", 1)
	if err := c.Register(other); err != nil {
		t.Fatal(err)
	}
	names := tn.nodes["a"].AppNames()
	found := false
	for _, n := range names {
		if n == "other" {
			found = true
		}
	}
	if !found {
		t.Fatalf("apps = %v", names)
	}
}

func TestRegisterBadADF(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	if err := c.Register("HOSTS\nbroken"); err == nil {
		t.Fatal("bad ADF registered")
	}
}

func TestLocalPutGet(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	k := symbol.K(1)
	resp, err := c.Do(req(wire.OpPut, 0, k, []byte("v")), nil)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	resp, err = c.Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || resp.Status != wire.StatusOK || string(resp.Payload) != "v" {
		t.Fatalf("get: %+v %v", resp, err)
	}
	st := tn.nodes["a"].Stats()
	if st.LocalOps != 2 || st.Forwards != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemotePutGetForwards(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	k := symbol.K(2)
	// Folder server 1 lives on b; requests from a must be forwarded.
	if resp, err := c.Do(req(wire.OpPut, 1, k, []byte("remote")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	resp, err := c.Do(req(wire.OpGet, 1, k, nil), nil)
	if err != nil || string(resp.Payload) != "remote" {
		t.Fatalf("get: %+v %v", resp, err)
	}
	if tn.nodes["a"].Stats().Forwards != 2 {
		t.Fatalf("a forwards = %d want 2", tn.nodes["a"].Stats().Forwards)
	}
	if tn.nodes["b"].Stats().LocalOps != 2 {
		t.Fatalf("b localOps = %d want 2", tn.nodes["b"].Stats().LocalOps)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	tn := bootNet(t, lineADF, Config{})
	c := tn.client(t, "a")
	k := symbol.K(3)
	if resp, err := c.Do(req(wire.OpPut, 0, k, []byte("far")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	resp, err := c.Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || string(resp.Payload) != "far" {
		t.Fatalf("get: %+v %v", resp, err)
	}
	// Every intermediate hop forwarded both requests.
	for _, h := range []string{"a", "b", "c"} {
		if f := tn.nodes[h].Stats().Forwards; f != 2 {
			t.Fatalf("node %s forwards = %d want 2", h, f)
		}
	}
	// Traffic flowed only on topology links; a never dialed d directly.
	if msgs, _ := tn.sim.Model().LinkTraffic("a", "d"); msgs != 0 {
		t.Fatalf("off-topology traffic a->d: %d msgs", msgs)
	}
	if msgs, _ := tn.sim.Model().LinkTraffic("a", "b"); msgs == 0 {
		t.Fatal("no traffic on a->b")
	}
}

func TestBlockingGetAcrossHosts(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	getter := tn.client(t, "a")
	putter := tn.client(t, "b")
	k := symbol.K(4)
	got := make(chan *wire.Response, 1)
	go func() {
		resp, err := getter.Do(req(wire.OpGet, 1, k, nil), nil)
		if err == nil {
			got <- resp
		}
	}()
	select {
	case <-got:
		t.Fatal("get returned before put")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := putter.Do(req(wire.OpPut, 1, k, []byte("wake")), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-got:
		if string(resp.Payload) != "wake" {
			t.Fatalf("payload %q", resp.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked get never woke across hosts")
	}
}

func TestCancelBlockedRemoteGet(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Do(req(wire.OpGet, 1, symbol.K(5), nil), cancel)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if err != ErrClientCanceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock client")
	}
}

func TestUnknownAppAndFolder(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	q := req(wire.OpPut, 0, symbol.K(1), nil)
	q.App = "ghost"
	resp, err := c.Do(q, nil)
	if err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("unknown app: %+v %v", resp, err)
	}
	resp, err = c.Do(req(wire.OpPut, 99, symbol.K(1), nil), nil)
	if err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("unknown folder: %+v %v", resp, err)
	}
}

func TestPutDelayedReleaseCrossesServers(t *testing.T) {
	// Trigger folder on a (id 0), destination key placed wherever the app's
	// placement map sends it. The release is routed via forwardRelease.
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	trigger := symbol.K(10)
	dest := symbol.K(11)
	// Find where dest is placed so we can read it back.
	app, _ := tn.nodes["a"].lookupApp("t2")
	destServer := app.Place.Place(dest).ID

	q := req(wire.OpPutDelayed, 0, trigger, []byte("released"))
	q.Key2 = dest
	if resp, err := c.Do(q, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put_delayed: %+v %v", resp, err)
	}
	if resp, err := c.Do(req(wire.OpPut, 0, trigger, []byte("trig")), nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("trigger put: %+v %v", resp, err)
	}
	// The release is asynchronous; a blocking get will see it.
	resp, err := c.Do(req(wire.OpGet, destServer, dest, nil), nil)
	if err != nil || resp.Status != wire.StatusOK || string(resp.Payload) != "released" {
		t.Fatalf("released get: %+v %v", resp, err)
	}
}

func TestWatchAcrossHosts(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	watcher := tn.client(t, "a")
	putter := tn.client(t, "b")
	k := symbol.K(12)
	woke := make(chan *wire.Response, 1)
	go func() {
		q := &wire.Request{Op: wire.OpWatch, FolderID: 1, Keys: []symbol.Key{k}}
		resp, err := watcher.Do(q, nil)
		if err == nil {
			woke <- resp
		}
	}()
	time.Sleep(20 * time.Millisecond)
	putter.Do(req(wire.OpPut, 1, k, []byte("x")), nil)
	select {
	case resp := <-woke:
		if resp.Status != wire.StatusWake || !resp.Key.Equal(k) {
			t.Fatalf("watch resp: %+v", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never fired")
	}
}

func TestConcurrentClientsStress(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	const clients = 8
	const opsEach = 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		host := "a"
		if i%2 == 1 {
			host = "b"
		}
		c := tn.client(t, host)
		go func(i int, c *Client) {
			defer wg.Done()
			k := symbol.K(symbol.Symbol(100 + i))
			fid := i % 2
			for j := 0; j < opsEach; j++ {
				payload := []byte(fmt.Sprintf("%d-%d", i, j))
				if resp, err := c.Do(req(wire.OpPut, fid, k, payload), nil); err != nil || resp.Status != wire.StatusOK {
					t.Errorf("put: %+v %v", resp, err)
					return
				}
				resp, err := c.Do(req(wire.OpGet, fid, k, nil), nil)
				if err != nil || resp.Status != wire.StatusOK {
					t.Errorf("get: %+v %v", resp, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
}

func TestNodeCloseRejectsWork(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	tn.nodes["a"].Close()
	// Requests now fail (either connection error or error response).
	resp, err := c.Do(req(wire.OpPut, 0, symbol.K(1), nil), nil)
	if err == nil && resp.Status == wire.StatusOK {
		t.Fatal("request succeeded after Close")
	}
}

func TestReregisterSameAppKeepsState(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	c := tn.client(t, "a")
	k := symbol.K(20)
	c.Do(req(wire.OpPut, 0, k, []byte("keep")), nil)
	// Second registration (another process starting) must not clear folders.
	if err := tn.nodes["a"].RegisterApp(tn.file); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req(wire.OpGetSkip, 0, k, nil), nil)
	if err != nil || resp.Status != wire.StatusOK || string(resp.Payload) != "keep" {
		t.Fatalf("memo lost on re-register: %+v %v", resp, err)
	}
}

// TestMultipleApplicationsShareServers verifies §4.3: "the same memo and
// folder servers can be shared over the network" by multiple concurrently
// registered applications, with folder/application name combinations
// keeping their data disjoint.
func TestMultipleApplicationsShareServers(t *testing.T) {
	tn := bootNet(t, twoHostADF, Config{})
	// Register a second application with the same hosts and folder ids.
	other := strings.Replace(twoHostADF, "APP t2", "APP second", 1)
	f2, err := adf.Parse(other)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tn.nodes {
		if err := n.RegisterApp(f2); err != nil {
			t.Fatal(err)
		}
	}
	c1 := tn.client(t, "a") // app t2
	c2, err := DialClient(tn.sim.DialFrom, "a", "second")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })

	// Identical key and folder id in both apps.
	k := symbol.K(77, 1)
	if r, err := c1.Do(req(wire.OpPut, 0, k, []byte("from-t2")), nil); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("t2 put: %+v %v", r, err)
	}
	if r, err := c2.Do(req(wire.OpPut, 0, k, []byte("from-second")), nil); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("second put: %+v %v", r, err)
	}
	// Each app sees only its own memo.
	r1, err := c1.Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || string(r1.Payload) != "from-t2" {
		t.Fatalf("t2 get: %+v %v", r1, err)
	}
	r2, err := c2.Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || string(r2.Payload) != "from-second" {
		t.Fatalf("second get: %+v %v", r2, err)
	}
	// Both folders are now empty: no cross-application leakage.
	if r, _ := c1.Do(req(wire.OpGetSkip, 0, k, nil), nil); r.Status != wire.StatusEmpty {
		t.Fatalf("t2 leftover: %+v", r)
	}
	if r, _ := c2.Do(req(wire.OpGetSkip, 0, k, nil), nil); r.Status != wire.StatusEmpty {
		t.Fatalf("second leftover: %+v", r)
	}
	// And "by using common application names, different programs will be
	// able to communicate": a third client sharing app name t2 sees t2's
	// folders.
	c3, err := DialClient(tn.sim.DialFrom, "b", "t2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c3.Close() })
	if r, err := c1.Do(req(wire.OpPut, 0, k, []byte("shared")), nil); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("shared put: %+v %v", r, err)
	}
	r3, err := c3.Do(req(wire.OpGet, 0, k, nil), nil)
	if err != nil || string(r3.Payload) != "shared" {
		t.Fatalf("cross-program get: %+v %v", r3, err)
	}
}
