package memoserver

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/adf"
	"repro/internal/obs"
	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// bootTCPPair starts the twoHostADF cluster over real TCP sockets with the
// given config and returns the nodes (a, b order) plus a wire client per
// host, all registered.
func bootTCPPair(t *testing.T, cfg Config) ([]*Node, []*Client) {
	t.Helper()
	net := newTCPMapped()
	f, err := adf.Parse(twoHostADF)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for _, h := range f.Hosts {
		n := NewWithDialer(h.Name, net, cfg)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	dial := func(_, addr string) (transport.Conn, error) { return net.Dial(addr) }
	clients := make([]*Client, len(f.Hosts))
	for i, h := range f.Hosts {
		c, err := DialClient(dial, h.Name, f.App)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.Register(adf.Format(f)); err != nil {
			t.Fatalf("register on %s: %v", h.Name, err)
		}
		clients[i] = c
	}
	return nodes, clients
}

// TestTracePropagation puts from host b into a folder on host a — a
// two-hop path (client → memo b → memo a → folder 0) — with a threshold low
// enough to record everything, and checks that the one client-stamped trace
// ID names the request in both hosts' slow logs, with the hop counter
// advanced across the forward.
func TestTracePropagation(t *testing.T) {
	nodes, clients := bootTCPPair(t, Config{SlowRequestThreshold: time.Nanosecond})
	clients[1].EnableTracing()

	q := req(wire.OpPut, 0, symbol.K(3, 1), []byte("traced"))
	if resp, err := clients[1].Do(q, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	if q.TraceID == 0 {
		t.Fatal("Do did not stamp a trace ID")
	}

	// Host b dispatched at hop 0; host a dispatched the forwarded request
	// and its folder server handled it, both at hop 1.
	if !nodes[1].SlowLog().Contains(q.TraceID) {
		t.Fatalf("trace %x missing from origin host's slow log", q.TraceID)
	}
	if !nodes[0].SlowLog().Contains(q.TraceID) {
		t.Fatalf("trace %x missing from remote host's slow log", q.TraceID)
	}
	var sawFolder, sawForwardHop bool
	for _, e := range nodes[0].SlowLog().Recent() {
		if e.Trace != q.TraceID {
			continue
		}
		if e.Hop >= 1 {
			sawForwardHop = true
		}
		if e.Where == "folder-0@a" {
			sawFolder = true
			if e.Op != wire.OpPut.String() {
				t.Fatalf("folder span op = %s", e.Op)
			}
		}
	}
	if !sawForwardHop {
		t.Fatal("no remote span recorded hop >= 1")
	}
	if !sawFolder {
		t.Fatalf("no folder-server span for trace %x: %+v", q.TraceID, nodes[0].SlowLog().Recent())
	}

	// An untraced client's requests must stay untraced end to end.
	q2 := req(wire.OpPut, 0, symbol.K(3, 2), []byte("untraced"))
	if resp, err := clients[0].Do(q2, nil); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v %v", resp, err)
	}
	if q2.TraceID != 0 {
		t.Fatal("untraced request gained a trace ID")
	}
}

// TestMetricsScrape boots the TCP cluster durable, drives local and
// forwarded traffic, and scrapes a real debug server's /metrics endpoint:
// every instrumented layer must show up in one exposition.
func TestMetricsScrape(t *testing.T) {
	nodes, clients := bootTCPPair(t, Config{
		DataDir:              t.TempDir(),
		SlowRequestThreshold: time.Millisecond,
	})

	for i := 0; i < 8; i++ {
		k := symbol.K(7, uint32(i))
		if resp, err := clients[1].Do(req(wire.OpPut, 0, k, []byte("x")), nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("put: %+v %v", resp, err)
		}
		if resp, err := clients[0].Do(req(wire.OpGet, 0, k, nil), nil); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("get: %+v %v", resp, err)
		}
	}

	// The daemons register the process-wide registry (rpc, pool, transport,
	// durable series live there via package init) alongside the node's own
	// collector; serve both like memoserverd does.
	reg := obs.NewRegistry()
	nodes[0].RegisterMetrics(reg)
	debug := obs.NewDebugServer("127.0.0.1:0", []*obs.Registry{obs.Default, reg}, nodes[0].SlowLog())
	if err := debug.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = debug.Shutdown(context.Background()) })

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", debug.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"rpc_calls_total",
		"rpc_call_ns_bucket",
		"rpc_batch_entries_count",
		"folder_puts_total",
		"folder_shard_memos",
		"node_forwards_total",
		"pool_gets_total",
		"transport_dials_total",
		"durable_appends_total",
		"durable_fsync_ns_bucket",
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}
