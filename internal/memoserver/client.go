package memoserver

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is an application process's connection to its local memo server
// (Fig. 1: applications talk to the memo server on their own host; the memo
// server does all remote work). One Client pipelines any number of
// concurrent requests over one virtual connection: requests are coalesced
// into batch frames by the rpc layer and responses match back by id.
//
// The connection rides the same resilient-link machinery as memo-server
// peer links: if the local memo server restarts, the next request re-dials
// under exponential backoff instead of failing forever, and with
// rpc.Resilience.Retries armed the Client transparently retries
// safely-retriable requests — stamping puts with an at-most-once dedup
// token so even a maybe-delivered deposit can be re-sent without ever
// landing twice.
type Client struct {
	Host string
	App  string

	res     rpc.Resilience
	link    *rlink
	retried obs.Counter
	// trace arms request tracing: Do stamps a fresh trace ID on untraced
	// requests, and the ID rides the wire hop by hop so every server's
	// slow-request log names the same request.
	trace bool
	// sample additionally marks every request sampled, forcing span
	// collection at every hop regardless of the servers' sampling rates.
	sample bool
	// lastTrace remembers the trace ID of the most recent Do, so a caller
	// (the memo CLI) can fetch the trace it just generated.
	lastTrace atomic.Uint64
}

// EnableTracing makes Do stamp a trace ID on every untraced request.
// Tracing is off by default: traceless requests stay byte-identical on the
// wire to pre-trace clients.
func (c *Client) EnableTracing() { c.trace = true }

// EnableSampling makes Do mark every request sampled (and stamp a trace ID):
// each hop collects spans and the entry memo server records the full tree in
// its /tracez ring. Implies EnableTracing.
func (c *Client) EnableSampling() { c.trace = true; c.sample = true }

// LastTraceID reports the trace ID stamped on the most recent Do (0 before
// any traced request) — how `memo trace` learns which trace to fetch after
// a traced op.
func (c *Client) LastTraceID() uint64 { return c.lastTrace.Load() }

// DialFunc matches Network.DialFrom.
type DialFunc func(srcHost, addr string) (transport.Conn, error)

// DialClient connects to the memo server on host with the default batching
// policy.
func DialClient(dial DialFunc, host, app string) (*Client, error) {
	return DialClientPolicy(dial, host, app, rpc.Policy{})
}

// DialClientPolicy connects with an explicit batch flush policy
// (cluster.Options.Batch reaches here). The connection heartbeats at the
// default interval: the daemons arm read deadlines by default, and a
// client parked on a blocking folder wait must not look dead to them. Use
// DialClientResilient to choose the interval (or 0 to disable).
func DialClientPolicy(dial DialFunc, host, app string, pol rpc.Policy) (*Client, error) {
	return DialClientResilient(dial, host, app, pol, rpc.Resilience{Heartbeat: rpc.DefaultHeartbeat})
}

// DialClientResilient connects with a batch flush policy and the full
// link-resilience layer: heartbeats (res.Heartbeat), reconnect with backoff
// when the link to the local memo server dies (res.Redial — the link heals
// across a memo-server restart), and bounded transparent retries
// (res.Retries) of safely-retriable requests, with puts carried under
// client-generated dedup tokens so maybe-delivered deposits retry safely.
// The initial dial happens eagerly, so an unreachable memo server surfaces
// here rather than on the first request.
func DialClientResilient(dial DialFunc, host, app string, pol rpc.Policy, res rpc.Resilience) (*Client, error) {
	c := &Client{Host: host, App: app, res: res}
	c.link = newRlink(func() (transport.Conn, error) {
		raw, err := dial(host, MemoAddr(host))
		if err != nil {
			return nil, err
		}
		return dialMux(raw), nil
	}, pol, res)
	if _, _, err := c.link.get(nil); err != nil {
		c.link.close()
		return nil, fmt.Errorf("memoserver: dial %s: %w", host, err)
	}
	return c, nil
}

// Do executes one request and waits for its response. Many Do calls may be
// in flight concurrently on the one connection. Cancel aborts a blocked
// operation: the rpc layer sends a cancel entry naming the request, which
// the server propagates to the folder wait. If the link dies mid-call the
// request fails fast; with res.Retries armed it is transparently re-issued
// on the re-dialed link when that is safe (always when provably unsent,
// and for idempotent or token-deduplicated requests when maybe-executed).
func (c *Client) Do(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	if q.App == "" {
		q.App = c.App
	}
	if c.res.Retries > 0 && q.Token == 0 && tokenizableOp(q.Op) {
		// Client-generated token: the outermost stamp, preserved hop by
		// hop, so dedup is end-to-end from application to folder server.
		q.Token = newToken()
	}
	if c.trace && q.TraceID == 0 {
		// Stamped on the caller's request so it can correlate its own slow
		// spans; like Token, the ID travels as a flagged batch-entry
		// extension, not in the request codec.
		q.TraceID = obs.NewTraceID()
	}
	if c.sample {
		q.Sampled = true
	}
	if q.TraceID != 0 {
		c.lastTrace.Store(q.TraceID)
	}
	for attempt := 0; ; attempt++ {
		conn, epoch, err := c.link.get(cancel)
		if err != nil {
			select {
			case <-cancel:
				return nil, ErrClientCanceled
			default:
			}
			if attempt < c.res.Retries { // a failed dial sent nothing
				c.retried.Inc()
				continue
			}
			return nil, fmt.Errorf("memoserver: dial %s: %w", c.Host, err)
		}
		resp, err := conn.Call(q, cancel)
		if err == nil {
			return resp, nil
		}
		if err == rpc.ErrCanceled {
			return nil, ErrClientCanceled
		}
		var le *rpc.LinkError
		if errors.As(err, &le) {
			c.link.fault(epoch)
			if attempt < c.res.Retries && (!le.Sent || retriableInFlight(q)) {
				c.retried.Inc()
				continue
			}
		}
		return nil, err
	}
}

// ErrClientCanceled reports a client-side cancellation.
var ErrClientCanceled = errCanceled{}

type errCanceled struct{}

func (errCanceled) Error() string { return "memoserver: request canceled" }

// Register registers an application with the memo server (the wire-level
// §4.4 step used by remote launches; in-process boots call RegisterApp).
func (c *Client) Register(adfText string) error {
	resp, err := c.Do(&wire.Request{Op: wire.OpRegister, ADF: adfText}, nil)
	if err != nil {
		return err
	}
	if resp.Status == wire.StatusErr {
		return fmt.Errorf("memoserver: register: %s", resp.Err)
	}
	return nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	resp, err := c.Do(&wire.Request{Op: wire.OpPing}, nil)
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("memoserver: ping: %s", resp.Err)
	}
	return nil
}

// ClientStats is a snapshot of the client link's health counters.
type ClientStats struct {
	transport.RedialerStats
	// Retried counts requests transparently re-issued after a link failure.
	Retried int64
}

// Stats snapshots the client link's health counters (dmemo-bench E12).
func (c *Client) Stats() ClientStats {
	return ClientStats{RedialerStats: c.link.stats(), Retried: c.retried.Load()}
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.link.close()
	return nil
}
