package memoserver

import (
	"fmt"
	"sync/atomic"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is an application process's connection to its local memo server
// (Fig. 1: applications talk to the memo server on their own host; the memo
// server does all remote work). One Client multiplexes any number of
// concurrent requests over one physical connection.
type Client struct {
	Host string
	App  string

	mux    *transport.Mux
	nextCh atomic.Uint64
}

// DialFunc matches Network.DialFrom.
type DialFunc func(srcHost, addr string) (transport.Conn, error)

// DialClient connects to the memo server on host.
func DialClient(dial DialFunc, host, app string) (*Client, error) {
	conn, err := dial(host, MemoAddr(host))
	if err != nil {
		return nil, fmt.Errorf("memoserver: dial %s: %w", host, err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	return &Client{Host: host, App: app, mux: mux}, nil
}

// Do executes one request and waits for its response. Cancel aborts a
// blocked operation by closing the request's virtual connection, which the
// server observes and propagates to the folder wait.
func (c *Client) Do(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	ch := c.mux.Channel(c.nextCh.Add(1))
	defer ch.Close()
	if q.App == "" {
		q.App = c.App
	}
	if err := ch.Send(wire.EncodeRequest(q)); err != nil {
		return nil, err
	}
	type recvResult struct {
		buf []byte
		err error
	}
	rc := make(chan recvResult, 1)
	go func() {
		buf, err := ch.Recv()
		rc <- recvResult{buf, err}
	}()
	select {
	case r := <-rc:
		if r.err != nil {
			return nil, r.err
		}
		return wire.DecodeResponse(r.buf)
	case <-cancel:
		ch.Close() // unblocks the server-side wait
		return nil, ErrClientCanceled
	}
}

// ErrClientCanceled reports a client-side cancellation.
var ErrClientCanceled = errCanceled{}

type errCanceled struct{}

func (errCanceled) Error() string { return "memoserver: request canceled" }

// Register registers an application with the memo server (the wire-level
// §4.4 step used by remote launches; in-process boots call RegisterApp).
func (c *Client) Register(adfText string) error {
	resp, err := c.Do(&wire.Request{Op: wire.OpRegister, ADF: adfText}, nil)
	if err != nil {
		return err
	}
	if resp.Status == wire.StatusErr {
		return fmt.Errorf("memoserver: register: %s", resp.Err)
	}
	return nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	resp, err := c.Do(&wire.Request{Op: wire.OpPing}, nil)
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("memoserver: ping: %s", resp.Err)
	}
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	return c.mux.Close()
}
