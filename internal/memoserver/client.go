package memoserver

import (
	"fmt"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is an application process's connection to its local memo server
// (Fig. 1: applications talk to the memo server on their own host; the memo
// server does all remote work). One Client pipelines any number of
// concurrent requests over one virtual connection: requests are coalesced
// into batch frames by the rpc layer and responses match back by id.
type Client struct {
	Host string
	App  string

	mux  *transport.Mux
	conn *rpc.Conn
}

// DialFunc matches Network.DialFrom.
type DialFunc func(srcHost, addr string) (transport.Conn, error)

// DialClient connects to the memo server on host with the default batching
// policy.
func DialClient(dial DialFunc, host, app string) (*Client, error) {
	return DialClientPolicy(dial, host, app, rpc.Policy{})
}

// DialClientPolicy connects with an explicit batch flush policy
// (cluster.Options.Batch reaches here). The connection heartbeats at the
// default interval: the daemons arm read deadlines by default, and a
// client parked on a blocking folder wait must not look dead to them. Use
// DialClientResilient to choose the interval (or 0 to disable).
func DialClientPolicy(dial DialFunc, host, app string, pol rpc.Policy) (*Client, error) {
	return DialClientResilient(dial, host, app, pol, rpc.Resilience{Heartbeat: rpc.DefaultHeartbeat})
}

// DialClientResilient connects with a batch flush policy and the
// link-resilience layer: with res.Heartbeat set, the connection probes the
// memo server whenever its receive side goes quiet, so daemon-side idle
// timeouts stay armed without killing a client parked on a blocking folder
// wait, and a
// dead server fails every pending call with rpc.ErrLinkDown instead of
// hanging them.
func DialClientResilient(dial DialFunc, host, app string, pol rpc.Policy, res rpc.Resilience) (*Client, error) {
	conn, err := dial(host, MemoAddr(host))
	if err != nil {
		return nil, fmt.Errorf("memoserver: dial %s: %w", host, err)
	}
	mux := transport.NewMux(conn, 4096)
	go mux.Run()
	return &Client{Host: host, App: app, mux: mux, conn: rpc.NewConnResilient(mux.Channel(1), pol, res)}, nil
}

// Do executes one request and waits for its response. Many Do calls may be
// in flight concurrently on the one connection. Cancel aborts a blocked
// operation: the rpc layer sends a cancel entry naming the request, which
// the server propagates to the folder wait.
func (c *Client) Do(q *wire.Request, cancel <-chan struct{}) (*wire.Response, error) {
	if q.App == "" {
		q.App = c.App
	}
	resp, err := c.conn.Call(q, cancel)
	if err == rpc.ErrCanceled {
		return nil, ErrClientCanceled
	}
	return resp, err
}

// ErrClientCanceled reports a client-side cancellation.
var ErrClientCanceled = errCanceled{}

type errCanceled struct{}

func (errCanceled) Error() string { return "memoserver: request canceled" }

// Register registers an application with the memo server (the wire-level
// §4.4 step used by remote launches; in-process boots call RegisterApp).
func (c *Client) Register(adfText string) error {
	resp, err := c.Do(&wire.Request{Op: wire.OpRegister, ADF: adfText}, nil)
	if err != nil {
		return err
	}
	if resp.Status == wire.StatusErr {
		return fmt.Errorf("memoserver: register: %s", resp.Err)
	}
	return nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	resp, err := c.Do(&wire.Request{Op: wire.OpPing}, nil)
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("memoserver: ping: %s", resp.Err)
	}
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.conn.Close()
	return c.mux.Close()
}
