// Package mdc implements Message Driven Computing, the pattern-driven
// language based on Actors that the paper reports implementing on top of
// D-Memo's API (§2, reference [4]).
//
// The model: an actor is a mailbox (a folder) plus a behaviour; computation
// is driven entirely by message arrival. Actor references are folder keys,
// so they travel inside memos like any other value — an actor on one host
// can hand its address to an actor on another. Beyond point-to-point actors,
// MDC's pattern-driven flavour appears as join patterns (When): an action
// fires when all of its operand folders hold memos, the paper's dataflow
// triggering generalized to multiple operands.
package mdc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Ref is an actor reference: the key of its mailbox folder. Refs are
// transferable (wrap in transferable.KeyValue to put them in messages).
type Ref struct {
	Key symbol.Key
}

// Value converts the ref to a transferable for embedding in messages.
func (r Ref) Value() transferable.Value { return transferable.KeyValue{K: r.Key} }

// RefFrom extracts a Ref from a transferable (the inverse of Value).
func RefFrom(v transferable.Value) (Ref, bool) {
	kv, ok := v.(transferable.KeyValue)
	if !ok {
		return Ref{}, false
	}
	return Ref{Key: kv.K}, true
}

// Behavior processes one message. It may send, spawn, become, or stop.
type Behavior func(ctx *Context, msg transferable.Value) error

// Context is an actor's view of the system during one message.
type Context struct {
	sys  *System
	self Ref
	next Behavior
	stop bool
}

// Self returns this actor's reference.
func (c *Context) Self() Ref { return c.self }

// Send delivers a message to an actor (any host).
func (c *Context) Send(to Ref, msg transferable.Value) error { return c.sys.Send(to, msg) }

// Spawn creates a new actor and returns its reference.
func (c *Context) Spawn(b Behavior) Ref { return c.sys.Spawn(b) }

// Become replaces this actor's behaviour for subsequent messages (the
// Actors-model state change).
func (c *Context) Become(b Behavior) { c.next = b }

// Stop terminates this actor after the current message.
func (c *Context) Stop() { c.stop = true }

// System runs actors over one Memo handle. Each Spawn starts a dispatcher
// goroutine that blocks on the actor's mailbox folder — message arrival is
// the only thing that drives execution.
type System struct {
	m *core.Memo

	mu      sync.Mutex
	stopped bool
	cancel  chan struct{}
	wg      sync.WaitGroup

	errMu  sync.Mutex
	errs   []error
	onHalt []func()
}

// NewSystem creates an actor system on a Memo handle.
func NewSystem(m *core.Memo) *System {
	return &System{m: m, cancel: make(chan struct{})}
}

// Spawn creates an actor with a fresh anonymous mailbox.
func (s *System) Spawn(b Behavior) Ref {
	ref := Ref{Key: symbol.K(s.m.CreateSymbol())}
	s.attach(ref, b)
	return ref
}

// SpawnNamed creates an actor with a well-known mailbox name so processes
// on other hosts can address it without exchanging refs first.
func (s *System) SpawnNamed(name string, b Behavior) Ref {
	ref := Ref{Key: s.m.NamedKey("actor:" + name)}
	s.attach(ref, b)
	return ref
}

// LookupNamed returns the ref a SpawnNamed(name, ...) actor listens on.
// The actor may live in any process of the application.
func (s *System) LookupNamed(name string) Ref {
	return Ref{Key: s.m.NamedKey("actor:" + name)}
}

// attach starts the dispatcher loop.
func (s *System) attach(ref Ref, b Behavior) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		behavior := b
		for {
			msg, err := s.m.GetCancel(ref.Key, s.cancel)
			if err != nil {
				return // system shutting down (or handle closed)
			}
			if _, isStop := msg.(stopMsg); isStop {
				return
			}
			ctx := &Context{sys: s, self: ref}
			if err := behavior(ctx, msg); err != nil {
				s.recordErr(fmt.Errorf("actor %v: %w", ref.Key, err))
				return
			}
			if ctx.stop {
				return
			}
			if ctx.next != nil {
				behavior = ctx.next
			}
		}
	}()
}

// stopMsg poisons a mailbox. It is process-local (never serialized): remote
// stops go through StopActor, which sends the marker string instead.
type stopMsg struct{}

func (stopMsg) Tag() transferable.Tag { return transferable.TagNil }

// Send delivers a message to any actor.
func (s *System) Send(to Ref, msg transferable.Value) error {
	return s.m.Put(to.Key, msg)
}

// When installs a join pattern: collect one memo from each operand folder
// (blocking per operand), then run action with the operands. If recur is
// true the pattern re-arms after each firing; otherwise it fires once.
// Operand collection takes folders in order, so a pattern does not hold
// partial sets hostage under contention with itself.
func (s *System) When(operands []symbol.Key, recur bool, action func(vals []transferable.Value) error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			vals := make([]transferable.Value, len(operands))
			for i, k := range operands {
				v, err := s.m.GetCancel(k, s.cancel)
				if err != nil {
					return
				}
				vals[i] = v
			}
			if err := action(vals); err != nil {
				s.recordErr(fmt.Errorf("when %v: %w", operands, err))
				return
			}
			if !recur {
				return
			}
		}
	}()
}

func (s *System) recordErr(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, err)
	s.errMu.Unlock()
}

// Errs returns errors raised by actor behaviours so far.
func (s *System) Errs() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return append([]error(nil), s.errs...)
}

// Shutdown cancels all dispatchers and waits for them to exit.
func (s *System) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.cancel)
	s.mu.Unlock()
	s.wg.Wait()
}

// ErrStopped reports an operation on a shut-down system.
var ErrStopped = errors.New("mdc: system stopped")
