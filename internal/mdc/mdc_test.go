package mdc_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mdc"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

const adfText = `APP mdctest
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

func boot(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func memoOn(t testing.TB, c *cluster.Cluster, host string) *core.Memo {
	t.Helper()
	m, err := c.NewMemo(host)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestActorEcho(t *testing.T) {
	c := boot(t)
	sys := mdc.NewSystem(memoOn(t, c, "a"))
	defer sys.Shutdown()
	reply := make(chan int64, 1)
	collector := sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		reply <- n
		return nil
	})
	doubler := sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		return ctx.Send(collector, transferable.Int64(2*n))
	})
	if err := sys.Send(doubler, transferable.Int64(21)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-reply:
		if n != 42 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
	}
}

func TestActorBecome(t *testing.T) {
	c := boot(t)
	sys := mdc.NewSystem(memoOn(t, c, "a"))
	defer sys.Shutdown()
	out := make(chan string, 3)
	var polite, rude mdc.Behavior
	polite = func(ctx *mdc.Context, msg transferable.Value) error {
		out <- "please"
		ctx.Become(rude)
		return nil
	}
	rude = func(ctx *mdc.Context, msg transferable.Value) error {
		out <- "now!"
		return nil
	}
	a := sys.Spawn(polite)
	for i := 0; i < 3; i++ {
		sys.Send(a, transferable.Int64(int64(i)))
	}
	want := []string{"please", "now!", "now!"}
	for i, w := range want {
		select {
		case got := <-out:
			if got != w {
				t.Fatalf("message %d: got %q want %q", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("actor stalled")
		}
	}
}

func TestActorStop(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	sys := mdc.NewSystem(m)
	defer sys.Shutdown()
	processed := make(chan struct{}, 4)
	a := sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		processed <- struct{}{}
		ctx.Stop()
		return nil
	})
	sys.Send(a, transferable.Int64(1))
	select {
	case <-processed:
	case <-time.After(5 * time.Second):
		t.Fatal("first message unprocessed")
	}
	// Actor stopped: further messages pile up in the mailbox unprocessed.
	sys.Send(a, transferable.Int64(2))
	select {
	case <-processed:
		t.Fatal("stopped actor processed a message")
	case <-time.After(50 * time.Millisecond):
	}
	// The message is still in the mailbox folder.
	if _, ok, _ := m.GetSkip(a.Key); !ok {
		t.Fatal("mailbox empty; message lost")
	}
}

func TestRefsTravelInMessages(t *testing.T) {
	// Classic Actors hand-off: send an actor the ref of where to reply,
	// across two processes on different hosts.
	c := boot(t)
	sysA := mdc.NewSystem(memoOn(t, c, "a"))
	sysB := mdc.NewSystem(memoOn(t, c, "b"))
	defer sysA.Shutdown()
	defer sysB.Shutdown()

	// Server on b: replies "pong" to whatever ref arrives.
	sysB.SpawnNamed("ponger", func(ctx *mdc.Context, msg transferable.Value) error {
		replyTo, ok := mdc.RefFrom(msg)
		if !ok {
			return fmt.Errorf("message was not a ref: %v", msg)
		}
		return ctx.Send(replyTo, transferable.String("pong"))
	})

	got := make(chan string, 1)
	me := sysA.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		s, _ := transferable.AsString(msg)
		got <- s
		return nil
	})
	if err := sysA.Send(sysA.LookupNamed("ponger"), me.Value()); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "pong" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pong across hosts")
	}
}

func TestWhenJoinPattern(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	sys := mdc.NewSystem(m)
	defer sys.Shutdown()
	x := m.NamedKey("opX")
	y := m.NamedKey("opY")
	sum := make(chan int64, 1)
	sys.When([]symbol.Key{x, y}, false, func(vals []transferable.Value) error {
		a, _ := transferable.AsInt(vals[0])
		b, _ := transferable.AsInt(vals[1])
		sum <- a + b
		return nil
	})
	m.Put(x, transferable.Int64(30))
	select {
	case <-sum:
		t.Fatal("join fired with one operand")
	case <-time.After(30 * time.Millisecond):
	}
	m.Put(y, transferable.Int64(12))
	select {
	case s := <-sum:
		if s != 42 {
			t.Fatalf("sum %d", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join never fired")
	}
}

func TestWhenRecurring(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	sys := mdc.NewSystem(m)
	defer sys.Shutdown()
	in := m.NamedKey("stream-in")
	out := make(chan int64, 8)
	sys.When([]symbol.Key{in}, true, func(vals []transferable.Value) error {
		n, _ := transferable.AsInt(vals[0])
		out <- n * n
		return nil
	})
	for i := int64(1); i <= 4; i++ {
		m.Put(in, transferable.Int64(i))
	}
	got := make(map[int64]bool)
	for i := 0; i < 4; i++ {
		select {
		case n := <-out:
			got[n] = true
		case <-time.After(5 * time.Second):
			t.Fatal("recurring join stalled")
		}
	}
	for _, want := range []int64{1, 4, 9, 16} {
		if !got[want] {
			t.Fatalf("missing %d in %v", want, got)
		}
	}
}

func TestBehaviorErrorRecorded(t *testing.T) {
	c := boot(t)
	sys := mdc.NewSystem(memoOn(t, c, "a"))
	defer sys.Shutdown()
	a := sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		return fmt.Errorf("deliberate failure")
	})
	sys.Send(a, transferable.Int64(1))
	deadline := time.Now().Add(5 * time.Second)
	for len(sys.Errs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("error never recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShutdownStopsDispatchers(t *testing.T) {
	c := boot(t)
	sys := mdc.NewSystem(memoOn(t, c, "a"))
	fired := make(chan struct{}, 1)
	sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		fired <- struct{}{}
		return nil
	})
	sys.Shutdown()
	sys.Shutdown() // idempotent
	select {
	case <-fired:
		t.Fatal("actor fired without a message")
	default:
	}
}

func TestPipelineOfActors(t *testing.T) {
	// A 5-stage increment pipeline spread across two hosts.
	c := boot(t)
	sysA := mdc.NewSystem(memoOn(t, c, "a"))
	sysB := mdc.NewSystem(memoOn(t, c, "b"))
	defer sysA.Shutdown()
	defer sysB.Shutdown()
	final := make(chan int64, 1)
	sink := sysA.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		final <- n
		return nil
	})
	next := sink
	for i := 0; i < 5; i++ {
		sys := sysA
		if i%2 == 0 {
			sys = sysB
		}
		downstream := next
		next = sys.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
			n, _ := transferable.AsInt(msg)
			return ctx.Send(downstream, transferable.Int64(n+1))
		})
	}
	sysA.Send(next, transferable.Int64(0))
	select {
	case n := <-final:
		if n != 5 {
			t.Fatalf("pipeline output %d want 5", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline stalled")
	}
}
