package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/symbol"
)

func TestBatchRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing},
		{Op: OpPut, App: "app", FolderID: 3, Key: symbol.K(7, 1, 2), Payload: []byte("payload")},
		{Op: OpAltTake, App: "app", Keys: []symbol.Key{symbol.K(1), symbol.K(2, 9)}},
	}
	entries := make([]BatchEntry, 0, len(reqs)+1)
	for i, q := range reqs {
		entries = append(entries, BatchEntry{ID: uint64(100 + i), Msg: EncodeRequest(q)})
	}
	entries = append(entries, BatchEntry{ID: 101, Cancel: true})
	entries = append(entries, BatchEntry{ID: 55, Heartbeat: true})
	// The dedup-token extension: flag-gated, so only this entry's layout
	// differs from a pre-token frame.
	entries = append(entries, BatchEntry{ID: 200, Token: 0xFEEDFACE,
		Msg: EncodeRequest(&Request{Op: OpPut, Key: symbol.K(9), Payload: []byte("tokened")})})
	// The trace extension: likewise flag-gated, and composable with the
	// token on one entry.
	entries = append(entries, BatchEntry{ID: 201, Trace: 0xABCDEF01, Hop: 2,
		Msg: EncodeRequest(&Request{Op: OpGet, Key: symbol.K(9)})})
	entries = append(entries, BatchEntry{ID: 202, Token: 7, Trace: 9, Hop: 1,
		Msg: EncodeRequest(&Request{Op: OpPut, Key: symbol.K(3), Payload: []byte("both")})})

	frame := EncodeBatch(BatchRequest, entries)
	if !IsBatchFrame(frame) {
		t.Fatal("encoded batch not recognized as batch frame")
	}
	kind, got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != BatchRequest {
		t.Fatalf("kind = %v", kind)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries = %d, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e.ID != entries[i].ID || e.Cancel != entries[i].Cancel ||
			e.Heartbeat != entries[i].Heartbeat || e.Token != entries[i].Token ||
			e.Trace != entries[i].Trace || e.Hop != entries[i].Hop ||
			!bytes.Equal(e.Msg, entries[i].Msg) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, entries[i])
		}
	}
	for i, q := range reqs {
		dq, err := DecodeRequest(got[i].Msg)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !reflect.DeepEqual(dq, q) {
			t.Fatalf("entry %d decoded %+v, want %+v", i, dq, q)
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		OK(),
		{Status: StatusOK, Key: symbol.K(4), Payload: []byte("v")},
		Errf("boom %d", 7),
	}
	var entries []BatchEntry
	for i, p := range resps {
		entries = append(entries, BatchEntry{ID: uint64(i), Msg: EncodeResponse(p)})
	}
	kind, got, err := DecodeBatch(EncodeBatch(BatchResponse, entries))
	if err != nil || kind != BatchResponse {
		t.Fatalf("kind %v err %v", kind, err)
	}
	for i, p := range resps {
		dp, err := DecodeResponse(got[i].Msg)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !reflect.DeepEqual(dp, p) {
			t.Fatalf("entry %d decoded %+v, want %+v", i, dp, p)
		}
	}
}

func TestBatchEmptyAndErrors(t *testing.T) {
	// Empty batches round-trip.
	kind, entries, err := DecodeBatch(EncodeBatch(BatchResponse, nil))
	if err != nil || kind != BatchResponse || len(entries) != 0 {
		t.Fatalf("empty batch: %v %v %v", kind, entries, err)
	}

	// Single frames are not batch frames.
	if IsBatchFrame(EncodeRequest(&Request{Op: OpPing})) {
		t.Fatal("single request mistaken for batch")
	}
	if IsBatchFrame(EncodeResponse(OK())) {
		t.Fatal("single response mistaken for batch")
	}
	if IsBatchFrame(nil) {
		t.Fatal("empty buffer mistaken for batch")
	}

	for name, buf := range map[string][]byte{
		"not batch":       {0x01},
		"bad version":     {batchMagic, 99, byte(BatchRequest), 0},
		"bad kind":        {batchMagic, BatchVersion, 77, 0},
		"truncated count": {batchMagic, BatchVersion, byte(BatchRequest)},
		"huge count":      {batchMagic, BatchVersion, byte(BatchRequest), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"truncated entry": {batchMagic, BatchVersion, byte(BatchRequest), 1, 5},
		"trailing bytes":  append(EncodeBatch(BatchRequest, nil), 0xAA),
	} {
		if _, _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestBatchExtensionFreeLayout pins the wire bytes of an entry carrying
// neither token nor trace: extension-free frames must stay byte-identical
// to version 1 frames that predate both flag-gated extensions.
func TestBatchExtensionFreeLayout(t *testing.T) {
	msg := []byte{0xAA, 0xBB}
	frame := EncodeBatch(BatchRequest, []BatchEntry{{ID: 5, Msg: msg}})
	want := []byte{
		batchMagic, BatchVersion, byte(BatchRequest),
		1,          // entry count
		5,          // id
		0,          // flags: no extensions
		2,          // msg length
		0xAA, 0xBB, // msg
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("extension-free frame = %x, want %x", frame, want)
	}
}

func TestBatchVersionedRejectsFuture(t *testing.T) {
	frame := EncodeBatch(BatchRequest, []BatchEntry{{ID: 1, Msg: EncodeRequest(&Request{Op: OpPing})}})
	frame[1] = BatchVersion + 1
	if _, _, err := DecodeBatch(frame); err == nil {
		t.Fatal("future version accepted")
	}
}
