package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/symbol"
)

// Fuzzers: hostile input must never panic the codec (ROADMAP "fuzzer for
// the wire codec on hostile input"). Whatever decodes successfully must
// re-encode canonically and decode back to the same value.

func seedRequests() []*Request {
	return []*Request{
		{Op: OpPing},
		{Op: OpPut, App: "app", FolderID: 3, Hops: 2, Key: symbol.K(7, 1, 2), Payload: []byte("payload")},
		{Op: OpPutDelayed, App: "a", Key: symbol.K(1), Key2: symbol.K(2, 4), Payload: []byte{0}},
		{Op: OpAltTake, App: "alt", Keys: []symbol.Key{symbol.K(1), symbol.K(2, 9), symbol.K(3)}},
		{Op: OpWatch, App: "w", Keys: []symbol.Key{symbol.K(5)}},
		{Op: OpRegister, ADF: "APP x\nHOSTS\na 1 sun4 1\n"},
		{Op: OpPump, App: "p", Dir: "worker", TargetHost: "far", Payload: bytes.Repeat([]byte{0xAB}, 100)},
		{Op: OpFetch, App: "p", Dir: "worker", TargetHost: "far"},
	}
}

func seedResponses() []*Response {
	return []*Response{
		OK(),
		{Status: StatusOK, Key: symbol.K(4, 1), Payload: []byte("v")},
		{Status: StatusEmpty},
		{Status: StatusWake, Key: symbol.K(9)},
		Errf("boom %d", 7),
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(EncodeRequest(q))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Add([]byte{byte(OpPut)})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(data)
		if err != nil {
			return
		}
		buf := EncodeRequest(q)
		q2, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", q, q2)
		}
	})
}

// FuzzAppendEncoders checks the encode-in-place variants against the
// allocating encoders on every decodable input: AppendRequest/AppendResponse/
// AppendBatch must produce byte-identical output after any prefix, so a
// buffer with transport header space reserved up front carries exactly the
// frame the wire format promises.
func FuzzAppendEncoders(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(EncodeRequest(q))
	}
	for _, p := range seedResponses() {
		f.Add(EncodeResponse(p))
	}
	f.Add(EncodeBatch(BatchRequest, []BatchEntry{{ID: 1, Token: 7, Msg: EncodeRequest(&Request{Op: OpPing})}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		prefix := []byte("0123456789abcdefghijk") // ~MuxHeaderSpace of reserved scratch
		if q, err := DecodeRequest(data); err == nil {
			want := EncodeRequest(q)
			got := AppendRequest(append([]byte(nil), prefix...), q)
			if !bytes.Equal(got[len(prefix):], want) || !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("AppendRequest diverged from EncodeRequest")
			}
			if len(want) > RequestOverhead(q) {
				t.Fatalf("RequestOverhead underestimates: encoded %d > bound %d", len(want), RequestOverhead(q))
			}
		}
		if p, err := DecodeResponse(data); err == nil {
			want := EncodeResponse(p)
			got := AppendResponse(append([]byte(nil), prefix...), p)
			if !bytes.Equal(got[len(prefix):], want) || !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("AppendResponse diverged from EncodeResponse")
			}
			if len(want) > ResponseOverhead(p) {
				t.Fatalf("ResponseOverhead underestimates: encoded %d > bound %d", len(want), ResponseOverhead(p))
			}
		}
		if kind, entries, err := DecodeBatch(data); err == nil {
			want := EncodeBatch(kind, entries)
			got := AppendBatch(append([]byte(nil), prefix...), kind, entries)
			if !bytes.Equal(got[len(prefix):], want) || !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("AppendBatch diverged from EncodeBatch")
			}
		}
	})
}

// FuzzAliasRetain pins the zero-copy decode ownership contract on hostile
// input: decoded payloads alias the read buffer, and Retain must fully
// detach them — after Retain, mutating every byte of the backing buffer
// must not change the retained payload, and the retained message must still
// re-encode canonically.
func FuzzAliasRetain(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(EncodeRequest(q))
	}
	for _, p := range seedResponses() {
		f.Add(EncodeResponse(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeRequest(data); err == nil {
			snap := string(q.Payload)
			q.Retain()
			for i := range data {
				data[i] ^= 0xFF
			}
			if string(q.Payload) != snap {
				t.Fatalf("request payload changed after Retain: %q != %q", q.Payload, snap)
			}
			for i := range data {
				data[i] ^= 0xFF
			}
		}
		if p, err := DecodeResponse(data); err == nil {
			snap := string(p.Payload)
			p.Retain()
			for i := range data {
				data[i] ^= 0xFF
			}
			if string(p.Payload) != snap {
				t.Fatalf("response payload changed after Retain: %q != %q", p.Payload, snap)
			}
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, p := range seedResponses() {
		f.Add(EncodeResponse(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeResponse(data)
		if err != nil {
			return
		}
		buf := EncodeResponse(p)
		p2, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", p, p2)
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	var reqEntries, respEntries []BatchEntry
	for i, q := range seedRequests() {
		reqEntries = append(reqEntries, BatchEntry{ID: uint64(i), Msg: EncodeRequest(q)})
	}
	reqEntries = append(reqEntries, BatchEntry{ID: 99, Cancel: true}, BatchEntry{ID: 98, Heartbeat: true},
		BatchEntry{ID: 97, Token: 0xABCDEF, Msg: EncodeRequest(&Request{Op: OpPut, Key: symbol.K(3)})},
		BatchEntry{ID: 96, Sampled: true, Trace: 0x1F3A8C22, Hop: 1, Msg: EncodeRequest(&Request{Op: OpPut, Key: symbol.K(4)})})
	for i, p := range seedResponses() {
		respEntries = append(respEntries, BatchEntry{ID: uint64(i), Msg: EncodeResponse(p)})
	}
	respEntries = append(respEntries, BatchEntry{ID: 95, Spans: AppendSpans(nil, sampleSpans()), Msg: EncodeResponse(OK())})
	f.Add(EncodeBatch(BatchRequest, reqEntries))
	f.Add(EncodeBatch(BatchResponse, respEntries))
	f.Add(EncodeBatch(BatchRequest, nil))
	f.Add([]byte{batchMagic})
	f.Add([]byte{batchMagic, BatchVersion, byte(BatchRequest), 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, entries, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if !IsBatchFrame(data) {
			t.Fatal("DecodeBatch accepted a non-batch frame")
		}
		// Entry messages themselves must decode or fail cleanly — the rpc
		// layer feeds them straight to the per-kind decoder.
		for _, e := range entries {
			switch kind {
			case BatchRequest:
				_, _ = DecodeRequest(e.Msg)
			case BatchResponse:
				_, _ = DecodeResponse(e.Msg)
			default:
				t.Fatalf("decoded invalid kind %v", kind)
			}
		}
		// Canonical re-encode round-trips.
		frame := EncodeBatch(kind, entries)
		kind2, entries2, err := DecodeBatch(frame)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if kind2 != kind || len(entries2) != len(entries) {
			t.Fatalf("round trip diverged: %v/%d vs %v/%d", kind, len(entries), kind2, len(entries2))
		}
		for i := range entries {
			if entries[i].ID != entries2[i].ID || entries[i].Cancel != entries2[i].Cancel ||
				entries[i].Heartbeat != entries2[i].Heartbeat ||
				entries[i].Token != entries2[i].Token ||
				entries[i].Trace != entries2[i].Trace || entries[i].Hop != entries2[i].Hop ||
				entries[i].Sampled != entries2[i].Sampled ||
				!bytes.Equal(entries[i].Spans, entries2[i].Spans) ||
				!bytes.Equal(entries[i].Msg, entries2[i].Msg) {
				t.Fatalf("entry %d diverged", i)
			}
		}
	})
}
