package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/symbol"
)

func TestRequestRoundTrip(t *testing.T) {
	q := &Request{
		Op:       OpPutDelayed,
		App:      "invert",
		FolderID: 7,
		Hops:     2,
		Key:      symbol.K(5, 1, 2),
		Key2:     symbol.K(6),
		Keys:     []symbol.Key{symbol.K(8, 9), symbol.K(10)},
		Payload:  []byte{1, 2, 3},
		ADF:      "APP x",
	}
	got, err := DecodeRequest(EncodeRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != q.Op || got.App != q.App || got.FolderID != q.FolderID || got.Hops != q.Hops {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.Key.Equal(q.Key) || !got.Key2.Equal(q.Key2) {
		t.Fatal("keys mismatch")
	}
	if len(got.Keys) != 2 || !got.Keys[0].Equal(q.Keys[0]) || !got.Keys[1].Equal(q.Keys[1]) {
		t.Fatalf("alt keys mismatch: %v", got.Keys)
	}
	if string(got.Payload) != string(q.Payload) || got.ADF != q.ADF {
		t.Fatal("payload/adf mismatch")
	}
}

func TestMinimalRequest(t *testing.T) {
	q := &Request{Op: OpPing}
	got, err := DecodeRequest(EncodeRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpPing || got.Keys != nil || got.Payload != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	p := &Response{Status: StatusWake, Key: symbol.K(3, 4), Payload: []byte("xyz"), Err: "nope"}
	got, err := DecodeResponse(EncodeResponse(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != p.Status || !got.Key.Equal(p.Key) || string(got.Payload) != "xyz" || got.Err != "nope" {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	full := EncodeRequest(&Request{
		Op: OpPut, App: "a", Key: symbol.K(1, 2), Payload: []byte("data"),
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeResponseTruncated(t *testing.T) {
	full := EncodeResponse(&Response{Status: StatusOK, Key: symbol.K(1), Payload: []byte("p")})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeResponse(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestInvalidOpRejected(t *testing.T) {
	buf := EncodeRequest(&Request{Op: OpPing})
	buf[0] = 200
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("invalid op accepted")
	}
	buf[0] = 0
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("zero op accepted")
	}
}

func TestInvalidStatusRejected(t *testing.T) {
	buf := EncodeResponse(OK())
	buf[0] = 99
	if _, err := DecodeResponse(buf); err == nil {
		t.Fatal("invalid status accepted")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	if _, err := DecodeRequest(append(EncodeRequest(&Request{Op: OpPing}), 0)); err == nil {
		t.Fatal("trailing request bytes accepted")
	}
	if _, err := DecodeResponse(append(EncodeResponse(OK()), 0)); err == nil {
		t.Fatal("trailing response bytes accepted")
	}
}

func TestHostileKeyCount(t *testing.T) {
	// Craft a request claiming 2^50 alt keys.
	w := &writer{}
	w.byte(byte(OpAltTake))
	w.str("app")
	w.u64(0)
	w.u64(0)
	w.key(symbol.Key{})
	w.key(symbol.Key{})
	w.u64(1 << 50) // hostile count
	if _, err := DecodeRequest(w.buf); err == nil {
		t.Fatal("hostile key count accepted")
	}
}

func TestErrf(t *testing.T) {
	p := Errf("folder %d missing", 3)
	if p.Status != StatusErr || p.Err != "folder 3 missing" {
		t.Fatalf("%+v", p)
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpPut; op <= OpFetch; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op string")
	}
}

// Property: requests with arbitrary string/byte content round-trip.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(app string, sym uint64, xs []uint32, payload []byte, adf string) bool {
		q := &Request{
			Op:      OpPut,
			App:     app,
			Key:     symbol.Key{S: symbol.Symbol(sym), X: xs},
			Payload: payload,
			ADF:     adf,
		}
		got, err := DecodeRequest(EncodeRequest(q))
		if err != nil {
			return false
		}
		return got.App == app && got.Key.Equal(q.Key) &&
			string(got.Payload) == string(payload) && got.ADF == adf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRequest(b *testing.B) {
	q := &Request{Op: OpPut, App: "invert", Key: symbol.K(5, 1, 2), Payload: make([]byte, 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeRequest(q)
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	buf := EncodeRequest(&Request{Op: OpPut, App: "invert", Key: symbol.K(5, 1, 2), Payload: make([]byte, 256)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}
