package wire

import (
	"fmt"
)

// Batch framing (version 1).
//
// A batch frame carries many encoded requests or responses in one transport
// message, so the per-message cost of the link (latency, mux framing, sim
// delay, syscalls) is amortized over the whole batch — the §3.1.1 derived
// transport's "communication cost amortized over time" applied to small
// memo operations. Each entry is tagged with a caller-chosen id; responses
// are matched to requests by id, which is what lets internal/rpc pipeline
// many in-flight requests over one virtual connection and complete them out
// of order.
//
// Layout:
//
//	byte    batchMagic (0xB1 — never a valid Op or Status, so single
//	        frames and batch frames coexist on one channel)
//	byte    version (currently 1; decoders reject higher versions)
//	byte    kind (BatchRequest | BatchResponse)
//	uvarint entry count
//	per entry:
//	  uvarint id
//	  byte    flags (bit 0: cancel — abandon the in-flight request `id`;
//	          bit 1: heartbeat — liveness probe/echo, no payload;
//	          bit 2: token — an at-most-once dedup token follows;
//	          bit 3: trace — a request trace ID and hop counter follow;
//	          bit 4: sampled — the request is span-sampled (request batches);
//	          bit 5: spans — an encoded span blob follows (response batches))
//	  uvarint dedup token (present only when flag bit 2 is set)
//	  uvarint trace id, uvarint hop (present only when flag bit 3 is set)
//	  uvarint len, then len bytes of an encoded span blob (see span.go;
//	          present only when flag bit 5 is set)
//	  uvarint len, then len bytes of an encoded Request or Response
//	          (empty for cancel and heartbeat entries)
//
// The token, trace, sampled bit, and span blob are flag-gated extensions
// rather than Request fields so that frames without them are byte-identical
// to version 1 frames that predate them, and the request codec (shared with
// the single-frame legacy protocol) stays untouched.
//
// Single-frame messages remain valid: their first byte is an Op or Status,
// both of which are small constants, so IsBatchFrame cleanly discriminates.

// batchMagic marks a batch frame. Ops and Statuses are small iota constants;
// 0xB1 collides with neither, keeping old single-frame peers decodable.
const batchMagic byte = 0xB1

// BatchVersion is the current batch-frame version.
const BatchVersion byte = 1

// BatchKind distinguishes request batches from response batches.
type BatchKind byte

// Batch kinds.
const (
	BatchRequest  BatchKind = 1
	BatchResponse BatchKind = 2
)

func (k BatchKind) String() string {
	switch k {
	case BatchRequest:
		return "request-batch"
	case BatchResponse:
		return "response-batch"
	}
	return fmt.Sprintf("batch-kind(%d)", byte(k))
}

// BatchEntry is one message inside a batch frame.
type BatchEntry struct {
	// ID matches a response to its request within one rpc connection.
	ID uint64
	// Cancel marks a request-batch control entry: abandon in-flight
	// request ID (the batched replacement for closing a per-request
	// virtual connection). Msg is empty on cancel entries.
	Cancel bool
	// Heartbeat marks a liveness control entry. In a request batch it is a
	// probe (piggybacking on whatever frame is departing, or riding alone
	// on an otherwise idle link); in a response batch it is the echo. Msg
	// is empty; ID is echoed back verbatim.
	Heartbeat bool
	// Token carries the request's at-most-once dedup token (0 = none);
	// meaningful only in request batches.
	Token uint64
	// Trace carries the request's trace ID (0 = untraced); meaningful only
	// in request batches.
	Trace uint64
	// Hop is the request's forward-hop counter, carried alongside Trace
	// (present on the wire only when Trace is non-zero).
	Hop int
	// Sampled marks a span-sampled request; meaningful only in request
	// batches. The serving hop collects spans and returns them on its
	// response entry.
	Sampled bool
	// Spans is an encoded span blob (AppendSpans output) riding a response
	// entry back toward the request's entry node; empty = none.
	Spans []byte
	// Msg is an encoded Request (BatchRequest) or Response (BatchResponse).
	Msg []byte
}

const (
	entryFlagCancel    byte = 1 << 0
	entryFlagHeartbeat byte = 1 << 1
	entryFlagToken     byte = 1 << 2
	entryFlagTrace     byte = 1 << 3
	entryFlagSampled   byte = 1 << 4
	entryFlagSpans     byte = 1 << 5
)

// IsBatchFrame reports whether buf is a batch frame rather than a single
// encoded Request or Response.
func IsBatchFrame(buf []byte) bool {
	return len(buf) > 0 && buf[0] == batchMagic
}

// AppendBatch serializes a batch frame onto dst (which is returned, possibly
// reallocated) — the encode-in-place variant: the rpc batcher appends into a
// pooled buffer with the mux channel header's worst-case space reserved up
// front, so the frame never moves again between encoder and wire. The bytes
// appended are identical to EncodeBatch's output.
//
//memolint:returns-buffer
func AppendBatch(dst []byte, kind BatchKind, entries []BatchEntry) []byte {
	w := writer{buf: dst}
	w.byte(batchMagic)
	w.byte(BatchVersion)
	w.byte(byte(kind))
	w.u64(uint64(len(entries)))
	for _, e := range entries {
		w.u64(e.ID)
		var flags byte
		if e.Cancel {
			flags |= entryFlagCancel
		}
		if e.Heartbeat {
			flags |= entryFlagHeartbeat
		}
		if e.Token != 0 {
			flags |= entryFlagToken
		}
		if e.Trace != 0 {
			flags |= entryFlagTrace
		}
		if e.Sampled {
			flags |= entryFlagSampled
		}
		if len(e.Spans) != 0 {
			flags |= entryFlagSpans
		}
		w.byte(flags)
		if e.Token != 0 {
			w.u64(e.Token)
		}
		if e.Trace != 0 {
			w.u64(e.Trace)
			w.u64(uint64(e.Hop))
		}
		if len(e.Spans) != 0 {
			w.bytes(e.Spans)
		}
		w.bytes(e.Msg)
	}
	return w.buf
}

// BatchOverhead conservatively bounds the encoded size of a batch frame
// carrying entries whose Msg plus span-blob bytes total msgBytes: frame
// header plus worst-case per-entry framing (id, flags, token, trace, span
// length, message length).
func BatchOverhead(entries, msgBytes int) int {
	return 16 + msgBytes + entries*(2*10+1+10+2*10+10)
}

// EncodeBatch serializes a batch frame into a fresh buffer.
func EncodeBatch(kind BatchKind, entries []BatchEntry) []byte {
	size := 16
	for _, e := range entries {
		size += len(e.Msg) + 12
	}
	return AppendBatch(make([]byte, 0, size), kind, entries)
}

// DecodeBatch parses a batch frame. Entry messages are returned still
// encoded and ALIAS buf; callers decode them per kind (DecodeRequest /
// DecodeResponse).
//
//memolint:aliases-buffer
func DecodeBatch(buf []byte) (BatchKind, []BatchEntry, error) {
	return DecodeBatchInto(nil, buf)
}

// DecodeBatchInto parses a batch frame, appending entries onto dst (which
// may be a reused scratch slice, typically dst[:0] of the previous frame's)
// — the steady-state read path decodes every frame into the same entry
// storage. Entry Msg bytes ALIAS buf.
//
//memolint:aliases-buffer
func DecodeBatchInto(dst []BatchEntry, buf []byte) (BatchKind, []BatchEntry, error) {
	r := &reader{buf: buf}
	if r.byte() != batchMagic {
		return 0, nil, fmt.Errorf("wire: not a batch frame")
	}
	if v := r.byte(); r.err == nil && v != BatchVersion {
		return 0, nil, fmt.Errorf("wire: unsupported batch version %d", v)
	}
	kind := BatchKind(r.byte())
	n := r.u64()
	if r.err != nil {
		return 0, nil, r.err
	}
	if kind != BatchRequest && kind != BatchResponse {
		return 0, nil, fmt.Errorf("wire: invalid batch kind %d", byte(kind))
	}
	// Each entry costs at least 3 bytes on the wire (id, flags, length);
	// an absurd count is a hostile frame, not an allocation request.
	if n > uint64(len(buf))/3 {
		return 0, nil, ErrTruncated
	}
	entries := dst
	if uint64(cap(entries)-len(entries)) < n {
		grown := make([]BatchEntry, len(entries), uint64(len(entries))+n)
		copy(grown, entries)
		entries = grown
	}
	for i := uint64(0); i < n; i++ {
		var e BatchEntry
		e.ID = r.u64()
		flags := r.byte()
		e.Cancel = flags&entryFlagCancel != 0
		e.Heartbeat = flags&entryFlagHeartbeat != 0
		if flags&entryFlagToken != 0 {
			e.Token = r.u64()
		}
		if flags&entryFlagTrace != 0 {
			e.Trace = r.u64()
			e.Hop = int(r.u64())
			if e.Trace == 0 {
				// Non-canonical frame (trace flag without a trace id): the
				// hop counter is meaningless without the id, and dropping it
				// keeps decode→encode canonical, like a flagged zero token.
				e.Hop = 0
			}
		}
		e.Sampled = flags&entryFlagSampled != 0
		if flags&entryFlagSpans != 0 {
			e.Spans = r.bytes()
		}
		e.Msg = r.bytes()
		if r.err != nil {
			return 0, nil, r.err
		}
		entries = append(entries, e)
	}
	if r.pos != len(buf) {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes in batch", len(buf)-r.pos)
	}
	return kind, entries, nil
}
