package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Node: "a@host", Layer: "memo", Op: "put", Folder: 3, Hop: 0, Start: 1000, Dur: 500},
		{Node: "b@host", Layer: "rpc", Op: "dispatch", Folder: 3, Hop: 1, Start: 1100, Dur: 200, Wait: 40},
		{Node: "b@host", Layer: "folder", Op: "put", Folder: 3, Hop: 1, Start: 1200, Dur: 80, Wait: 5},
		{Node: "", Layer: "durable", Op: "commit", Folder: -1, Hop: 0, Start: -7, Dur: 0, Wait: 0},
	}
}

// TestSpanRoundTrip pins the span blob codec on the happy path.
func TestSpanRoundTrip(t *testing.T) {
	spans := sampleSpans()
	buf := AppendSpans(nil, spans)
	if len(buf) > SpansOverhead(spans) {
		t.Fatalf("encoded %d bytes > SpansOverhead bound %d", len(buf), SpansOverhead(spans))
	}
	got, err := DecodeSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spans, got) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", spans, got)
	}
	// Empty blob round-trips to zero spans.
	empty, err := DecodeSpans(AppendSpans(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty blob: spans=%v err=%v", empty, err)
	}
}

// TestDecodeSpansCopiesStrings pins the ownership contract: span blobs arrive
// inside pooled batch frames that are recycled right after decode, so the
// decoded string fields must not alias the input buffer.
func TestDecodeSpansCopiesStrings(t *testing.T) {
	buf := AppendSpans(nil, sampleSpans())
	spans, err := DecodeSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]Span, len(spans))
	copy(snap, spans)
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if !reflect.DeepEqual(snap, spans) {
		t.Fatalf("decoded spans changed after the source buffer was recycled:\n%+v\n%+v", snap, spans)
	}
}

// FuzzSpans: hostile span blobs must never panic the codec, and whatever
// decodes must re-encode canonically, decode back identical, and stay within
// the SpansOverhead bound. The decoded spans must also survive the source
// buffer being clobbered (pooled-frame recycling).
func FuzzSpans(f *testing.F) {
	f.Add(AppendSpans(nil, sampleSpans()))
	f.Add(AppendSpans(nil, nil))
	f.Add(AppendSpans(nil, sampleSpans()[:1]))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := DecodeSpans(data)
		if err != nil {
			return
		}
		snap := make([]Span, len(spans))
		copy(snap, spans)
		for i := range data {
			data[i] ^= 0xFF
		}
		if !reflect.DeepEqual(snap, spans) {
			t.Fatal("decoded spans alias the input buffer")
		}
		buf := AppendSpans(nil, spans)
		if len(buf) > SpansOverhead(spans) {
			t.Fatalf("encoded %d bytes > SpansOverhead bound %d", len(buf), SpansOverhead(spans))
		}
		spans2, err := DecodeSpans(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(spans) != len(spans2) || (len(spans) > 0 && !reflect.DeepEqual(spans, spans2)) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", spans, spans2)
		}
	})
}

// TestSpanlessBatchByteIdentical pins the extension-compatibility promise in
// the batch layout doc: entries that use no flag-gated extension (no token,
// no trace, no sampling, no spans) encode byte-identically to the original
// version-1 layout — magic, version, kind, count, then per entry uvarint id,
// zero flags byte, uvarint msg length, msg bytes. A peer that predates the
// trace extensions decodes these frames unchanged.
func TestSpanlessBatchByteIdentical(t *testing.T) {
	entries := []BatchEntry{
		{ID: 1, Msg: []byte("req-one")},
		{ID: 300, Msg: []byte{}},
		{ID: 2, Msg: []byte("x")},
	}
	got := EncodeBatch(BatchRequest, entries)

	var want []byte
	want = append(want, batchMagic, BatchVersion, byte(BatchRequest))
	var w writer
	w.buf = want
	w.u64(uint64(len(entries)))
	for _, e := range entries {
		w.u64(e.ID)
		w.byte(0) // flags: no extensions
		w.u64(uint64(len(e.Msg)))
		w.buf = append(w.buf, e.Msg...)
	}
	if !bytes.Equal(got, w.buf) {
		t.Fatalf("extension-less frame diverged from the documented legacy layout:\ngot  %x\nwant %x", got, w.buf)
	}

	// Sanity check the converse: any extension flips at least one byte.
	sampled := EncodeBatch(BatchRequest, []BatchEntry{{ID: 1, Sampled: true, Msg: []byte("req-one")}})
	if bytes.Equal(sampled[:len(got)], got[:len(sampled)]) {
		t.Fatal("sampled entry encoded identically to a plain entry")
	}
}

// TestSpanSetLifecycle covers the pooled, refcounted span accumulator: Add
// and AddMany collect, Finish stamps the node and returns a private copy,
// and the cap drops overflow instead of growing without bound.
func TestSpanSetLifecycle(t *testing.T) {
	set := NewSpanSet()
	set.Add(Span{Layer: "memo", Op: "put", Start: 10})
	set.Add(Span{Node: "remote", Layer: "folder", Op: "put", Start: 20})
	set.AddMany([]Span{{Layer: "rpc", Op: "send", Start: 30}})
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3", set.Len())
	}

	out := set.Finish("local")
	if len(out) != 3 {
		t.Fatalf("Finish returned %d spans, want 3", len(out))
	}
	for _, sp := range out {
		if sp.Node == "" {
			t.Fatalf("Finish left a span without a node: %+v", sp)
		}
	}
	if out[1].Node != "remote" {
		t.Fatalf("Finish overwrote an already-stamped node: %+v", out[1])
	}

	// Finish returns a private copy: later Adds must not show up in it.
	set.Add(Span{Layer: "durable", Op: "commit"})
	if len(out) != 3 {
		t.Fatal("Finish result aliased the live set")
	}
	set.Release()
}

func TestSpanSetCap(t *testing.T) {
	set := NewSpanSet()
	defer set.Release()
	for i := 0; i < maxSpansPerSet+10; i++ {
		set.Add(Span{Layer: "memo", Start: int64(i)})
	}
	if set.Len() != maxSpansPerSet {
		t.Fatalf("Len = %d, want cap %d", set.Len(), maxSpansPerSet)
	}
	set.AddMany(make([]Span, 10))
	if set.Len() != maxSpansPerSet {
		t.Fatalf("AddMany broke the cap: Len = %d", set.Len())
	}
}

// TestSpanSetRefcount pins the abandoned-handler contract: a retained set
// survives the owner's Release and resets only on the last one.
func TestSpanSetRefcount(t *testing.T) {
	set := NewSpanSet()
	set.Add(Span{Layer: "memo"})
	set.Retain() // handed to a second goroutine
	set.Release()
	if set.Len() != 1 {
		t.Fatalf("set reset while still referenced: Len = %d", set.Len())
	}
	set.Add(Span{Layer: "folder"})
	set.Release() // last reference: resets and returns to the pool

	fresh := NewSpanSet()
	defer fresh.Release()
	if fresh.Len() != 0 {
		t.Fatalf("pooled set not reset: Len = %d", fresh.Len())
	}

	// Nil-safety across the API — abandoned paths call through nil sets.
	var nilSet *SpanSet
	nilSet.Retain()
	nilSet.Add(Span{})
	nilSet.AddMany([]Span{{}})
	if nilSet.Len() != 0 || nilSet.Finish("n") != nil {
		t.Fatal("nil SpanSet not inert")
	}
	nilSet.Release()
}
