// Package wire defines the request/response protocol spoken between
// application processes, memo servers, and folder servers. One request
// travels over one virtual connection (transport.Mux channel); blocking
// operations simply leave the response pending while the folder server's
// thread waits.
//
// The encoding reuses the varint conventions of the transferable codec but
// is deliberately separate: protocol control information is not application
// data (Fig. 1 distinguishes "Data" from "Control info").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/symbol"
)

// Op identifies a request type.
type Op byte

// Request operations. The first seven mirror the §6.1.2 API; Register
// implements §4.4; Watch supports cross-server get_alt; Ping is for health
// checks and tests.
const (
	OpInvalid Op = iota
	OpPut
	OpPutDelayed
	OpGet
	OpGetCopy
	OpGetSkip
	OpAltTake
	OpWatch
	OpRegister
	OpPing
	// OpPump stores a program image on a target host, and OpFetch retrieves
	// it — the §4.4 "pumping method to get [executables] to the appropriate
	// remote host if NFS is not available", which the paper left as work in
	// design. Both are host-addressed (Request.TargetHost) rather than
	// folder-addressed.
	OpPump
	OpFetch
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpPutDelayed:
		return "put_delayed"
	case OpGet:
		return "get"
	case OpGetCopy:
		return "get_copy"
	case OpGetSkip:
		return "get_skip"
	case OpAltTake:
		return "alt_take"
	case OpWatch:
		return "watch"
	case OpRegister:
		return "register"
	case OpPing:
		return "ping"
	case OpPump:
		return "pump"
	case OpFetch:
		return "fetch"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status codes a response.
type Status byte

// Response statuses.
const (
	StatusInvalid Status = iota
	// StatusOK carries a successful result (payload may be empty for put).
	StatusOK
	// StatusEmpty reports get_skip/alt_skip finding no memo.
	StatusEmpty
	// StatusWake reports a Watch firing: a watched folder became non-empty.
	StatusWake
	// StatusErr carries an error message.
	StatusErr
)

// Request is one operation sent toward a folder server.
type Request struct {
	Op  Op
	App string
	// FolderID is the placement-resolved target folder server.
	FolderID int
	// Hops counts memo-server forwards so far (diagnostics, E2).
	Hops int
	// Key is the primary folder key; Key2 is put_delayed's destination.
	Key, Key2 symbol.Key
	// Keys carries the alternatives for AltTake/Watch.
	Keys []symbol.Key
	// Payload is the encoded transferable for puts.
	Payload []byte
	// ADF carries the application description for Register.
	ADF string
	// Dir names a program (PROCESSES source directory) for Pump/Fetch.
	Dir string
	// TargetHost addresses host-directed operations (Pump/Fetch).
	TargetHost string
	// Token is an at-most-once dedup token for put/put_delayed (0 = none):
	// a retried maybe-delivered put carries the same token, and the folder
	// server acknowledges without re-applying if it already holds it. The
	// token is NOT part of the request codec — it travels as a batch-entry
	// extension (see batch.go), so the single-frame legacy protocol is
	// untouched and the rpc layer re-attaches it at every hop.
	Token uint64
	// TraceID identifies the request across hops for the slow-request log
	// (0 = untraced). Like Token, it is NOT part of the request codec — it
	// travels as a batch-entry extension (see batch.go) and the rpc layer
	// re-attaches it at every hop.
	TraceID uint64
	// TraceHop counts memo-server forwards the request has taken (0 = the
	// hop the client issued). Carried on the wire only alongside TraceID.
	TraceHop int
	// Sampled marks the request for span collection. Like Token, it is NOT
	// part of the request codec — it rides the batch entry as a flag bit
	// (see batch.go) and the rpc layer re-attaches it at every hop.
	Sampled bool
	// EnqueueNS is the local receive timestamp the rpc server stamps on
	// sampled requests (Unix nanoseconds; 0 = unstamped) so the dispatch
	// wrapper can report dispatch-queue wait. Never on the wire.
	EnqueueNS int64
	// Spans is the span set of the node currently handling this sampled
	// request: created by the owning dispatch wrapper, appended to by every
	// layer below it. Never on the wire — spans travel back on response
	// batch entries (see span.go).
	Spans *SpanSet
}

// Response answers a Request.
type Response struct {
	Status Status
	// Key reports which folder satisfied an AltTake/Watch.
	Key symbol.Key
	// Payload is the encoded transferable for gets.
	Payload []byte
	// Err is the message accompanying StatusErr.
	Err string
	// Spans carries the spans collected while serving a sampled request.
	// NOT part of the response codec — the rpc server encodes them as a
	// batch-entry span blob and the client decodes them back (see span.go).
	Spans []Span
}

// Errors returned by decoding.
var (
	ErrTruncated = errors.New("wire: truncated message")
)

type writer struct{ buf []byte }

func (w *writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *writer) str(s string) { w.u64(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) key(k symbol.Key) {
	w.u64(uint64(k.S))
	w.u64(uint64(len(k.X)))
	for _, x := range k.X {
		w.u64(uint64(x))
	}
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.err = ErrTruncated
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// bytes returns the next length-prefixed byte field ALIASED into the read
// buffer — no copy. Decoded messages therefore borrow their input: a caller
// that retains the payload past the buffer's life must Retain() it first.
func (r *reader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.err = ErrTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *reader) key() symbol.Key {
	var k symbol.Key
	r.keyInto(&k)
	return k
}

// keyInto decodes a key in place, reusing k's extension-slot capacity — the
// decode path of a pooled Request re-decodes into the same Key storage.
func (r *reader) keyInto(k *symbol.Key) {
	s := r.u64()
	n := r.u64()
	if r.err != nil {
		*k = symbol.Key{}
		return
	}
	if n > uint64(len(r.buf)-r.pos) { // each element ≥ 1 byte
		r.err = ErrTruncated
		*k = symbol.Key{}
		return
	}
	k.S = symbol.Symbol(s)
	if n == 0 {
		// Keep the extension array (empty) so a pooled request's key
		// capacity survives keyless decodes; a fresh key stays nil.
		k.X = k.X[:0]
		return
	}
	if uint64(cap(k.X)) >= n {
		k.X = k.X[:n]
	} else {
		k.X = make([]uint32, n)
	}
	for i := range k.X {
		k.X[i] = uint32(r.u64())
	}
}

// AppendRequest serializes a request onto dst (which is returned, possibly
// reallocated) — the encode-in-place variant: the hot path appends into a
// pooled buffer, often with transport header space already reserved at the
// front, so one buffer carries the message from encoder to wire. The bytes
// appended are identical to EncodeRequest's output.
//
//memolint:returns-buffer
func AppendRequest(dst []byte, q *Request) []byte {
	w := writer{buf: dst}
	w.byte(byte(q.Op))
	w.str(q.App)
	w.u64(uint64(q.FolderID))
	w.u64(uint64(q.Hops))
	w.key(q.Key)
	w.key(q.Key2)
	w.u64(uint64(len(q.Keys)))
	for _, k := range q.Keys {
		w.key(k)
	}
	w.bytes(q.Payload)
	w.str(q.ADF)
	w.str(q.Dir)
	w.str(q.TargetHost)
	return w.buf
}

// RequestOverhead conservatively bounds the encoded size of q — the
// AppendRequest output never exceeds it. Hot-path callers size their
// pooled buffers with it so multi-key requests (alt_take, watch) don't
// outgrow the buffer and reallocate mid-encode.
func RequestOverhead(q *Request) int {
	n := 1 + // op
		4*binary.MaxVarintLen64 + // folder id, hops, key count, payload len
		len(q.App) + len(q.ADF) + len(q.Dir) + len(q.TargetHost) +
		4*binary.MaxVarintLen64 + // the four string length prefixes
		len(q.Payload)
	n += keyOverhead(q.Key) + keyOverhead(q.Key2)
	for i := range q.Keys {
		n += keyOverhead(q.Keys[i])
	}
	return n
}

func keyOverhead(k symbol.Key) int {
	return (2 + len(k.X)) * binary.MaxVarintLen64
}

// EncodeRequest serializes a request into a fresh buffer.
func EncodeRequest(q *Request) []byte {
	return AppendRequest(make([]byte, 0, RequestOverhead(q)), q)
}

// DecodeRequest parses a request. The returned request's Payload ALIASES
// buf; callers that retain it past buf's lifetime must Retain() first.
//
//memolint:aliases-buffer
func DecodeRequest(buf []byte) (*Request, error) {
	q := &Request{}
	if err := DecodeRequestInto(q, buf); err != nil {
		return nil, err
	}
	return q, nil
}

// DecodeRequestInto parses a request into q, reusing q's Keys and key
// extension-slot capacity — the pooled-request decode path. Every field of
// q is overwritten (Token and the trace fields are zeroed: they travel as
// batch-entry extensions, not in this codec). q.Payload ALIASES buf.
//
//memolint:aliases-buffer
func DecodeRequestInto(q *Request, buf []byte) error {
	r := &reader{buf: buf}
	q.Op = Op(r.byte())
	q.App = r.str()
	q.FolderID = int(r.u64())
	q.Hops = int(r.u64())
	r.keyInto(&q.Key)
	r.keyInto(&q.Key2)
	nk := r.u64()
	if r.err == nil && nk > uint64(len(buf)) {
		r.err = ErrTruncated
	}
	// Reuse the Keys array (and, via keyInto, each key's extension array):
	// a pooled request keeps its capacity across keyless decodes rather
	// than re-allocating on the next multi-key one. Fresh requests stay
	// nil-keyed either way.
	q.Keys = q.Keys[:0]
	if r.err == nil && nk > 0 {
		if uint64(cap(q.Keys)) >= nk {
			q.Keys = q.Keys[:nk]
		} else {
			q.Keys = make([]symbol.Key, nk)
		}
		for i := range q.Keys {
			r.keyInto(&q.Keys[i])
		}
	}
	q.Payload = r.bytes()
	q.ADF = r.str()
	q.Dir = r.str()
	q.TargetHost = r.str()
	q.Token = 0
	q.TraceID, q.TraceHop = 0, 0
	q.Sampled, q.EnqueueNS, q.Spans = false, 0, nil
	if r.err != nil {
		return r.err
	}
	if r.pos != len(buf) {
		return fmt.Errorf("wire: %d trailing bytes in request", len(buf)-r.pos)
	}
	if q.Op == OpInvalid || q.Op > OpFetch {
		return fmt.Errorf("wire: invalid op %d", q.Op)
	}
	return nil
}

// Retain replaces q's aliased payload with a private copy, detaching it from
// the decode buffer. Call it exactly where keeping the bytes IS the
// semantics (a folder storing a memo, a result handed to the application);
// everywhere else the alias is the point.
func (q *Request) Retain() {
	q.Payload = cloneBytes(q.Payload)
}

// Retain replaces p's aliased payload with a private copy (see
// (*Request).Retain).
func (p *Response) Retain() {
	p.Payload = cloneBytes(p.Payload)
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ResponseOverhead conservatively bounds the encoded size of p — the
// AppendResponse output never exceeds it (the response-side mirror of
// RequestOverhead).
func ResponseOverhead(p *Response) int {
	return 1 + // status
		2*binary.MaxVarintLen64 + // payload and err length prefixes
		len(p.Payload) + len(p.Err) +
		keyOverhead(p.Key)
}

// AppendResponse serializes a response onto dst (see AppendRequest).
//
//memolint:returns-buffer
func AppendResponse(dst []byte, p *Response) []byte {
	w := writer{buf: dst}
	w.byte(byte(p.Status))
	w.key(p.Key)
	w.bytes(p.Payload)
	w.str(p.Err)
	return w.buf
}

// EncodeResponse serializes a response into a fresh buffer.
func EncodeResponse(p *Response) []byte {
	return AppendResponse(make([]byte, 0, 32+len(p.Payload)), p)
}

// DecodeResponse parses a response. The returned response's Payload ALIASES
// buf; callers that retain it past buf's lifetime must Retain() first.
//
//memolint:aliases-buffer
func DecodeResponse(buf []byte) (*Response, error) {
	r := &reader{buf: buf}
	p := &Response{}
	p.Status = Status(r.byte())
	p.Key = r.key()
	p.Payload = r.bytes()
	p.Err = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes in response", len(buf)-r.pos)
	}
	if p.Status == StatusInvalid || p.Status > StatusErr {
		return nil, fmt.Errorf("wire: invalid status %d", p.Status)
	}
	return p, nil
}

// okResponse is the shared success response for value-less operations. It is
// handed out by OK() on every put/ping acknowledgement; treat responses as
// immutable after construction.
var okResponse = &Response{Status: StatusOK}

// OK is the canonical success response for value-less operations. The
// returned response is shared — do not mutate it.
func OK() *Response { return okResponse }

// Errf builds an error response.
func Errf(format string, args ...any) *Response {
	return &Response{Status: StatusErr, Err: fmt.Sprintf(format, args...)}
}
