// Package wire defines the request/response protocol spoken between
// application processes, memo servers, and folder servers. One request
// travels over one virtual connection (transport.Mux channel); blocking
// operations simply leave the response pending while the folder server's
// thread waits.
//
// The encoding reuses the varint conventions of the transferable codec but
// is deliberately separate: protocol control information is not application
// data (Fig. 1 distinguishes "Data" from "Control info").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/symbol"
)

// Op identifies a request type.
type Op byte

// Request operations. The first seven mirror the §6.1.2 API; Register
// implements §4.4; Watch supports cross-server get_alt; Ping is for health
// checks and tests.
const (
	OpInvalid Op = iota
	OpPut
	OpPutDelayed
	OpGet
	OpGetCopy
	OpGetSkip
	OpAltTake
	OpWatch
	OpRegister
	OpPing
	// OpPump stores a program image on a target host, and OpFetch retrieves
	// it — the §4.4 "pumping method to get [executables] to the appropriate
	// remote host if NFS is not available", which the paper left as work in
	// design. Both are host-addressed (Request.TargetHost) rather than
	// folder-addressed.
	OpPump
	OpFetch
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpPutDelayed:
		return "put_delayed"
	case OpGet:
		return "get"
	case OpGetCopy:
		return "get_copy"
	case OpGetSkip:
		return "get_skip"
	case OpAltTake:
		return "alt_take"
	case OpWatch:
		return "watch"
	case OpRegister:
		return "register"
	case OpPing:
		return "ping"
	case OpPump:
		return "pump"
	case OpFetch:
		return "fetch"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status codes a response.
type Status byte

// Response statuses.
const (
	StatusInvalid Status = iota
	// StatusOK carries a successful result (payload may be empty for put).
	StatusOK
	// StatusEmpty reports get_skip/alt_skip finding no memo.
	StatusEmpty
	// StatusWake reports a Watch firing: a watched folder became non-empty.
	StatusWake
	// StatusErr carries an error message.
	StatusErr
)

// Request is one operation sent toward a folder server.
type Request struct {
	Op  Op
	App string
	// FolderID is the placement-resolved target folder server.
	FolderID int
	// Hops counts memo-server forwards so far (diagnostics, E2).
	Hops int
	// Key is the primary folder key; Key2 is put_delayed's destination.
	Key, Key2 symbol.Key
	// Keys carries the alternatives for AltTake/Watch.
	Keys []symbol.Key
	// Payload is the encoded transferable for puts.
	Payload []byte
	// ADF carries the application description for Register.
	ADF string
	// Dir names a program (PROCESSES source directory) for Pump/Fetch.
	Dir string
	// TargetHost addresses host-directed operations (Pump/Fetch).
	TargetHost string
	// Token is an at-most-once dedup token for put/put_delayed (0 = none):
	// a retried maybe-delivered put carries the same token, and the folder
	// server acknowledges without re-applying if it already holds it. The
	// token is NOT part of the request codec — it travels as a batch-entry
	// extension (see batch.go), so the single-frame legacy protocol is
	// untouched and the rpc layer re-attaches it at every hop.
	Token uint64
}

// Response answers a Request.
type Response struct {
	Status Status
	// Key reports which folder satisfied an AltTake/Watch.
	Key symbol.Key
	// Payload is the encoded transferable for gets.
	Payload []byte
	// Err is the message accompanying StatusErr.
	Err string
}

// Errors returned by decoding.
var (
	ErrTruncated = errors.New("wire: truncated message")
)

type writer struct{ buf []byte }

func (w *writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *writer) str(s string) { w.u64(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) key(k symbol.Key) {
	w.u64(uint64(k.S))
	w.u64(uint64(len(k.X)))
	for _, x := range k.X {
		w.u64(uint64(x))
	}
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.err = ErrTruncated
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *reader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.err = ErrTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return b
}

func (r *reader) key() symbol.Key {
	s := r.u64()
	n := r.u64()
	if r.err != nil {
		return symbol.Key{}
	}
	if n > uint64(len(r.buf)-r.pos) { // each element ≥ 1 byte
		r.err = ErrTruncated
		return symbol.Key{}
	}
	k := symbol.Key{S: symbol.Symbol(s)}
	if n > 0 {
		k.X = make([]uint32, n)
		for i := range k.X {
			k.X[i] = uint32(r.u64())
		}
	}
	return k
}

// EncodeRequest serializes a request.
func EncodeRequest(q *Request) []byte {
	w := &writer{buf: make([]byte, 0, 64+len(q.Payload))}
	w.byte(byte(q.Op))
	w.str(q.App)
	w.u64(uint64(q.FolderID))
	w.u64(uint64(q.Hops))
	w.key(q.Key)
	w.key(q.Key2)
	w.u64(uint64(len(q.Keys)))
	for _, k := range q.Keys {
		w.key(k)
	}
	w.bytes(q.Payload)
	w.str(q.ADF)
	w.str(q.Dir)
	w.str(q.TargetHost)
	return w.buf
}

// DecodeRequest parses a request.
func DecodeRequest(buf []byte) (*Request, error) {
	r := &reader{buf: buf}
	q := &Request{}
	q.Op = Op(r.byte())
	q.App = r.str()
	q.FolderID = int(r.u64())
	q.Hops = int(r.u64())
	q.Key = r.key()
	q.Key2 = r.key()
	nk := r.u64()
	if r.err == nil && nk > uint64(len(buf)) {
		r.err = ErrTruncated
	}
	if r.err == nil && nk > 0 {
		q.Keys = make([]symbol.Key, nk)
		for i := range q.Keys {
			q.Keys[i] = r.key()
		}
	}
	q.Payload = r.bytes()
	q.ADF = r.str()
	q.Dir = r.str()
	q.TargetHost = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes in request", len(buf)-r.pos)
	}
	if q.Op == OpInvalid || q.Op > OpFetch {
		return nil, fmt.Errorf("wire: invalid op %d", q.Op)
	}
	return q, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(p *Response) []byte {
	w := &writer{buf: make([]byte, 0, 32+len(p.Payload))}
	w.byte(byte(p.Status))
	w.key(p.Key)
	w.bytes(p.Payload)
	w.str(p.Err)
	return w.buf
}

// DecodeResponse parses a response.
func DecodeResponse(buf []byte) (*Response, error) {
	r := &reader{buf: buf}
	p := &Response{}
	p.Status = Status(r.byte())
	p.Key = r.key()
	p.Payload = r.bytes()
	p.Err = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes in response", len(buf)-r.pos)
	}
	if p.Status == StatusInvalid || p.Status > StatusErr {
		return nil, fmt.Errorf("wire: invalid status %d", p.Status)
	}
	return p, nil
}

// OK is the canonical success response for value-less operations.
func OK() *Response { return &Response{Status: StatusOK} }

// Errf builds an error response.
func Errf(format string, args ...any) *Response {
	return &Response{Status: StatusErr, Err: fmt.Sprintf(format, args...)}
}
