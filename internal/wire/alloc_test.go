package wire

import (
	"testing"

	"repro/internal/symbol"
)

// Allocation budgets: the encode/decode round trip must stay allocation-free
// when buffers and request storage are reused — the contract the rpc hot
// path is built on. testing.AllocsPerRun gates run in the ordinary test
// suite, so a future change that quietly re-introduces a per-op allocation
// fails CI instead of eroding the E13 numbers.

func TestAppendRequestRoundTripAllocFree(t *testing.T) {
	// A keyed put and a multi-key alt_take: both extension-slot reuse
	// (keyInto) and key-list reuse (DecodeRequestInto) are on the gated
	// path, so keyed workloads stay allocation-free too — not just pings.
	put := &Request{
		Op:      OpPut,
		Key:     symbol.K(7, 1, 2),
		Payload: []byte("a memo payload of moderate length"),
	}
	alt := &Request{
		Op:   OpAltTake,
		Keys: []symbol.Key{symbol.K(1, 9), symbol.K(2), symbol.K(3, 4, 5)},
	}
	buf := make([]byte, 0, 256)
	var dec Request
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range []*Request{put, alt} {
			buf = AppendRequest(buf[:0], q)
			if err := DecodeRequestInto(&dec, buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	// The very first iterations grow dec's Keys/X arrays; AllocsPerRun's
	// warmup run absorbs that, so the steady state must be zero.
	if allocs > 0 {
		t.Fatalf("append/decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec.Op != alt.Op || len(dec.Keys) != 3 {
		t.Fatalf("round trip diverged: %+v", dec)
	}
}

func TestAppendBatchRoundTripAllocFree(t *testing.T) {
	msg := EncodeRequest(&Request{Op: OpPing})
	in := []BatchEntry{
		{ID: 1, Msg: msg},
		{ID: 2, Token: 99, Msg: msg},
		{ID: 3, Heartbeat: true},
	}
	buf := make([]byte, 0, 256)
	entries := make([]BatchEntry, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendBatch(buf[:0], BatchRequest, in)
		kind, es, err := DecodeBatchInto(entries[:0], buf)
		if err != nil || kind != BatchRequest || len(es) != len(in) {
			t.Fatalf("round trip: kind %v, %d entries, err %v", kind, len(es), err)
		}
		entries = es
	})
	if allocs > 0 {
		t.Fatalf("batch append/decode round trip allocates %.1f/op, want 0", allocs)
	}
}

func TestAppendResponseRoundTripAllocFree(t *testing.T) {
	p := &Response{Status: StatusOK, Key: symbol.K(3), Payload: []byte("result")}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendResponse(buf[:0], p)
	})
	if allocs > 0 {
		t.Fatalf("AppendResponse allocates %.1f/op, want 0", allocs)
	}
	got, err := DecodeResponse(buf)
	if err != nil || string(got.Payload) != "result" {
		t.Fatalf("decode: %v %+v", err, got)
	}
}

// TestDecodeAliasesAndRetainDetaches pins the aliasing decode contract: a
// decoded payload aliases the input buffer (mutating the buffer shows
// through), and Retain detaches it (mutating the buffer afterwards does
// not).
func TestDecodeAliasesAndRetainDetaches(t *testing.T) {
	buf := EncodeRequest(&Request{Op: OpPut, Payload: []byte("hello")})
	q, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the payload's first byte through the decoded slice and confirm
	// the encoded buffer changed too — the slices share storage.
	q.Payload[0] = 'H'
	q2, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(q2.Payload) != "Hello" {
		t.Fatalf("payload does not alias buf: %q", q2.Payload)
	}
	q2.Retain()
	q.Payload[0] = 'X'
	if string(q2.Payload) != "Hello" {
		t.Fatalf("Retain did not detach payload: %q", q2.Payload)
	}
}
