package wire

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Distributed spans.
//
// A span is one timed step of a sampled request: which node recorded it,
// which layer (memo dispatch, rpc send, link forward, folder op, durable
// commit), what operation, when it started, how long it ran, and how long
// it waited first (dispatch-queue wait, batcher linger, shard-lock wait,
// group-commit fsync — each layer reports the wait it owns). Spans ride
// response batch entries as a flag-gated extension (see batch.go): each hop
// returns the spans it collected, so the entry node ends up holding the
// whole tree.
//
// The span codec mirrors the request/response codec conventions: uvarints
// for counts, length-prefixed strings, and signed varints for the
// nanosecond fields. Unlike payload decoding, DecodeSpans COPIES — spans
// outlive the pooled frame they arrive in by design.

// Span is one recorded step of a sampled request.
type Span struct {
	// Node identifies the recording server ("memo@a", "folder-0@b"). Layers
	// that don't know their host (rpc) leave it empty; the owning dispatch
	// wrapper fills it before the set leaves the node.
	Node string `json:"node"`
	// Layer is the subsystem that recorded the span: "memo", "rpc", "link",
	// "folder", or "durable".
	Layer string `json:"layer"`
	// Op names the step within the layer (an Op.String(), a peer host for
	// link spans, "park"/"commit" for waits surfaced as their own spans).
	Op string `json:"op"`
	// Folder is the target folder server (-1 when not folder-addressed).
	Folder int `json:"folder"`
	// Hop is the forward-hop counter at record time.
	Hop int `json:"hop"`
	// Start is the span's start time in Unix nanoseconds.
	Start int64 `json:"start_ns"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Wait is the portion of Dur spent waiting before real work (queue
	// wait, batcher linger, lock wait); 0 when the layer has none.
	Wait int64 `json:"wait_ns,omitempty"`
}

func (w *writer) i64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

// AppendSpans serializes spans onto dst (returned, possibly reallocated):
// uvarint count, then per span node/layer/op strings, signed-varint folder,
// uvarint hop, and signed-varint start/dur/wait.
//
//memolint:returns-buffer
func AppendSpans(dst []byte, spans []Span) []byte {
	w := writer{buf: dst}
	w.u64(uint64(len(spans)))
	for i := range spans {
		s := &spans[i]
		w.str(s.Node)
		w.str(s.Layer)
		w.str(s.Op)
		w.i64(int64(s.Folder))
		w.u64(uint64(s.Hop))
		w.i64(s.Start)
		w.i64(s.Dur)
		w.i64(s.Wait)
	}
	return w.buf
}

// SpansOverhead conservatively bounds the encoded size of spans — the
// AppendSpans output never exceeds it.
func SpansOverhead(spans []Span) int {
	n := binary.MaxVarintLen64
	for i := range spans {
		s := &spans[i]
		n += len(s.Node) + len(s.Layer) + len(s.Op) + 8*binary.MaxVarintLen64
	}
	return n
}

// DecodeSpans parses a span blob. The returned spans are fully owned (the
// string fields are copies), so they may outlive buf — span blobs arrive
// inside pooled batch frames that are recycled right after decode.
func DecodeSpans(buf []byte) ([]Span, error) {
	r := &reader{buf: buf}
	n := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	// Each span costs at least 8 bytes on the wire; an absurd count is a
	// hostile blob, not an allocation request.
	if n > uint64(len(buf))/8 {
		return nil, ErrTruncated
	}
	spans := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		s.Node = r.str()
		s.Layer = r.str()
		s.Op = r.str()
		s.Folder = int(r.i64())
		s.Hop = int(r.u64())
		s.Start = r.i64()
		s.Dur = r.i64()
		s.Wait = r.i64()
		if r.err != nil {
			return nil, r.err
		}
		spans = append(spans, s)
	}
	if r.pos != len(buf) {
		return nil, ErrTruncated
	}
	return spans, nil
}

// maxSpansPerSet bounds one request's span tree. A request that somehow
// produces more (a pathological retry storm) keeps the first maxSpansPerSet
// and drops the rest — tracing must never amplify a failure.
const maxSpansPerSet = 64

// SpanSet accumulates the spans of one sampled request while it moves
// through a node. It is created by the owning dispatch wrapper, shared down
// the local call stack via Request.Spans, and handed to concurrently-running
// handlers (a blocking folder handler can outlive an abandoned dispatch), so
// it is mutex-protected and refcounted: Retain before handing it to another
// goroutine, Release when done; the last Release returns it to the pool.
type SpanSet struct {
	mu    sync.Mutex
	refs  atomic.Int32
	spans []Span
}

var spanSetPool = sync.Pool{
	New: func() any { return &SpanSet{spans: make([]Span, 0, 8)} },
}

// NewSpanSet returns an empty set with one reference.
func NewSpanSet() *SpanSet {
	set := spanSetPool.Get().(*SpanSet)
	set.refs.Store(1)
	return set
}

// Retain adds a reference (nil-safe).
func (s *SpanSet) Retain() {
	if s != nil {
		s.refs.Add(1)
	}
}

// Release drops a reference (nil-safe); the last one resets the set and
// returns it to the pool. Spans added after the owner copied the set out
// are lost, never leaked — exactly right for abandoned handlers.
func (s *SpanSet) Release() {
	if s == nil {
		return
	}
	if s.refs.Add(-1) == 0 {
		s.mu.Lock()
		s.spans = s.spans[:0]
		s.mu.Unlock()
		spanSetPool.Put(s)
	}
}

// Add appends one span (nil-safe; drops past maxSpansPerSet).
func (s *SpanSet) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.spans) < maxSpansPerSet {
		s.spans = append(s.spans, sp)
	}
	s.mu.Unlock()
}

// AddMany appends spans returned by a remote hop (nil-safe).
func (s *SpanSet) AddMany(spans []Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range spans {
		if len(s.spans) >= maxSpansPerSet {
			break
		}
		s.spans = append(s.spans, spans[i])
	}
	s.mu.Unlock()
}

// Len reports the number of collected spans (nil-safe).
func (s *SpanSet) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := len(s.spans)
	s.mu.Unlock()
	return n
}

// Finish stamps node on every span recorded without one and returns a
// private copy of the set — the slice the owner records into its trace ring
// and attaches to the response, safe against handlers still appending.
func (s *SpanSet) Finish(node string) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	for i := range s.spans {
		if s.spans[i].Node == "" {
			s.spans[i].Node = node
		}
	}
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	s.mu.Unlock()
	return out
}
