package durable

import (
	"os"
	"runtime"
	"sync"
	"time"
)

// stripe is one shard's write-ahead log: an append buffer, the current
// segment file, and a dedicated syncer goroutine that drains the buffer by
// backpressure — whatever accumulated while the previous write+fsync ran
// ships in the next cycle, so one fsync amortizes over a group of records
// exactly the way one in-flight frame amortizes the rpc batcher's sends.
//
// Locking: io serializes everything that touches the file (syncer cycles,
// rotation, close); mu guards the buffer and sequence counters. io is always
// taken before mu, and appenders take only mu, so an append never waits for
// an fsync — only Commit does.
type stripe struct {
	cfg Config

	io sync.Mutex // file writes, rotation, close; taken before mu
	f  *os.File   // current segment; swapped by rotate under io+mu

	mu      sync.Mutex
	synced  *sync.Cond // signalled when syncedSeq/failed/state advance
	frames  [][]byte   // encoded frames awaiting write, frames[i] is seq base+i+1
	seq     uint64     // last appended sequence number
	syncSeq uint64     // last sequence made durable (per the sync mode)
	failed  error      // sticky terminal error (write/sync failure, crash)
	closed  bool

	wake chan struct{} // capacity 1: "frames may be pending"
}

func newStripe(f *os.File, cfg Config) *stripe {
	s := &stripe{cfg: cfg, f: f, wake: make(chan struct{}, 1)}
	s.synced = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// append buffers one framed record and returns its sequence number. The
// caller holds the owning Store shard's lock, which is what orders records
// of one folder. Returns 0 when the stripe is dead (commit will report why).
func (s *stripe) append(body []byte) uint64 {
	frame := appendFrame(make([]byte, 0, frameHeader+len(body)), body)
	s.mu.Lock()
	if s.closed || s.failed != nil {
		s.mu.Unlock()
		return 0
	}
	s.seq++
	seq := s.seq
	s.frames = append(s.frames, frame)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return seq
}

// commit blocks until seq is durable. seq 0 is a dead append (death is
// sticky, so the terminal state explains it). A record flushed by close()
// commits fine even though the stripe is now closed — durability checks
// come first.
func (s *stripe) commit(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq == 0 {
		if s.failed != nil {
			return s.failed
		}
		return ErrClosed
	}
	for {
		if s.syncSeq >= seq {
			return nil
		}
		if s.failed != nil {
			return s.failed
		}
		if s.closed {
			return ErrClosed
		}
		s.synced.Wait()
	}
}

// aliveErr reports the stripe's terminal state (nil while alive).
func (s *stripe) aliveErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// barrier returns the current append sequence, for commit-waiting on
// everything logged so far.
func (s *stripe) barrier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// run is the syncer: one write (+fsync per the mode) per cycle, covering
// every frame that accumulated since the last cycle, bounded by
// MaxBatch/MaxBytes.
func (s *stripe) run() {
	for range s.wake {
		if s.cfg.Linger > 0 {
			time.Sleep(s.cfg.Linger)
		}
		for {
			s.io.Lock()
			s.mu.Lock()
			if s.closed || s.failed != nil {
				s.mu.Unlock()
				s.io.Unlock()
				return
			}
			if len(s.frames) == 0 {
				s.mu.Unlock()
				s.io.Unlock()
				break
			}
			batch, top := s.takeLocked()
			f := s.f
			s.mu.Unlock()

			start := time.Now()
			err := writeAll(f, batch)
			if err == nil && s.cfg.Sync != SyncNever {
				err = f.Sync()
			}
			mFsyncNS.Observe(int64(time.Since(start)))
			mCommitBatch.Observe(int64(len(batch)))

			s.mu.Lock()
			if err != nil {
				if s.failed == nil {
					s.failed = err
				}
				s.synced.Broadcast()
				s.mu.Unlock()
				s.io.Unlock()
				return
			}
			s.syncSeq = top
			s.synced.Broadcast()
			s.mu.Unlock()
			s.io.Unlock()
			// Yield before the next cycle: the waiters just woken re-append
			// their next records first, so the following fsync covers a full
			// group instead of racing ahead of its producers — that one
			// scheduling gap is the difference between per-record and
			// amortized sync cost when cores are scarce.
			runtime.Gosched()
		}
	}
}

// takeLocked removes up to MaxBatch frames / ~MaxBytes from the buffer head
// (always at least one) and returns them with the sequence of the last one.
// Caller holds io and mu; io held through take+write+mark means no frames
// are ever in flight elsewhere, so the buffer head is always frame
// syncSeq+1 and the last taken frame's sequence is syncSeq + len(batch).
func (s *stripe) takeLocked() ([][]byte, uint64) {
	n, size := 0, 0
	for n < len(s.frames) && n < s.cfg.MaxBatch {
		size += len(s.frames[n])
		n++
		if size >= s.cfg.MaxBytes {
			break
		}
	}
	batch := s.frames[:n:n]
	if n == len(s.frames) {
		s.frames = nil
	} else {
		s.frames = s.frames[n:]
	}
	return batch, s.syncSeq + uint64(len(batch))
}

// flushLocked writes and (mode permitting) fsyncs every buffered frame to
// the current file. Caller holds io and mu.
func (s *stripe) flushLocked() error {
	if s.failed != nil {
		return s.failed
	}
	for len(s.frames) > 0 {
		batch, top := s.takeLocked()
		if err := writeAll(s.f, batch); err != nil {
			s.failed = err
			s.synced.Broadcast()
			return err
		}
		s.syncSeq = top
	}
	if s.cfg.Sync != SyncNever {
		if err := s.f.Sync(); err != nil {
			s.failed = err
			s.synced.Broadcast()
			return err
		}
	}
	s.synced.Broadcast()
	return nil
}

// rotate flushes the old segment and switches the stripe onto next. The
// caller holds the owning Store shard's lock, so no append races the swap;
// io excludes an in-flight syncer cycle, so no pre-cut frame can land in the
// post-cut segment.
func (s *stripe) rotate(next *os.File) error {
	s.io.Lock()
	defer s.io.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	old := s.f
	s.f = next
	if err := old.Close(); err != nil {
		return err
	}
	return nil
}

// close flushes and retires the stripe; pending commits complete first.
func (s *stripe) close() error {
	s.io.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.io.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	s.frames = nil
	s.synced.Broadcast()
	f := s.f
	s.mu.Unlock()
	s.io.Unlock()
	// Unblock the syncer so it observes closed and exits; the channel is
	// never closed because a racing append may still signal it.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// crash abandons buffered frames and slams the file shut — what SIGKILL
// does to a real process. Pending commits fail with ErrCrashed; whatever an
// earlier cycle already wrote stays in the file, exactly like OS-buffered
// data surviving a killed process.
func (s *stripe) crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.failed == nil {
		s.failed = ErrCrashed
	}
	s.frames = nil
	s.synced.Broadcast()
	f := s.f
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	_ = f.Close()
}

func writeAll(f *os.File, frames [][]byte) error {
	for _, fr := range frames {
		if _, err := f.Write(fr); err != nil {
			return err
		}
	}
	return nil
}
