package durable

import "repro/internal/obs"

// Process-wide durability metrics, aggregated over every Log and stripe.
// The group-commit size histogram is the WAL's batching efficiency: mean
// entries per fsync is durable_commit_batch_sum / durable_commit_batch_count,
// the amortization factor the backpressure syncer buys. Dedup-token hits are
// a folder-layer event and live in the folder_dup_puts series.
var (
	mAppends = obs.Default.Counter("durable_appends_total",
		"records appended to WAL stripes")
	mFsyncNS = obs.Default.Histogram("durable_fsync_ns",
		"write+fsync latency per group commit, nanoseconds")
	mCommitBatch = obs.Default.Histogram("durable_commit_batch",
		"records covered per group commit")
	mSnapshots = obs.Default.Counter("durable_snapshots_total",
		"snapshot/truncate cycles committed")
	mSnapshotNS = obs.Default.Histogram("durable_snapshot_ns",
		"snapshot duration from start to commit, nanoseconds")
	mDirSyncs = obs.Default.Counter("durable_dir_syncs_total",
		"data-directory fsyncs at shape commit points (open, snapshot)")
)
