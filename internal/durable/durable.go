// Package durable is the persistence engine under a folder server's Store:
// a per-shard write-ahead log with group commit, periodic snapshots with log
// truncation, and replay-on-open recovery.
//
// The paper's folder servers hold their directories in memory ("exclusive
// access to their folders", §4.1) and lose them on a crash. This package
// gives a Store crash durability without giving up the sharded design:
//
//   - Every mutating operation (put, put_delayed, take, delayed-release)
//     appends one Record to the WAL stripe of the shard it touched, while
//     the shard lock is held — so per-folder record order always matches
//     per-folder application order, which is all replay needs (folders never
//     span shards, and no record touches two shards).
//
//   - Appends only buffer; durability is bought by Commit, which blocks
//     until a dedicated per-stripe syncer has written and fsynced the
//     record. The syncer drains by backpressure, mirroring the rpc
//     batcher: one fsync's duration is exactly the window in which the
//     next batch of records accumulates, so the sync cost amortizes over
//     concurrent operations by itself (Config.MaxBatch/MaxBytes/Linger
//     bound the mechanism, SyncAlways degenerates it to one fsync per
//     record, SyncNever trusts the OS page cache).
//
//   - When enough records accumulate (Config.SnapshotEvery), the owner
//     cuts a snapshot: shard by shard — under that shard's lock — the
//     remaining stripe tail is flushed, the shard's in-memory state is
//     dumped as compacted records into a temp file, and the stripe rotates
//     onto a fresh log segment of the next generation. The temp file is
//     fsynced and renamed only after every shard is cut, so a crash at any
//     point leaves either the old generation (snapshot tmp ignored) or the
//     new one (stale files deleted on open) — never a torn mixture.
//
//   - Open replays the newest complete snapshot, then every surviving log
//     generation in order. Torn record frames (length or CRC check fails)
//     mark the end of a stripe: everything before them was acknowledged
//     durable, everything after was not yet acknowledged, so stopping at
//     the tear is exactly at-most-once. Replayed stripes are never written
//     again — every open starts a fresh generation, and the next snapshot
//     deletes the superseded history.
//
// Records also carry at-most-once dedup tokens: a put retried after a link
// failure or a crash carries the same client-generated token, the Store
// records applied tokens through the same log, and replay restores them —
// so a maybe-applied put can be re-sent safely across both failure modes.
package durable

import (
	"errors"
	"fmt"
	"time"
)

// Errors.
var (
	// ErrClosed reports an operation on a cleanly closed log.
	ErrClosed = errors.New("durable: log closed")
	// ErrCrashed reports an operation on a log torn down by Crash — the
	// in-process stand-in for SIGKILL. Buffered records are abandoned.
	ErrCrashed = errors.New("durable: log crashed")
	// ErrCorrupt reports recovery hitting inconsistent state that cannot be
	// explained by a torn tail (e.g. a take with no matching put).
	ErrCorrupt = errors.New("durable: log corrupt")
)

// SyncMode selects how Commit buys durability.
type SyncMode int

const (
	// SyncBatch (the default) group-commits: one fsync covers every record
	// that accumulated while the previous fsync ran.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs once per record — the durability ceiling and the
	// throughput floor; the benchmark baseline group commit is measured
	// against.
	SyncAlways
	// SyncNever writes without fsync: records survive a process crash (the
	// OS holds them) but not a host crash.
	SyncNever
)

func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("sync-mode(%d)", int(m))
}

// ParseSyncMode parses a -fsync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown sync mode %q (want batch, always, or never)", s)
}

// Defaults.
const (
	// DefaultSnapshotEvery is the record count between snapshots.
	DefaultSnapshotEvery = 8192
	// DefaultMaxBatch caps records per group-commit fsync.
	DefaultMaxBatch = 512
	// DefaultMaxBytes caps bytes per group-commit write.
	DefaultMaxBytes = 1 << 20
)

// Config tunes a Log. The zero value is the recommended configuration:
// group commit, snapshot every DefaultSnapshotEvery records.
type Config struct {
	// Sync selects the fsync policy (zero = SyncBatch).
	Sync SyncMode
	// SnapshotEvery is how many appended records trigger a snapshot +
	// truncation cycle (0 = DefaultSnapshotEvery, negative = never).
	SnapshotEvery int
	// MaxBatch caps how many records one group-commit cycle writes
	// (0 = DefaultMaxBatch; forced to 1 by SyncAlways).
	MaxBatch int
	// MaxBytes caps how many bytes one group-commit cycle writes
	// (0 = DefaultMaxBytes).
	MaxBytes int
	// Linger, when positive, is an extra accumulation window before each
	// sync cycle. Backpressure draining usually makes it unnecessary —
	// records pile up while the previous fsync runs — so the default is 0.
	Linger time.Duration
}

func (c Config) withDefaults() Config {
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Sync == SyncAlways {
		c.MaxBatch = 1
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	return c
}
