package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// File layout inside a Log directory:
//
//	wal-<gen>-<shard>.log   one log stripe per shard of generation <gen>
//	snap-<gen>              the snapshot that generation <gen> started from
//	snap-<gen>.tmp          an in-progress snapshot (ignored by recovery)
//
// A generation is the span between two snapshot cuts. Snapshot <g> captures
// all state up to the cut, and wal-<g>-* hold everything after it, so
// recovery is: load the newest complete snapshot, then replay every
// surviving generation's stripes in ascending generation order. Files from
// generations older than the newest snapshot are garbage from an
// interrupted truncation and are deleted on open.

func walName(gen uint64, shard int) string {
	return fmt.Sprintf("wal-%08d-%04d.log", gen, shard)
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d", gen) }

// snapMagic heads every snapshot file.
var snapMagic = []byte("DMSNAP01")

// Log is the durability engine for one folder store: per-shard WAL stripes
// plus the snapshot/truncate cycle. All methods are safe for concurrent use
// except StartSnapshot, whose caller must single-flight snapshots.
type Log struct {
	dir    string
	cfg    Config
	gen    atomic.Uint64 // advanced by snapshots (background goroutine)
	shards []*stripe

	// appended counts records since the last completed snapshot; the owner
	// polls ShouldSnapshot after commits.
	appended atomic.Int64
}

// Open opens (creating if necessary) the log in dir for a store with the
// given shard count, replaying recovered records through apply in a replay
// order that preserves each folder's mutation order. It is safe to reopen
// with a different shard count: records name their folder, and one folder's
// records never span stripes within a generation.
func Open(dir string, shards int, cfg Config, apply func(*Record) error) (*Log, error) {
	if shards < 1 {
		return nil, fmt.Errorf("durable: shard count %d", shards)
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	snaps, walGens, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	// Pick the newest complete snapshot as the base generation.
	base := uint64(0)
	haveSnap := false
	for _, g := range snaps {
		if g >= base {
			base, haveSnap = g, true
		}
	}

	replayed := int64(0)
	if haveSnap {
		n, err := replaySnapshot(filepath.Join(dir, snapName(base)), apply)
		if err != nil {
			return nil, err
		}
		replayed += n
	}

	// Replay surviving generations in ascending order. Per-folder order
	// holds because a folder's records never span stripes within one
	// generation, and every generation's records post-date the previous
	// generation's entirely.
	gen := base
	for _, g := range walGens {
		if haveSnap && g < base {
			continue
		}
		if g > gen {
			gen = g
		}
		for _, name := range stripeFiles(dir, g) {
			n, err := replayStripe(name, apply)
			if err != nil {
				return nil, err
			}
			replayed += n
		}
	}

	// Drop garbage from interrupted truncations: stripes and snapshots of
	// generations older than the base, and abandoned snapshot temp files.
	if err := removeStale(dir, base, haveSnap); err != nil {
		return nil, err
	}

	// Every open starts a fresh generation: replayed stripes stay on disk
	// as read-only history until a snapshot supersedes them, and new
	// records — whose shard mapping may differ if the store was resized —
	// always replay after everything recovered here.
	gen++
	l := &Log{dir: dir, cfg: cfg, shards: make([]*stripe, shards)}
	l.gen.Store(gen)
	for i := range l.shards {
		name := filepath.Join(dir, walName(gen, i))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
		if err != nil {
			l.abandon(i)
			return nil, err
		}
		l.shards[i] = newStripe(f, cfg)
	}
	// Make the fresh generation's directory entries durable before any
	// record is acknowledged against them. Without this, a crash right
	// after open can lose the new stripes' directory entries while a later
	// snapshot's deletions of the old generation survive — leaving a data
	// directory whose acknowledged records live in files no directory entry
	// names. (The snapshot cycle already syncs the directory at its own
	// commit point; open must too.)
	syncDir(dir)
	// A recovered backlog counts toward the next snapshot, so a log that
	// crashed with a full generation compacts soon after reopening.
	l.appended.Store(replayed)
	return l, nil
}

// abandon closes the stripes created before a failed Open step.
func (l *Log) abandon(n int) {
	for i := 0; i < n; i++ {
		if l.shards[i] != nil {
			_ = l.shards[i].close()
		}
	}
}

// scanDir lists complete snapshot generations and wal generations present.
func scanDir(dir string) (snaps, walGens []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[uint64]bool)
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && !strings.HasSuffix(name, ".tmp"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64); err == nil {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-", 2)
			if len(parts) != 2 {
				continue
			}
			if g, err := strconv.ParseUint(parts[0], 10, 64); err == nil && !seen[g] {
				seen[g] = true
				walGens = append(walGens, g)
			}
		}
	}
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	return snaps, walGens, nil
}

// stripeFiles lists generation g's stripe files in shard order.
func stripeFiles(dir string, g uint64) []string {
	matches, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("wal-%08d-*.log", g)))
	sort.Strings(matches)
	return matches
}

// replayStripe applies every intact frame of one stripe file, stopping at a
// torn tail (everything after a tear was never acknowledged durable).
func replayStripe(name string, apply func(*Record) error) (int64, error) {
	buf, err := os.ReadFile(name)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	rest := buf
	for {
		body, r, ok := nextFrame(rest)
		if !ok {
			break
		}
		rec, err := DecodeRecord(body)
		if err != nil {
			// The frame's CRC held but the body is malformed: corruption,
			// not a torn tail.
			return n, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(name), err)
		}
		if err := apply(rec); err != nil {
			return n, fmt.Errorf("durable: replay %s: %w", filepath.Base(name), err)
		}
		n++
		rest = r
	}
	return n, nil
}

// replaySnapshot applies every record of a completed snapshot. Unlike a wal
// stripe, a completed (renamed) snapshot has no legitimate torn tail, so any
// framing failure before EOF is corruption.
func replaySnapshot(name string, apply func(*Record) error) (int64, error) {
	buf, err := os.ReadFile(name)
	if err != nil {
		return 0, err
	}
	if len(buf) < len(snapMagic) || string(buf[:len(snapMagic)]) != string(snapMagic) {
		return 0, fmt.Errorf("%w: %s: bad snapshot header", ErrCorrupt, filepath.Base(name))
	}
	rest := buf[len(snapMagic):]
	n := int64(0)
	for len(rest) > 0 {
		body, r, ok := nextFrame(rest)
		if !ok {
			return n, fmt.Errorf("%w: %s: torn frame in completed snapshot", ErrCorrupt, filepath.Base(name))
		}
		rec, err := DecodeRecord(body)
		if err != nil {
			return n, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(name), err)
		}
		if err := apply(rec); err != nil {
			return n, fmt.Errorf("durable: replay %s: %w", filepath.Base(name), err)
		}
		n++
		rest = r
	}
	return n, nil
}

// removeStale deletes files superseded by the base snapshot, plus abandoned
// snapshot temp files. Best-effort: a leftover is re-deleted next open.
func removeStale(dir string, base uint64, haveSnap bool) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		stale := false
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = true
		case haveSnap && strings.HasPrefix(name, "snap-"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64); err == nil && g < base {
				stale = true
			}
		case haveSnap && strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-", 2)
			if len(parts) == 2 {
				if g, err := strconv.ParseUint(parts[0], 10, 64); err == nil && g < base {
					stale = true
				}
			}
		}
		if stale {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// Append logs one record to the shard's stripe and returns its commit
// handle. The caller holds the Store shard lock, which orders the records
// of each folder. A dead log returns 0; Commit reports why.
//
//memolint:requires-shard-lock
func (l *Log) Append(shard int, rec *Record) uint64 {
	l.appended.Add(1)
	mAppends.Inc()
	return l.shards[shard].append(EncodeRecord(rec))
}

// Commit blocks until the shard's stripe has made seq durable. It must run
// outside the shard lock (it blocks on fsync), and its error gates the ack.
//
//memolint:forbids-shard-lock
//memolint:must-check-error
func (l *Log) Commit(shard int, seq uint64) error {
	return l.shards[shard].commit(seq)
}

// Barrier blocks until everything appended to the shard's stripe so far is
// durable — the wait a deduplicated (already-applied) put performs so its
// acknowledgement never outruns the original record's fsync. An empty
// stripe (the original landed in a previous generation) is trivially
// durable.
//
//memolint:forbids-shard-lock
//memolint:must-check-error
func (l *Log) Barrier(shard int) error {
	s := l.shards[shard]
	seq := s.barrier()
	if seq == 0 {
		return s.aliveErr()
	}
	return s.commit(seq)
}

// ShouldSnapshot reports whether enough records accumulated since the last
// snapshot to warrant a truncation cycle. The owner single-flights the
// actual snapshot.
func (l *Log) ShouldSnapshot() bool {
	return l.cfg.SnapshotEvery > 0 && l.appended.Load() >= int64(l.cfg.SnapshotEvery)
}

// Gen reports the current generation (diagnostics and tests).
func (l *Log) Gen() uint64 { return l.gen.Load() }

// Dir reports the log directory.
func (l *Log) Dir() string { return l.dir }

// Shards reports the stripe count.
func (l *Log) Shards() int { return len(l.shards) }

// Close flushes every stripe and closes the files. Pending commits complete
// durable; subsequent appends are dead.
func (l *Log) Close() error {
	var first error
	for _, s := range l.shards {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash abandons buffered records and slams every stripe shut — the
// in-process stand-in for SIGKILL. What earlier sync cycles wrote survives
// in the files; pending commits fail with ErrCrashed.
func (l *Log) Crash() {
	for _, s := range l.shards {
		s.crash()
	}
}

// Snapshot is one in-progress snapshot + truncation cycle. The owner cuts
// every shard exactly once (holding that shard's lock across the cut), then
// commits. See StartSnapshot.
type Snapshot struct {
	l       *Log
	gen     uint64 // the generation this snapshot opens
	tmp     *os.File
	buf     []byte
	nrec    int64
	rotated int
	started time.Time
}

// StartSnapshot begins a snapshot into the next generation. The caller must
// single-flight snapshots and, on any error from CutShard/AppendRecord,
// Abort. Even an aborted snapshot advances the generation — its rotated
// stripes are already live — which is safe: recovery replays every
// generation the incomplete snapshot failed to supersede.
func (l *Log) StartSnapshot() (*Snapshot, error) {
	gen := l.gen.Load() + 1
	tmp, err := os.OpenFile(filepath.Join(l.dir, snapName(gen)+".tmp"),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return nil, err
	}
	if _, err := tmp.Write(snapMagic); err != nil {
		tmp.Close()
		return nil, err
	}
	return &Snapshot{l: l, gen: gen, tmp: tmp, started: time.Now()}, nil
}

// CutShard captures one shard: flushes its stripe, dumps the shard's
// in-memory state (via dump, which emits compacted records), and rotates
// the stripe onto the new generation's segment. The caller MUST hold that
// shard's Store lock for the whole call — that is what makes the cut a
// consistent point between the dumped state and the post-cut records.
func (s *Snapshot) CutShard(shard int, dump func(emit func(*Record) error) error) error {
	next, err := os.OpenFile(filepath.Join(s.l.dir, walName(s.gen, shard)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	if err := s.l.shards[shard].rotate(next); err != nil {
		next.Close()
		return err
	}
	s.rotated++
	if err := dump(s.AppendRecord); err != nil {
		return err
	}
	return s.flush()
}

// AppendRecord writes one record into the snapshot body. Used by CutShard
// dumps and for trailer records (the dedup-token table) that are not owned
// by any single shard.
func (s *Snapshot) AppendRecord(rec *Record) error {
	s.buf = appendFrame(s.buf, EncodeRecord(rec))
	s.nrec++
	if len(s.buf) >= DefaultMaxBytes {
		return s.flush()
	}
	return nil
}

func (s *Snapshot) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.tmp.Write(s.buf)
	s.buf = s.buf[:0]
	return err
}

// Commit finalizes the snapshot: fsync, rename into place, fsync the
// directory, then delete the superseded generation's files. After Commit
// the log's record counter restarts toward the next snapshot.
func (s *Snapshot) Commit() error {
	if err := s.flush(); err != nil {
		s.Abort()
		return err
	}
	if err := s.tmp.Sync(); err != nil {
		s.Abort()
		return err
	}
	if err := s.tmp.Close(); err != nil {
		s.abortKeepGen()
		return err
	}
	final := filepath.Join(s.l.dir, snapName(s.gen))
	if err := os.Rename(final+".tmp", final); err != nil {
		s.abortKeepGen()
		return err
	}
	syncDir(s.l.dir)
	mSnapshots.Inc()
	mSnapshotNS.Observe(int64(time.Since(s.started)))
	// The rename is the commit point; everything below is cleanup. Every
	// generation below the new one is superseded — there may be several,
	// accumulated across restarts without an intervening snapshot.
	s.l.gen.Store(s.gen)
	s.l.appended.Store(0)
	ents, err := os.ReadDir(s.l.dir)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-", 2)
			if len(parts) != 2 {
				continue
			}
			var err error
			if g, err = strconv.ParseUint(parts[0], 10, 64); err != nil {
				continue
			}
		case strings.HasPrefix(name, "snap-") && !strings.HasSuffix(name, ".tmp"):
			var err error
			if g, err = strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64); err != nil {
				continue
			}
		default:
			continue
		}
		if g < s.gen {
			_ = os.Remove(filepath.Join(s.l.dir, name))
		}
	}
	return nil
}

// Abort discards the snapshot temp file. Stripes already rotated stay on
// the new generation (recovery handles a generation with no snapshot), so
// the log's generation still advances when any shard was cut.
func (s *Snapshot) Abort() {
	_ = s.tmp.Close()
	s.abortKeepGen()
}

func (s *Snapshot) abortKeepGen() {
	_ = os.Remove(filepath.Join(s.l.dir, snapName(s.gen)+".tmp"))
	if s.rotated > 0 {
		s.l.gen.Store(s.gen)
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable. Best-effort: some platforms refuse to fsync
// directories. Called at both directory-shape commit points: Open (fresh
// generation stripes created) and Snapshot.Commit (snapshot renamed into
// place).
func syncDir(dir string) {
	mDirSyncs.Inc()
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
