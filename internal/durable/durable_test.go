package durable

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/symbol"
)

func rec(t RecType, key symbol.Key, payload string, tok uint64) *Record {
	return &Record{Type: t, Key: key, Payload: []byte(payload), Token: tok}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []*Record{
		rec(RecPut, symbol.K(7), "hello", 0),
		rec(RecPut, symbol.K(7, 1, 2, 3), "", 0xDEADBEEF),
		{Type: RecPutDelayed, Key: symbol.K(9, 4), Dest: symbol.K(11), Payload: []byte("hidden"), Token: 5},
		{Type: RecPutDelayed, Key: symbol.K(1), Dest: symbol.K(2, 0, 0, 9)},
		rec(RecTake, symbol.K(3, 1000000), "taken-payload", 0),
		rec(RecTake, symbol.K(3, 2), "tokened-take", 0xABCD),
		{Type: RecToken, Token: ^uint64(0)},
		{Type: RecTakeCache, Token: 9, Key: symbol.K(12, 3), Payload: []byte("cached")},
		{Type: RecTakeCache, Token: 10, Empty: true},
	}
	for _, want := range cases {
		got, err := DecodeRecord(EncodeRecord(want))
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		// nil and empty slices are equivalent on the wire.
		if want.Payload == nil {
			want.Payload = got.Payload
		}
		if got.Payload == nil {
			got.Payload = want.Payload
		}
		if got.Type != want.Type || !got.Key.Equal(want.Key) || !got.Dest.Equal(want.Dest) ||
			string(got.Payload) != string(want.Payload) || got.Token != want.Token ||
			got.Empty != want.Empty {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	good := EncodeRecord(rec(RecPut, symbol.K(7, 1), "x", 3))
	if _, err := DecodeRecord(append(good, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Error("unknown type accepted")
	}
	for i := 1; i < len(good); i++ {
		if _, err := DecodeRecord(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
}

// collect opens the log in dir and returns the replayed records.
func collect(t *testing.T, dir string, shards int, cfg Config) (*Log, []*Record) {
	t.Helper()
	var got []*Record
	l, err := Open(dir, shards, cfg, func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

func TestLogAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	l, got := collect(t, dir, 4, Config{})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	var want []*Record
	for i := 0; i < 40; i++ {
		r := rec(RecPut, symbol.K(symbol.Symbol(i%4+1), uint32(i)), "payload", uint64(i+1))
		want = append(want, r)
		seq := l.Append(i%4, r)
		if err := l.Commit(i%4, seq); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := collect(t, dir, 4, Config{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	// Per-shard order must be preserved; cross-shard order is free. Group
	// by shard (token encodes the append index here).
	perShard := map[symbol.Symbol][]uint64{}
	for _, r := range got {
		perShard[r.Key.S] = append(perShard[r.Key.S], r.Token)
	}
	for s, toks := range perShard {
		for i := 1; i < len(toks); i++ {
			if toks[i] <= toks[i-1] {
				t.Errorf("shard-symbol %d replay out of order: %v", s, toks)
			}
		}
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, 2, Config{})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sh := w % 2
				seq := l.Append(sh, rec(RecPut, symbol.K(symbol.Symbol(w+1), uint32(i)), "v", 0))
				if err := l.Commit(sh, seq); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := collect(t, dir, 2, Config{})
	defer l2.Close()
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
}

// TestTornTailNeverMisapplied truncates a stripe at every possible byte
// length: recovery must always yield a strict prefix of the acknowledged
// records — never an error, never a reordered or corrupted record.
func TestTornTailNeverMisapplied(t *testing.T) {
	master := t.TempDir()
	l, _ := collect(t, master, 1, Config{})
	const n = 8
	for i := 0; i < n; i++ {
		seq := l.Append(0, rec(RecPut, symbol.K(1, uint32(i)), "payload", uint64(i+1)))
		if err := l.Commit(0, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stripes := stripeFiles(master, mustOneGen(t, master))
	if len(stripes) != 1 {
		t.Fatalf("stripes: %v", stripes)
	}
	whole, err := os.ReadFile(stripes[0])
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(stripes[0])), whole[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		var got []*Record
		l, err := Open(dir, 1, Config{}, func(r *Record) error {
			cp := *r
			got = append(got, &cp)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		l.Close()
		for i, r := range got {
			if r.Token != uint64(i+1) || string(r.Payload) != "payload" {
				t.Fatalf("cut %d: record %d mis-applied: %+v", cut, i, r)
			}
		}
		if len(got) > n {
			t.Fatalf("cut %d: %d records from %d acknowledged", cut, len(got), n)
		}
	}
}

// TestCorruptionStopsReplay flips one byte mid-file: replay must stop at
// the flip and never surface the corrupted or any later record.
func TestCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, 1, Config{})
	for i := 0; i < 6; i++ {
		seq := l.Append(0, rec(RecPut, symbol.K(1, uint32(i)), "payload-payload", uint64(i+1)))
		if err := l.Commit(0, seq); err != nil {
			t.Fatal(err)
		}
	}
	gen := mustOneGen(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	name := stripeFiles(dir, gen)[0]
	buf, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(name, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	l2, got := collect(t, dir, 1, Config{})
	l2.Close()
	if len(got) >= 6 {
		t.Fatalf("corruption not detected: %d records replayed", len(got))
	}
	for i, r := range got {
		if r.Token != uint64(i+1) {
			t.Fatalf("record %d mis-applied after corruption: %+v", i, r)
		}
	}
}

// mustOneGen returns the single wal generation present in dir.
func mustOneGen(t *testing.T, dir string) uint64 {
	t.Helper()
	_, gens, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("generations: %v", gens)
	}
	return gens[0]
}

// TestCrashAbandonsUnsynced: records appended but not yet committed when
// Crash hits must fail their commit and not resurface on recovery.
func TestCrashAbandonsUnsynced(t *testing.T) {
	dir := t.TempDir()
	// A long linger holds the syncer back so the append stays buffered and
	// uncommitted when Crash hits.
	l, _ := collect(t, dir, 1, Config{Linger: time.Hour})
	seq := l.Append(0, rec(RecPut, symbol.K(1), "doomed", 7))
	errc := make(chan error, 1)
	go func() { errc <- l.Commit(0, seq) }()
	time.Sleep(10 * time.Millisecond)
	l.Crash()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("commit after crash: %v, want ErrCrashed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit hung across Crash")
	}
	l2, got := collect(t, dir, 1, Config{})
	defer l2.Close()
	if len(got) != 0 {
		t.Fatalf("unacknowledged record resurfaced after crash: %+v", got[0])
	}
}

// TestCrashRightAfterOpenKeepsRecoveredState reopens a log and crashes
// before anything is appended to the new generation: everything recovered
// at open must still be recoverable afterwards. This is the PR 4 follow-up
// fsync gap: Open creates the fresh generation's stripe files and must
// fsync the data directory, or a crash can lose the new segments'
// directory entries while surviving snapshot deletions of the old
// generation leave nothing behind to replay.
func TestCrashRightAfterOpenKeepsRecoveredState(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, 2, Config{})
	for i := 0; i < 6; i++ {
		sh := i % 2
		seq := l.Append(sh, rec(RecPut, symbol.K(symbol.Symbol(sh+1), uint32(i)), "survivor", uint64(i+1)))
		if err := l.Commit(sh, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen — a fresh generation's stripes are created — and assert the
	// directory entries were made durable before Open returned. The fsync
	// itself is observable through the dir-sync counter; losing a directory
	// entry needs a real power cut, which a unit test cannot stage.
	before := mDirSyncs.Load()
	l2, got := collect(t, dir, 2, Config{})
	if len(got) != 6 {
		t.Fatalf("reopen replayed %d records, want 6", len(got))
	}
	if mDirSyncs.Load() == before {
		t.Fatal("Open did not fsync the data directory after creating the new generation's stripes")
	}

	// SIGKILL-equivalent immediately after open: nothing was appended to
	// the new generation, so recovery must still see all six records.
	l2.Crash()
	l3, got := collect(t, dir, 2, Config{})
	defer l3.Close()
	if len(got) != 6 {
		t.Fatalf("crash right after open lost state: %d records recovered, want 6", len(got))
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"batch", SyncBatch, true}, {"", SyncBatch, true},
		{"always", SyncAlways, true}, {"never", SyncNever, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}
